"""Workload analysis: kernel characterization from traces.

Quantifies the behavioural axes GPUMech's accuracy depends on — memory
divergence degree, control divergence, instruction mix, footprint,
inter-warp heterogeneity — directly from functional traces.  Used by the
``characterize`` CLI command and by EXPERIMENTS.md to document what each
synthetic kernel actually exercises.
"""

from repro.analysis.characterize import (
    KernelCharacterization,
    characterize,
    compare_architectures,
    render_arch_comparison,
    render_characterization,
    suite_report,
)

__all__ = [
    "KernelCharacterization",
    "characterize",
    "compare_architectures",
    "render_arch_comparison",
    "render_characterization",
    "suite_report",
]
