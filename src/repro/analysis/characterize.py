"""Kernel characterization: behavioural metrics from a functional trace.

Every metric is hardware-independent (computed from the trace alone), so
characterization describes the *workload*, not the machine:

* instruction mix (IALU / FALU / SFU / LOAD / STORE / BRANCH fractions),
* memory divergence (requests per memory instruction: mean, max and a
  full histogram over degrees),
* control divergence (fraction of dynamic instructions executed under a
  partial mask; mean active lanes),
* inter-warp heterogeneity (coefficient of variation of warp trace
  lengths — the Fig. 7 signal),
* memory footprint (distinct cache lines touched) and traffic intensity
  (bytes of line traffic per instruction).

When the static :class:`~repro.isa.kernel.Kernel` is supplied alongside
the trace, the summary additionally reports the program's CFG shape
(basic blocks, static branches) and its lint status from the static
verifier (``repro.staticcheck``).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.isa.kernel import Kernel
from repro.trace.trace_types import KernelTrace, OpCode


@dataclass
class KernelCharacterization:
    """Behavioural summary of one kernel launch."""

    kernel_name: str
    n_warps: int
    n_blocks: int
    total_insts: int
    insts_per_warp_mean: float
    insts_per_warp_cv: float  # inter-warp heterogeneity
    mix: Dict[str, float] = field(default_factory=dict)
    loads_per_inst: float = 0.0
    stores_per_inst: float = 0.0
    mean_divergence: float = 0.0
    max_divergence: int = 0
    divergence_histogram: Dict[int, int] = field(default_factory=dict)
    masked_inst_fraction: float = 0.0
    mean_active_lanes: float = 0.0
    footprint_lines: int = 0
    line_bytes_per_inst: float = 0.0
    write_request_fraction: float = 0.0
    # Static program shape (populated when the Kernel is supplied).
    static_insts: int = 0
    static_blocks: int = 0
    static_branches: int = 0
    lint_errors: int = 0
    lint_warnings: int = 0
    # Static cost model (populated when the Kernel is supplied).
    static_loops: int = 0
    static_exact_loops: int = 0
    static_divergent_branches: int = 0
    static_access_classes: Dict[str, int] = field(default_factory=dict)
    static_cpi_lower_bound: float = 0.0

    @property
    def is_memory_divergent(self) -> bool:
        """More than one coalesced request per memory instruction."""
        return self.mean_divergence > 1.5

    @property
    def is_control_divergent(self) -> bool:
        """A meaningful share of instructions run under partial masks."""
        return self.masked_inst_fraction > 0.02 or self.insts_per_warp_cv > 0.05

    @property
    def is_write_heavy(self) -> bool:
        """Whether store traffic dominates the request mix."""
        return self.write_request_fraction > 0.5


def characterize(
    trace: KernelTrace, kernel: Optional[Kernel] = None
) -> KernelCharacterization:
    """Compute all metrics for one trace.

    Passing the ``kernel`` adds the static CFG shape and lint counts to
    the characterization (trace-only callers get zeros).
    """
    total = trace.total_insts
    op_counts: Dict[int, int] = {int(op): 0 for op in OpCode}
    mem_insts = 0
    load_insts = 0
    store_insts = 0
    total_reqs = 0
    write_reqs = 0
    divergence_hist: Dict[int, int] = {}
    max_divergence = 0
    masked = 0
    active_sum = 0
    lines = set()
    lengths: List[int] = []

    for warp in trace.warps:
        lengths.append(len(warp))
        ops = warp.ops
        for op in OpCode:
            op_counts[int(op)] += int((ops == op).sum())
        reqs = warp.requests_per_inst
        is_mem = warp.is_memory
        mem_insts += int(is_mem.sum())
        load_insts += int(warp.is_load.sum())
        store_insts += int(warp.is_store.sum())
        total_reqs += int(reqs.sum())
        write_reqs += int(reqs[warp.is_store].sum())
        for degree in reqs[is_mem].tolist():
            divergence_hist[degree] = divergence_hist.get(degree, 0) + 1
            if degree > max_divergence:
                max_divergence = degree
        full = warp.active.max() if len(warp) else 0
        masked += int((np.asarray(warp.active) < full).sum())
        active_sum += int(np.asarray(warp.active, dtype=np.int64).sum())
        lines.update(warp.req_lines.tolist())

    mean_len = statistics.fmean(lengths) if lengths else 0.0
    cv = (
        statistics.pstdev(lengths) / mean_len
        if len(lengths) > 1 and mean_len
        else 0.0
    )
    mix = {
        OpCode(code).name: count / total if total else 0.0
        for code, count in op_counts.items()
    }
    static_insts = static_blocks = static_branches = 0
    lint_errors = lint_warnings = 0
    static_loops = static_exact_loops = static_divergent_branches = 0
    static_access_classes: Dict[str, int] = {}
    static_cpi_lower_bound = 0.0
    if kernel is not None:
        from repro.staticcheck import (
            ControlFlowGraph,
            analyze_kernel,
            lint_kernel,
        )

        cfg = ControlFlowGraph(kernel.program)
        static_insts = len(kernel.program)
        static_blocks = len(cfg.blocks)
        static_branches = sum(
            1 for inst in kernel.program if inst.opcode == "bra"
        )
        report = lint_kernel(kernel)
        lint_errors = len(report.errors)
        lint_warnings = len(report.warnings)
        cost = analyze_kernel(kernel)
        static_loops = len(cost.loops)
        static_exact_loops = len(cost.exact_loops)
        static_divergent_branches = len(cost.divergent_branches)
        for access in cost.accesses:
            static_access_classes[access.label] = (
                static_access_classes.get(access.label, 0) + 1
            )
        static_cpi_lower_bound = cost.cpi_lower_bound
    return KernelCharacterization(
        kernel_name=trace.kernel_name,
        n_warps=trace.n_warps,
        n_blocks=trace.n_blocks,
        total_insts=total,
        insts_per_warp_mean=mean_len,
        insts_per_warp_cv=cv,
        mix=mix,
        loads_per_inst=load_insts / total if total else 0.0,
        stores_per_inst=store_insts / total if total else 0.0,
        mean_divergence=total_reqs / mem_insts if mem_insts else 0.0,
        max_divergence=max_divergence,
        divergence_histogram=dict(sorted(divergence_hist.items())),
        masked_inst_fraction=masked / total if total else 0.0,
        mean_active_lanes=active_sum / total if total else 0.0,
        footprint_lines=len(lines),
        line_bytes_per_inst=(
            total_reqs * trace.line_size / total if total else 0.0
        ),
        write_request_fraction=(
            write_reqs / total_reqs if total_reqs else 0.0
        ),
        static_insts=static_insts,
        static_blocks=static_blocks,
        static_branches=static_branches,
        lint_errors=lint_errors,
        lint_warnings=lint_warnings,
        static_loops=static_loops,
        static_exact_loops=static_exact_loops,
        static_divergent_branches=static_divergent_branches,
        static_access_classes=static_access_classes,
        static_cpi_lower_bound=static_cpi_lower_bound,
    )


def render_characterization(char: KernelCharacterization) -> str:
    """Multi-line human-readable report."""
    static_line = None
    if char.static_insts:
        lint = (
            "clean" if not (char.lint_errors or char.lint_warnings)
            else "%d error(s), %d warning(s)"
            % (char.lint_errors, char.lint_warnings)
        )
        static_line = (
            "  static: %d insts in %d basic blocks, %d branches; lint %s"
            % (char.static_insts, char.static_blocks, char.static_branches,
               lint)
        )
        classes = ", ".join(
            "%s×%d" % (label, count)
            for label, count in sorted(char.static_access_classes.items())
        )
        static_line += (
            "\n  cost model: %d loop(s) (%d exact), %d divergent "
            "branch(es), accesses [%s], cpi >= %.3f"
            % (char.static_loops, char.static_exact_loops,
               char.static_divergent_branches, classes or "none",
               char.static_cpi_lower_bound)
        )
    lines = [
        "kernel %s: %d warps in %d blocks, %d dynamic instructions"
        % (char.kernel_name, char.n_warps, char.n_blocks, char.total_insts),
        "  instructions/warp: mean %.1f, inter-warp CV %.2f"
        % (char.insts_per_warp_mean, char.insts_per_warp_cv),
        "  mix: "
        + ", ".join(
            "%s %.0f%%" % (name, 100 * frac)
            for name, frac in char.mix.items()
            if frac >= 0.005
        ),
        "  memory: %.2f loads/inst, %.2f stores/inst, %.0fB line traffic/inst"
        % (char.loads_per_inst, char.stores_per_inst,
           char.line_bytes_per_inst),
        "  divergence: mean %.1f, max %d requests/mem-inst"
        % (char.mean_divergence, char.max_divergence),
        "  control: %.0f%% of instructions under a partial mask "
        "(mean %.1f active lanes)"
        % (100 * char.masked_inst_fraction, char.mean_active_lanes),
        "  footprint: %d distinct cache lines; %.0f%% of requests are writes"
        % (char.footprint_lines, 100 * char.write_request_fraction),
        "  classes: %s"
        % ", ".join(
            label
            for label, flag in [
                ("memory-divergent", char.is_memory_divergent),
                ("control-divergent", char.is_control_divergent),
                ("write-heavy", char.is_write_heavy),
            ]
            if flag
        )
        or "  classes: regular",
    ]
    if static_line is not None:
        lines.insert(1, static_line)
    return "\n".join(lines)


def suite_report(
    scale=None, kernels: Optional[List[str]] = None, config=None,
    pipeline=None,
) -> str:
    """Characterize (a subset of) the workload suite as a table.

    With ``pipeline`` set, traces come from (and are cached by) that
    :class:`~repro.pipeline.Pipeline` — its stage timings then describe
    this report and a stage-timing table is appended.
    """
    from repro.config import GPUConfig
    from repro.harness.reporting import render_stage_table, render_table
    from repro.trace.emulator import emulate
    from repro.workloads.generators import Scale
    from repro.workloads.suite import SUITE, kernel_names

    config = config if config is not None else GPUConfig()
    scale = scale if scale is not None else Scale.tiny()
    names = kernels if kernels is not None else kernel_names()
    rows = []
    for name in names:
        kernel, memory = SUITE[name].build(scale)
        if pipeline is not None:
            trace = pipeline.trace(name)
        else:
            trace = emulate(kernel, config, memory=memory)
        char = characterize(trace, kernel=kernel)
        rows.append(
            (
                name,
                "%d/%d" % (char.static_insts, char.static_blocks),
                char.total_insts,
                "%.2f" % char.insts_per_warp_cv,
                "%.1f" % char.mean_divergence,
                char.max_divergence,
                "%.0f%%" % (100 * char.masked_inst_fraction),
                "%.0f%%" % (100 * char.write_request_fraction),
            )
        )
    report = render_table(
        ("kernel", "static/blocks", "insts", "warp CV", "mean div",
         "max div", "masked", "writes"),
        rows,
        title="workload characterization (%d kernels)" % len(rows),
    )
    if pipeline is not None:
        stage_table = render_stage_table(pipeline.metrics)
        if stage_table:
            report += "\n\n" + stage_table
    return report


def compare_architectures(
    scale=None,
    kernels: Optional[List[str]] = None,
    config=None,
    arches: Optional[List[str]] = None,
) -> Dict[str, Dict[str, float]]:
    """Predicted CPI per kernel under each architecture backend.

    Runs the analytical model once per (kernel, arch) pair — each arch
    gets its own :class:`~repro.pipeline.Pipeline` so artifacts stay
    content-addressed per backend — and returns
    ``{kernel: {arch: cpi}}``.  The baseline for delta reporting is the
    first entry of ``arches`` (default: the paper model,
    ``gpumech2014``, followed by the other registered backends).
    """
    from repro.arch import ARCH_NAMES
    from repro.config import GPUConfig
    from repro.pipeline import Pipeline
    from repro.workloads.generators import Scale
    from repro.workloads.suite import kernel_names

    config = config if config is not None else GPUConfig()
    scale = scale if scale is not None else Scale.tiny()
    names = kernels if kernels is not None else kernel_names()
    if arches is None:
        default = config.arch if config.arch in ARCH_NAMES else "gpumech2014"
        arches = [default] + [a for a in ARCH_NAMES if a != default]
    pipelines = {
        arch: Pipeline(config.with_(arch=arch), scale=scale)
        for arch in arches
    }
    results: Dict[str, Dict[str, float]] = {}
    for name in names:
        results[name] = {
            arch: pipelines[arch].predict(name).cpi for arch in arches
        }
    return results


def render_arch_comparison(results: Dict[str, Dict[str, float]]) -> str:
    """Per-kernel CPI delta table across architecture backends.

    ``results`` is the :func:`compare_architectures` mapping; the first
    arch column (insertion order) is the baseline the deltas are
    relative to.
    """
    from repro.harness.reporting import render_table

    if not results:
        return "arch comparison: no kernels"
    arches = list(next(iter(results.values())))
    base = arches[0]
    header = ["kernel"] + ["%s CPI" % arch for arch in arches]
    header += ["%s vs %s" % (arch, base) for arch in arches[1:]]
    rows = []
    for kernel, cpis in results.items():
        row = [kernel] + ["%.3f" % cpis[arch] for arch in arches]
        for arch in arches[1:]:
            delta = (
                100.0 * (cpis[arch] - cpis[base]) / cpis[base]
                if cpis[base]
                else 0.0
            )
            row.append("%+.1f%%" % delta)
        rows.append(tuple(row))
    return render_table(
        tuple(header),
        rows,
        title="architecture comparison (%d kernels, baseline %s)"
        % (len(rows), base),
    )
