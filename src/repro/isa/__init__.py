"""Mini SIMT instruction set and kernel-construction DSL.

This package replaces the CUDA/PTX kernels of the paper's evaluation: the
workload suite (:mod:`repro.workloads`) writes kernels against this ISA and
the functional emulator (:mod:`repro.trace`) executes them to produce the
per-warp instruction traces GPUMech consumes.
"""

from repro.isa.instructions import (
    CmpOp,
    Imm,
    Instruction,
    OpClass,
    Reg,
    Special,
)
from repro.isa.kernel import Kernel
from repro.isa.builder import KernelBuilder

__all__ = [
    "CmpOp",
    "Imm",
    "Instruction",
    "Kernel",
    "KernelBuilder",
    "OpClass",
    "Reg",
    "Special",
]
