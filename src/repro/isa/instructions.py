"""Instruction definitions for the mini SIMT ISA.

The ISA is deliberately small but covers everything GPUMech's input traces
need to exhibit: integer and floating-point ALU operations with distinct
latencies, special-function-unit (SFU) operations, global loads and stores
whose per-lane addresses can diverge arbitrarily, predicate-setting
compares, and branches with *explicit reconvergence PCs* (the immediate
post-dominator, supplied by the kernel builder) so the emulator's SIMT
stack can model control divergence exactly.

Operands
--------
* :class:`Reg` — a per-thread general-purpose register.
* :class:`Imm` — an immediate constant (broadcast to all lanes).
* :class:`Special` — read-only per-thread values: the global thread id,
  lane id, warp id, block id and block size.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple, Union


class OpClass(enum.Enum):
    """Functional class of an instruction; determines its latency class."""

    IALU = "ialu"
    FALU = "falu"
    SFU = "sfu"
    LOAD = "load"
    STORE = "store"
    SMEM_LOAD = "smem_load"  # software-managed (shared) memory
    SMEM_STORE = "smem_store"
    BARRIER = "barrier"  # block-level __syncthreads()
    BRANCH = "branch"
    EXIT = "exit"

    @property
    def latency_class(self) -> str:
        """Key into ``GPUConfig.op_latencies`` for compute instructions.

        Loads/stores are priced by the memory hierarchy instead; branches
        and exits issue in one cycle and are priced as integer ALU ops.
        """
        if self in (OpClass.IALU, OpClass.BRANCH, OpClass.EXIT,
                    OpClass.BARRIER):
            return "ialu"
        if self is OpClass.FALU:
            return "falu"
        if self is OpClass.SFU:
            return "sfu"
        raise ValueError("%s has no fixed latency class" % self)

    @property
    def is_memory(self) -> bool:
        """Whether this class accesses the global-memory hierarchy."""
        return self in (OpClass.LOAD, OpClass.STORE)

    @property
    def is_shared_memory(self) -> bool:
        """Whether this class accesses the software-managed scratchpad."""
        return self in (OpClass.SMEM_LOAD, OpClass.SMEM_STORE)


class CmpOp(enum.Enum):
    """Comparison operator for ``setp`` instructions."""

    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"
    EQ = "eq"
    NE = "ne"


@dataclass(frozen=True)
class Reg:
    """A general-purpose per-thread register, identified by index."""

    index: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("register index must be non-negative")

    def __repr__(self) -> str:
        return "r%d" % self.index


@dataclass(frozen=True)
class Imm:
    """An immediate operand, broadcast to every lane."""

    value: float

    def __repr__(self) -> str:
        return repr(self.value)


class Special(enum.Enum):
    """Read-only per-thread special values."""

    TID = "tid"  # global thread id
    LANE = "lane"  # lane index within the warp [0, warp_size)
    WARP = "warp"  # global warp id
    CTAID = "ctaid"  # thread-block id
    NTID = "ntid"  # threads per block

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "%%%s" % self.value


Operand = Union[Reg, Imm, Special]

#: Opcodes and the operand counts / classes they imply.
_OPCODES = {
    # opcode: (OpClass, n_srcs, has_dst)
    "mov": (OpClass.IALU, 1, True),
    "iadd": (OpClass.IALU, 2, True),
    "isub": (OpClass.IALU, 2, True),
    "imul": (OpClass.IALU, 2, True),
    "idiv": (OpClass.IALU, 2, True),
    "imod": (OpClass.IALU, 2, True),
    "iand": (OpClass.IALU, 2, True),
    "ior": (OpClass.IALU, 2, True),
    "ishl": (OpClass.IALU, 2, True),
    "ishr": (OpClass.IALU, 2, True),
    "imin": (OpClass.IALU, 2, True),
    "imax": (OpClass.IALU, 2, True),
    "setp": (OpClass.IALU, 2, True),  # + cmp_op attribute
    "fadd": (OpClass.FALU, 2, True),
    "fsub": (OpClass.FALU, 2, True),
    "fmul": (OpClass.FALU, 2, True),
    "ffma": (OpClass.FALU, 3, True),
    "fmin": (OpClass.FALU, 2, True),
    "fmax": (OpClass.FALU, 2, True),
    "fneg": (OpClass.FALU, 1, True),
    "fabs": (OpClass.FALU, 1, True),
    "frcp": (OpClass.SFU, 1, True),
    "fsqrt": (OpClass.SFU, 1, True),
    "frsqrt": (OpClass.SFU, 1, True),
    "fexp": (OpClass.SFU, 1, True),
    "flog": (OpClass.SFU, 1, True),
    "fsin": (OpClass.SFU, 1, True),
    "ld": (OpClass.LOAD, 1, True),  # src: address register; + offset
    "st": (OpClass.STORE, 2, False),  # srcs: address, value; + offset
    "lds": (OpClass.SMEM_LOAD, 1, True),  # shared-memory load
    "sts": (OpClass.SMEM_STORE, 2, False),  # shared-memory store
    "bra": (OpClass.BRANCH, 0, False),  # + target/reconv/pred attributes
    "bar": (OpClass.BARRIER, 0, False),  # block-wide barrier
    "exit": (OpClass.EXIT, 0, False),
}


@dataclass(frozen=True)
class Instruction:
    """One static instruction of the mini ISA.

    Attributes
    ----------
    opcode:
        One of the keys of the internal opcode table (e.g. ``"ffma"``).
    dst:
        Destination register, or ``None`` for stores/branches/exit.
    srcs:
        Source operands.  For ``ld`` the single source is the address
        register; for ``st`` the sources are (address, value).
    offset:
        Byte offset added to the address for memory operations.
    cmp_op:
        Comparison operator, ``setp`` only.
    target:
        Branch target PC (resolved by the builder), ``bra`` only.
    reconv:
        Reconvergence PC — the immediate post-dominator of the branch,
        where diverged lane groups re-join.  ``bra`` only.
    pred:
        Predicate register guarding a conditional branch; ``None`` makes
        the branch unconditional.
    """

    opcode: str
    dst: Optional[Reg] = None
    srcs: Tuple[Operand, ...] = field(default_factory=tuple)
    offset: int = 0
    cmp_op: Optional[CmpOp] = None
    target: Optional[int] = None
    reconv: Optional[int] = None
    pred: Optional[Reg] = None

    def __post_init__(self) -> None:
        if self.opcode not in _OPCODES:
            raise ValueError("unknown opcode %r" % (self.opcode,))
        opclass, n_srcs, has_dst = _OPCODES[self.opcode]
        if len(self.srcs) != n_srcs:
            raise ValueError(
                "%s takes %d source operand(s), got %d"
                % (self.opcode, n_srcs, len(self.srcs))
            )
        if has_dst and self.dst is None:
            raise ValueError("%s requires a destination register" % self.opcode)
        if not has_dst and self.dst is not None:
            raise ValueError("%s cannot have a destination register" % self.opcode)
        if self.opcode == "setp" and self.cmp_op is None:
            raise ValueError("setp requires cmp_op")
        if self.opcode != "setp" and self.cmp_op is not None:
            raise ValueError("cmp_op is only valid for setp")
        if self.opcode in ("ld", "lds") and not isinstance(
            self.srcs[0], (Reg, Imm)
        ):
            raise ValueError("load address must be a register or immediate")
        if self.opcode in ("st", "sts") and not isinstance(
            self.srcs[0], (Reg, Imm)
        ):
            raise ValueError("store address must be a register or immediate")
        if self.opcode == "bra":
            if self.target is None:
                raise ValueError("bra requires a target")
        elif self.target is not None or self.reconv is not None or self.pred is not None:
            raise ValueError("target/reconv/pred are only valid for bra")

    @property
    def opclass(self) -> OpClass:
        """Functional class of this instruction."""
        return _OPCODES[self.opcode][0]

    @property
    def source_registers(self) -> Tuple[Reg, ...]:
        """The register sources (the operands that create dependencies)."""
        regs = [s for s in self.srcs if isinstance(s, Reg)]
        if self.pred is not None:
            regs.append(self.pred)
        return tuple(regs)

    def __repr__(self) -> str:
        parts = [self.opcode]
        if self.cmp_op is not None:
            parts[0] = "%s.%s" % (self.opcode, self.cmp_op.value)
        ops = []
        if self.dst is not None:
            ops.append(repr(self.dst))
        ops.extend(repr(s) for s in self.srcs)
        if self.opcode in ("ld", "st") and self.offset:
            ops.append("+%d" % self.offset)
        if self.opcode == "bra":
            ops.append("->%s" % self.target)
            if self.pred is not None:
                ops.append("if %r" % self.pred)
            if self.reconv is not None:
                ops.append("reconv@%d" % self.reconv)
        return "%s %s" % (parts[0], ", ".join(ops))


def opcode_class(opcode: str) -> OpClass:
    """Return the :class:`OpClass` of an opcode string."""
    try:
        return _OPCODES[opcode][0]
    except KeyError:
        raise ValueError("unknown opcode %r" % (opcode,)) from None
