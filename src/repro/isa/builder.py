"""Assembler-like DSL for writing kernels in the mini SIMT ISA.

The builder hands out fresh registers, wraps Python numbers into
immediates, resolves symbolic branch labels, and auto-computes
reconvergence PCs for the two structured control-flow patterns the
workload suite uses:

* ``with b.if_(pred): ...`` — a forward branch-around whose
  reconvergence point is the end of the guarded block;
* ``b.loop_begin()`` / ``b.loop_end(pred)`` — a do-while loop whose
  backward branch reconverges at the fall-through instruction.

Example
-------
>>> b = KernelBuilder("saxpy")
>>> tid = b.tid()
>>> addr = b.iadd(b.imul(tid, 4), 0x1000)
>>> x = b.ld(addr)
>>> y = b.fmul(x, 2.5)
>>> b.st(addr, y)
>>> b.exit()
>>> kernel = b.build(n_threads=128, block_size=64)
>>> kernel.n_warps
4
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import Dict, List, Optional, Union

from repro.isa.instructions import (
    CmpOp,
    Imm,
    Instruction,
    Operand,
    Reg,
    Special,
)
from repro.isa.kernel import Kernel

Number = Union[int, float]
OperandLike = Union[Operand, Number]


class BuilderError(ValueError):
    """Raised on misuse of :class:`KernelBuilder`."""


def _wrap(operand: OperandLike) -> Operand:
    """Coerce plain numbers into immediates."""
    if isinstance(operand, (int, float)):
        return Imm(operand)
    if isinstance(operand, (Reg, Imm, Special)):
        return operand
    raise BuilderError("invalid operand %r" % (operand,))


class KernelBuilder:
    """Incrementally constructs a :class:`~repro.isa.kernel.Kernel`."""

    def __init__(self, name: str, suite: str = "synthetic"):
        self.name = name
        self.suite = suite
        self._insts: List[Instruction] = []
        self._next_reg = 0
        self._labels: Dict[str, int] = {}
        self._auto_label = 0
        # (instruction index, target label, reconv label or None for auto)
        self._fixups: List[tuple] = []
        self._built = False

    # Registers and labels ---------------------------------------------------

    def alloc(self) -> Reg:
        """Allocate a fresh register."""
        reg = Reg(self._next_reg)
        self._next_reg += 1
        return reg

    @property
    def pc(self) -> int:
        """PC of the next instruction to be emitted."""
        return len(self._insts)

    def label(self, name: Optional[str] = None) -> str:
        """Bind a label to the current PC and return its name."""
        if name is None:
            name = "_L%d" % self._auto_label
            self._auto_label += 1
        if name in self._labels:
            raise BuilderError("label %r already defined" % name)
        self._labels[name] = self.pc
        return name

    # Emission helpers --------------------------------------------------------

    def _emit(self, inst: Instruction) -> None:
        if self._built:
            raise BuilderError("builder already finalized")
        self._insts.append(inst)

    def _alu(self, opcode: str, *srcs: OperandLike, dst: Optional[Reg] = None) -> Reg:
        dst = dst if dst is not None else self.alloc()
        self._emit(Instruction(opcode, dst=dst, srcs=tuple(_wrap(s) for s in srcs)))
        return dst

    # Special value accessors --------------------------------------------------

    def tid(self) -> Reg:
        """Global thread id."""
        return self._alu("mov", Special.TID)

    def lane(self) -> Reg:
        """Lane index within the warp."""
        return self._alu("mov", Special.LANE)

    def warpid(self) -> Reg:
        """Global warp id."""
        return self._alu("mov", Special.WARP)

    def ctaid(self) -> Reg:
        """Thread-block id."""
        return self._alu("mov", Special.CTAID)

    def ntid(self) -> Reg:
        """Threads per block."""
        return self._alu("mov", Special.NTID)

    # ALU ----------------------------------------------------------------------

    def mov(self, src: OperandLike, dst: Optional[Reg] = None) -> Reg:
        """Copy ``src`` into a register."""
        return self._alu("mov", src, dst=dst)

    def iadd(self, a: OperandLike, b: OperandLike, dst: Optional[Reg] = None) -> Reg:
        """Integer addition."""
        return self._alu("iadd", a, b, dst=dst)

    def isub(self, a: OperandLike, b: OperandLike, dst: Optional[Reg] = None) -> Reg:
        """Integer subtraction."""
        return self._alu("isub", a, b, dst=dst)

    def imul(self, a: OperandLike, b: OperandLike, dst: Optional[Reg] = None) -> Reg:
        """Integer multiplication."""
        return self._alu("imul", a, b, dst=dst)

    def idiv(self, a: OperandLike, b: OperandLike, dst: Optional[Reg] = None) -> Reg:
        """Integer floor division (0 on divide-by-zero)."""
        return self._alu("idiv", a, b, dst=dst)

    def imod(self, a: OperandLike, b: OperandLike, dst: Optional[Reg] = None) -> Reg:
        """Integer modulo (0 on divide-by-zero)."""
        return self._alu("imod", a, b, dst=dst)

    def iand(self, a: OperandLike, b: OperandLike, dst: Optional[Reg] = None) -> Reg:
        """Bitwise AND."""
        return self._alu("iand", a, b, dst=dst)

    def ior(self, a: OperandLike, b: OperandLike, dst: Optional[Reg] = None) -> Reg:
        """Bitwise OR."""
        return self._alu("ior", a, b, dst=dst)

    def ishl(self, a: OperandLike, b: OperandLike, dst: Optional[Reg] = None) -> Reg:
        """Logical shift left."""
        return self._alu("ishl", a, b, dst=dst)

    def ishr(self, a: OperandLike, b: OperandLike, dst: Optional[Reg] = None) -> Reg:
        """Logical shift right."""
        return self._alu("ishr", a, b, dst=dst)

    def imin(self, a: OperandLike, b: OperandLike, dst: Optional[Reg] = None) -> Reg:
        """Integer minimum."""
        return self._alu("imin", a, b, dst=dst)

    def imax(self, a: OperandLike, b: OperandLike, dst: Optional[Reg] = None) -> Reg:
        """Integer maximum."""
        return self._alu("imax", a, b, dst=dst)

    def fadd(self, a: OperandLike, b: OperandLike, dst: Optional[Reg] = None) -> Reg:
        """Floating-point addition."""
        return self._alu("fadd", a, b, dst=dst)

    def fsub(self, a: OperandLike, b: OperandLike, dst: Optional[Reg] = None) -> Reg:
        """Floating-point subtraction."""
        return self._alu("fsub", a, b, dst=dst)

    def fmul(self, a: OperandLike, b: OperandLike, dst: Optional[Reg] = None) -> Reg:
        """Floating-point multiplication."""
        return self._alu("fmul", a, b, dst=dst)

    def ffma(
        self,
        a: OperandLike,
        b: OperandLike,
        c: OperandLike,
        dst: Optional[Reg] = None,
    ) -> Reg:
        """Fused multiply-add: ``a * b + c``."""
        return self._alu("ffma", a, b, c, dst=dst)

    def fmin(self, a: OperandLike, b: OperandLike, dst: Optional[Reg] = None) -> Reg:
        """Floating-point minimum."""
        return self._alu("fmin", a, b, dst=dst)

    def fmax(self, a: OperandLike, b: OperandLike, dst: Optional[Reg] = None) -> Reg:
        """Floating-point maximum."""
        return self._alu("fmax", a, b, dst=dst)

    def fneg(self, a: OperandLike, dst: Optional[Reg] = None) -> Reg:
        """Floating-point negation."""
        return self._alu("fneg", a, dst=dst)

    def fabs(self, a: OperandLike, dst: Optional[Reg] = None) -> Reg:
        """Floating-point absolute value."""
        return self._alu("fabs", a, dst=dst)

    # SFU ------------------------------------------------------------------------

    def frcp(self, a: OperandLike, dst: Optional[Reg] = None) -> Reg:
        """Reciprocal (SFU)."""
        return self._alu("frcp", a, dst=dst)

    def fsqrt(self, a: OperandLike, dst: Optional[Reg] = None) -> Reg:
        """Square root (SFU)."""
        return self._alu("fsqrt", a, dst=dst)

    def frsqrt(self, a: OperandLike, dst: Optional[Reg] = None) -> Reg:
        """Reciprocal square root (SFU)."""
        return self._alu("frsqrt", a, dst=dst)

    def fexp(self, a: OperandLike, dst: Optional[Reg] = None) -> Reg:
        """Exponential (SFU)."""
        return self._alu("fexp", a, dst=dst)

    def flog(self, a: OperandLike, dst: Optional[Reg] = None) -> Reg:
        """Natural logarithm (SFU)."""
        return self._alu("flog", a, dst=dst)

    def fsin(self, a: OperandLike, dst: Optional[Reg] = None) -> Reg:
        """Sine (SFU)."""
        return self._alu("fsin", a, dst=dst)

    # Predicates -------------------------------------------------------------------

    def setp(
        self,
        cmp_op: CmpOp,
        a: OperandLike,
        b: OperandLike,
        dst: Optional[Reg] = None,
    ) -> Reg:
        """Set a predicate register from a comparison."""
        dst = dst if dst is not None else self.alloc()
        self._emit(
            Instruction(
                "setp", dst=dst, srcs=(_wrap(a), _wrap(b)), cmp_op=cmp_op
            )
        )
        return dst

    def setp_lt(self, a, b, dst=None):
        """Predicate: ``a < b``."""
        return self.setp(CmpOp.LT, a, b, dst=dst)

    def setp_le(self, a, b, dst=None):
        """Predicate: ``a <= b``."""
        return self.setp(CmpOp.LE, a, b, dst=dst)

    def setp_gt(self, a, b, dst=None):
        """Predicate: ``a > b``."""
        return self.setp(CmpOp.GT, a, b, dst=dst)

    def setp_ge(self, a, b, dst=None):
        """Predicate: ``a >= b``."""
        return self.setp(CmpOp.GE, a, b, dst=dst)

    def setp_eq(self, a, b, dst=None):
        """Predicate: ``a == b``."""
        return self.setp(CmpOp.EQ, a, b, dst=dst)

    def setp_ne(self, a, b, dst=None):
        """Predicate: ``a != b``."""
        return self.setp(CmpOp.NE, a, b, dst=dst)

    def not_(self, pred: Reg) -> Reg:
        """Logical negation of a predicate (``setp.eq tmp, pred, 0``)."""
        return self.setp(CmpOp.EQ, pred, 0)

    # Memory -------------------------------------------------------------------------

    def ld(self, addr: OperandLike, offset: int = 0, dst: Optional[Reg] = None) -> Reg:
        """Global load from ``addr + offset`` (byte address)."""
        dst = dst if dst is not None else self.alloc()
        self._emit(Instruction("ld", dst=dst, srcs=(_wrap(addr),), offset=offset))
        return dst

    def st(self, addr: OperandLike, value: OperandLike, offset: int = 0) -> None:
        """Global store of ``value`` to ``addr + offset`` (byte address)."""
        self._emit(
            Instruction("st", srcs=(_wrap(addr), _wrap(value)), offset=offset)
        )

    def lds(
        self, addr: OperandLike, offset: int = 0, dst: Optional[Reg] = None
    ) -> Reg:
        """Shared-memory load from ``addr + offset`` (scratchpad byte
        address, private to the thread block)."""
        dst = dst if dst is not None else self.alloc()
        self._emit(Instruction("lds", dst=dst, srcs=(_wrap(addr),),
                               offset=offset))
        return dst

    def sts(self, addr: OperandLike, value: OperandLike, offset: int = 0) -> None:
        """Shared-memory store of ``value`` to ``addr + offset``."""
        self._emit(
            Instruction("sts", srcs=(_wrap(addr), _wrap(value)), offset=offset)
        )

    # Control flow --------------------------------------------------------------------

    def bra(
        self,
        target: str,
        pred: Optional[Reg] = None,
        reconv: Optional[str] = None,
    ) -> None:
        """Branch to label ``target``; conditional if ``pred`` is given.

        If ``reconv`` is omitted for a conditional branch, the
        reconvergence PC defaults to the fall-through instruction for
        backward branches (the do-while pattern) and to the branch target
        for forward branches (the branch-around pattern).
        """
        index = self.pc
        self._emit(
            Instruction("bra", target=0, reconv=0 if pred is not None else None,
                        pred=pred)
        )
        self._fixups.append((index, target, reconv))

    @contextlib.contextmanager
    def if_(self, pred: Reg):
        """Execute the block only for lanes where ``pred`` is true."""
        negated = self.not_(pred)
        end_label = "_if_end%d" % self.pc
        self.bra(end_label, pred=negated)
        yield
        self.label(end_label)

    def loop_begin(self) -> str:
        """Open a do-while loop; returns the head label for loop_end."""
        return self.label()

    def loop_end(self, head: str, pred: Reg) -> None:
        """Close a do-while loop: branch back to ``head`` while ``pred``."""
        self.bra(head, pred=pred)

    def bar(self) -> None:
        """Block-wide barrier (``__syncthreads()``); must be reached by
        every warp of the block outside divergent control flow."""
        self._emit(Instruction("bar"))

    def exit(self) -> None:
        """Terminate the warp (must be the last instruction)."""
        self._emit(Instruction("exit"))

    # Finalisation ---------------------------------------------------------------------

    def build(
        self, n_threads: int, block_size: int, suite: Optional[str] = None
    ) -> Kernel:
        """Resolve labels and produce the validated :class:`Kernel`."""
        program = list(self._insts)
        for index, target_label, reconv_label in self._fixups:
            if target_label not in self._labels:
                raise BuilderError("undefined label %r" % target_label)
            target = self._labels[target_label]
            inst = program[index]
            reconv = None
            if inst.pred is not None:
                if reconv_label is not None:
                    if reconv_label not in self._labels:
                        raise BuilderError("undefined label %r" % reconv_label)
                    reconv = self._labels[reconv_label]
                elif target <= index:  # backward: do-while reconverges after
                    reconv = index + 1
                else:  # forward: branch-around reconverges at the target
                    reconv = target
            program[index] = dataclasses.replace(
                inst, target=target, reconv=reconv
            )
        self._built = True
        return Kernel(
            name=self.name,
            program=tuple(program),
            n_threads=n_threads,
            block_size=block_size,
            suite=suite if suite is not None else self.suite,
        )
