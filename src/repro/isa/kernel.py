"""Kernel container: a program plus launch geometry.

A :class:`Kernel` is what the workload suite hands to the functional
emulator.  It owns the static instruction list and the launch geometry
(total threads, threads per block), and validates structural properties
that the emulator relies on: resolved branch targets, reconvergence PCs
that are the immediate post-dominators of their branches (computed by
``repro.staticcheck.cfg``), and a terminating ``exit``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.isa.instructions import Instruction, OpClass


class KernelValidationError(ValueError):
    """Raised when a kernel program is structurally invalid."""


@dataclass(frozen=True)
class Kernel:
    """An executable kernel.

    Attributes
    ----------
    name:
        Human-readable kernel name (used in reports and experiment tables).
    program:
        The static instruction sequence.
    n_threads:
        Total threads launched (the grid).
    block_size:
        Threads per thread block; blocks are the unit of core assignment.
    suite:
        Optional provenance label (e.g. ``"rodinia"``), cosmetic.
    """

    name: str
    program: Tuple[Instruction, ...]
    n_threads: int
    block_size: int
    suite: str = "synthetic"

    def __post_init__(self) -> None:
        if not self.program:
            raise KernelValidationError("empty program")
        if self.n_threads <= 0:
            raise KernelValidationError("n_threads must be positive")
        if self.block_size <= 0:
            raise KernelValidationError("block_size must be positive")
        if self.n_threads % self.block_size != 0:
            raise KernelValidationError(
                "n_threads (%d) must be a multiple of block_size (%d)"
                % (self.n_threads, self.block_size)
            )
        n = len(self.program)
        if self.program[-1].opclass is not OpClass.EXIT:
            raise KernelValidationError("program must end with exit")
        for pc, inst in enumerate(self.program):
            if inst.opclass is OpClass.BRANCH:
                if not (0 <= inst.target < n):
                    raise KernelValidationError(
                        "pc %d: branch target %s out of range" % (pc, inst.target)
                    )
                if inst.pred is not None:
                    if inst.reconv is None:
                        raise KernelValidationError(
                            "pc %d: conditional branch requires a reconvergence pc"
                            % pc
                        )
                    if not (0 <= inst.reconv < n):
                        raise KernelValidationError(
                            "pc %d: reconvergence pc %s out of range"
                            % (pc, inst.reconv)
                        )
        # Reconvergence PCs must be the *immediate post-dominator* of
        # their branch — the exact point where the SIMT stack pops
        # diverged lane groups.  Delegated to the CFG-based computation
        # of the static verifier (deferred import: staticcheck imports
        # this module for its entry points).
        from repro.staticcheck.cfg import reconvergence_errors

        errors = reconvergence_errors(self.program)
        if errors:
            pc, message = errors[0]
            raise KernelValidationError("pc %d: %s" % (pc, message))

    @property
    def n_warps(self) -> int:
        """Total warps in the launch (assuming warp size 32)."""
        return (self.n_threads + 31) // 32

    @property
    def warps_per_block(self) -> int:
        """Warps per thread block (warp size 32)."""
        return (self.block_size + 31) // 32

    @property
    def n_blocks(self) -> int:
        """Thread blocks in the launch."""
        return self.n_threads // self.block_size

    @property
    def max_register(self) -> int:
        """Highest register index referenced by the program."""
        hi = -1
        for inst in self.program:
            if inst.dst is not None:
                hi = max(hi, inst.dst.index)
            for reg in inst.source_registers:
                hi = max(hi, reg.index)
        return hi

    def describe(self) -> str:
        """A short multi-line summary used by examples and reports."""
        n_mem = sum(1 for i in self.program if i.opclass.is_memory)
        n_br = sum(1 for i in self.program if i.opclass is OpClass.BRANCH)
        return (
            "kernel %s [%s]: %d static insts (%d memory, %d branch), "
            "%d threads in %d blocks of %d"
            % (
                self.name,
                self.suite,
                len(self.program),
                n_mem,
                n_br,
                self.n_threads,
                self.n_blocks,
                self.block_size,
            )
        )
