"""Command-line interface: ``python -m repro <command>``.

Subcommands
-----------
``list``
    List the workload suite (name, origin suite, tags, description).
``predict``
    Run GPUMech on a kernel and print the prediction + CPI stack.
``simulate``
    Run the cycle-level oracle on a kernel.
``validate``
    Run both and report the relative error of every Table II model.
``experiment``
    Regenerate one of the paper's figures (figure4 ... figure16, speedup).
``characterize``
    Behavioural metrics of a kernel ('all' for the whole suite).
``lint``
    Statically verify kernels (CFG + dataflow checks); nonzero exit on
    any error-severity diagnostic.  ``--cost`` appends each kernel's
    static cost model to the report.
``analyze``
    Static cost analysis (trip counts, coalescing classes, occupancy,
    CPI bounds) plus the xcheck sanitizer comparing the dynamic trace
    against the static facts; nonzero exit on any xcheck mismatch.
``concheck``
    Concurrency- and fork-safety analysis of the codebase itself
    (thread-escape, lock discipline, pool-boundary pickling, mutable
    globals); ``--runtime`` adds the lock-sanitizer sweep.  Nonzero
    exit unless every finding is fixed or allowlisted.
``profile``
    Evaluate kernels with tracing, metrics and oracle timeline sampling
    on; writes a Chrome-trace/Perfetto file and prints stage timings.
    ``--sample`` adds the stdlib sampling profiler (collapsed-stack
    flamegraph output, samples attributed to pipeline-stage spans).
``serve-metrics``
    Run a sweep with a live OpenMetrics HTTP exporter (``/metrics``,
    ``/healthz``, ``/spans``) so external scrapers observe it mid-run.
``watchdog``
    Accuracy-regression gate: diff per-kernel prediction error between
    a baseline ledger and a current one; nonzero exit on regression.
``dash``
    Render the self-contained HTML accuracy dashboard from ledger
    history (plus checked-in ``BENCH_*.json`` files).

Observability flags (global, also accepted after the subcommand):
``-v/--verbose`` raises diagnostic logging (stderr), ``-q/--quiet``
silences human-readable reports, ``--trace-out FILE`` records a span
trace of the whole invocation, ``--metrics-out FILE`` dumps the metrics
registry as JSON, ``--ledger FILE`` appends one JSONL prediction record
per evaluation.  Human reports go through the logging layer
(:mod:`repro.harness.reporting`); machine-readable output (``lint
--format json``) always prints directly to stdout.
"""

from __future__ import annotations

import argparse
import logging
import os
import sys
from typing import List, Optional

from repro.config import KNOWN_ARCHES, GPUConfig
from repro.harness import experiments as ex
from repro.harness.reporting import (
    configure_logging,
    emit,
    render_stage_table,
    render_table,
)
from repro.harness.runner import MODEL_LABELS, MODELS, Runner, nanmean
from repro.harness.speedup import run_speedup
from repro.obs import MetricsRegistry, Tracer, set_tracer
from repro.obs.ledger import DEFAULT_MODEL as LEDGER_DEFAULT_MODEL
from repro.obs.sampler import DEFAULT_INTERVAL as SAMPLE_INTERVAL
from repro.trace.emulator import emulate
from repro.workloads.generators import Scale
from repro.workloads.suite import SUITE, get_kernel, kernel_names

_LOG = logging.getLogger(__name__)

_SCALES = {
    "tiny": Scale.tiny,
    "small": Scale.small,
    "large": Scale.large,
}

_EXPERIMENTS = {
    "figure4": lambda runner: ex.run_figure4(runner),
    "figure7": lambda runner: ex.run_figure7(runner),
    "figure11": lambda runner: ex.run_figure11(runner),
    "figure12": lambda runner: ex.run_figure12(runner),
    "figure13": lambda runner: ex.run_figure13(runner),
    "figure14": lambda runner: ex.run_figure14(runner),
    "figure15": lambda runner: ex.run_figure15(runner),
    "figure16": lambda runner: ex.run_figure16(runner),
    "speedup": lambda runner: run_speedup(runner),
}

#: Default oracle sampling period (cycles) for ``repro profile``.
DEFAULT_TIMELINE_INTERVAL = 500.0


def _add_obs_args(parser: argparse.ArgumentParser,
                  top_level: bool = False) -> None:
    """Observability flags, shared by the top-level parser and every
    subparser (``SUPPRESS`` defaults keep the subparser copies from
    clobbering values already parsed at the top level)."""
    default = (lambda v: v) if top_level else (lambda v: argparse.SUPPRESS)
    parser.add_argument("-v", "--verbose", action="count",
                        default=default(0),
                        help="diagnostic logging on stderr (-vv for debug)")
    parser.add_argument("-q", "--quiet", action="store_true",
                        default=default(False),
                        help="suppress human-readable report output")
    parser.add_argument("--trace-out", metavar="FILE",
                        default=default(None),
                        help="write a Chrome-trace/Perfetto span trace "
                        "of this invocation (open in ui.perfetto.dev)")
    parser.add_argument("--metrics-out", metavar="FILE",
                        default=default(None),
                        help="write the metrics registry as JSON")
    parser.add_argument("--ledger", metavar="FILE",
                        default=default(None),
                        help="append one JSONL prediction record per "
                        "evaluation (provenance + accuracy; see "
                        "'repro dash' and 'repro watchdog')")


def _add_machine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cores", type=int, default=2,
                        help="number of cores (paper: 16)")
    parser.add_argument("--warps", type=int, default=None,
                        help="resident warps per core (default: 32)")
    parser.add_argument("--mshrs", type=int, default=32,
                        help="MSHR entries per core")
    parser.add_argument("--bandwidth", type=float, default=192.0,
                        help="DRAM bandwidth in GB/s")
    parser.add_argument("--scheduler", choices=("rr", "gto"), default="rr")
    parser.add_argument("--arch", choices=KNOWN_ARCHES,
                        default="gpumech2014",
                        help="architecture backend (see docs/architectures.md)")
    parser.add_argument("--schedulers", type=int, default=4,
                        help="sub-core schedulers per core "
                        "(arch=subcore only)")
    parser.add_argument("--scale", choices=sorted(_SCALES), default="small",
                        help="workload scale preset")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for sweep points and "
                        "per-warp profiling (default: serial)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persistent content-addressed artifact store; "
                        "reruns skip every already-computed stage")
    parser.add_argument("--lint", action="store_true",
                        help="statically verify each kernel before tracing "
                        "(abort on error-severity diagnostics)")
    _add_obs_args(parser)


def _machine(args) -> GPUConfig:
    return GPUConfig(
        n_cores=args.cores,
        n_mshrs=args.mshrs,
        dram_bandwidth_gbps=args.bandwidth,
        scheduler=args.scheduler,
        arch=args.arch,
        n_schedulers=args.schedulers,
    )


def _runner(args) -> Runner:
    """A pipeline-backed runner honouring ``--jobs``/``--cache-dir``
    plus the session tracer/metrics installed by :func:`main`."""
    return Runner(
        _machine(args),
        _SCALES[args.scale](),
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        lint=args.lint,
        tracer=getattr(args, "obs_tracer", None),
        metrics=getattr(args, "obs_metrics", None),
        timeline_interval=getattr(args, "timeline_interval", None),
        ledger=getattr(args, "obs_ledger", None),
    )


def _cmd_list(args) -> int:
    rows = []
    for name in kernel_names():
        spec = SUITE[name]
        rows.append(
            (name, spec.suite, ",".join(sorted(spec.tags)) or "-",
             spec.description)
        )
    emit(render_table(("kernel", "suite", "tags", "description"), rows,
                      title="workload suite (%d kernels)" % len(rows)))
    return 0


def _cmd_predict(args) -> int:
    runner = _runner(args)
    kernel, _ = get_kernel(args.kernel, _SCALES[args.scale]())
    emit(kernel.describe())
    model, inputs = runner.prepare(
        args.kernel, selection_strategy=args.strategy
    )
    prediction = model.predict(inputs, warps_per_core=args.warps)
    emit(prediction.summary())
    emit(prediction.cpi_stack.render())
    return 0


def _cmd_simulate(args) -> int:
    runner = _runner(args)
    stats = runner.simulate(args.kernel, warps_per_core=args.warps)
    emit(stats.summary())
    return 0


def _cmd_validate(args) -> int:
    runner = _runner(args)
    result = runner.evaluate(args.kernel, warps_per_core=args.warps)
    rows = [
        (MODEL_LABELS[m], "%.3f" % result.model_cpis[m],
         "%.1f%%" % (100 * result.error(m)))
        for m in MODELS
    ]
    rows.append(("oracle", "%.3f" % result.oracle_cpi, "-"))
    emit(render_table(("model", "CPI", "error"), rows,
                      title="%s [%s, %d warps/core]"
                      % (result.kernel, result.policy, result.n_warps)))
    return 0


def _cmd_experiment(args) -> int:
    result = _EXPERIMENTS[args.name](_runner(args))
    emit(result.text)
    return 0


def _cmd_lint(args) -> int:
    import json

    from repro.staticcheck import (
        analyze_kernel,
        lint_kernel,
        render_reports,
        reports_to_json,
    )

    scale = _SCALES[args.scale]()
    if args.suite or args.kernel in (None, "all"):
        names = kernel_names()
    else:
        names = [args.kernel]
    reports = []
    costs = []
    for name in names:
        kernel, _ = get_kernel(name, scale)
        reports.append(lint_kernel(kernel))
        if args.cost:
            costs.append(analyze_kernel(kernel))
    if args.format == "json":
        # Machine-readable output bypasses the logging layer: it must
        # stay on stdout verbatim, regardless of -q/-v.
        if args.cost:
            payload = json.loads(reports_to_json(reports))
            for entry, cost in zip(payload["kernels"], costs):
                entry["cost"] = cost.to_dict()
            print(json.dumps(payload, indent=2))
        else:
            print(reports_to_json(reports))
    else:
        emit(render_reports(reports))
        for cost in costs:
            emit(cost.render_text())
    return 1 if any(r.has_errors for r in reports) else 0


def _cmd_analyze(args) -> int:
    import json

    from repro.pipeline import Pipeline

    scale = _SCALES[args.scale]()
    if args.suite or args.kernel in (None, "all"):
        names = kernel_names()
    else:
        names = [args.kernel]
    unknown = [n for n in names if n not in SUITE]
    if unknown:
        _LOG.error("unknown kernel(s): %s", ", ".join(unknown))
        return 2
    pipeline = Pipeline(
        GPUConfig(),
        scale=scale,
        cache_dir=args.cache_dir,
        tracer=getattr(args, "obs_tracer", None),
        metrics=getattr(args, "obs_metrics", None),
    )
    entries = []
    n_errors = 0
    for name in names:
        cost = pipeline.analyze(name)
        report = None
        if not args.static_only:
            report = pipeline.crosscheck(name)
            n_errors += len(report.errors)
        entries.append((name, cost, report))
    if args.format == "json":
        # Machine-readable output bypasses the logging layer (see lint).
        payload = {
            "kernels": [
                {
                    "kernel": name,
                    "cost": cost.to_dict(),
                    "xcheck": None if report is None else report.to_dict(),
                }
                for name, cost, report in entries
            ],
            "n_kernels": len(entries),
            "n_xcheck_errors": n_errors,
        }
        print(json.dumps(payload, indent=2))
    else:
        for name, cost, report in entries:
            emit(cost.render_text())
            if report is not None:
                emit("xcheck %s" % report.render_text())
        if args.static_only:
            emit("%d kernel(s) analyzed (static only)" % len(entries))
        else:
            emit("%d kernel(s): %d xcheck error(s)"
                 % (len(entries), n_errors))
    return 1 if n_errors else 0


def _cmd_depcheck(args) -> int:
    import json

    from repro.depcheck import analyze_stage_deps, check_runtime
    from repro.depcheck.runtime import runtime_sweep

    report = analyze_stage_deps()
    runtime_info = None
    if args.runtime:
        scale = _SCALES[args.scale]()
        observed, kernels = runtime_sweep(scale=scale)
        report.diagnostics.extend(
            check_runtime(observed, report, kernels=kernels)
        )
        runtime_info = {
            "kernels": len(kernels),
            "observed": {
                stage: sorted(reads) for stage, reads in observed.items()
            },
        }
    if args.format == "json":
        # Machine-readable output bypasses the logging layer (see lint).
        payload = report.to_dict()
        payload["runtime"] = runtime_info
        print(json.dumps(payload, indent=2))
    else:
        emit(report.render_text())
        if runtime_info is not None:
            emit(
                "runtime sanitizer: %d kernel(s) swept, %d stage(s) "
                "observed" % (runtime_info["kernels"],
                              len(runtime_info["observed"]))
            )
    return 1 if report.has_errors else 0


def _cmd_concheck(args) -> int:
    from repro.concheck import (
        Allowlist,
        ConDiagnostic,
        analyze_concurrency,
        runtime_sweep,
    )
    from repro.staticcheck.report import Severity

    report = analyze_concurrency()
    if args.runtime:
        scale = _SCALES[args.scale]()
        summary, findings, _kernels = runtime_sweep(
            scale=scale, jobs=args.jobs
        )
        report.runtime = summary
        for finding in findings:
            report.diagnostics.append(ConDiagnostic(
                check_id=finding["check_id"],
                severity=Severity.ERROR,
                subject=finding["subject"],
                message=finding["message"],
                where="runtime sweep",
            ))

    allowlist = None
    if args.allowlist and os.path.exists(args.allowlist):
        allowlist = Allowlist.load(args.allowlist)
        report.apply_allowlist(allowlist)

    if args.format == "json":
        # Machine-readable output bypasses the logging layer (see lint).
        print(report.to_json())
    else:
        emit(report.render_text(verbose=args.show_facts))
        if allowlist is not None:
            for entry in allowlist.unused():
                emit(
                    "note: stale allowlist entry %s:%d (%s %s) waived "
                    "nothing" % (allowlist.path, entry.lineno,
                                 entry.check_id, entry.pattern)
                )
    return 0 if report.clean else 1


def _cmd_characterize(args) -> int:
    from repro.analysis import (
        characterize,
        compare_architectures,
        render_arch_comparison,
        render_characterization,
        suite_report,
    )

    scale = _SCALES[args.scale]()
    if args.compare_arch:
        kernels = None if args.kernel == "all" else [args.kernel]
        results = compare_architectures(
            scale=scale, kernels=kernels, config=_machine(args)
        )
        emit(render_arch_comparison(results))
        return 0
    if args.kernel == "all":
        runner = _runner(args)
        emit(suite_report(scale=scale, config=runner.config,
                          pipeline=runner.pipeline))
        return 0
    kernel, memory = get_kernel(args.kernel, scale)
    trace = emulate(kernel, _machine(args), memory=memory)
    emit(render_characterization(characterize(trace, kernel=kernel)))
    return 0


def _cmd_profile(args) -> int:
    """Evaluate kernels with full observability on.

    Every pipeline stage is traced, worker metrics are merged back, and
    the oracle samples a per-core activity timeline that lands in the
    exported trace as Perfetto counter tracks.
    """
    names = args.kernels or list(kernel_names())
    unknown = [n for n in names if n not in SUITE]
    if unknown:
        _LOG.error("unknown kernel(s): %s", ", ".join(unknown))
        return 2
    runner = _runner(args)
    requests = [{"kernel": name, "warps_per_core": args.warps}
                for name in names]
    profiler = None
    if args.sample:
        from repro.obs.sampler import SamplingProfiler

        profiler = SamplingProfiler(
            interval=args.sample_interval,
            tracer=getattr(args, "obs_tracer", None),
        )
        profiler.start()
    try:
        results = runner.evaluate_many(requests)
    finally:
        if profiler is not None:
            profiler.stop()

    rows = []
    for result in results:
        rows.append(
            (result.kernel, result.policy, result.n_warps,
             "%.3f" % result.oracle_cpi,
             "%.3f" % result.model_cpis["mt_mshr_band"],
             "%.1f%%" % (100 * result.error("mt_mshr_band")))
        )
    emit(render_table(
        ("kernel", "policy", "warps", "oracle CPI", "GPUMech CPI", "error"),
        rows,
        title="profile (%d kernels, jobs=%d)" % (len(results), runner.jobs),
    ))
    stage_table = render_stage_table(runner.metrics)
    if stage_table:
        emit("")
        emit(stage_table)

    if profiler is not None:
        profiler.write_collapsed(args.sample_out)
        _LOG.info("wrote %d collapsed stacks to %s (flamegraph.pl / "
                  "speedscope input)", len(profiler.stacks()),
                  args.sample_out)
        by_span = profiler.by_span()
        total = sum(by_span.values()) or 1
        span_rows = [
            (span, "%d" % n, "%.1f%%" % (100.0 * n / total))
            for span, n in sorted(by_span.items(),
                                  key=lambda kv: -kv[1])
        ]
        emit("")
        emit(render_table(("span", "samples", "share"), span_rows,
                          title="sampling profile by pipeline stage "
                          "(%d samples)" % total))
        frame_rows = [
            (frame, "%d" % n)
            for frame, n in profiler.hot_frames(top=10)
        ]
        if frame_rows:
            emit("")
            emit(render_table(("hot frame (leaf)", "samples"), frame_rows,
                              title="hottest frames"))

    # Oracle timelines become counter tracks in the session trace file.
    extra = getattr(args, "obs_extra_events", None)
    if extra is not None:
        prefix_names = len(results) > 1
        for result in results:
            timeline = result.oracle.timeline
            if timeline is None:
                continue
            extra.extend(timeline.counter_events(
                pid=os.getpid(),
                track_prefix="%s " % result.kernel if prefix_names else "",
            ))
    return 0


def _cmd_serve_metrics(args) -> int:
    """Run a sweep with the OpenMetrics exporter live.

    The exporter serves the session registry over HTTP for the whole
    invocation, so an external scraper (Prometheus, ``curl``, the CI
    smoke job) observes stage counters *while* the sweep runs.  With
    ``--repeat`` the sweep re-runs; each repetition rotates the ledger
    run id so it lands as its own point on the dashboard trend line.
    """
    import time as _time

    from repro.obs.exporter import MetricsExporter

    names = args.kernels or list(kernel_names())
    unknown = [n for n in names if n not in SUITE]
    if unknown:
        _LOG.error("unknown kernel(s): %s", ", ".join(unknown))
        return 2
    runner = _runner(args)
    requests = [{"kernel": name, "warps_per_core": args.warps}
                for name in names]
    ledger = getattr(args, "obs_ledger", None)
    with MetricsExporter(args.obs_metrics, tracer=args.obs_tracer,
                         host=args.host, port=args.port) as exporter:
        emit("serving metrics at %s/metrics (healthz, spans)"
             % exporter.url)
        for repetition in range(args.repeat):
            if repetition and ledger is not None:
                ledger.rotate_run()
            results = runner.evaluate_many(requests)
            mean_err = nanmean(
                r.error("mt_mshr_band") for r in results
            )
            emit("sweep %d/%d: %d kernel(s), mean error %.1f%%"
                 % (repetition + 1, args.repeat, len(results),
                    100.0 * mean_err))
        if args.linger > 0:
            emit("lingering %.1fs for scrapers (ctrl-C to stop)"
                 % args.linger)
            try:
                _time.sleep(args.linger)
            except KeyboardInterrupt:
                pass
        health = exporter.health()
    emit("served %d scrape(s); exporter stopped" % health["n_scrapes"])
    return 0


def _cmd_watchdog(args) -> int:
    """Gate accuracy: compare a current ledger against the baseline."""
    import json

    from repro.obs.ledger import compare_ledgers, read_ledgers

    baseline = read_ledgers(args.baseline)
    current = read_ledgers(args.current)
    report = compare_ledgers(
        baseline, current,
        model=args.model,
        tolerance=args.tolerance,
        rel_tolerance=args.rel_tolerance,
        allow_missing=args.allow_missing,
    )
    if args.format == "json":
        # Machine-readable output bypasses the logging layer (see lint).
        print(json.dumps(report.to_dict(), indent=2))
    else:
        emit(report.render_text())
    return 1 if report.has_regressions else 0


def _cmd_dash(args) -> int:
    """Render the self-contained HTML accuracy dashboard."""
    from repro.obs.dashboard import collect_bench, write_dashboard
    from repro.obs.ledger import read_ledgers, runs

    records = read_ledgers(args.ledgers)
    if not records:
        _LOG.error("no ledger records in %s", ", ".join(args.ledgers))
        return 2
    bench = collect_bench(args.bench) if args.bench else None
    write_dashboard(args.out, records, bench=bench, model=args.model)
    emit("wrote %s (%d record(s), %d run(s))"
         % (args.out, len(records), len(runs(records))))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GPUMech: interval-analysis GPU performance modeling "
        "(MICRO 2014 reproduction)",
    )
    _add_obs_args(parser, top_level=True)
    sub = parser.add_subparsers(dest="command", required=True)

    lister = sub.add_parser("list", help="list the workload suite")
    _add_obs_args(lister)

    predict = sub.add_parser("predict", help="run GPUMech on a kernel")
    predict.add_argument("kernel")
    predict.add_argument("--strategy", default="clustering",
                         choices=("clustering", "max", "min", "first"))
    _add_machine_args(predict)

    simulate = sub.add_parser("simulate", help="run the timing oracle")
    simulate.add_argument("kernel")
    _add_machine_args(simulate)

    validate = sub.add_parser(
        "validate", help="compare every model against the oracle"
    )
    validate.add_argument("kernel")
    _add_machine_args(validate)

    experiment = sub.add_parser(
        "experiment", help="regenerate one of the paper's figures"
    )
    experiment.add_argument("name", choices=sorted(_EXPERIMENTS))
    _add_machine_args(experiment)

    characterize = sub.add_parser(
        "characterize",
        help="behavioural metrics of a kernel ('all' for the whole suite)",
    )
    characterize.add_argument("kernel")
    characterize.add_argument("--compare-arch", action="store_true",
                              help="predicted-CPI delta table across all "
                              "architecture backends")
    _add_machine_args(characterize)

    lint = sub.add_parser(
        "lint",
        help="statically verify kernels (CFG + dataflow checks)",
    )
    lint.add_argument("kernel", nargs="?", default=None,
                      help="kernel name ('all' for the whole suite)")
    lint.add_argument("--suite", action="store_true",
                      help="lint every workload-suite kernel")
    lint.add_argument("--format", choices=("text", "json"), default="text",
                      help="diagnostic output format")
    lint.add_argument("--scale", choices=sorted(_SCALES), default="small",
                      help="workload scale preset")
    lint.add_argument("--cost", action="store_true",
                      help="append each kernel's static cost model")
    _add_obs_args(lint)

    analyze = sub.add_parser(
        "analyze",
        help="static cost analysis + dynamic/static cross-validation",
    )
    analyze.add_argument("kernel", nargs="?", default=None,
                         help="kernel name ('all' for the whole suite)")
    analyze.add_argument("--suite", action="store_true",
                         help="analyze every workload-suite kernel")
    analyze.add_argument("--format", choices=("text", "json"),
                         default="text", help="report output format")
    analyze.add_argument("--scale", choices=sorted(_SCALES),
                         default="small", help="workload scale preset")
    analyze.add_argument("--static-only", action="store_true",
                         help="skip emulation and the xcheck stage "
                         "(pure static analysis)")
    analyze.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="persistent content-addressed artifact "
                         "store; reruns skip every already-computed stage")
    _add_obs_args(analyze)

    depcheck = sub.add_parser(
        "depcheck",
        help="verify pipeline cache-key soundness (static field-"
        "dependency inference, optionally the runtime access sanitizer)",
    )
    depcheck.add_argument("--runtime", action="store_true",
                          help="also sweep the suite with the access-"
                          "recording config proxy and cross-validate")
    depcheck.add_argument("--format", choices=("text", "json"),
                          default="text", help="report output format")
    depcheck.add_argument("--scale", choices=sorted(_SCALES),
                          default="tiny",
                          help="workload scale for the runtime sweep")
    _add_obs_args(depcheck)

    concheck = sub.add_parser(
        "concheck",
        help="verify concurrency and fork safety (thread-escape, lock "
        "discipline, pool-boundary pickling, global-mutable census; "
        "optionally the runtime lock sanitizer)",
    )
    concheck.add_argument("--runtime", action="store_true",
                          help="also sweep the suite under the "
                          "REPRO_CONCHECK lock sanitizer with live "
                          "exporter/sampler threads")
    concheck.add_argument("--format", choices=("text", "json"),
                          default="text", help="report output format")
    concheck.add_argument("--allowlist", default="concheck-allow.txt",
                          help="justified-exception file (default "
                          "%(default)s; missing file = empty list)")
    concheck.add_argument("--scale", choices=sorted(_SCALES),
                          default="tiny",
                          help="workload scale for the runtime sweep")
    concheck.add_argument("--jobs", type=int, default=1,
                          help="worker processes for the runtime sweep "
                          "(>1 exercises the pool boundary)")
    concheck.add_argument("--show-facts", action="store_true",
                          help="list thread roots, lock→field maps, "
                          "order edges and the global census")
    _add_obs_args(concheck)

    profile = sub.add_parser(
        "profile",
        help="evaluate kernels with span tracing, metrics and a "
        "per-core oracle timeline (Perfetto export)",
    )
    profile.add_argument("--suite-kernel", action="append", dest="kernels",
                         metavar="KERNEL", default=None,
                         help="kernel to profile (repeatable; default: "
                         "the whole suite)")
    profile.add_argument("--timeline-interval", type=float,
                         default=DEFAULT_TIMELINE_INTERVAL, metavar="CYCLES",
                         help="oracle sampling period in cycles")
    profile.add_argument("--sample", action="store_true",
                         help="run the stdlib sampling profiler alongside "
                         "the sweep (span-attributed wall-clock samples)")
    profile.add_argument("--sample-out", default="repro-samples.txt",
                         metavar="FILE",
                         help="collapsed-stack output file "
                         "(flamegraph.pl / speedscope input)")
    profile.add_argument("--sample-interval", type=float,
                         default=SAMPLE_INTERVAL, metavar="SECONDS",
                         help="sampling period in seconds")
    _add_machine_args(profile)

    serve = sub.add_parser(
        "serve-metrics",
        help="run a sweep with a live OpenMetrics HTTP exporter "
        "(/metrics, /healthz, /spans)",
    )
    serve.add_argument("--suite-kernel", action="append", dest="kernels",
                       metavar="KERNEL", default=None,
                       help="kernel to evaluate (repeatable; default: "
                       "the whole suite)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="exporter bind address")
    serve.add_argument("--port", type=int, default=0,
                       help="exporter port (0: ephemeral, printed)")
    serve.add_argument("--repeat", type=int, default=1, metavar="N",
                       help="run the sweep N times (each repetition is "
                       "its own ledger run)")
    serve.add_argument("--linger", type=float, default=0.0,
                       metavar="SECONDS",
                       help="keep serving after the sweep finishes")
    _add_machine_args(serve)

    watchdog = sub.add_parser(
        "watchdog",
        help="accuracy-regression gate: diff per-kernel prediction "
        "error between ledgers (nonzero exit on regression)",
    )
    watchdog.add_argument("--baseline", action="append", required=True,
                          metavar="LEDGER",
                          help="baseline ledger JSONL (repeatable)")
    watchdog.add_argument("--current", action="append", required=True,
                          metavar="LEDGER",
                          help="current ledger JSONL (repeatable)")
    watchdog.add_argument("--model", default=LEDGER_DEFAULT_MODEL,
                          choices=MODELS,
                          help="model whose error is gated")
    watchdog.add_argument("--tolerance", type=float, default=0.02,
                          help="absolute error-increase budget "
                          "(fraction; default 0.02 = 2 points)")
    watchdog.add_argument("--rel-tolerance", type=float, default=0.0,
                          help="extra budget relative to the baseline "
                          "error (fraction of baseline)")
    watchdog.add_argument("--allow-missing", action="store_true",
                          help="kernels missing from the current ledger "
                          "are not regressions")
    watchdog.add_argument("--format", choices=("text", "json"),
                          default="text", help="report output format")
    _add_obs_args(watchdog)

    dash = sub.add_parser(
        "dash",
        help="render the self-contained HTML accuracy dashboard from "
        "ledger history",
    )
    dash.add_argument("ledgers", nargs="+", metavar="LEDGER",
                      help="ledger JSONL file(s) to aggregate")
    dash.add_argument("--out", default="repro-dash.html", metavar="FILE",
                      help="output HTML file")
    dash.add_argument("--bench", default=None, metavar="DIR",
                      help="directory holding BENCH_*.json files to "
                      "include (e.g. the repo root)")
    dash.add_argument("--model", default=LEDGER_DEFAULT_MODEL,
                      choices=MODELS,
                      help="model whose error the trends show")
    _add_obs_args(dash)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    configure_logging(verbose=args.verbose, quiet=args.quiet)
    if args.command == "profile" and not args.trace_out:
        args.trace_out = "repro-trace.json"

    # One tracer + registry per invocation, installed process-wide so
    # library code reached outside the Runner still records into them.
    tracer = Tracer(enabled=bool(args.trace_out))
    metrics = MetricsRegistry()
    args.obs_tracer = tracer
    args.obs_metrics = metrics
    args.obs_extra_events = []
    args.obs_ledger = None
    if getattr(args, "ledger", None):
        from repro.obs.ledger import PredictionLedger

        args.obs_ledger = PredictionLedger(args.ledger)
    set_tracer(tracer)

    handlers = {
        "list": _cmd_list,
        "predict": _cmd_predict,
        "simulate": _cmd_simulate,
        "validate": _cmd_validate,
        "experiment": _cmd_experiment,
        "characterize": _cmd_characterize,
        "lint": _cmd_lint,
        "analyze": _cmd_analyze,
        "depcheck": _cmd_depcheck,
        "concheck": _cmd_concheck,
        "profile": _cmd_profile,
        "serve-metrics": _cmd_serve_metrics,
        "watchdog": _cmd_watchdog,
        "dash": _cmd_dash,
    }
    try:
        with tracer.span(args.command, category="cli"):
            status = handlers[args.command](args)
    finally:
        set_tracer(None)
    if args.trace_out:
        tracer.export_chrome(
            args.trace_out,
            extra_events=args.obs_extra_events,
            metadata={"command": args.command},
        )
        _LOG.info("wrote %d spans to %s", tracer.n_spans, args.trace_out)
    if args.metrics_out:
        metrics.export(args.metrics_out)
        _LOG.info("wrote metrics to %s", args.metrics_out)
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
