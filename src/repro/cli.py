"""Command-line interface: ``python -m repro <command>``.

Subcommands
-----------
``list``
    List the workload suite (name, origin suite, tags, description).
``predict``
    Run GPUMech on a kernel and print the prediction + CPI stack.
``simulate``
    Run the cycle-level oracle on a kernel.
``validate``
    Run both and report the relative error of every Table II model.
``experiment``
    Regenerate one of the paper's figures (figure4 ... figure16, speedup).
``lint``
    Statically verify kernels (CFG + dataflow checks); nonzero exit on
    any error-severity diagnostic.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.config import GPUConfig
from repro.harness import experiments as ex
from repro.harness.reporting import render_table
from repro.harness.runner import MODEL_LABELS, MODELS, Runner
from repro.harness.speedup import run_speedup
from repro.trace.emulator import emulate
from repro.workloads.generators import Scale
from repro.workloads.suite import SUITE, get_kernel, kernel_names

_SCALES = {
    "tiny": Scale.tiny,
    "small": Scale.small,
    "large": Scale.large,
}

_EXPERIMENTS = {
    "figure4": lambda runner: ex.run_figure4(runner),
    "figure7": lambda runner: ex.run_figure7(runner),
    "figure11": lambda runner: ex.run_figure11(runner),
    "figure12": lambda runner: ex.run_figure12(runner),
    "figure13": lambda runner: ex.run_figure13(runner),
    "figure14": lambda runner: ex.run_figure14(runner),
    "figure15": lambda runner: ex.run_figure15(runner),
    "figure16": lambda runner: ex.run_figure16(runner),
    "speedup": lambda runner: run_speedup(runner),
}


def _add_machine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cores", type=int, default=2,
                        help="number of cores (paper: 16)")
    parser.add_argument("--warps", type=int, default=None,
                        help="resident warps per core (default: 32)")
    parser.add_argument("--mshrs", type=int, default=32,
                        help="MSHR entries per core")
    parser.add_argument("--bandwidth", type=float, default=192.0,
                        help="DRAM bandwidth in GB/s")
    parser.add_argument("--scheduler", choices=("rr", "gto"), default="rr")
    parser.add_argument("--scale", choices=sorted(_SCALES), default="small",
                        help="workload scale preset")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for sweep points and "
                        "per-warp profiling (default: serial)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persistent content-addressed artifact store; "
                        "reruns skip every already-computed stage")
    parser.add_argument("--lint", action="store_true",
                        help="statically verify each kernel before tracing "
                        "(abort on error-severity diagnostics)")


def _machine(args) -> GPUConfig:
    return GPUConfig(
        n_cores=args.cores,
        n_mshrs=args.mshrs,
        dram_bandwidth_gbps=args.bandwidth,
        scheduler=args.scheduler,
    )


def _runner(args) -> Runner:
    """A pipeline-backed runner honouring ``--jobs``/``--cache-dir``."""
    return Runner(
        _machine(args),
        _SCALES[args.scale](),
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        lint=args.lint,
    )


def _cmd_list(args) -> int:
    rows = []
    for name in kernel_names():
        spec = SUITE[name]
        rows.append(
            (name, spec.suite, ",".join(sorted(spec.tags)) or "-",
             spec.description)
        )
    print(render_table(("kernel", "suite", "tags", "description"), rows,
                       title="workload suite (%d kernels)" % len(rows)))
    return 0


def _cmd_predict(args) -> int:
    runner = _runner(args)
    kernel, _ = get_kernel(args.kernel, _SCALES[args.scale]())
    print(kernel.describe())
    model, inputs = runner.prepare(
        args.kernel, selection_strategy=args.strategy
    )
    prediction = model.predict(inputs, warps_per_core=args.warps)
    print(prediction.summary())
    print(prediction.cpi_stack.render())
    return 0


def _cmd_simulate(args) -> int:
    runner = _runner(args)
    stats = runner.simulate(args.kernel, warps_per_core=args.warps)
    print(stats.summary())
    return 0


def _cmd_validate(args) -> int:
    runner = _runner(args)
    result = runner.evaluate(args.kernel, warps_per_core=args.warps)
    rows = [
        (MODEL_LABELS[m], "%.3f" % result.model_cpis[m],
         "%.1f%%" % (100 * result.error(m)))
        for m in MODELS
    ]
    rows.append(("oracle", "%.3f" % result.oracle_cpi, "-"))
    print(render_table(("model", "CPI", "error"), rows,
                       title="%s [%s, %d warps/core]"
                       % (result.kernel, result.policy, result.n_warps)))
    return 0


def _cmd_experiment(args) -> int:
    result = _EXPERIMENTS[args.name](_runner(args))
    print(result.text)
    return 0


def _cmd_lint(args) -> int:
    from repro.staticcheck import (
        lint_kernel,
        render_reports,
        reports_to_json,
    )

    scale = _SCALES[args.scale]()
    if args.suite or args.kernel in (None, "all"):
        names = kernel_names()
    else:
        names = [args.kernel]
    reports = []
    for name in names:
        kernel, _ = get_kernel(name, scale)
        reports.append(lint_kernel(kernel))
    if args.format == "json":
        print(reports_to_json(reports))
    else:
        print(render_reports(reports))
    return 1 if any(r.has_errors for r in reports) else 0


def _cmd_characterize(args) -> int:
    from repro.analysis import (
        characterize,
        render_characterization,
        suite_report,
    )

    config = _machine(args)
    scale = _SCALES[args.scale]()
    if args.kernel == "all":
        print(suite_report(scale=scale, config=config))
        return 0
    kernel, memory = get_kernel(args.kernel, scale)
    trace = emulate(kernel, config, memory=memory)
    print(render_characterization(characterize(trace, kernel=kernel)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GPUMech: interval-analysis GPU performance modeling "
        "(MICRO 2014 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the workload suite")

    predict = sub.add_parser("predict", help="run GPUMech on a kernel")
    predict.add_argument("kernel")
    predict.add_argument("--strategy", default="clustering",
                         choices=("clustering", "max", "min", "first"))
    _add_machine_args(predict)

    simulate = sub.add_parser("simulate", help="run the timing oracle")
    simulate.add_argument("kernel")
    _add_machine_args(simulate)

    validate = sub.add_parser(
        "validate", help="compare every model against the oracle"
    )
    validate.add_argument("kernel")
    _add_machine_args(validate)

    experiment = sub.add_parser(
        "experiment", help="regenerate one of the paper's figures"
    )
    experiment.add_argument("name", choices=sorted(_EXPERIMENTS))
    _add_machine_args(experiment)

    characterize = sub.add_parser(
        "characterize",
        help="behavioural metrics of a kernel ('all' for the whole suite)",
    )
    characterize.add_argument("kernel")
    _add_machine_args(characterize)

    lint = sub.add_parser(
        "lint",
        help="statically verify kernels (CFG + dataflow checks)",
    )
    lint.add_argument("kernel", nargs="?", default=None,
                      help="kernel name ('all' for the whole suite)")
    lint.add_argument("--suite", action="store_true",
                      help="lint every workload-suite kernel")
    lint.add_argument("--format", choices=("text", "json"), default="text",
                      help="diagnostic output format")
    lint.add_argument("--scale", choices=sorted(_SCALES), default="small",
                      help="workload scale preset")

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "predict": _cmd_predict,
        "simulate": _cmd_simulate,
        "validate": _cmd_validate,
        "experiment": _cmd_experiment,
        "characterize": _cmd_characterize,
        "lint": _cmd_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
