"""Cache-key soundness checking for the staged artifact pipeline.

The content-addressed store (``repro.pipeline``) serves every stage
artifact from a key built on the *declared* ``config_fields`` of its
:class:`~repro.pipeline.stages.StageSpec`.  A stale declaration silently
serves wrong cached results (a field the stage reads but never keys on);
an over-broad one fragments the cache and wastes the hits the staged
design exists to harvest.  ``repro.depcheck`` keeps the declarations
honest with two complementary prongs, mirroring how ``xcheck``
cross-validates the static cost model against the dynamic trace:

* **Static pass** (:mod:`repro.depcheck.analyzer` /
  :mod:`repro.depcheck.stagedeps`): an AST-based interprocedural
  analysis walks each stage's implementation — following calls into
  ``repro.core``, ``repro.trace``, ``repro.memory``, ``repro.timing``,
  ``repro.arch`` and ``repro.staticcheck.costmodel`` — and infers the
  set of :class:`~repro.config.GPUConfig` attributes actually read.
  Diffing that against the declaration yields ``undeclared-read``
  errors (stale-cache hazards) and ``over-declared-field`` warnings
  (cache fragmentation).  The same walk verifies arch-dispatch
  completeness: stage code must reach the architecture-specific model
  functions only through the :class:`~repro.arch.base.ArchBackend`
  interface.

* **Runtime sanitizer** (:mod:`repro.depcheck.runtime`): with
  ``REPRO_DEPCHECK=1`` the pipeline hands every stage an
  access-recording :class:`~repro.config.GPUConfig` proxy and records
  which fields each stage *actually* touched into ``depcheck.*``
  metrics; :func:`check_runtime` cross-validates those observations
  against the static result (a runtime read outside the statically
  inferred set means the analyzer has a blind spot; one outside the
  declared key coverage means a live stale-cache hazard).

``repro depcheck`` runs the static pass (add ``--runtime`` for the
sanitized suite sweep) and exits non-zero on any error, which is how CI
gates on it.  See ``docs/staticcheck.md`` for the diagnostic catalog.
"""

from repro.depcheck.runtime import (
    DEPCHECK_ENV,
    AccessRecordingConfig,
    check_runtime,
    depcheck_enabled,
    record_stage,
    recorded_reads,
    recording_config,
)
from repro.depcheck.stagedeps import (
    DepDiagnostic,
    DepcheckReport,
    StageDepResult,
    analyze_stage_deps,
)

__all__ = [
    "AccessRecordingConfig",
    "DEPCHECK_ENV",
    "DepDiagnostic",
    "DepcheckReport",
    "StageDepResult",
    "analyze_stage_deps",
    "check_runtime",
    "depcheck_enabled",
    "record_stage",
    "recorded_reads",
    "recording_config",
]
