"""AST index of the ``repro`` package for the dependency analyzer.

Parses every module under ``src/repro`` once and exposes the structure
the interprocedural walk needs: top-level functions, classes with their
methods, per-module import tables (so dotted references resolve to
definitions), subclass links, and two per-class summaries —

* ``config_attrs``: instance attributes assigned from a constructor
  parameter that is (annotated as) a :class:`~repro.config.GPUConfig`,
  so ``self.config`` inside any method is recognised as a config
  expression;
* ``attr_types``: instance attributes assigned from a constructor call
  or a class-typed parameter, so method calls on ``self.hierarchy`` /
  ``self.mshr`` resolve to the right class.

The index is purely syntactic — nothing is imported or executed — which
is what lets the static pass run in milliseconds and under any
interpreter that can parse the sources.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

#: Parameter annotations recognised as "this parameter is the config".
_CONFIG_ANNOTATIONS = {"GPUConfig", "Optional[GPUConfig]"}


def _annotation_text(node: Optional[ast.AST]) -> str:
    if node is None:
        return ""
    try:
        return ast.unparse(node).replace(" ", "").replace('"', "").replace(
            "'", ""
        )
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return ""


def _strip_wrappers(text: str) -> str:
    """Peel ``Optional[...]``/``List[...]``-style wrappers off a type."""
    for wrapper in ("Optional[", "List[", "list[", "Sequence[", "Tuple[",
                    "tuple["):
        if text.startswith(wrapper) and text.endswith("]"):
            inner = text[len(wrapper):-1]
            if inner.endswith(",..."):
                inner = inner[: -len(",...")]
            return _strip_wrappers(inner)
    return text


def _is_classish(name: str) -> bool:
    """Whether a bare name plausibly denotes a class.

    Covers both public ``CamelCase`` names and the module-private
    ``_CamelCase`` convention (``_ExporterServer``, ``_SpanHandle``)
    the concurrency analyzer has to see through.
    """
    stripped = name.lstrip("_")
    return bool(stripped) and stripped[0].isupper()


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str
    module: str
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    cls: Optional["ClassInfo"] = None

    @property
    def name(self) -> str:
        return self.node.name

    def params(self) -> List[str]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
        if args.vararg:
            names.append(args.vararg.arg)
        names.extend(a.arg for a in args.kwonlyargs)
        return names

    def param_annotation(self, name: str) -> str:
        args = self.node.args
        for a in list(args.posonlyargs) + list(args.args) + list(
            args.kwonlyargs
        ):
            if a.arg == name:
                return _annotation_text(a.annotation)
        return ""

    def return_annotation(self) -> str:
        return _annotation_text(self.node.returns)


@dataclass
class ClassInfo:
    """One class definition with its methods and instance summaries."""

    qualname: str
    module: str
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: Base-class names as written (resolved lazily via the index).
    base_names: Tuple[str, ...] = ()
    #: Instance attributes holding the config (``self.config = config``).
    config_attrs: frozenset = frozenset()
    #: Instance attribute -> ("instance" | "list", class name as written).
    attr_types: Dict[str, Tuple[str, str]] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.node.name


@dataclass
class ModuleInfo:
    """One parsed module."""

    name: str
    node: ast.Module
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: Local name -> dotted target ("repro.trace.emulator.emulate" for
    #: ``from repro.trace.emulator import emulate``, "repro.arch" for
    #: ``import repro.arch``).
    imports: Dict[str, str] = field(default_factory=dict)
    #: Module-level name -> the value expression last assigned to it
    #: (``Assign``/``AnnAssign`` at module scope; annotation-only
    #: declarations are skipped).  Feeds the global-mutable census.
    global_assigns: Dict[str, ast.expr] = field(default_factory=dict)


def _collect_imports(body: List[ast.stmt], into: Dict[str, str]) -> None:
    for stmt in body:
        if isinstance(stmt, ast.If):
            # ``if TYPE_CHECKING:`` blocks hold the annotation imports.
            _collect_imports(stmt.body, into)
            _collect_imports(stmt.orelse, into)
        elif isinstance(stmt, ast.Try):
            _collect_imports(stmt.body, into)
            for handler in stmt.handlers:
                _collect_imports(handler.body, into)
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(
                    "."
                )[0]
                into[local] = target
        elif isinstance(stmt, ast.ImportFrom):
            if stmt.module is None or stmt.level:
                continue  # no relative imports in this codebase
            for alias in stmt.names:
                local = alias.asname or alias.name
                into[local] = "%s.%s" % (stmt.module, alias.name)


def _called_class_name(value: ast.expr) -> Optional[Tuple[str, str]]:
    """``ClassName(...)`` -> ("instance", name); list thereof -> list."""
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        name = value.func.id
        if _is_classish(name):
            return ("instance", name)
    if isinstance(value, ast.IfExp):
        # ``tracer if tracer is not None else get_tracer()`` — either
        # branch naming a class ties the expression to that class.
        return (_called_class_name(value.body)
                or _called_class_name(value.orelse))
    if isinstance(value, ast.ListComp):
        elt = _called_class_name(value.elt)
        if elt is not None and elt[0] == "instance":
            return ("list", elt[1])
    if isinstance(value, ast.List) and value.elts:
        elt = _called_class_name(value.elts[0])
        if elt is not None and elt[0] == "instance":
            return ("list", elt[1])
    return None


def _summarise_class(info: ClassInfo) -> None:
    """Fill ``config_attrs`` and ``attr_types`` from the method bodies.

    Dataclass-style annotated class fields count too: ``latency_table:
    LatencyTable`` makes the attribute resolve to that class, and a
    ``GPUConfig``-annotated field marks a config-holding attribute.
    """
    config_attrs = set()
    attr_types: Dict[str, Tuple[str, str]] = {}
    for stmt in info.node.body:
        if not (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
        ):
            continue
        text = _annotation_text(stmt.annotation)
        stripped = _strip_wrappers(text)
        if stripped in ("GPUConfig",):
            config_attrs.add(stmt.target.id)
        elif _is_classish(stripped):
            kind = (
                "list"
                if text.startswith(("List[", "list[", "Sequence[", "Tuple["))
                else "instance"
            )
            attr_types[stmt.target.id] = (kind, stripped)
    for method in info.methods.values():
        config_params = set()
        typed_params: Dict[str, str] = {}
        for param in method.params():
            annotation = method.param_annotation(param)
            if param == "config" or annotation in _CONFIG_ANNOTATIONS:
                config_params.add(param)
            else:
                stripped = _strip_wrappers(annotation)
                if _is_classish(stripped):
                    typed_params[param] = stripped
        for node in ast.walk(method.node):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                values = [node.value]
                if isinstance(node.value, ast.IfExp):
                    # ``self.tracer = tracer if ... else get_tracer()``:
                    # either branch may carry the type.
                    values = [node.value.body, node.value.orelse]
                for value in values:
                    if isinstance(value, ast.Name):
                        if value.id in config_params:
                            config_attrs.add(target.attr)
                            break
                        if value.id in typed_params:
                            attr_types[target.attr] = (
                                "instance", typed_params[value.id]
                            )
                            break
                    else:
                        typed = _called_class_name(value)
                        if typed is not None:
                            attr_types[target.attr] = typed
                            break
    info.config_attrs = frozenset(config_attrs)
    info.attr_types = attr_types


class ModuleIndex:
    """Syntactic index over every module of one package tree."""

    def __init__(self, modules: Dict[str, ModuleInfo]):
        self.modules = modules
        #: class qualname -> ClassInfo
        self.classes: Dict[str, ClassInfo] = {}
        #: function qualname -> FunctionInfo (top-level and methods)
        self.functions: Dict[str, FunctionInfo] = {}
        #: class qualname -> direct subclasses' qualnames
        self.subclasses: Dict[str, List[str]] = {}
        for module in modules.values():
            for cls in module.classes.values():
                self.classes[cls.qualname] = cls
                for method in cls.methods.values():
                    self.functions[method.qualname] = method
            for fn in module.functions.values():
                self.functions[fn.qualname] = fn
        for cls in list(self.classes.values()):
            for base in cls.base_names:
                resolved = self.resolve_name(cls.module, base)
                if isinstance(resolved, ClassInfo):
                    self.subclasses.setdefault(
                        resolved.qualname, []
                    ).append(cls.qualname)

    # -- construction -------------------------------------------------------

    @classmethod
    def build(cls, root: Optional[str] = None,
              package: str = "repro") -> "ModuleIndex":
        """Index every ``.py`` file of ``package`` under ``root``.

        ``root`` defaults to the source directory this module was loaded
        from, so the analyzer always inspects the code that is actually
        running.
        """
        if root is None:
            root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        modules: Dict[str, ModuleInfo] = {}
        base = os.path.dirname(root)
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = [d for d in dirnames if d != "__pycache__"]
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                rel = os.path.relpath(path, base)
                name = rel[:-3].replace(os.sep, ".")
                if name.endswith(".__init__"):
                    name = name[: -len(".__init__")]
                if not name.startswith(package):
                    name = package + "." + name  # root passed as pkg dir
                with open(path, "r", encoding="utf-8") as handle:
                    tree = ast.parse(handle.read(), filename=path)
                modules[name] = cls._index_module(name, tree)
        return cls(modules)

    @staticmethod
    def _index_module(name: str, tree: ast.Module) -> ModuleInfo:
        info = ModuleInfo(name=name, node=tree)
        _collect_imports(tree.body, info.imports)
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        info.global_assigns[target.id] = stmt.value
            elif (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and stmt.value is not None):
                info.global_assigns[stmt.target.id] = stmt.value
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.functions[stmt.name] = FunctionInfo(
                    qualname="%s.%s" % (name, stmt.name),
                    module=name,
                    node=stmt,
                )
            elif isinstance(stmt, ast.ClassDef):
                cls_info = ClassInfo(
                    qualname="%s.%s" % (name, stmt.name),
                    module=name,
                    node=stmt,
                    base_names=tuple(
                        _annotation_text(b) for b in stmt.bases
                    ),
                )
                for sub in stmt.body:
                    if isinstance(
                        sub, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        cls_info.methods[sub.name] = FunctionInfo(
                            qualname="%s.%s" % (cls_info.qualname, sub.name),
                            module=name,
                            node=sub,
                            cls=cls_info,
                        )
                _summarise_class(cls_info)
                info.classes[stmt.name] = cls_info
        return info

    # -- resolution ---------------------------------------------------------

    def resolve_name(
        self,
        module: str,
        dotted: str,
        local_imports: Optional[Dict[str, str]] = None,
    ) -> Optional[object]:
        """Resolve a (possibly dotted) name used in ``module``.

        Returns a :class:`FunctionInfo`, :class:`ClassInfo`, a module
        name string (for ``import repro.arch``-style references), or
        ``None``.
        """
        mod = self.modules.get(module)
        if mod is None:
            return None
        parts = dotted.split(".")
        head, rest = parts[0], parts[1:]
        target: Optional[str] = None
        if local_imports and head in local_imports:
            target = local_imports[head]
        elif head in mod.imports:
            target = mod.imports[head]
        elif head in mod.functions:
            return mod.functions[head] if not rest else None
        elif head in mod.classes:
            return self._resolve_into_class(mod.classes[head], rest)
        else:
            return None
        return self._resolve_dotted(target, rest)

    def _resolve_dotted(
        self, target: str, rest: List[str]
    ) -> Optional[object]:
        """Resolve ``target`` (+ trailing attribute path) to a def."""
        queue = list(rest)
        while True:
            if target in self.modules:
                if not queue:
                    return target
                mod = self.modules[target]
                head = queue.pop(0)
                if head in mod.functions:
                    return mod.functions[head] if not queue else None
                if head in mod.classes:
                    return self._resolve_into_class(mod.classes[head], queue)
                if head in mod.imports:  # re-export via __init__
                    target = mod.imports[head]
                    continue
                sub = "%s.%s" % (target, head)
                if sub in self.modules:  # submodule attribute access
                    target = sub
                    continue
                return None
            if target in self.functions and not queue:
                return self.functions[target]
            if target in self.classes:
                return self._resolve_into_class(self.classes[target], queue)
            if "." in target:
                # ``module.attr`` where only a prefix names a module
                # (e.g. ``from repro.staticcheck import analyze_kernel``
                # binds the re-exported name to ``repro.staticcheck.
                # analyze_kernel``): peel the tail and retry the prefix.
                target, _, tail = target.rpartition(".")
                queue.insert(0, tail)
                continue
            return None

    def _resolve_into_class(
        self, cls: ClassInfo, rest: List[str]
    ) -> Optional[object]:
        if not rest:
            return cls
        if len(rest) == 1:
            return self.find_method(cls, rest[0])
        return None

    def find_method(
        self, cls: ClassInfo, name: str
    ) -> Optional[FunctionInfo]:
        """Resolve a method through the (indexed) base-class chain."""
        seen = set()
        queue = [cls]
        while queue:
            current = queue.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if name in current.methods:
                return current.methods[name]
            for base in current.base_names:
                resolved = self.resolve_name(current.module, base)
                if isinstance(resolved, ClassInfo):
                    queue.append(resolved)
        return None

    def all_subclasses(self, qualname: str) -> List[str]:
        """Transitive subclasses of a class, by qualname."""
        result: List[str] = []
        queue = list(self.subclasses.get(qualname, ()))
        while queue:
            current = queue.pop(0)
            if current in result:
                continue
            result.append(current)
            queue.extend(self.subclasses.get(current, ()))
        return result

    def methods_named(self, name: str) -> List[FunctionInfo]:
        """Every method in the index with the given name."""
        return [
            cls.methods[name]
            for cls in self.classes.values()
            if name in cls.methods
        ]
