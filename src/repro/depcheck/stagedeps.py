"""Stage-level dependency soundness: inference roots, diff, reports.

This module knows *what the pipeline actually keys on* and turns the
raw closure analysis of :mod:`repro.depcheck.analyzer` into per-stage
verdicts.  The central subtlety is **keyed-input coverage**: a stage
whose cache key folds in an upstream artifact's key (``StageSpec.
effective_key_inputs``) is automatically invalidated whenever any
config field covered by that upstream key changes — so such fields
never need to appear in the stage's own ``config_fields``.  ``predict``
is the cautionary tale: its key includes only the *trace* key, while
its inputs (cache result, latency table, profiles, clustering) are
passed in as unkeyed objects, so every field those artifacts depend on
must be declared directly (see ``PREDICT_FIELDS``).

Diagnostics (check ids):

``depcheck-undeclared-read`` (ERROR)
    The closure reads a field outside declared ∪ keyed coverage: a
    config override could leave a stale artifact serving wrong results.
``depcheck-over-declared`` (WARNING)
    A declared field the closure never reads: harmless for correctness
    but it fragments the cache (needless invalidations on override).
``depcheck-unresolved-flow`` (ERROR)
    A config expression escaped the analysis (unknown attribute, call
    the walker could not resolve): the inference cannot vouch for the
    stage until the flow is made analyzable.
``depcheck-arch-bypass`` (ERROR)
    Stage code calls an architecture-hook implementation directly
    instead of dispatching through :class:`~repro.arch.base.ArchBackend`.
``depcheck-runtime-escape`` / ``depcheck-runtime-unsound`` (ERROR)
    Runtime-sanitizer verdicts — see :func:`repro.depcheck.runtime.
    check_runtime`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.config import ALL_FIELDS
from repro.depcheck.analyzer import (
    CONFIG,
    ClosureResult,
    ConfigFieldAnalyzer,
    Instance,
)
from repro.depcheck.modindex import ModuleIndex
from repro.staticcheck.report import Severity

#: Stage -> analysis roots: (callable qualname, {param: abstract value}).
#: ``"config"`` marks the configuration parameter; ``instance:<class>``
#: binds an artifact object of that class (so reads through it count).
#: ``predict`` roots at the model facade plus the one unkeyed input
#: computed outside any stage (``avg_miss_latency``).
STAGE_ROOTS: Dict[str, List[Tuple[str, Dict[str, str]]]] = {
    "lint": [
        ("repro.pipeline.stages.compute_lint", {}),
    ],
    "trace": [
        ("repro.pipeline.stages.compute_trace", {"config": "config"}),
    ],
    "costmodel": [
        ("repro.pipeline.stages.compute_costmodel", {"config": "config"}),
    ],
    "xcheck": [
        ("repro.pipeline.stages.compute_xcheck", {"config": "config"}),
    ],
    "cache_sim": [
        ("repro.pipeline.stages.compute_cache_sim", {"config": "config"}),
    ],
    "latency_table": [
        (
            "repro.pipeline.stages.compute_latency_table",
            {
                "config": "config",
                "cache_result":
                    "instance:repro.memory.cache_simulator.CacheSimResult",
                "trace": "instance:repro.trace.trace_types.KernelTrace",
            },
        ),
    ],
    "interval_profiles": [
        (
            "repro.pipeline.stages.compute_profiles",
            {
                "config": "config",
                "latency_table":
                    "instance:repro.core.latency.LatencyTable",
            },
        ),
    ],
    "clustering": [
        ("repro.pipeline.stages.compute_clustering", {}),
    ],
    "predict": [
        (
            "repro.core.model.GPUMech.predict",
            {
                "self": "instance:repro.core.model.GPUMech",
                "inputs": "instance:repro.core.model.ModelInputs",
            },
        ),
        # ``ModelInputs.avg_miss_latency`` is computed by
        # ``Pipeline.model_inputs_from_trace`` outside any keyed stage
        # and consumed by predict — its reads belong to predict's key.
        (
            "repro.memory.cache_simulator.CacheSimResult.avg_miss_latency",
            {
                "self":
                    "instance:repro.memory.cache_simulator.CacheSimResult",
                "config": "config",
            },
        ),
        (
            "repro.core.model.resident_warps_per_core",
            {"config": "config"},
        ),
    ],
    "oracle": [
        ("repro.pipeline.stages.compute_oracle", {"config": "config"}),
    ],
}



# ---------------------------------------------------------------------------
# Diagnostics and reports (mirrors repro.staticcheck.report)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DepDiagnostic:
    """One depcheck finding, tied to a pipeline stage."""

    stage: str
    check_id: str
    severity: Severity
    message: str
    where: str = ""

    def render(self) -> str:
        location = " (%s)" % self.where if self.where else ""
        return "%s: [%s] %s: %s%s" % (
            self.severity.value,
            self.check_id,
            self.stage,
            self.message,
            location,
        )

    def to_dict(self) -> dict:
        return {
            "stage": self.stage,
            "check_id": self.check_id,
            "severity": self.severity.value,
            "message": self.message,
            "where": self.where,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DepDiagnostic":
        return cls(
            stage=data["stage"],
            check_id=data["check_id"],
            severity=Severity(data["severity"]),
            message=data["message"],
            where=data.get("where", ""),
        )


@dataclass(frozen=True)
class StageDepResult:
    """Inference outcome for one stage."""

    stage: str
    declared: FrozenSet[str]
    inferred: FrozenSet[str]
    #: Fields covered by upstream artifact keys folded into this key.
    keyed_coverage: FrozenSet[str]
    #: Fields upstream artifacts this stage consumes depend on that its
    #: key does NOT fold in — they must be declared directly (predict's
    #: unkeyed latency/cache/profile inputs are the canonical case).
    unkeyed_coverage: FrozenSet[str] = frozenset()

    @property
    def required(self) -> FrozenSet[str]:
        """Fields this stage's key must be sensitive to."""
        return self.inferred | self.unkeyed_coverage

    @property
    def undeclared(self) -> FrozenSet[str]:
        return self.required - self.declared - self.keyed_coverage

    @property
    def over_declared(self) -> FrozenSet[str]:
        return self.declared - self.required

    @property
    def effective_coverage(self) -> FrozenSet[str]:
        """Every field a change of which invalidates this stage's key."""
        return self.declared | self.keyed_coverage

    def to_dict(self) -> dict:
        return {
            "stage": self.stage,
            "declared": sorted(self.declared),
            "inferred": sorted(self.inferred),
            "keyed_coverage": sorted(self.keyed_coverage),
            "unkeyed_coverage": sorted(self.unkeyed_coverage),
            "undeclared": sorted(self.undeclared),
            "over_declared": sorted(self.over_declared),
        }


@dataclass
class DepcheckReport:
    """Full result of a depcheck pass (static, runtime, or both)."""

    stages: List[StageDepResult] = field(default_factory=list)
    diagnostics: List[DepDiagnostic] = field(default_factory=list)

    @property
    def errors(self) -> List[DepDiagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[DepDiagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.WARNING]

    @property
    def has_errors(self) -> bool:
        return bool(self.errors)

    def stage_result(self, stage: str) -> Optional[StageDepResult]:
        for result in self.stages:
            if result.stage == stage:
                return result
        return None

    def render_text(self) -> str:
        lines = []
        for result in self.stages:
            lines.append(
                "%-17s declared=%-2d inferred=%-2d keyed=%-2d%s"
                % (
                    result.stage,
                    len(result.declared),
                    len(result.inferred),
                    len(result.keyed_coverage),
                    "" if not result.undeclared else
                    "  UNDECLARED: " + ", ".join(sorted(result.undeclared)),
                )
            )
        if not self.diagnostics:
            lines.append("depcheck: clean (%d stages)" % len(self.stages))
        else:
            for diagnostic in self.diagnostics:
                lines.append(diagnostic.render())
            lines.append(
                "depcheck: %d error(s), %d warning(s)"
                % (len(self.errors), len(self.warnings))
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "stages": [s.to_dict() for s in self.stages],
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "n_errors": len(self.errors),
            "n_warnings": len(self.warnings),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


# ---------------------------------------------------------------------------
# The static pass
# ---------------------------------------------------------------------------


def _parse_binding(spec: Dict[str, str]):
    binding = {}
    for param, value in spec.items():
        if value == "config":
            binding[param] = CONFIG
        elif value.startswith("instance:"):
            binding[param] = Instance(value[len("instance:"):])
    return binding


def _keyed_coverage(
    stage: str, declared: Dict[str, FrozenSet[str]]
) -> FrozenSet[str]:
    """Fields covered transitively by the keys folded into ``stage``."""
    from repro.pipeline.stages import STAGES

    seen: Set[str] = set()
    fields: Set[str] = set()
    queue = list(STAGES[stage].effective_key_inputs)
    while queue:
        upstream = queue.pop()
        if upstream in seen:
            continue
        seen.add(upstream)
        fields |= declared.get(upstream, frozenset())
        queue.extend(STAGES[upstream].effective_key_inputs)
    return frozenset(fields)


def _sensitivities(
    declared: Dict[str, FrozenSet[str]]
) -> Dict[str, FrozenSet[str]]:
    """Full config sensitivity of each stage's *artifact*: its own
    declaration plus, transitively, that of everything it consumes.
    (``STAGES`` is in topological order, so one pass suffices.)"""
    from repro.pipeline.stages import STAGES

    sensitivity: Dict[str, FrozenSet[str]] = {}
    for name, spec in STAGES.items():
        fields = set(declared.get(name, frozenset()))
        for upstream in spec.inputs:
            fields |= sensitivity[upstream]
        sensitivity[name] = frozenset(fields)
    return sensitivity


def infer_stage_reads(
    index: Optional[ModuleIndex] = None,
) -> Dict[str, ClosureResult]:
    """Run the closure analysis for every stage; returns raw results."""
    if index is None:
        index = ModuleIndex.build()
    analyzer = ConfigFieldAnalyzer(index, set(ALL_FIELDS))
    results: Dict[str, ClosureResult] = {}
    for stage, roots in STAGE_ROOTS.items():
        resolved_roots = []
        for qualname, binding_spec in roots:
            fn = index.functions.get(qualname)
            if fn is None:
                raise LookupError(
                    "depcheck stage root %r not found in the module index "
                    "(stage %r) — update STAGE_ROOTS" % (qualname, stage)
                )
            resolved_roots.append(
                (fn, _parse_binding(binding_spec))
            )
        results[stage] = analyzer.analyze_roots(resolved_roots)
    return results


def _hook_implementations(index: ModuleIndex) -> Dict[str, str]:
    """Qualnames of functions/classes ArchBackend hooks delegate to.

    Derived from the arch package itself: every call inside an
    ``ArchBackend`` (or subclass) method body that resolves to a
    definition *outside* ``repro.arch`` is a hook implementation —
    stage code must reach those only through the backend interface.
    Maps impl qualname -> the hook method that owns it.
    """
    import ast as _ast

    impls: Dict[str, str] = {}
    base = index.classes.get("repro.arch.base.ArchBackend")
    if base is None:  # pragma: no cover - the repo always has it
        return impls
    classes = [base] + [
        index.classes[q]
        for q in index.all_subclasses(base.qualname)
        if q in index.classes
    ]
    for cls in classes:
        for method in cls.methods.values():
            for node in _ast.walk(method.node):
                if not (
                    isinstance(node, _ast.Call)
                    and isinstance(node.func, _ast.Name)
                ):
                    continue
                resolved = index.resolve_name(cls.module, node.func.id)
                qualname = getattr(resolved, "qualname", None)
                if qualname and not qualname.startswith("repro.arch."):
                    impls.setdefault(qualname, method.qualname)
    return impls


def _arch_bypass_diagnostics(
    index: ModuleIndex, results: Dict[str, ClosureResult]
) -> List[DepDiagnostic]:
    impls = _hook_implementations(index)
    diagnostics = []
    seen = set()
    for stage, closure in results.items():
        for caller_module, target, lineno in closure.call_edges:
            if target not in impls:
                continue
            if caller_module.startswith("repro.arch"):
                continue  # the interface itself
            if target.rsplit(".", 1)[0] == caller_module:
                continue  # a module may call its own definitions
            key = (stage, caller_module, target, lineno)
            if key in seen:
                continue
            seen.add(key)
            diagnostics.append(
                DepDiagnostic(
                    stage=stage,
                    check_id="depcheck-arch-bypass",
                    severity=Severity.ERROR,
                    message=(
                        "calls %s directly (owned by %s); dispatch "
                        "through get_arch(config.arch) instead"
                        % (target, impls[target])
                    ),
                    where="%s:%d" % (
                        caller_module.replace(".", "/") + ".py", lineno
                    ),
                )
            )
    return diagnostics


def analyze_stage_deps(
    index: Optional[ModuleIndex] = None,
) -> DepcheckReport:
    """The full static pass: infer, diff against declarations, verify
    arch dispatch; returns a :class:`DepcheckReport`."""
    from repro.pipeline.stages import STAGES

    if index is None:
        index = ModuleIndex.build()
    results = infer_stage_reads(index)
    declared = {
        name: frozenset(spec.config_fields) for name, spec in STAGES.items()
    }
    sensitivity = _sensitivities(declared)
    report = DepcheckReport()
    for stage in STAGES:
        closure = results.get(stage)
        if closure is None:  # a stage with no analyzable root
            continue
        keyed = _keyed_coverage(stage, declared)
        consumed: Set[str] = set()
        for upstream in STAGES[stage].inputs:
            consumed |= sensitivity[upstream]
        result = StageDepResult(
            stage=stage,
            declared=declared[stage],
            inferred=frozenset(closure.reads),
            keyed_coverage=keyed,
            unkeyed_coverage=frozenset(consumed) - keyed,
        )
        report.stages.append(result)
        for fname in sorted(result.undeclared):
            report.diagnostics.append(
                DepDiagnostic(
                    stage=stage,
                    check_id="depcheck-undeclared-read",
                    severity=Severity.ERROR,
                    message=(
                        "reads config.%s but neither declares it nor "
                        "covers it through a keyed input — a %s override "
                        "would serve a stale cached artifact"
                        % (fname, fname)
                    ),
                )
            )
        for fname in sorted(result.over_declared):
            report.diagnostics.append(
                DepDiagnostic(
                    stage=stage,
                    check_id="depcheck-over-declared",
                    severity=Severity.WARNING,
                    message=(
                        "declares config.%s but never reads it — "
                        "overrides of %s needlessly invalidate this "
                        "stage's artifacts" % (fname, fname)
                    ),
                )
            )
        for finding in closure.findings:
            report.diagnostics.append(
                DepDiagnostic(
                    stage=stage,
                    check_id="depcheck-unresolved-flow",
                    severity=Severity.ERROR,
                    message=finding.detail,
                    where=finding.where,
                )
            )
    report.diagnostics.extend(_arch_bypass_diagnostics(index, results))
    return report
