"""Runtime access sanitizer: the dynamic prong of ``repro.depcheck``.

With ``REPRO_DEPCHECK=1`` the pipeline swaps every effective
:class:`~repro.config.GPUConfig` for an :class:`AccessRecordingConfig`
— a transparent subclass whose ``__getattribute__`` notes which config
fields each *stage* actually touches while its compute function runs.
Key and fingerprint computation happen outside the recording window, so
only genuine model/simulator reads are attributed.

The observations flow two ways:

* into ``depcheck.field_reads{stage=,field=}`` counters in the
  pipeline's :class:`~repro.obs.metrics.MetricsRegistry` (mergeable
  across pool workers like every other metric), and
* into a per-process accumulator readable via :func:`recorded_reads`.

:func:`check_runtime` then plays the ``xcheck`` role: a recorded read
outside the statically *inferred* set means the analyzer has a blind
spot (``depcheck-runtime-escape``); one outside the stage's *effective
key coverage* is a live stale-cache hazard
(``depcheck-runtime-unsound``).  Both are CI-fatal.
"""

from __future__ import annotations

import dataclasses
import os
from contextlib import contextmanager
from typing import Dict, FrozenSet, Iterator, List, Optional, Set

from repro.config import ALL_FIELDS, GPUConfig

#: Environment toggle; any value other than ``""``/``"0"`` enables the
#: sanitizer (checked per call, like ``repro.backend.use_scalar``).
DEPCHECK_ENV = "REPRO_DEPCHECK"


def depcheck_enabled() -> bool:
    """Is the runtime sanitizer requested for this process?"""
    return os.environ.get(DEPCHECK_ENV, "0") not in ("", "0")


#: Stack of active recording windows (innermost last).  Module-level so
#: the proxy carries no instance state and pickles exactly like a plain
#: config when shipped to pool workers.
_FRAMES: List[Set[str]] = []

#: Per-process accumulation of observed reads by stage name.
_RECORDED: Dict[str, Set[str]] = {}

#: Names whose reads count.  Everything else (methods, properties,
#: dunder machinery) passes through untouched; property bodies read the
#: underlying fields through ``__getattribute__`` anyway, so derived
#: quantities attribute to exactly the fields that define them.
_FIELD_NAMES: FrozenSet[str] = ALL_FIELDS


class AccessRecordingConfig(GPUConfig):
    """A :class:`GPUConfig` that reports field reads to the active
    recording window.

    Structurally identical to its base (same dataclass fields, same
    validation, equal and inter-fingerprintable with a plain config of
    the same values), so it can flow through every stage untouched.
    ``with_()``/``dataclasses.replace`` preserve the class, keeping
    derived configs under observation.
    """

    __slots__ = ()

    def __getattribute__(self, name: str):
        if name in _FIELD_NAMES and _FRAMES:
            _FRAMES[-1].add(name)
        return object.__getattribute__(self, name)

    def __eq__(self, other) -> bool:
        # Value equality with any GPUConfig (the generated dataclass
        # __eq__ is class-strict); field access bypasses the recorder
        # so comparisons inside a window don't pollute the read-set.
        if not isinstance(other, GPUConfig):
            return NotImplemented
        return all(
            object.__getattribute__(self, f.name)
            == object.__getattribute__(other, f.name)
            for f in dataclasses.fields(GPUConfig)
        )

    __hash__ = GPUConfig.__hash__


def recording_config(config: GPUConfig) -> AccessRecordingConfig:
    """Wrap ``config`` in the recording proxy (idempotent)."""
    if isinstance(config, AccessRecordingConfig):
        return config
    values = {
        f.name: object.__getattribute__(config, f.name)
        for f in dataclasses.fields(GPUConfig)
    }
    return AccessRecordingConfig(**values)


@contextmanager
def record_stage(stage: str) -> Iterator[Set[str]]:
    """Open a recording window attributing proxy reads to ``stage``.

    Yields the live read-set (the pipeline turns it into metrics when
    the window closes); the observations also accumulate into the
    process-wide tally behind :func:`recorded_reads`.
    """
    reads: Set[str] = set()
    _FRAMES.append(reads)
    try:
        yield reads
    finally:
        _FRAMES.pop()
        _RECORDED.setdefault(stage, set()).update(reads)


def recorded_reads() -> Dict[str, FrozenSet[str]]:
    """Observed config reads per stage, accumulated in this process."""
    return {stage: frozenset(reads) for stage, reads in _RECORDED.items()}


def clear_recorded() -> None:
    """Reset the per-process tally (test isolation)."""
    _RECORDED.clear()


def reads_from_metrics(metrics) -> Dict[str, FrozenSet[str]]:
    """Recover per-stage observed reads from ``depcheck.field_reads``
    counters — the merge-safe channel that survives pool workers."""
    observed: Dict[str, Set[str]] = {}
    for entry in metrics.snapshot()["counters"]:
        if entry["name"] != "depcheck.field_reads" or entry["value"] <= 0:
            continue
        labels = entry["labels"]
        observed.setdefault(labels["stage"], set()).add(labels["field"])
    return {stage: frozenset(reads) for stage, reads in observed.items()}


def check_runtime(
    observed: Dict[str, FrozenSet[str]],
    report,
    kernels: Optional[List[str]] = None,
):
    """Cross-validate runtime observations against the static report.

    Appends ``depcheck-runtime-escape`` / ``depcheck-runtime-unsound``
    diagnostics (both errors) to a copy of ``report``'s diagnostic list
    and returns just the new diagnostics.  ``kernels`` only decorates
    the messages with the sweep provenance.
    """
    from repro.depcheck.stagedeps import DepDiagnostic
    from repro.staticcheck.report import Severity

    provenance = (
        " (sweep over %d kernels)" % len(kernels) if kernels else ""
    )
    diagnostics = []
    for stage in sorted(observed):
        result = report.stage_result(stage)
        if result is None:
            continue
        reads = observed[stage]
        for fname in sorted(reads - result.inferred):
            diagnostics.append(
                DepDiagnostic(
                    stage=stage,
                    check_id="depcheck-runtime-escape",
                    severity=Severity.ERROR,
                    message=(
                        "runtime read of config.%s is outside the "
                        "statically inferred set — the analyzer has a "
                        "blind spot here%s" % (fname, provenance)
                    ),
                )
            )
        for fname in sorted(reads - result.effective_coverage):
            diagnostics.append(
                DepDiagnostic(
                    stage=stage,
                    check_id="depcheck-runtime-unsound",
                    severity=Severity.ERROR,
                    message=(
                        "runtime read of config.%s is not covered by the "
                        "stage's key — cached artifacts can go stale "
                        "under a %s override%s" % (fname, fname, provenance)
                    ),
                )
            )
    return diagnostics


def runtime_sweep(kernels=None, scale=None, config=None):
    """Run a sanitized pipeline sweep and return the observed reads.

    Evaluates every requested kernel (defaults: the full suite at tiny
    scale on a small machine) with recording forced on, exercising the
    lint/xcheck side stages too, and returns
    ``(observed_reads, kernel_names)`` with observations taken from the
    merge-safe metrics channel.
    """
    from repro.pipeline import Pipeline
    from repro.workloads.generators import Scale
    from repro.workloads.suite import SUITE

    kernels = list(kernels) if kernels is not None else sorted(SUITE)
    scale = scale if scale is not None else Scale.tiny()
    config = config if config is not None else GPUConfig.small()
    previous = os.environ.get(DEPCHECK_ENV)
    os.environ[DEPCHECK_ENV] = "1"
    try:
        pipeline = Pipeline(config, scale=scale, lint=True)
        for kernel in kernels:
            pipeline.evaluate(kernel)
            pipeline.crosscheck(kernel)
        observed = reads_from_metrics(pipeline.metrics)
    finally:
        if previous is None:
            del os.environ[DEPCHECK_ENV]
        else:
            os.environ[DEPCHECK_ENV] = previous
    return observed, kernels
