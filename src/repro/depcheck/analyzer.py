"""Interprocedural GPUConfig-field inference over the stage closures.

Given one or more *roots* (a function plus which of its parameters are
bound to the configuration), the analyzer walks the call graph and
returns every :class:`~repro.config.GPUConfig` field the closure can
read.  The walk is flow-insensitive but *binding*-sensitive: a function
is (re)analyzed per distinct abstraction of its config-carrying
parameters, so ``build_latency_table(trace, cache_result, config)``
contributes reads only through its ``config`` parameter.

Tracked abstractions (:class:`Abstract`):

``CONFIG``
    A config expression (a bound parameter, a ``config = self.config``
    alias, an attribute of a config-holding instance, ...).  Attribute
    reads on it record fields; properties and methods of ``GPUConfig``
    expand through a closure map computed from the config's own AST
    (``dram_service_cycles`` -> ``{core_clock_ghz, line_size,
    dram_bandwidth_gbps}``; anything using dynamic ``getattr`` maps to
    all fields).

``Instance(cls)`` / ``ListOf(cls)``
    An object constructed with the config (or typed by annotation):
    method calls resolve into ``cls`` (through indexed base classes),
    ``self.<attr>`` resolves via the class's config/instance attribute
    summaries, iteration and subscripts of ``ListOf`` yield instances.

``ARCH``
    The result of ``repro.arch.get_arch(...)``: a *union instance* over
    every registered :class:`~repro.arch.base.ArchBackend` subclass, so
    hook calls analyze each backend's override (or the base default).

A config expression flowing somewhere the analyzer cannot follow — an
argument of an unresolvable call with no same-named method anywhere in
the index — is reported as an ``unresolved-config-flow`` finding rather
than silently dropped: the analysis stays honest about its own
coverage, and the runtime sanitizer (``REPRO_DEPCHECK=1``) backstops it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.depcheck.modindex import (
    ClassInfo,
    FunctionInfo,
    ModuleIndex,
    _collect_imports,
    _strip_wrappers,
)

# ---------------------------------------------------------------------------
# Abstract values
# ---------------------------------------------------------------------------

CONFIG = "config"
ARCH = "arch-union"
UNKNOWN = None


@dataclass(frozen=True)
class Instance:
    """An object of a known class holding the analyzed config."""

    cls: str  # class qualname


@dataclass(frozen=True)
class ListOf:
    """A homogeneous container of :class:`Instance`."""

    cls: str


def _join(a, b):
    if a == b:
        return a
    if CONFIG in (a, b):
        return CONFIG
    if ARCH in (a, b):
        return ARCH
    return UNKNOWN


# ---------------------------------------------------------------------------
# GPUConfig member closure
# ---------------------------------------------------------------------------


def config_member_closure(
    index: ModuleIndex, fields: Set[str]
) -> Dict[str, Set[str]]:
    """Field-set closure of every GPUConfig property/method.

    Computed from the config's own AST: each member's direct ``self.X``
    reads, with references to other members expanded transitively.
    Members using dynamic access (``getattr``) or ``**`` expansion map
    to the full field set (``fingerprint``, ``with_``).
    """
    cls = index.classes.get("repro.config.GPUConfig")
    closure: Dict[str, Set[str]] = {}
    if cls is None:  # pragma: no cover - index always has the config
        return closure
    direct: Dict[str, Set[str]] = {}
    refs: Dict[str, Set[str]] = {}
    for name, method in cls.methods.items():
        reads: Set[str] = set()
        member_refs: Set[str] = set()
        dynamic = False
        for node in ast.walk(method.node):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                if node.attr in fields:
                    reads.add(node.attr)
                else:
                    member_refs.add(node.attr)
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Name
            ) and node.func.id in ("getattr", "replace", "asdict"):
                dynamic = True
        if dynamic:
            reads = set(fields)
            member_refs = set()
        direct[name] = reads
        refs[name] = member_refs
    for name in direct:
        result = set(direct[name])
        queue = list(refs[name])
        seen = set()
        while queue:
            ref = queue.pop()
            if ref in seen:
                continue
            seen.add(ref)
            result |= direct.get(ref, set())
            queue.extend(refs.get(ref, ()))
        closure[name] = result
    return closure


# ---------------------------------------------------------------------------
# Findings
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Finding:
    """One analysis event worth surfacing (not yet a diagnostic)."""

    kind: str  # "unresolved-config-flow" | "arch-bypass"
    where: str  # "module.py:lineno"
    detail: str


@dataclass
class ClosureResult:
    """Everything one root-set walk produced."""

    reads: Set[str] = field(default_factory=set)
    findings: List[Finding] = field(default_factory=list)
    #: Resolved call edges: (caller module, callee qualname, lineno).
    call_edges: List[Tuple[str, str, int]] = field(default_factory=list)
    visited: Set[Tuple[str, frozenset]] = field(default_factory=set)


# ---------------------------------------------------------------------------
# The analyzer
# ---------------------------------------------------------------------------


class ConfigFieldAnalyzer:
    """Walk stage closures, accumulating config-field reads."""

    #: Names whose calls construct a *fresh* config (reads on it belong
    #: to that object, not the stage's key), so the result is not CONFIG.
    _FRESH_CONFIG = {"GPUConfig"}

    def __init__(self, index: ModuleIndex, fields: Set[str]):
        self.index = index
        self.fields = frozenset(fields)
        self.member_closure = config_member_closure(index, set(fields))
        base = index.classes.get("repro.arch.base.ArchBackend")
        self._arch_classes: List[ClassInfo] = []
        if base is not None:
            self._arch_classes = [base] + [
                index.classes[q]
                for q in index.all_subclasses(base.qualname)
                if q in index.classes
            ]

    # -- public entry -------------------------------------------------------

    def analyze_roots(
        self, roots: List[Tuple[FunctionInfo, Dict[str, object]]]
    ) -> ClosureResult:
        """Analyze a set of (function, parameter binding) roots."""
        result = ClosureResult()
        worklist = list(roots)
        while worklist:
            fn, binding = worklist.pop()
            key = (
                fn.qualname,
                frozenset((k, repr(v)) for k, v in binding.items()),
            )
            if key in result.visited:
                continue
            result.visited.add(key)
            self._analyze_function(fn, binding, result, worklist)
        return result

    # -- per-function walk --------------------------------------------------

    def _analyze_function(self, fn, binding, result, worklist) -> None:
        env: Dict[str, object] = dict(binding)
        # Annotation augmentation: a parameter the caller did not bind
        # but that is annotated with an indexed class (or GPUConfig) is
        # trusted to carry such an object — within a stage closure there
        # is exactly one configuration, so this is sound and lets
        # artifact objects (LatencyTable, CacheSimResult, ...) resolve.
        for param in fn.params():
            if param in env or param in ("self", "cls"):
                continue
            annotation = fn.param_annotation(param)
            stripped = _strip_wrappers(annotation)
            if stripped == "GPUConfig":
                env[param] = CONFIG
            elif stripped and stripped[0].isupper():
                resolved = self.index.resolve_name(fn.module, stripped)
                if isinstance(resolved, ClassInfo):
                    is_list = annotation.startswith(
                        ("List[", "list[", "Sequence[", "Tuple[")
                    )
                    env[param] = (
                        ListOf(resolved.qualname)
                        if is_list
                        else Instance(resolved.qualname)
                    )
        local_imports: Dict[str, str] = {}
        _collect_imports(
            [n for n in ast.walk(fn.node)
             if isinstance(n, (ast.Import, ast.ImportFrom))],
            local_imports,
        )
        walker = _FunctionWalker(
            self, fn, env, local_imports, result, worklist
        )
        for stmt in fn.node.body:
            walker.visit(stmt)


class _FunctionWalker(ast.NodeVisitor):
    """Single forward pass over one function body."""

    def __init__(self, analyzer, fn, env, local_imports, result, worklist):
        self.analyzer = analyzer
        self.index = analyzer.index
        self.fn = fn
        self.env = env
        self.local_imports = local_imports
        self.result = result
        self.worklist = worklist

    # -- helpers ------------------------------------------------------------

    def _where(self, node) -> str:
        return "%s:%d" % (
            self.fn.module.replace(".", "/") + ".py",
            getattr(node, "lineno", 0),
        )

    def _record_read(self, name: str, node) -> None:
        closure = self.analyzer.member_closure
        if name in self.analyzer.fields:
            self.result.reads.add(name)
        elif name in closure:
            self.result.reads |= closure[name]
        else:
            self.result.findings.append(
                Finding(
                    kind="unresolved-config-flow",
                    where=self._where(node),
                    detail="unknown GPUConfig attribute %r" % name,
                )
            )

    def _enqueue(self, fn: FunctionInfo, binding: Dict[str, object],
                 node) -> None:
        self.result.call_edges.append(
            (self.fn.module, fn.qualname, getattr(node, "lineno", 0))
        )
        if binding:
            self.worklist.append((fn, binding))
        else:
            # No config flows in: still record the edge (for the arch-
            # bypass check) but skip the body.
            pass

    def _bind_args(
        self, fn: FunctionInfo, call: ast.Call, self_value=None
    ) -> Dict[str, object]:
        params = fn.params()
        if params and params[0] in ("self", "cls"):
            binding: Dict[str, object] = {}
            if self_value is not None:
                binding[params[0]] = self_value
            positional = params[1:]
        else:
            binding = {}
            positional = params
        for i, arg in enumerate(call.args):
            value = self.eval(arg)
            if value is not UNKNOWN and i < len(positional):
                binding[positional[i]] = value
        for keyword in call.keywords:
            if keyword.arg is None:
                self.eval(keyword.value)
                continue
            value = self.eval(keyword.value)
            if value is not UNKNOWN and keyword.arg in params:
                binding[keyword.arg] = value
        return binding

    def _instance_for(self, cls: ClassInfo):
        return Instance(cls.qualname)

    def _resolve(self, dotted: str):
        return self.index.resolve_name(
            self.fn.module, dotted, self.local_imports
        )

    def _class_of(self, value) -> Optional[ClassInfo]:
        if isinstance(value, Instance):
            return self.index.classes.get(value.cls)
        return None

    def _annotation_value(self, text: str, module: Optional[str] = None):
        """Abstract value for a (return) annotation, if class-typed.

        ``module`` is the module the annotation was written in (defaults
        to the function under analysis) — names resolve there.
        """
        stripped = _strip_wrappers(text)
        if not stripped:
            return UNKNOWN
        if stripped in ("GPUConfig",):
            return CONFIG
        is_list = text.replace(" ", "").startswith(
            ("List[", "list[", "Sequence[", "Tuple[")
        )
        resolved = self.index.resolve_name(
            module or self.fn.module,
            stripped,
            self.local_imports if module is None else None,
        )
        if isinstance(resolved, ClassInfo):
            return ListOf(resolved.qualname) if is_list else Instance(
                resolved.qualname
            )
        return UNKNOWN

    # -- expression evaluation ----------------------------------------------

    def eval(self, node):  # noqa: C901 - a structured dispatch
        if node is None:
            return UNKNOWN
        if isinstance(node, ast.Name):
            return self.env.get(node.id, UNKNOWN)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            return _join(self.eval(node.body), self.eval(node.orelse))
        if isinstance(node, ast.BoolOp):
            value = UNKNOWN
            for operand in node.values:
                value = _join(value, self.eval(operand))
            return value
        if isinstance(node, ast.Subscript):
            value = self.eval(node.value)
            self.eval(node.slice)
            if isinstance(value, ListOf):
                return Instance(value.cls)
            return UNKNOWN
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            self._bind_comprehensions(node.generators)
            element = self.eval(node.elt)
            if isinstance(element, Instance):
                return ListOf(element.cls)
            return UNKNOWN
        if isinstance(node, ast.DictComp):
            self._bind_comprehensions(node.generators)
            self.eval(node.key)
            self.eval(node.value)
            return UNKNOWN
        if isinstance(node, ast.Lambda):
            for default in node.args.defaults:
                self.eval(default)
            self.eval(node.body)
            return UNKNOWN
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            values = [self.eval(e) for e in node.elts]
            instances = {v.cls for v in values if isinstance(v, Instance)}
            if len(instances) == 1 and values:
                return ListOf(instances.pop())
            return UNKNOWN
        # Anything else: visit children so nested reads are not lost.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.eval(child)
        return UNKNOWN

    def _bind_comprehensions(self, generators) -> None:
        for comp in generators:
            iterable = self.eval(comp.iter)
            element = UNKNOWN
            if isinstance(iterable, ListOf):
                element = Instance(iterable.cls)
            self._assign_target(comp.target, element)
            for condition in comp.ifs:
                self.eval(condition)

    def _eval_attribute(self, node: ast.Attribute):
        value = self.eval(node.value)
        if value is CONFIG:
            self._record_read(node.attr, node)
            member = self.analyzer.member_closure.get(node.attr)
            if member is not None and node.attr in ("with_",):
                return CONFIG  # bound method; call returns a config
            return UNKNOWN
        if value is ARCH:
            return UNKNOWN  # attribute data reads on backends are inert
        cls = self._class_of(value)
        if cls is not None:
            if node.attr in cls.config_attrs:
                return CONFIG
            typed = cls.attr_types.get(node.attr)
            if typed is not None:
                kind, name = typed
                resolved = self.index.resolve_name(cls.module, name)
                if isinstance(resolved, ClassInfo):
                    return (
                        ListOf(resolved.qualname)
                        if kind == "list"
                        else Instance(resolved.qualname)
                    )
            # A property (or a bare method reference): analyze its body
            # with self bound so reads through it are not lost.
            target = self.index.find_method(cls, node.attr)
            if target is not None:
                self._enqueue(target, {"self": value}, node)
                return self._annotation_value(
                    target.return_annotation(), target.module
                )
            return UNKNOWN
        # Module attribute (``repro.arch.get_arch``): nothing to record.
        return UNKNOWN

    def _eval_call(self, node: ast.Call):  # noqa: C901
        func = node.func
        # Direct name call -------------------------------------------------
        if isinstance(func, ast.Name):
            return self._call_named(func.id, node)
        # Attribute call ---------------------------------------------------
        if isinstance(func, ast.Attribute):
            receiver = self.eval(func.value)
            method = func.attr
            if receiver is CONFIG:
                self._record_read(method, node)
                for arg in node.args:
                    self.eval(arg)
                for keyword in node.keywords:
                    self.eval(keyword.value)
                return CONFIG if method == "with_" else UNKNOWN
            if receiver is ARCH:
                return self._call_arch_hook(method, node)
            cls = self._class_of(receiver)
            if cls is not None:
                target = self.index.find_method(cls, method)
                if target is not None:
                    binding = self._bind_args(
                        target, node, self_value=receiver
                    )
                    self._enqueue(target, binding, node)
                    return self._annotation_value(
                        target.return_annotation(), target.module
                    )
                # Dataclass field access chains etc.: fall through.
            # Module-qualified call (``math.ceil`` / ``repro.x.fn``) ---
            if isinstance(func.value, ast.Name):
                resolved = self._resolve(
                    "%s.%s" % (func.value.id, method)
                )
                if resolved is not None:
                    return self._dispatch_resolved(resolved, node)
            return self._call_unresolved(method, node)
        # Anything else (subscripted callables, lambdas) --------------------
        self.eval(func)
        for arg in node.args:
            self.eval(arg)
        for keyword in node.keywords:
            self.eval(keyword.value)
        return UNKNOWN

    def _call_named(self, name: str, node: ast.Call):
        if name == "getattr" and node.args:
            value = self.eval(node.args[0])
            if value is CONFIG:
                # Dynamic field access: sound only as "everything".
                self.result.reads |= set(self.analyzer.fields)
            for arg in node.args[1:]:
                self.eval(arg)
            return UNKNOWN
        if name in self.analyzer._FRESH_CONFIG:
            for arg in node.args:
                self.eval(arg)
            for keyword in node.keywords:
                self.eval(keyword.value)
            return UNKNOWN  # a fresh config, not the stage's
        resolved = self._resolve(name)
        if resolved is not None:
            return self._dispatch_resolved(resolved, node)
        # Builtin / unindexed callable: evaluate arguments; a config
        # argument to an unknown *named* builtin (min/len/float/...) is
        # fine only if the builtin cannot read attributes — whitelist.
        config_args = [
            arg for arg in list(node.args)
            + [k.value for k in node.keywords]
            if self.eval(arg) is CONFIG
        ]
        if config_args and name not in (
            "isinstance", "id", "bool", "print", "repr", "str", "hash",
        ):
            self.result.findings.append(
                Finding(
                    kind="unresolved-config-flow",
                    where=self._where(node),
                    detail="config passed to unresolved callable %r" % name,
                )
            )
        return UNKNOWN

    def _dispatch_resolved(self, resolved, node: ast.Call):
        if isinstance(resolved, FunctionInfo):
            if resolved.qualname.endswith(".get_arch"):
                for arg in node.args:
                    self.eval(arg)
                return ARCH
            binding = self._bind_args(resolved, node)
            self._enqueue(resolved, binding, node)
            return self._annotation_value(
                resolved.return_annotation(), resolved.module
            )
        if isinstance(resolved, ClassInfo):
            if resolved.qualname == "repro.config.GPUConfig":
                for arg in node.args:
                    self.eval(arg)
                for keyword in node.keywords:
                    self.eval(keyword.value)
                return UNKNOWN  # a fresh config, not the stage's
            init = self.index.find_method(resolved, "__init__")
            instance = self._instance_for(resolved)
            if init is not None:
                binding = self._bind_args(init, node, self_value=instance)
                self._enqueue(init, binding, node)
            else:
                self.result.call_edges.append(
                    (
                        self.fn.module,
                        resolved.qualname,
                        getattr(node, "lineno", 0),
                    )
                )
                for arg in node.args:
                    self.eval(arg)
                for keyword in node.keywords:
                    self.eval(keyword.value)
            return instance
        # A module name or unknown string: evaluate args defensively.
        for arg in node.args:
            self.eval(arg)
        for keyword in node.keywords:
            self.eval(keyword.value)
        return UNKNOWN

    def _call_arch_hook(self, method: str, node: ast.Call):
        """Union-dispatch a method over every registered backend."""
        returns = UNKNOWN
        found = False
        for cls in self.analyzer._arch_classes:
            target = self.index.find_method(cls, method)
            if target is None:
                continue
            found = True
            # self binds to the *dispatching* class so further hook
            # calls inside a base default reach the subclass override.
            binding = self._bind_args(
                target, node, self_value=Instance(cls.qualname)
            )
            self._enqueue(target, binding, node)
            returns = _join(
                returns,
                self._annotation_value(
                    target.return_annotation(), target.module
                ),
            )
        if not found:
            self.result.findings.append(
                Finding(
                    kind="unresolved-config-flow",
                    where=self._where(node),
                    detail="unknown ArchBackend hook %r" % method,
                )
            )
        return returns

    def _call_unresolved(self, method: str, node: ast.Call):
        """Attribute call on an untyped receiver.

        If a config expression flows in as an argument, fall back to
        analyzing *every* indexed method with that name (sound as long
        as the name exists somewhere); with no candidates, report the
        escape.
        """
        arg_values = [self.eval(arg) for arg in node.args]
        kw_values = [(k.arg, self.eval(k.value)) for k in node.keywords]
        carries_config = CONFIG in arg_values or any(
            v is CONFIG for _, v in kw_values
        )
        if not carries_config:
            return UNKNOWN
        candidates = self.index.methods_named(method)
        if not candidates:
            self.result.findings.append(
                Finding(
                    kind="unresolved-config-flow",
                    where=self._where(node),
                    detail="config passed to unresolvable method %r" % method,
                )
            )
            return UNKNOWN
        for target in candidates:
            binding = self._bind_args(
                target, node, self_value=Instance(target.cls.qualname)
            )
            self._enqueue(target, binding, node)
        return UNKNOWN

    # -- statements ---------------------------------------------------------

    def _assign_target(self, target, value) -> None:
        if isinstance(target, ast.Name):
            if value is UNKNOWN:
                self.env.pop(target.id, None)
            else:
                self.env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign_target(element, UNKNOWN)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            self.eval(target.value)

    def visit_Assign(self, node: ast.Assign) -> None:
        value = self.eval(node.value)
        for target in node.targets:
            if isinstance(target, (ast.Tuple, ast.List)) and isinstance(
                node.value, ast.Tuple
            ) and len(target.elts) == len(node.value.elts):
                for t, v in zip(target.elts, node.value.elts):
                    self._assign_target(t, self.eval(v))
            else:
                self._assign_target(target, value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        value = self.eval(node.value) if node.value else UNKNOWN
        if value is UNKNOWN and node.value is None:
            # Declaration only: trust the annotation for locals.
            value = self._annotation_value(
                _strip_annotation(node.annotation)
            )
        self._assign_target(node.target, value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.eval(node.value)
        self._assign_target(node.target, UNKNOWN)

    def visit_Return(self, node: ast.Return) -> None:
        self.eval(node.value)

    def visit_Expr(self, node: ast.Expr) -> None:
        self.eval(node.value)

    def visit_For(self, node: ast.For) -> None:
        iterable = self.eval(node.iter)
        element = UNKNOWN
        if isinstance(iterable, ListOf):
            element = Instance(iterable.cls)
        self._assign_target(node.target, element)
        for stmt in node.body:
            self.visit(stmt)
        for stmt in node.orelse:
            self.visit(stmt)

    def visit_While(self, node: ast.While) -> None:
        self.eval(node.test)
        for stmt in node.body + node.orelse:
            self.visit(stmt)

    def visit_If(self, node: ast.If) -> None:
        self.eval(node.test)
        for stmt in node.body + node.orelse:
            self.visit(stmt)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            self.eval(item.context_expr)
            if item.optional_vars is not None:
                self._assign_target(item.optional_vars, UNKNOWN)
        for stmt in node.body:
            self.visit(stmt)

    def visit_Try(self, node: ast.Try) -> None:
        for stmt in (
            node.body + node.orelse + node.finalbody
            + [s for h in node.handlers for s in h.body]
        ):
            self.visit(stmt)

    def visit_Raise(self, node: ast.Raise) -> None:
        self.eval(node.exc)
        self.eval(node.cause)

    def visit_Assert(self, node: ast.Assert) -> None:
        self.eval(node.test)
        self.eval(node.msg)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # Nested defs close over the enclosing environment; analyze the
        # body inline (sound over-approximation: we assume it runs).
        for default in node.args.defaults:
            self.eval(default)
        for stmt in node.body:
            self.visit(stmt)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Import(self, node: ast.Import) -> None:
        pass  # already collected into local_imports

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        pass

    def generic_visit(self, node) -> None:
        if isinstance(node, ast.expr):
            self.eval(node)
        else:
            super().generic_visit(node)


def _strip_annotation(node) -> str:
    try:
        return ast.unparse(node).replace('"', "").replace("'", "")
    except Exception:  # pragma: no cover
        return ""
