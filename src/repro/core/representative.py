"""Representative-warp selection (Sec. III-C of the paper).

Control-divergent kernels produce warps with very different interval
profiles; feeding a random warp to the multi-warp model can badly skew
the prediction.  GPUMech clusters all warps with k-means (k=2: a majority
cluster and an outlier cluster) over the feature vector of Eq. 6 —

    [ warp_perf / avg_warp_perf,  n_insts / avg_n_insts ]

— and picks the warp closest to the centre of the *largest* cluster.

The MAX and MIN strategies of Fig. 7 (pick the warp with the highest or
lowest single-warp IPC) are provided for the comparison experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.interval import IntervalProfile
from repro.core.kmeans import KMeansResult, kmeans


@dataclass
class RepresentativeSelection:
    """Outcome of representative-warp selection."""

    index: int  # index into the profile list
    profile: IntervalProfile
    strategy: str
    features: np.ndarray  # (n_warps, 2) normalised feature vectors
    clustering: KMeansResult = None

    @property
    def warp_id(self) -> int:
        """Launch-wide id of the selected warp."""
        return self.profile.warp_id


def feature_vectors(profiles: Sequence[IntervalProfile]) -> np.ndarray:
    """Eq. 6: per-warp (performance, instruction count), mean-normalised."""
    perf = np.array([p.warp_perf for p in profiles], dtype=np.float64)
    insts = np.array([p.n_insts for p in profiles], dtype=np.float64)
    avg_perf = perf.mean() if perf.mean() else 1.0
    avg_insts = insts.mean() if insts.mean() else 1.0
    return np.column_stack([perf / avg_perf, insts / avg_insts])


def select_representative(
    profiles: Sequence[IntervalProfile],
    strategy: str = "clustering",
) -> RepresentativeSelection:
    """Select the representative warp.

    ``strategy`` is one of ``"clustering"`` (the paper's method),
    ``"max"``, ``"min"`` (Fig. 7 comparators) or ``"first"`` (warp 0, a
    naive baseline).
    """
    if not profiles:
        raise ValueError("no warp profiles to select from")
    features = feature_vectors(profiles)

    if strategy == "max":
        index = int(np.argmax(features[:, 0]))
        return RepresentativeSelection(index, profiles[index], strategy, features)
    if strategy == "min":
        index = int(np.argmin(features[:, 0]))
        return RepresentativeSelection(index, profiles[index], strategy, features)
    if strategy == "first":
        return RepresentativeSelection(0, profiles[0], strategy, features)
    if strategy != "clustering":
        raise ValueError("unknown selection strategy %r" % strategy)

    if len(profiles) == 1:
        return RepresentativeSelection(
            0, profiles[0], strategy, features, clustering=None
        )
    result = kmeans(features, k=2)
    largest = result.largest_cluster
    members = np.flatnonzero(result.labels == largest)
    center = result.centers[largest]
    distances = ((features[members] - center) ** 2).sum(axis=1)
    index = int(members[int(np.argmin(distances))])
    return RepresentativeSelection(
        index, profiles[index], strategy, features, clustering=result
    )
