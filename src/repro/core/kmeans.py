"""Minimal deterministic k-means (Lloyd's algorithm).

GPUMech only needs k=2 over two-dimensional, pre-normalised feature
vectors (Sec. III-C), but the implementation is a general, dependency-free
k-means with deterministic farthest-point ("maximin") initialisation so
that representative-warp selection is reproducible run to run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class KMeansResult:
    """Clustering outcome."""

    centers: np.ndarray  # (k, d)
    labels: np.ndarray  # (n,)
    inertia: float
    n_iterations: int

    def cluster_sizes(self) -> np.ndarray:
        """Member count of each cluster."""
        return np.bincount(self.labels, minlength=len(self.centers))

    @property
    def largest_cluster(self) -> int:
        """Index of the most populous cluster."""
        return int(np.argmax(self.cluster_sizes()))


def kmeans(points: np.ndarray, k: int, max_iterations: int = 100) -> KMeansResult:
    """Cluster ``points`` (n, d) into ``k`` clusters.

    Initialisation is deterministic maximin: the first centre is the point
    closest to the global mean; each subsequent centre is the point
    farthest from all chosen centres.  Degenerate inputs (fewer distinct
    points than k) are handled by duplicating centres, which simply yields
    empty clusters.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("points must be a 2-D array (n, d)")
    n = len(points)
    if k < 1:
        raise ValueError("k must be >= 1")
    if n == 0:
        raise ValueError("cannot cluster zero points")

    centers = _maximin_init(points, k)
    labels = np.zeros(n, dtype=np.int64)
    for iteration in range(1, max_iterations + 1):
        distances = _sq_distances(points, centers)
        new_labels = np.argmin(distances, axis=1)
        for c in range(k):
            members = points[new_labels == c]
            if len(members):
                centers[c] = members.mean(axis=0)
        if np.array_equal(new_labels, labels) and iteration > 1:
            break
        labels = new_labels
    inertia = float(_sq_distances(points, centers)[np.arange(n), labels].sum())
    return KMeansResult(
        centers=centers, labels=labels, inertia=inertia, n_iterations=iteration
    )


def _maximin_init(points: np.ndarray, k: int) -> np.ndarray:
    mean = points.mean(axis=0)
    first = int(np.argmin(((points - mean) ** 2).sum(axis=1)))
    chosen = [points[first]]
    for _ in range(1, k):
        d = _sq_distances(points, np.asarray(chosen)).min(axis=1)
        chosen.append(points[int(np.argmax(d))])
    return np.asarray(chosen, dtype=np.float64)


def _sq_distances(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """(n, k) squared Euclidean distances."""
    diff = points[:, None, :] - centers[None, :, :]
    return (diff ** 2).sum(axis=2)
