"""GPUMech: interval-analysis performance model for GPU cores.

The paper's primary contribution.  The pipeline (Fig. 5):

1. :mod:`repro.core.latency` — per-PC latencies: fixed for compute PCs,
   AMAT from the cache simulator for memory PCs (Sec. V-B).
2. :mod:`repro.core.interval` — the interval algorithm builds each warp's
   interval profile assuming in-order single-warp execution (Sec. III-B).
3. :mod:`repro.core.representative` — k-means (k=2) over (warp
   performance, instruction count) feature vectors picks the
   representative warp (Sec. III-C).
4. :mod:`repro.core.multithreading` — non-overlapped-instruction models
   of the round-robin and greedy-then-oldest schedulers (Sec. IV-A).
5. :mod:`repro.core.contention` — MSHR and DRAM-bandwidth queuing-delay
   models (Sec. IV-B).
6. :mod:`repro.core.cpi_stack` — CPI-stack construction (Sec. VII).

:class:`repro.core.model.GPUMech` ties the stages together.
"""

from repro.core.interval import Interval, IntervalProfile, build_interval_profile
from repro.core.latency import LatencyTable
from repro.core.kmeans import KMeansResult, kmeans
from repro.core.representative import (
    RepresentativeSelection,
    select_representative,
)
from repro.core.multithreading import MultithreadingResult, model_multithreading
from repro.core.contention import ContentionResult, model_contention
from repro.core.cpi_stack import (
    CPIStack,
    StallType,
    build_cpi_stack,
    render_stacks,
)
from repro.core.model import GPUMech, Prediction

__all__ = [
    "CPIStack",
    "ContentionResult",
    "GPUMech",
    "Interval",
    "IntervalProfile",
    "KMeansResult",
    "LatencyTable",
    "MultithreadingResult",
    "Prediction",
    "RepresentativeSelection",
    "StallType",
    "build_cpi_stack",
    "render_stacks",
    "build_interval_profile",
    "kmeans",
    "model_contention",
    "model_multithreading",
    "select_representative",
]
