"""Batched interval construction: all warps' Eq. 4 scans in one pass.

The scalar :func:`~repro.core.interval.build_interval_profile` walks one
warp's trace in Python, one dynamic instruction per iteration.  This
backend propagates producer latencies for *every* warp simultaneously:
the issue-cycle recurrence still marches over instruction positions
sequentially (issue(k) depends on issue(k-1)), but each step is a
vectorized ``np.maximum``-style update across the whole warp axis — a
gather of the (at most ``MAX_DEPS``) producer completion times followed
by an ordered strict-greater update chain that reproduces the scalar
cause-selection tie-breaking exactly (first producer wins ties).

Interval segmentation then happens on a single *flattened* position
axis (every warp's trace concatenated, warp boundaries forced as
segment starts): integer per-interval counts come from exact
``np.add.reduceat`` sums (integer reduction order cannot change the
result), while the float expected-footprint accumulators
(``exp_mshr_reqs`` & co.) are summed left-to-right over load
instructions only — ``reduceat``'s pairwise summation is *not*
bitwise-compatible with the scalar loop's sequential adds, and bitwise
equality with the scalar backend is the contract
(``tests/test_vectorized_equivalence.py``).
"""

from __future__ import annotations

import gc
from typing import List, Sequence

import numpy as np

from repro.core.interval import Interval, IntervalProfile
from repro.core.latency import LatencyTable
from repro.memory.hierarchy import MissEvent
from repro.trace.trace_types import MAX_DEPS, OpCode, WarpTrace


def _issue_clocks(
    deps: np.ndarray,
    lat: np.ndarray,
    step: float,
) -> "tuple[np.ndarray, np.ndarray]":
    """Run the Eq. 4 recurrence over ``(n_warps, max_len)`` columns.

    Returns per-position ``(stall, cause)`` arrays; positions past a
    warp's length hold garbage and are sliced off by the caller (their
    deps are padded to -1, so they cannot perturb live positions).
    """
    n_warps, max_len = lat.shape
    issue = np.zeros((n_warps, max_len), dtype=np.float64)
    stall = np.zeros((n_warps, max_len), dtype=np.float64)
    cause = np.full((n_warps, max_len), -1, dtype=np.int32)
    rows = np.arange(n_warps)
    prev = np.full(n_warps, -step, dtype=np.float64)
    for k in range(max_len):
        earliest = prev + step
        ready = earliest.copy()
        best = np.full(n_warps, -1, dtype=np.int32)
        for j in range(MAX_DEPS):
            dep = deps[:, k, j]
            valid = dep >= 0
            if not valid.any():
                continue
            clipped = np.where(valid, dep, 0)
            done = issue[rows, clipped] + lat[rows, clipped]
            # Strict > keeps the scalar first-wins tie-breaking.
            update = valid & (done > ready)
            ready = np.where(update, done, ready)
            best = np.where(update, dep, best)
        issue[:, k] = ready
        stall[:, k] = ready - earliest
        cause[:, k] = best
        prev = ready
    return stall, cause


def build_interval_profiles(
    warps: Sequence[WarpTrace],
    latency_table: LatencyTable,
    issue_rate: float = 1.0,
) -> List[IntervalProfile]:
    """Vectorized counterpart of per-warp ``build_interval_profile``."""
    n_warps = len(warps)
    if not n_warps:
        return []
    lengths = np.array([len(w) for w in warps], dtype=np.int64)
    max_len = int(lengths.max())
    if not max_len:
        return [
            IntervalProfile(warp_id=w.warp_id, issue_rate=issue_rate)
            for w in warps
        ]

    # Generational GC is paused for the whole build: none of the
    # millions of boxed scalars and Interval objects created here can be
    # part of a cycle, and letting collections walk the growing heap
    # measured ~7x slower at large launches.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        return _build(warps, latency_table, issue_rate, lengths)
    finally:
        if gc_was_enabled:
            gc.enable()


def _build(
    warps: Sequence[WarpTrace],
    latency_table: LatencyTable,
    issue_rate: float,
    lengths: np.ndarray,
) -> List[IntervalProfile]:
    n_warps = len(warps)
    max_len = int(lengths.max())
    lat_by_pc = latency_table.as_array
    step = 1.0 / issue_rate
    warp_starts = np.zeros(n_warps + 1, dtype=np.int64)
    np.cumsum(lengths, out=warp_starts[1:])
    total = int(warp_starts[-1])

    # Run the recurrence in warp chunks so the padded (chunk, max_len)
    # working set stays cache/RAM friendly at large launches (warps are
    # independent, so chunking cannot change any value).
    chunk = max(1, 4_000_000 // max_len)
    stall_parts = []
    cause_parts = []
    for lo in range(0, n_warps, chunk):
        sub = warps[lo : lo + chunk]
        sub_len = lengths[lo : lo + chunk]
        m = int(sub_len.max())
        if not m:
            continue
        deps = np.full((len(sub), m, MAX_DEPS), -1, dtype=np.int32)
        lat = np.zeros((len(sub), m), dtype=np.float64)
        for i, warp in enumerate(sub):
            n = len(warp)
            deps[i, :n] = warp.deps
            lat[i, :n] = lat_by_pc[warp.pcs]
        stall_c, cause_c = _issue_clocks(deps, lat, step)
        valid_c = np.arange(m) < sub_len[:, None]
        stall_parts.append(stall_c[valid_c])
        # Stall causes are per-warp instruction indices; lift them to
        # the flat axis (garbage where cause is -1, masked out below).
        cause_parts.append(
            (cause_c + warp_starts[lo : lo + len(sub), None])[valid_c]
        )
    stall_flat = np.concatenate(stall_parts)
    cause_flat = np.concatenate(cause_parts)

    # Per-load expected-footprint fractions, as plain Python floats so
    # the per-interval accumulation below is the scalar loop verbatim.
    frac_by_pc = {}
    for pc, stats in latency_table.pc_stats.items():
        if stats.n_requests:
            frac_by_pc[pc] = (
                stats.req_l1_miss_fraction,
                stats.req_l2_miss_fraction,
                1.0 - stats.inst_event_fraction(MissEvent.L1_HIT),
                stats.inst_event_fraction(MissEvent.L2_MISS),
            )

    # ------------------------------------------------------------------
    # Flattened segmentation: every warp's trace concatenated into one
    # position axis, so the cut/sum/gather machinery below runs once for
    # the whole launch instead of once per warp.  Warp boundaries are
    # forced segment starts, which is exactly the scalar semantics (each
    # warp opens a fresh interval and its first instruction never closes
    # one).
    # ------------------------------------------------------------------
    ops_flat = np.concatenate([w.ops for w in warps])
    pcs_flat = np.concatenate([w.pcs for w in warps])
    nreqs_flat = np.concatenate(
        [np.diff(w.req_offsets) for w in warps]
    )
    conflict_flat = np.concatenate([w.conflict for w in warps])

    # An interval closes at every stalled position except a warp's first
    # instruction (the open interval is never empty past k=0).
    boundary = stall_flat > 0.0
    nonempty_starts = warp_starts[:-1][lengths > 0]
    boundary[nonempty_starts] = False
    cuts = np.flatnonzero(boundary)
    starts = np.sort(np.concatenate((nonempty_starts, cuts)))
    n_seg = len(starts)
    ends = np.append(starts[1:], total)

    is_load = ops_flat == OpCode.LOAD
    is_store = ops_flat == OpCode.STORE

    seg_insts = ends - starts
    seg_loads = _seg_sum(is_load.astype(np.int64), starts)
    seg_stores = _seg_sum(is_store.astype(np.int64), starts)
    seg_load_reqs = _seg_sum(np.where(is_load, nreqs_flat, 0), starts)
    seg_store_reqs = _seg_sum(np.where(is_store, nreqs_flat, 0), starts)
    seg_sfu = _seg_sum((ops_flat == OpCode.SFU).astype(np.int64), starts)
    is_smem = (ops_flat == OpCode.SMEM_LOAD) | (
        ops_flat == OpCode.SMEM_STORE
    )
    seg_smem = _seg_sum(is_smem.astype(np.int64), starts)
    seg_slots = _seg_sum(
        np.where(is_smem, np.maximum(conflict_flat, 1).astype(np.int64), 0),
        starts,
    )

    # A segment is closed by a stall iff its end position is a cut; the
    # last segment of each warp ends at the next warp's start (or the
    # end of the flat axis) and carries no stall/cause.
    end_pos = np.minimum(ends, total - 1)
    closing = (ends < total) & boundary[end_pos]
    stall_seg = np.where(closing, stall_flat[end_pos], 0.0)
    cause_idx = np.clip(cause_flat[end_pos], 0, total - 1)
    cause_pc_seg = np.where(closing, pcs_flat[cause_idx], -1)
    cause_mem_seg = closing & (ops_flat[cause_idx] == OpCode.LOAD)

    # Float accumulators via ``np.add.at``: unbuffered, so repeated
    # segment indices accumulate sequentially in load order — the exact
    # left-to-right `+=` ordering of the scalar loop (a pairwise
    # ``reduceat`` would not be bitwise-compatible).  PCs without stats
    # contribute +0.0, which is exact for these non-negative sums.
    e0 = np.zeros(n_seg)
    e1 = np.zeros(n_seg)
    e2 = np.zeros(n_seg)
    e3 = np.zeros(n_seg)
    load_idx = np.flatnonzero(is_load)
    if load_idx.size:
        pc_span = int(pcs_flat.max()) + 1
        fracs = np.zeros((4, pc_span))
        for pc, fr in frac_by_pc.items():
            if pc < pc_span:
                fracs[:, pc] = fr
        seg_of = np.searchsorted(starts, load_idx, side="right") - 1
        load_pcs = pcs_flat[load_idx]
        load_reqs = nreqs_flat[load_idx].astype(np.float64)
        np.add.at(e0, seg_of, load_reqs * fracs[0][load_pcs])
        np.add.at(e1, seg_of, load_reqs * fracs[1][load_pcs])
        np.add.at(e2, seg_of, fracs[2][load_pcs])
        np.add.at(e3, seg_of, fracs[3][load_pcs])

    # One C-level construction pass for every interval of every warp
    # (GC is paused by the caller for this bulk allocation).
    intervals = list(
        map(
            Interval,
            seg_insts.tolist(),
            stall_seg.tolist(),
            cause_pc_seg.tolist(),
            cause_mem_seg.tolist(),
            seg_loads.tolist(),
            seg_stores.tolist(),
            seg_load_reqs.tolist(),
            seg_store_reqs.tolist(),
            seg_sfu.tolist(),
            seg_smem.tolist(),
            seg_slots.tolist(),
            e0.tolist(),
            e1.tolist(),
            e2.tolist(),
            e3.tolist(),
        )
    )

    # Hand each warp its contiguous slice of the flat interval list.
    seg_warp = np.searchsorted(warp_starts[1:], starts, side="right")
    seg_counts = np.bincount(seg_warp, minlength=n_warps).tolist()
    profiles = []
    pos = 0
    for warp, count in zip(warps, seg_counts):
        profile = IntervalProfile(
            warp_id=warp.warp_id, issue_rate=issue_rate
        )
        profile.intervals = intervals[pos : pos + count]
        pos += count
        profiles.append(profile)
    return profiles


def _seg_sum(values: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Exact per-segment integer sums (reduceat on int64)."""
    return np.add.reduceat(values, starts)
