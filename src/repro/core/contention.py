"""Resource-contention models: MSHR and DRAM bandwidth (Sec. IV-B).

Both models walk the representative warp's intervals and predict the
queuing delay each interval's memory traffic suffers, assuming every
resident warp replays the representative warp's behaviour concurrently.

MSHR model (Eq. 18-20)
    An interval's concurrent MSHR load is the expected number of
    L1-missing *read* requests from all warps (stores never allocate
    MSHRs).  With ``N`` requests contending for ``M`` entries, request
    ``j`` is serviced in wave ``ceil(j / M)``, each wave taking one
    average miss latency; averaging over j and subtracting the
    uncontended latency yields the expected queuing delay per request
    (Eq. 19).  The delay is charged once per *memory instruction* — a
    divergent instruction's requests overlap their queuing — and only
    when the interval's requests exceed the MSHR capacity (Eq. 20).

DRAM bandwidth model (Eq. 21-23)
    The DRAM bus is an M/D/1 queue: service time ``s = freq * L / B``
    (Eq. 22), arrival rate from all cores spread over the interval's
    cycles (Eq. 23), expected wait ``lambda * s^2 / (2 (1 - rho))``
    capped at half the maximum backlog (Eq. 21).  Write-through store
    traffic and L2-missing read traffic both contribute to the arrival
    rate — the asymmetry that makes write-divergent kernels
    (``kmeans_invert_mapping``) DRAM-queue-bound even when their loads
    hit in the L1 — but the delay is only charged to the load
    instructions that actually reach DRAM (stores are fire-and-forget
    and never stall the warp).

Normalisation: queueing delays are converted to CPI per
*core*-instruction (``n_warps * rep_insts``), keeping units consistent
with the multithreading model; see DESIGN.md ("Modelling notes") for why
the per-representative-warp-instruction reading of Eq. 17 is
dimensionally inconsistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.config import GPUConfig
from repro.core.interval import IntervalProfile


@dataclass
class ContentionResult:
    """Predicted queuing-delay CPI components.

    Besides the paper's per-interval expected queuing delays
    (``cpi_mshr_model``, ``cpi_queue_model``), two *throughput floors*
    bound the sustained service rates of the contended resources:

    * ``cpi_mshr_floor`` — the MSHR file retires at most ``n_mshrs``
      misses per ``avg_miss_latency`` cycles, so per-core-instruction CPI
      cannot drop below ``avg_miss_latency * miss_reqs_per_inst /
      n_mshrs``.
    * ``cpi_bandwidth_floor`` — the shared DRAM bus serves one line per
      ``s`` cycles, so CPI cannot drop below ``s * n_cores *
      dram_reqs_per_inst``.  This is what makes write-divergent kernels
      bandwidth-bound even though stores are fire-and-forget: their
      traffic builds a *sustained* backlog that the per-interval M/D/1
      wait (a transient-burst model) cannot represent.

    The floors are lower *bounds on total CPI*, not additive stall terms;
    :meth:`effective_components` folds them in against a given
    multithreading CPI.
    """

    cpi_mshr_model: float
    cpi_queue_model: float
    cpi_mshr_floor: float
    cpi_bandwidth_floor: float
    per_interval_mshr: List[float]
    per_interval_queue: List[float]
    avg_miss_latency: float
    # SFU-contention extension (zero under the paper's balanced-design
    # assumption, i.e. n_sfu_units == warp_size):
    cpi_sfu_model: float = 0.0
    cpi_sfu_floor: float = 0.0
    #: Scratchpad bank-serialisation throughput floor (extension): the
    #: shared-memory LSU serves one bank access per cycle, so CPI cannot
    #: drop below the serialised slots per instruction.
    cpi_smem_floor: float = 0.0

    def effective_components(self, cpi_multithreading: float):
        """(MSHR, SFU, SMEM, QUEUE) CPI components after the floors.

        Each component is at least its per-interval model value; the MSHR
        component grows until ``mt + MSHR`` reaches the MSHR throughput
        floor, the SFU component until the running total reaches the SFU
        occupancy floor, then the QUEUE component until the total reaches
        the bandwidth floor.  The result is monotone in the floors and
        keeps the Table II model ladder (MT <= MT_MSHR <= MT_MSHR_BAND)
        intact.
        """
        mshr = self.cpi_mshr_model
        if self.cpi_mshr_floor > cpi_multithreading + mshr:
            mshr = self.cpi_mshr_floor - cpi_multithreading
        sfu = self.cpi_sfu_model
        total = cpi_multithreading + mshr + sfu
        if self.cpi_sfu_floor > total:
            sfu = self.cpi_sfu_floor - cpi_multithreading - mshr
        smem = 0.0
        total = cpi_multithreading + mshr + sfu
        if self.cpi_smem_floor > total:
            smem = self.cpi_smem_floor - total
        queue = self.cpi_queue_model
        total = cpi_multithreading + mshr + sfu + smem + queue
        if self.cpi_bandwidth_floor > total:
            queue = (
                self.cpi_bandwidth_floor - cpi_multithreading - mshr - sfu
                - smem
            )
        return mshr, sfu, smem, queue

    # Back-compat single numbers (per-interval models only):

    @property
    def cpi_mshr(self) -> float:
        """Per-interval MSHR queuing CPI (floors not applied)."""
        return self.cpi_mshr_model

    @property
    def cpi_queue(self) -> float:
        """Per-interval DRAM queuing CPI (floors not applied)."""
        return self.cpi_queue_model

    @property
    def cpi(self) -> float:
        """CPI_rc_contention (Eq. 17, per core-instruction, no floors)."""
        return self.cpi_mshr_model + self.cpi_queue_model


def _mean_wave(n_requests: float, n_mshrs: int) -> float:
    """Mean over j=1..N of ceil(j / M): the average service wave index."""
    n = int(n_requests)
    if n <= 0:
        return 1.0
    full = n // n_mshrs
    total = n_mshrs * full * (full + 1) // 2 + (n - full * n_mshrs) * (full + 1)
    return total / n


def mshr_queuing_delay(
    core_reqs: float, n_mshrs: int, avg_miss_latency: float
) -> float:
    """Eq. 19: expected per-request queuing delay from limited MSHRs."""
    if core_reqs <= n_mshrs:
        return 0.0
    return avg_miss_latency * (_mean_wave(core_reqs, n_mshrs) - 1.0)


def md1_wait(total_reqs: float, interval_cycles: float, service: float) -> float:
    """Expected M/D/1 waiting time, capped at half the max backlog (Eq. 21).

    The generic deterministic-service queue used for the DRAM bus and,
    in the extension, for the SFU pipeline.
    """
    if total_reqs <= 0.0 or interval_cycles <= 0.0:
        return 0.0
    arrival_rate = total_reqs / interval_cycles  # Eq. 23
    rho = arrival_rate * service  # Eq. 22
    cap = service * total_reqs / 2.0  # Eq. 21's backlog cap
    if rho >= 1.0:
        return cap
    wait = arrival_rate * service * service / (2.0 * (1.0 - rho))
    return min(wait, cap)


def dram_queuing_delay(
    core_reqs: float,
    interval_cycles: float,
    config: GPUConfig,
) -> float:
    """Eq. 21-23: expected per-request M/D/1 wait on the DRAM bus.

    With ``n_dram_channels > 1`` (extension) the traffic splits evenly
    over the channels while each serves at 1/n of the aggregate rate:
    utilisation is unchanged, per-request waits scale with the channel
    service time.
    """
    channels = config.n_dram_channels
    return md1_wait(
        core_reqs * config.n_cores / channels,
        interval_cycles,
        config.dram_service_cycles * channels,
    )


def model_contention(
    profile: IntervalProfile,
    n_warps: int,
    config: GPUConfig,
    avg_miss_latency: float,
) -> ContentionResult:
    """Predict the contention CPI for the representative warp's profile."""
    per_mshr: List[float] = []
    per_queue: List[float] = []
    issue_rate = profile.issue_rate
    sfu_limited = config.n_sfu_units < config.warp_size
    sfu_service = config.sfu_service_cycles

    for interval in profile.intervals:
        # --- MSHRs (reads only) ------------------------------------------
        core_mshr_reqs = interval.exp_mshr_reqs * n_warps  # Eq. 18
        delay = mshr_queuing_delay(core_mshr_reqs, config.n_mshrs,
                                   avg_miss_latency)
        # Charged per memory instruction that occupies MSHRs (Eq. 20).
        per_mshr.append(delay * interval.exp_mshr_loads)

        # --- DRAM bandwidth (reads that miss L2 + write-through stores) --
        core_dram_reqs = interval.dram_reqs * n_warps
        wait = dram_queuing_delay(
            core_dram_reqs, interval.cycles(issue_rate), config
        )
        per_queue.append(wait * interval.exp_dram_loads)

    total_insts = n_warps * profile.n_insts
    cpi_mshr = sum(per_mshr) / total_insts if total_insts else 0.0
    cpi_queue = sum(per_queue) / total_insts if total_insts else 0.0

    rep_insts = profile.n_insts
    mshr_reqs = sum(i.exp_mshr_reqs for i in profile.intervals)
    dram_reqs = sum(i.dram_reqs for i in profile.intervals)
    sfu_insts = sum(i.n_sfu for i in profile.intervals)
    smem_slots = sum(i.smem_slots for i in profile.intervals)
    mshr_floor = 0.0
    bandwidth_floor = 0.0
    sfu_floor = 0.0
    smem_floor = 0.0
    if rep_insts:
        mshr_floor = (
            avg_miss_latency * (mshr_reqs / rep_insts) / config.n_mshrs
        )
        bandwidth_floor = (
            config.dram_service_cycles * config.n_cores * dram_reqs / rep_insts
        )
        if smem_slots:
            # One bank access per cycle through the scratchpad LSU.
            smem_floor = smem_slots / rep_insts
        if sfu_limited and sfu_insts:
            # Each SFU warp-instruction occupies the unit for sfu_service
            # issue slots; non-SFU instructions issue concurrently, so
            # the bound is a pure throughput floor on total CPI:
            # time >= sfu_service * sfu_insts.
            sfu_floor = sfu_service * sfu_insts / rep_insts
    return ContentionResult(
        cpi_mshr_model=cpi_mshr,
        cpi_queue_model=cpi_queue,
        cpi_mshr_floor=mshr_floor,
        cpi_bandwidth_floor=bandwidth_floor,
        per_interval_mshr=per_mshr,
        per_interval_queue=per_queue,
        avg_miss_latency=avg_miss_latency,
        cpi_sfu_model=0.0,
        cpi_sfu_floor=sfu_floor,
        cpi_smem_floor=smem_floor,
    )
