"""CPI-stack construction (Sec. VII, Table III).

A CPI stack breaks predicted CPI into additive categories so developers
can see *what* limits performance:

====================  =====================================================
Category              Cycles attributed to it
====================  =====================================================
BASE                  instruction issue (1/issue_rate per instruction)
DEP                   stalls on compute-instruction dependencies
L1                    stalls on loads served by the L1
L2                    stalls on loads served by the L2
DRAM                  stalls on loads served by DRAM (base access latency)
MSHR                  modeled MSHR queuing delay
QUEUE                 modeled DRAM-bandwidth queuing delay
====================  =====================================================

Construction follows the paper: build the representative warp's stack by
attributing each interval's stall to its cause (memory stalls split by
the causing PC's miss-event distribution), shrink every category by
``CPI_multithreading / CPI_single_warp`` so relative importance survives
multithreading, then append the MSHR and QUEUE categories from the
contention model.  The stack sums exactly to ``CPI_final``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.config import GPUConfig
from repro.core.contention import ContentionResult
from repro.core.interval import IntervalProfile
from repro.core.latency import LatencyTable
from repro.core.multithreading import MultithreadingResult
from repro.memory.hierarchy import MissEvent


class StallType(enum.Enum):
    """CPI-stack categories (Table III, plus the SFU extension).

    ``SFU`` is not in the paper's Table III: it carries the SFU-pipeline
    contention of the extension model and is zero under the paper's
    balanced-design assumption (``n_sfu_units == warp_size``).
    """

    BASE = "BASE"
    DEP = "DEP"
    L1 = "L1"
    L2 = "L2"
    DRAM = "DRAM"
    MSHR = "MSHR"
    QUEUE = "QUEUE"
    SFU = "SFU"
    SMEM = "SMEM"


_EVENT_CATEGORY = {
    MissEvent.L1_HIT: StallType.L1,
    MissEvent.L2_HIT: StallType.L2,
    MissEvent.L2_MISS: StallType.DRAM,
}


@dataclass
class CPIStack:
    """An additive CPI breakdown."""

    components: Dict[StallType, float] = field(
        default_factory=lambda: {t: 0.0 for t in StallType}
    )

    def __getitem__(self, key: StallType) -> float:
        return self.components[key]

    @property
    def total(self) -> float:
        """Sum of all categories (the final CPI)."""
        return sum(self.components.values())

    def scaled(self, factor: float) -> "CPIStack":
        """A copy with every category multiplied by ``factor``."""
        return CPIStack({t: v * factor for t, v in self.components.items()})

    def as_dict(self) -> Dict[str, float]:
        """Category-name -> value mapping (JSON-friendly)."""
        return {t.value: v for t, v in self.components.items()}

    def render(self, width: int = 50) -> str:
        """ASCII bar rendering for terminal reports."""
        total = self.total or 1.0
        lines = ["CPI stack (total %.3f):" % self.total]
        for stall_type in StallType:
            value = self.components[stall_type]
            bar = "#" * int(round(width * value / total))
            lines.append("  %-5s %8.3f  %s" % (stall_type.value, value, bar))
        return "\n".join(lines)


def render_stacks(
    stacks: "Dict[str, CPIStack]",
    width: int = 60,
    normalise_to: Optional[float] = None,
) -> str:
    """Side-by-side horizontal rendering of several CPI stacks.

    The Fig. 16 visualization: one bar per configuration (e.g. warp
    count), segmented by category, on a shared scale.  ``normalise_to``
    divides all values (the paper normalises to the 8-warp oracle CPI).
    """
    glyphs = {
        StallType.BASE: "B",
        StallType.DEP: "D",
        StallType.L1: "1",
        StallType.L2: "2",
        StallType.DRAM: "M",
        StallType.MSHR: "H",
        StallType.QUEUE: "Q",
        StallType.SFU: "S",
        StallType.SMEM: "P",
    }
    scale = normalise_to if normalise_to else 1.0
    peak = max((stack.total / scale for stack in stacks.values()), default=1.0)
    peak = peak or 1.0
    label_width = max((len(label) for label in stacks), default=0)
    lines = [
        "CPI stacks (%s)" % ", ".join(
            "%s=%s" % (g, t.value) for t, g in glyphs.items()
        )
    ]
    for label, stack in stacks.items():
        bar = []
        for stall_type in StallType:
            segment = int(round(width * (stack[stall_type] / scale) / peak))
            bar.append(glyphs[stall_type] * segment)
        lines.append(
            "%s |%s| %.3f"
            % (label.rjust(label_width), "".join(bar), stack.total / scale)
        )
    return "\n".join(lines)


def single_warp_stack(
    profile: IntervalProfile, latency_table: LatencyTable
) -> CPIStack:
    """The representative warp's per-instruction CPI stack."""
    stack = CPIStack()
    n_insts = profile.n_insts
    if not n_insts:
        return stack
    components = stack.components
    components[StallType.BASE] = 1.0 / profile.issue_rate
    for interval in profile.intervals:
        stall = interval.stall_cycles
        if stall <= 0.0:
            continue
        if not interval.cause_is_memory:
            components[StallType.DEP] += stall / n_insts
            continue
        stats = latency_table.stats_for(interval.cause_pc)
        if stats is None or not stats.n_insts:
            components[StallType.DEP] += stall / n_insts
            continue
        for event, category in _EVENT_CATEGORY.items():
            fraction = stats.inst_event_fraction(event)
            components[category] += stall * fraction / n_insts
    return stack


def build_cpi_stack(
    profile: IntervalProfile,
    latency_table: LatencyTable,
    multithreading: MultithreadingResult,
    contention: ContentionResult,
    config: GPUConfig,
) -> CPIStack:
    """The kernel's CPI stack under multithreading and contention."""
    base = single_warp_stack(profile, latency_table)
    single_cpi = base.total
    factor = multithreading.cpi / single_cpi if single_cpi else 0.0
    stack = base.scaled(factor)
    mshr, sfu, smem, queue = contention.effective_components(
        multithreading.cpi
    )
    stack.components[StallType.MSHR] = mshr
    stack.components[StallType.SFU] = sfu
    stack.components[StallType.SMEM] = smem
    stack.components[StallType.QUEUE] = queue
    return stack
