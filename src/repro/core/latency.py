"""Per-PC instruction latencies (Sec. V-B of the paper).

Compute PCs have fixed latencies from the machine configuration; memory
PCs get the *average memory access time* of their miss-event distribution
as collected by the functional cache simulator.  (The paper's example: a
PC with 90% L2 hits at 120 cycles and 10% L2 misses at 420 cycles gets a
latency of 150 cycles.)

Stores are priced at one cycle: nothing ever depends on a store, so their
latency never appears on a dependence edge — consistent with both the
timing oracle and the paper's treatment of stores as off-critical-path.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.config import GPUConfig
from repro.memory.cache_simulator import CacheSimResult, PCStats
from repro.trace.trace_types import KernelTrace, OpCode


class LatencyTable:
    """Latency (cycles) and miss statistics per static instruction."""

    def __init__(
        self,
        latencies: np.ndarray,
        pc_stats: Dict[int, PCStats],
        config: GPUConfig,
    ):
        self._latencies = latencies
        self.pc_stats = pc_stats
        self.config = config

    def latency(self, pc: int) -> float:
        """Latency (cycles) of the static instruction at ``pc``."""
        return float(self._latencies[pc])

    @property
    def as_array(self) -> np.ndarray:
        """Vector of latencies indexed by PC (for vectorised lookups)."""
        return self._latencies

    def stats_for(self, pc: int) -> Optional[PCStats]:
        """Cache statistics of a memory PC (None for compute PCs)."""
        return self.pc_stats.get(pc)


def build_latency_table(
    trace: KernelTrace,
    cache_result: CacheSimResult,
    config: GPUConfig,
) -> LatencyTable:
    """Assign a latency to every static PC observed in the trace."""
    max_pc = max(int(w.pcs.max()) for w in trace.warps if len(w))
    latencies = np.ones(max_pc + 1, dtype=np.float64)
    seen = np.zeros(max_pc + 1, dtype=bool)
    # Shared-memory loads are priced by their mean bank-conflict degree:
    # latency + (degree - 1) serialised replays.
    conflict_sum = np.zeros(max_pc + 1, dtype=np.float64)
    conflict_count = np.zeros(max_pc + 1, dtype=np.int64)
    for warp in trace.warps:
        smem = warp.is_shared_memory
        if smem.any():
            np.add.at(conflict_sum, warp.pcs[smem], warp.conflict[smem])
            np.add.at(conflict_count, warp.pcs[smem], 1)
        fresh = ~seen[warp.pcs]
        if not fresh.any():
            continue
        for pc, op in zip(warp.pcs[fresh].tolist(), warp.ops[fresh].tolist()):
            latencies[pc] = _latency_of(pc, OpCode(op), cache_result, config)
            seen[pc] = True
    smem_pcs = np.flatnonzero(conflict_count)
    for pc in smem_pcs.tolist():
        mean_degree = conflict_sum[pc] / conflict_count[pc]
        latencies[pc] += max(mean_degree - 1.0, 0.0)
    return LatencyTable(latencies, cache_result.per_pc, config)


def _latency_of(
    pc: int, op: OpCode, cache_result: CacheSimResult, config: GPUConfig
) -> float:
    if op == OpCode.LOAD:
        stats = cache_result.per_pc.get(pc)
        if stats is None:  # load never replayed (defensive)
            return float(config.l1_latency)
        return stats.amat(config)
    if op in (OpCode.STORE, OpCode.SMEM_STORE):
        return 1.0
    if op == OpCode.SMEM_LOAD:
        # Base scratchpad latency; the conflict replays are added from
        # the trace's per-PC mean degree by build_latency_table.
        return float(config.smem_latency)
    if op in (OpCode.BRANCH, OpCode.EXIT, OpCode.BARRIER):
        # Barriers are invisible to the model (Sec. V-B: within-block
        # synchronisation overhead is typically low); they cost their
        # issue slot only.
        return 1.0
    return float(config.op_latencies[op.latency_class])
