"""Multithreading model: non-overlapped instructions (Sec. IV-A).

Given the representative warp's interval profile and the number of
concurrently resident warps, predict the core's CPI under a scheduling
policy, *without* resource contention (that is layered on separately).

The key quantity is the number of **non-overlapped instructions**: the
instructions of the remaining warps that do *not* hide the representative
warp's stall cycles and therefore extend the core's execution time.

Round-robin (Eq. 10-11)
    Within an interval with ``m`` instructions there are ``m - 1``
    "waiting slots" between consecutive schedulings of the representative
    warp.  In each slot every remaining warp gets scheduled once and
    issues with probability ``issue_prob`` — those issues land *between*
    the representative warp's instructions, not inside its stall, so they
    are non-overlapped.

Greedy-then-oldest (Eq. 12-16)
    During the stall of an interval, each remaining warp that gets
    scheduled greedily issues about one interval's worth of instructions
    (``avg_interval_insts``).  Whatever the remaining warps issue beyond
    the stall's length is non-overlapped: the oldest-first rotation
    forces the representative warp to wait for it even when ready.

Two printed equations contain evident typos, which we correct (and
document here; the unit tests pin the corrected behaviour):

* Eq. 15 reads ``max(issue_prob * stall, 1)`` but describes a
  *probability* that a remaining warp issues during the stall — the
  bound must be an upper cap: ``min(issue_prob * stall, 1)``.
* Eq. 16 reads ``min(issued - stall, 0)`` which is never positive; the
  accompanying text ("non-overlapped instructions are incurred if the
  number of issued instructions is more than the stall cycles") requires
  ``max(issued - stall * issue_rate, 0)``.

Eq. 7 as printed is instructions/cycles (an IPC); we return its
reciprocal so ``cpi`` is cycles per core-instruction, directly comparable
with the oracle's ``total_cycles * n_cores / total_insts``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.interval import Interval, IntervalProfile


@dataclass
class MultithreadingResult:
    """CPI prediction of the multithreading model (no contention)."""

    policy: str
    n_warps: int
    cpi: float  # cycles per core-instruction
    ipc_core: float
    total_nonoverlapped: float
    per_interval_nonoverlapped: List[float]
    rep_total_cycles: float
    rep_insts: int

    @property
    def stretch(self) -> float:
        """CPI_multithreading / single-warp CPI — the Sec. VII shrink
        factor applied to the representative warp's CPI stack."""
        single = self.rep_total_cycles / self.rep_insts if self.rep_insts else 0.0
        return self.cpi / single if single else 0.0


def nonoverlapped_rr(
    interval: Interval, issue_prob: float, n_warps: int
) -> float:
    """Eq. 10-11: non-overlapped instructions of one interval under RR,
    assuming *randomly interleaved* warps (the paper's probabilistic
    counting)."""
    waiting_slots = max(interval.n_insts - 1, 0)
    return issue_prob * (n_warps - 1) * waiting_slots


def nonoverlapped_rr_lockstep(interval: Interval, n_warps: int) -> float:
    """Non-overlapped instructions under RR with *aligned* warps.

    Round-robin keeps homogeneous warps in lockstep: when the
    representative warp has issued k instructions of an interval, so has
    every other warp, so during the representative's stall the remaining
    warps have only their final instruction of the round left — exactly
    the counting of the paper's Fig. 8(a), where 4 aligned warps with a
    (3 instructions, 6 stalls) interval incur **6** non-overlapped
    instructions (the probabilistic Eq. 11 predicts 2 for that figure).

    Derivation: the interval's duration with n aligned warps is
    ``n * m_i + max(stall_i - (n - 1), 0)`` (all warps' issue rounds,
    plus whatever stall the (n-1) trailing same-round instructions cannot
    hide), so the extra cycles over the single-warp interval are
    ``(n - 1) * m_i - min(stall_i, n - 1)``.  This also reproduces the
    paper's Fig. 2 example exactly (interval of 1 instruction + 10
    stalls, 3 warps -> core IPC 3/11).
    """
    trailing_overlap = min(interval.stall_cycles, float(n_warps - 1))
    return (n_warps - 1) * interval.n_insts - trailing_overlap


def nonoverlapped_gto(
    interval: Interval,
    issue_prob: float,
    n_warps: int,
    avg_interval_insts: float,
    issue_rate: float,
) -> float:
    """Eq. 12-16 (with the min/max corrections): one interval under GTO."""
    issue_prob_in_stall = min(issue_prob * interval.stall_cycles, 1.0)
    issue_warps_in_stall = issue_prob_in_stall * (n_warps - 1)
    issued_in_stall = avg_interval_insts * issue_warps_in_stall
    return max(issued_in_stall - interval.stall_cycles * issue_rate, 0.0)


def kernel_alignment(warp_trace, latency_table) -> float:
    """Probability that two warps stay in lockstep for the whole kernel.

    Round-robin keeps homogeneous warps aligned only while every stall
    they take is identical: any load whose outcome *differs across warps
    at the same point of execution* (independent cache luck on gathers,
    first-toucher asymmetry on shared data) staggers the warps, and RR
    never re-aligns them.  The kernel-level alignment is the product over
    the distinct load PCs the representative warp executes of their
    cross-warp same-occurrence collision probabilities (see
    :meth:`~repro.memory.cache_simulator.PCStats.cross_warp_collision`):
    1.0 for streaming kernels where every warp misses identically, ~0
    once any frequently executed load behaves differently per warp.
    """
    from repro.trace.trace_types import OpCode

    alignment = 1.0
    pc_stats = latency_table.pc_stats
    seen = set()
    for pc, op in zip(warp_trace.pcs.tolist(), warp_trace.ops.tolist()):
        if op != OpCode.LOAD or pc in seen:
            continue
        seen.add(pc)
        stats = pc_stats.get(pc)
        if stats is None or not stats.n_insts:
            continue
        alignment *= stats.cross_warp_collision()
        if alignment < 1e-6:
            return 0.0
    return alignment


def model_multithreading(
    profile: IntervalProfile,
    n_warps: int,
    policy: str,
    rr_mode: str = "probabilistic",
    alignment: float = 1.0,
) -> MultithreadingResult:
    """Predict multithreaded CPI from the representative warp's profile.

    ``rr_mode`` selects the RR non-overlap counting:

    * ``"probabilistic"`` (default) — the literal Eq. 10-11
      random-interleave form; the paper's published model, and the best
      single choice against our oracle across the whole suite.
    * ``"lockstep"`` — aligned warps; matches the paper's Fig. 2/8 worked
      examples and real RR behaviour on kernels whose stalls are
      deterministic (streaming kernels, where it is substantially more
      accurate than the probabilistic form), but overestimates kernels
      whose variable memory latencies stagger the warps.
    * ``"blended"`` — mixes the two per the kernel-level ``alignment``
      probability (see :func:`kernel_alignment`), an experimental signal
      derived from cross-warp miss-event agreement.
    """
    if n_warps < 1:
        raise ValueError("n_warps must be >= 1")
    if policy not in ("rr", "gto"):
        raise ValueError("policy must be 'rr' or 'gto'")
    if rr_mode not in ("lockstep", "probabilistic", "blended"):
        raise ValueError(
            "rr_mode must be 'lockstep', 'probabilistic' or 'blended'"
        )

    issue_rate = profile.issue_rate
    issue_prob = profile.issue_prob
    avg_insts = profile.avg_interval_insts

    per_interval: List[float] = []
    if n_warps == 1:
        per_interval = [0.0] * profile.n_intervals
    elif policy == "rr":
        weight = {
            "lockstep": 1.0,
            "probabilistic": 0.0,
            "blended": min(max(alignment, 0.0), 1.0),
        }[rr_mode]
        for interval in profile.intervals:
            lockstep = nonoverlapped_rr_lockstep(interval, n_warps)
            random = nonoverlapped_rr(interval, issue_prob, n_warps)
            per_interval.append(weight * lockstep + (1.0 - weight) * random)
    else:
        per_interval = [
            nonoverlapped_gto(i, issue_prob, n_warps, avg_insts, issue_rate)
            for i in profile.intervals
        ]

    total_nonoverlapped = sum(per_interval)  # Eq. 8
    rep_insts = profile.n_insts
    rep_cycles = profile.total_cycles
    # Eq. 7 (inverted to CPI): the non-overlapped instructions add issue
    # cycles on top of the representative warp's execution time, and the
    # core retires n_warps x rep_insts instructions in that time.
    total_insts = n_warps * rep_insts
    cycles = rep_cycles + total_nonoverlapped / issue_rate
    cpi = cycles / total_insts if total_insts else 0.0
    # Physical issue-bandwidth bound: a core cannot retire more than
    # issue_rate instructions per cycle, so per-core-instruction CPI can
    # never drop below 1/issue_rate.  (The probabilistic overlap count
    # can otherwise become optimistic for heavily saturated cores.)
    cpi = max(cpi, 1.0 / issue_rate)
    return MultithreadingResult(
        policy=policy,
        n_warps=n_warps,
        cpi=cpi,
        ipc_core=1.0 / cpi if cpi else 0.0,
        total_nonoverlapped=total_nonoverlapped,
        per_interval_nonoverlapped=per_interval,
        rep_total_cycles=rep_cycles,
        rep_insts=rep_insts,
    )


def naive_multithreading_cpi(profile: IntervalProfile, n_warps: int) -> float:
    """Eq. 1: the naive model — all remaining-warp work hides in stalls."""
    if n_warps < 1:
        raise ValueError("n_warps must be >= 1")
    rep_insts = profile.n_insts
    if not rep_insts:
        return 0.0
    return profile.total_cycles / (n_warps * rep_insts)
