"""GPUMech facade: kernel → trace → profiles → CPI prediction (Fig. 5).

The expensive, *hardware-independent* work (functional emulation, the
per-warp interval profiles, representative-warp clustering) is done once
per kernel in :meth:`GPUMech.prepare` and captured in a
:class:`ModelInputs`; predictions for different warp counts, scheduling
policies or machine parameters reuse it — mirroring the paper's
observation (Sec. VI-D) that exploring hardware configurations only
requires re-running the cache simulation and the representative warp's
interval algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.config import GPUConfig
from repro.core.contention import ContentionResult
from repro.core.cpi_stack import CPIStack
from repro.core.interval import IntervalProfile
from repro.core.latency import LatencyTable
from repro.core.multithreading import MultithreadingResult, kernel_alignment
from repro.core.representative import RepresentativeSelection
from repro.isa.kernel import Kernel
from repro.memory.cache_simulator import CacheSimResult
from repro.trace.emulator import emulate
from repro.trace.memory_image import MemoryImage
from repro.trace.trace_types import KernelTrace


@dataclass
class ModelInputs:
    """Everything the multi-warp model needs, computed once per kernel."""

    trace: KernelTrace
    cache_result: CacheSimResult
    latency_table: LatencyTable
    profiles: List[IntervalProfile]
    selection: RepresentativeSelection
    avg_miss_latency: float

    @property
    def representative(self) -> IntervalProfile:
        """The selected representative warp's interval profile."""
        return self.selection.profile


@dataclass
class Prediction:
    """A GPUMech performance prediction."""

    kernel_name: str
    policy: str
    n_warps: int
    cpi: float
    cpi_multithreading: float
    cpi_mshr: float
    cpi_queue: float
    #: SFU-pipeline contention (extension; zero for balanced designs).
    cpi_sfu: float
    #: Scratchpad bank-serialisation CPI (extension; zero without smem).
    cpi_smem: float
    single_warp_cpi: float
    rep_warp_id: int
    selection_strategy: str
    cpi_stack: CPIStack
    multithreading: MultithreadingResult
    contention: ContentionResult
    #: Architecture backend that produced this prediction
    #: (``GPUConfig.arch``; see ``repro.arch``).
    arch: str = "gpumech2014"

    @property
    def ipc(self) -> float:
        """Predicted per-core instructions per cycle."""
        return 1.0 / self.cpi if self.cpi else 0.0

    @property
    def cpi_contention(self) -> float:
        """Combined memory-contention CPI (Eq. 17)."""
        return self.cpi_mshr + self.cpi_queue

    def summary(self) -> str:
        """One-line prediction description for logs and examples."""
        sfu = " + SFU %.3f" % self.cpi_sfu if self.cpi_sfu else ""
        sfu += " + SMEM %.3f" % self.cpi_smem if self.cpi_smem else ""
        return (
            "%s [%s, %d warps]: CPI %.3f = MT %.3f + MSHR %.3f + QUEUE %.3f%s "
            "(rep warp %d)"
            % (
                self.kernel_name,
                self.policy,
                self.n_warps,
                self.cpi,
                self.cpi_multithreading,
                self.cpi_mshr,
                self.cpi_queue,
                sfu,
                self.rep_warp_id,
            )
        )


def resident_warps_per_core(
    trace: KernelTrace,
    config: GPUConfig,
    warps_per_core: Optional[int] = None,
) -> int:
    """Concurrently resident warps on one core (block-granular residency).

    This is the ``#warps`` the multi-warp model plugs into Eq. 7/18 —
    the same residency the timing oracle enforces.
    """
    limit = warps_per_core if warps_per_core is not None else (
        config.max_warps_per_core
    )
    blocks = trace.n_blocks
    if not blocks:
        return 1
    warps_per_block = max(
        len(trace.warps_of_block(0)), 1
    )
    blocks_per_core = -(-blocks // config.n_cores)  # ceil division
    resident_blocks = min(max(limit // warps_per_block, 1), blocks_per_core)
    return resident_blocks * warps_per_block


class GPUMech:
    """The end-to-end GPUMech model.

    Parameters
    ----------
    config:
        Machine description (Table I); its ``scheduler`` field is the
        default policy for predictions.
    selection_strategy:
        Representative-warp strategy: ``"clustering"`` (paper),
        ``"max"``, ``"min"`` or ``"first"``.
    rr_mode:
        Round-robin non-overlap counting: ``"probabilistic"`` (Eq. 10-11,
        the default), ``"lockstep"`` or ``"blended"`` — see
        :func:`repro.core.multithreading.model_multithreading`.
    """

    def __init__(
        self,
        config: GPUConfig,
        selection_strategy: str = "clustering",
        rr_mode: str = "probabilistic",
        pipeline=None,
    ):
        self.config = config
        self.selection_strategy = selection_strategy
        self.rr_mode = rr_mode
        #: The staged pipeline backing :meth:`prepare` (lazily created;
        #: pass one explicitly to share its artifact store and counters).
        self._pipeline = pipeline

    @property
    def pipeline(self):
        """The :class:`repro.pipeline.Pipeline` this model runs through."""
        if self._pipeline is None:
            from repro.pipeline import Pipeline  # deferred: circular import

            self._pipeline = Pipeline(self.config)
        return self._pipeline

    # Stage 1: kernel-dependent, hardware-configuration-light ------------------

    def prepare(
        self,
        kernel: Optional[Kernel] = None,
        trace: Optional[KernelTrace] = None,
        memory: Optional[MemoryImage] = None,
        warps_per_core: Optional[int] = None,
    ) -> ModelInputs:
        """Run the input collector and single-warp model (Fig. 5, left).

        ``warps_per_core`` sets the residency the cache simulator models
        (Sec. V-A: the cache sim uses the modeled system's warp count);
        pass the same override you will give :meth:`predict`.

        The stage chain (cache sim → latency table → interval profiles →
        clustering) runs through :attr:`pipeline`, so repeated calls for
        the same trace and configuration are content-addressed cache hits.
        """
        if trace is None:
            if kernel is None:
                raise ValueError("provide a kernel or a pre-computed trace")
            trace = emulate(kernel, self.config, memory=memory)
        return self.pipeline.model_inputs_from_trace(
            trace,
            config=self.config,
            selection_strategy=self.selection_strategy,
            warps_per_core=warps_per_core,
        )

    # Stage 2: multi-warp model ---------------------------------------------------

    def predict(
        self,
        inputs: ModelInputs,
        n_warps: Optional[int] = None,
        policy: Optional[str] = None,
        warps_per_core: Optional[int] = None,
    ) -> Prediction:
        """Predict CPI under multithreading and contention (Fig. 5, right)."""
        from repro.arch import get_arch  # deferred: circular import

        policy = policy if policy is not None else self.config.scheduler
        if n_warps is None:
            n_warps = resident_warps_per_core(
                inputs.trace, self.config, warps_per_core
            )
        profile = inputs.representative
        alignment = 1.0
        if self.rr_mode == "blended" and policy == "rr":
            rep_trace = inputs.trace.warps[inputs.selection.index]
            alignment = kernel_alignment(rep_trace, inputs.latency_table)
        # Every microarchitecture-specific composition step dispatches
        # through the backend; gpumech2014 delegates verbatim to the
        # repro.core functions (bitwise-identical predictions).
        arch = get_arch(self.config.arch)
        multithreading = arch.model_multithreading(
            profile, n_warps, policy, self.config, rr_mode=self.rr_mode,
            alignment=alignment,
        )
        contention = arch.model_contention(
            profile, n_warps, self.config, inputs.avg_miss_latency
        )
        stack = arch.build_cpi_stack(
            profile, inputs.latency_table, multithreading, contention,
            self.config,
        )
        cpi_mshr, cpi_sfu, cpi_smem, cpi_queue = (
            contention.effective_components(multithreading.cpi)
        )
        cpi = (
            multithreading.cpi + cpi_mshr + cpi_sfu + cpi_smem + cpi_queue
        )  # Eq. 3
        return Prediction(
            kernel_name=inputs.trace.kernel_name,
            policy=policy,
            n_warps=n_warps,
            cpi=cpi,
            cpi_multithreading=multithreading.cpi,
            cpi_mshr=cpi_mshr,
            cpi_queue=cpi_queue,
            cpi_sfu=cpi_sfu,
            cpi_smem=cpi_smem,
            single_warp_cpi=profile.single_warp_cpi,
            rep_warp_id=profile.warp_id,
            selection_strategy=inputs.selection.strategy,
            cpi_stack=stack,
            multithreading=multithreading,
            contention=contention,
            arch=self.config.arch,
        )

    def predict_kernel(
        self,
        kernel: Kernel,
        memory: Optional[MemoryImage] = None,
        **predict_kwargs,
    ) -> Prediction:
        """Convenience: prepare + predict in one call."""
        return self.predict(self.prepare(kernel, memory=memory), **predict_kwargs)
