"""The interval algorithm: a warp's trace → its interval profile.

Sec. III-B of the paper.  The algorithm replays a single warp's dynamic
instruction stream under an idealised in-order core issuing one
instruction per cycle, using the per-PC latencies from the input
collector.  The issue-cycle recurrence is Eq. 4:

    issue(k) = max(issue(k-1) + 1,  max over producers p of done(p))

with ``done(p) = issue(p) + latency(p)`` (a consumer may issue
``latency`` cycles after its producer — the same semantics the timing
oracle uses, so the single-warp model and the oracle agree exactly on an
uncontended warp).

An *interval* is a run of back-to-back issued instructions followed by
the stall that ends it (Fig. 6).  Alongside the paper's (instruction
count, stall cycles) pairs, each interval records what downstream stages
need: the stall's *cause* (the producer that pushed the issue cycle out —
a compute dependence or a memory PC, for CPI-stack attribution) and the
interval's expected memory-system footprint (MSHR-occupying read
requests, DRAM-bound read/write traffic) for the contention models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import List, Sequence

from repro.core.latency import LatencyTable
from repro.memory.hierarchy import MissEvent
from repro.trace.trace_types import NO_DEP, OpCode, WarpTrace


@dataclass
class Interval:
    """One interval: issued instructions followed by a stall."""

    n_insts: int = 0
    stall_cycles: float = 0.0
    cause_pc: int = -1  # PC of the producer that caused the stall
    cause_is_memory: bool = False
    # Memory footprint of the instructions *in* this interval:
    n_loads: int = 0
    n_stores: int = 0
    load_reqs: int = 0
    store_reqs: int = 0
    # SFU instructions in this interval (for the SFU-contention extension).
    n_sfu: int = 0
    # Scratchpad accesses: instruction count and total serialised bank
    # slots (sum of conflict degrees).
    n_smem: int = 0
    smem_slots: int = 0
    # Expected values under the cache simulator's miss distributions:
    exp_mshr_reqs: float = 0.0  # read requests that occupy MSHRs (L1 misses)
    exp_dram_read_reqs: float = 0.0  # read requests that reach DRAM
    exp_mshr_loads: float = 0.0  # load instructions with >= 1 L1 miss
    exp_dram_loads: float = 0.0  # load instructions stalled on DRAM

    @property
    def n_mem_insts(self) -> int:
        """Memory instructions issued in this interval."""
        return self.n_loads + self.n_stores

    @property
    def dram_reqs(self) -> float:
        """Expected DRAM bus transfers: write-through stores + L2 misses."""
        return self.store_reqs + self.exp_dram_read_reqs

    def cycles(self, issue_rate: float) -> float:
        """Total cycles of the interval (issue + stall)."""
        return self.n_insts / issue_rate + self.stall_cycles


@dataclass
class IntervalProfile:
    """A warp's collection of intervals (Eq. 2) plus aggregates."""

    warp_id: int
    intervals: List[Interval] = field(default_factory=list)
    issue_rate: float = 1.0

    @property
    def n_intervals(self) -> int:
        """Number of intervals in the profile."""
        return len(self.intervals)

    @cached_property
    def n_insts(self) -> int:
        """Total instructions across all intervals.

        Computed once on first access (profiles are frozen after
        construction) — the downstream models read this inside per-cycle
        loops, where an O(n_intervals) re-sum per access dominated.
        """
        return sum(i.n_insts for i in self.intervals)

    @cached_property
    def total_stall_cycles(self) -> float:
        """Total stall cycles across all intervals (cached like
        :attr:`n_insts`; do not mutate ``intervals`` after reading)."""
        return sum(i.stall_cycles for i in self.intervals)

    @property
    def total_cycles(self) -> float:
        """Single-warp execution time (issue cycles + stalls)."""
        return self.n_insts / self.issue_rate + self.total_stall_cycles

    @property
    def warp_perf(self) -> float:
        """Single-warp IPC (Eq. 5): the clustering feature."""
        cycles = self.total_cycles
        return self.n_insts / cycles if cycles else 0.0

    @property
    def single_warp_cpi(self) -> float:
        """CPI of the warp running alone (1 / warp_perf)."""
        return 1.0 / self.warp_perf if self.n_insts else 0.0

    @property
    def avg_interval_insts(self) -> float:
        """Mean instructions per interval (Eq. 13)."""
        return self.n_insts / self.n_intervals if self.n_intervals else 0.0

    @property
    def issue_prob(self) -> float:
        """Probability a lone warp can issue in a cycle (Eq. 9).

        Identical to :attr:`warp_perf` for issue_rate 1; kept as its own
        name to mirror the paper's equations.
        """
        return self.warp_perf


def build_interval_profiles(
    warps: Sequence[WarpTrace],
    latency_table: LatencyTable,
    issue_rate: float = 1.0,
) -> List[IntervalProfile]:
    """Interval profiles for an ordered collection of warp traces.

    Dispatches to the batched numpy implementation
    (:mod:`repro.core.interval_vec`) unless ``REPRO_SCALAR=1`` selects
    the per-warp reference scan below; both produce bitwise-identical
    profiles.
    """
    from repro.backend import use_scalar

    if use_scalar():
        return [
            build_interval_profile(warp, latency_table, issue_rate)
            for warp in warps
        ]
    from repro.core.interval_vec import build_interval_profiles as vec

    return vec(warps, latency_table, issue_rate)


def build_interval_profile(
    warp: WarpTrace,
    latency_table: LatencyTable,
    issue_rate: float = 1.0,
) -> IntervalProfile:
    """Run the interval algorithm (Eq. 4) over one warp trace."""
    n = len(warp)
    profile = IntervalProfile(warp_id=warp.warp_id, issue_rate=issue_rate)
    if not n:
        return profile

    pcs = warp.pcs.tolist()
    ops = warp.ops.tolist()
    deps = warp.deps.tolist()
    nreqs = warp.requests_per_inst.tolist()
    conflicts = warp.conflict.tolist()
    lat = latency_table.as_array[warp.pcs].tolist()
    pc_stats = latency_table.pc_stats

    issue = [0.0] * n
    step = 1.0 / issue_rate
    current = Interval()
    intervals = profile.intervals

    prev_issue = -step
    for k in range(n):
        earliest = prev_issue + step
        ready = earliest
        cause = -1
        for dep in deps[k]:
            if dep == NO_DEP:
                continue
            done = issue[dep] + lat[dep]
            if done > ready:
                ready = done
                cause = dep
        issue[k] = ready
        stall = ready - earliest
        if stall > 0.0 and current.n_insts:
            # Close the current interval: its instructions are the ones
            # issued before this stall; the stall's cause is the producer
            # that pushed instruction k out.
            current.stall_cycles = stall
            current.cause_pc = pcs[cause]
            current.cause_is_memory = ops[cause] == OpCode.LOAD
            intervals.append(current)
            current = Interval()
        _account(current, k, ops, pcs, nreqs, conflicts, pc_stats)
        current.n_insts += 1
        prev_issue = ready

    intervals.append(current)  # trailing interval with no stall
    return profile


def _account(interval, k, ops, pcs, nreqs, conflicts, pc_stats) -> None:
    """Add instruction k's memory footprint to the open interval."""
    op = ops[k]
    if op == OpCode.LOAD:
        interval.n_loads += 1
        reqs = nreqs[k]
        interval.load_reqs += reqs
        stats = pc_stats.get(pcs[k])
        if stats is not None and stats.n_requests:
            interval.exp_mshr_reqs += reqs * stats.req_l1_miss_fraction
            interval.exp_dram_read_reqs += reqs * stats.req_l2_miss_fraction
            interval.exp_mshr_loads += 1.0 - stats.inst_event_fraction(
                MissEvent.L1_HIT
            )
            interval.exp_dram_loads += stats.inst_event_fraction(
                MissEvent.L2_MISS
            )
    elif op == OpCode.STORE:
        interval.n_stores += 1
        interval.store_reqs += nreqs[k]
    elif op == OpCode.SFU:
        interval.n_sfu += 1
    elif op in (OpCode.SMEM_LOAD, OpCode.SMEM_STORE):
        interval.n_smem += 1
        interval.smem_slots += max(conflicts[k], 1)
