"""Memory-system substrate: caches, MSHRs, DRAM queue, cache simulator.

The functional half (``cache``, ``hierarchy``, ``cache_simulator``) is the
input collector's cache simulator from Sec. V of the paper: it replays the
traces' memory requests round-robin across warps and produces per-PC
miss-event distributions.  The timed pieces (``mshr``, ``dram``) are used
by the cycle-level oracle in :mod:`repro.timing`.
"""

from repro.memory.cache import Cache
from repro.memory.hierarchy import MemoryHierarchy, MissEvent
from repro.memory.mshr import MSHRFile
from repro.memory.dram import DRAMQueue
from repro.memory.cache_simulator import CacheSimResult, PCStats, simulate_caches

__all__ = [
    "Cache",
    "CacheSimResult",
    "DRAMQueue",
    "MSHRFile",
    "MemoryHierarchy",
    "MissEvent",
    "PCStats",
    "simulate_caches",
]
