"""Functional cache simulation: per-PC miss-event distributions (Sec. V).

Replays the memory instructions of every warp trace through the L1/L2
hierarchy *round-robin across warps* — the interleaving the paper's input
collector uses — with warps mapped to cores the same way the timing
oracle maps them (blocks round-robin over cores).  No timing is modeled;
the output is, per static memory instruction (PC):

* the distribution of *instruction-level* miss events, where a divergent
  instruction's event is that of its slowest request (drives the per-PC
  AMAT latency and the CPI-stack memory categories), and
* the distribution of *request-level* miss events (drives the contention
  models: only L1-missing read requests occupy MSHRs; only DRAM-bound
  traffic occupies the bus).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.config import GPUConfig
from repro.memory.hierarchy import MemoryHierarchy, MissEvent
from repro.trace.trace_types import KernelTrace, OpCode


def core_of_block(block_id: int, n_cores: int) -> int:
    """Block → core assignment shared by cache sim and timing oracle."""
    return block_id % n_cores


@dataclass
class PCStats:
    """Miss statistics of one static memory instruction."""

    pc: int
    is_store: bool
    n_insts: int = 0
    n_requests: int = 0
    inst_events: Dict[MissEvent, int] = field(
        default_factory=lambda: {e: 0 for e in MissEvent}
    )
    req_events: Dict[MissEvent, int] = field(
        default_factory=lambda: {e: 0 for e in MissEvent}
    )
    #: Per dynamic *occurrence* (the j-th execution of this PC within a
    #: warp), the distribution of instruction events across warps.  Used
    #: to measure whether warps agree at the same point of execution —
    #: the alignment signal for the round-robin lockstep model.
    occurrence_events: List[Dict[MissEvent, int]] = field(default_factory=list)

    def inst_event_fraction(self, event: MissEvent) -> float:
        """Fraction of dynamic instructions whose worst request hit ``event``."""
        return self.inst_events[event] / self.n_insts if self.n_insts else 0.0

    def req_event_fraction(self, event: MissEvent) -> float:
        """Fraction of individual requests classified as ``event``."""
        return self.req_events[event] / self.n_requests if self.n_requests else 0.0

    @property
    def req_l1_miss_fraction(self) -> float:
        """Fraction of requests that missed L1 (and thus occupy an MSHR)."""
        return 1.0 - self.req_event_fraction(MissEvent.L1_HIT)

    @property
    def req_l2_miss_fraction(self) -> float:
        """Fraction of requests that reach DRAM."""
        return self.req_event_fraction(MissEvent.L2_MISS)

    @property
    def avg_requests_per_inst(self) -> float:
        """Mean memory-divergence degree of this PC."""
        return self.n_requests / self.n_insts if self.n_insts else 0.0

    def cross_warp_collision(self) -> float:
        """Probability two warps see the same event at the same occurrence.

        Averaged over this PC's dynamic occurrences (weighted by how many
        warps reached each): 1.0 when every warp always experiences the
        same miss event at the same point of execution (warps can stay in
        lockstep under round-robin), lower when outcomes differ across
        warps (warps stagger).  Occurrences reached by fewer than two
        warps carry no cross-warp information and are skipped.
        """
        weighted = 0.0
        weight = 0.0
        for events in self.occurrence_events:
            total = sum(events.values())
            if total < 2:
                continue
            collision = sum(
                (count / total) ** 2 for count in events.values() if count
            )
            weighted += collision * total
            weight += total
        return weighted / weight if weight else 1.0

    def amat(self, config: GPUConfig) -> float:
        """Average memory access time of the PC (Sec. V-B example)."""
        if not self.n_insts:
            return float(config.l1_latency)
        total = sum(
            count * config.miss_event_latency(event.key)
            for event, count in self.inst_events.items()
        )
        return total / self.n_insts


@dataclass
class CacheSimResult:
    """Output of :func:`simulate_caches`."""

    per_pc: Dict[int, PCStats]
    l1_miss_rate: float
    l2_miss_rate: float

    def load_pcs(self) -> List[int]:
        """Static load PCs, sorted."""
        return sorted(pc for pc, s in self.per_pc.items() if not s.is_store)

    def store_pcs(self) -> List[int]:
        """Static store PCs, sorted."""
        return sorted(pc for pc, s in self.per_pc.items() if s.is_store)

    def stats_for(self, pc: int) -> PCStats:
        """Statistics of one memory PC (KeyError if not a memory PC)."""
        return self.per_pc[pc]

    def avg_miss_latency(self, config: GPUConfig) -> float:
        """Average L2/DRAM access latency over L1-missing load requests.

        This is the paper's ``avg_miss_latency`` (Eq. 19): the mean
        service time of a request that occupies an MSHR, absent any
        contention.
        """
        weighted = 0.0
        count = 0
        for stats in self.per_pc.values():
            if stats.is_store:
                continue
            l2_hits = stats.req_events[MissEvent.L2_HIT]
            l2_misses = stats.req_events[MissEvent.L2_MISS]
            weighted += l2_hits * config.miss_event_latency("l2_hit")
            weighted += l2_misses * config.miss_event_latency("l2_miss")
            count += l2_hits + l2_misses
        if not count:
            return float(config.l2_miss_latency)
        return weighted / count


def _resident_waves(
    trace: KernelTrace, config: GPUConfig, warps_per_core: Optional[int]
) -> List[List[List[int]]]:
    """Group warp indices into per-core residency waves.

    The cache simulator must model "a system with the number of warps and
    cores equal to that of the modeled system" (Sec. V-A): only the warps
    that are *concurrently resident* interleave their accesses.  Blocks
    are assigned to cores round-robin (like the oracle) and chunked into
    waves of at most the core's resident-block capacity.
    """
    limit = warps_per_core if warps_per_core is not None else (
        config.max_warps_per_core
    )
    blocks: Dict[int, List[int]] = {}
    for w, warp in enumerate(trace.warps):
        blocks.setdefault(warp.block_id, []).append(w)
    per_core_waves: List[List[List[int]]] = [
        [] for _ in range(config.n_cores)
    ]
    current: List[List[int]] = [[] for _ in range(config.n_cores)]
    for block_id in sorted(blocks):
        core = core_of_block(block_id, config.n_cores)
        block_warps = blocks[block_id]
        if current[core] and len(current[core]) + len(block_warps) > limit:
            per_core_waves[core].append(current[core])
            current[core] = []
        current[core].extend(block_warps)
    for core, wave in enumerate(current):
        if wave:
            per_core_waves[core].append(wave)
    return per_core_waves


def simulate_caches(
    trace: KernelTrace,
    config: GPUConfig,
    warps_per_core: Optional[int] = None,
) -> CacheSimResult:
    """Replay all memory traffic and collect per-PC miss distributions.

    Warps interleave round-robin *within their residency wave* (the set
    concurrently on a core), waves run back to back — matching the
    occupancy the timing oracle enforces, which is what determines cache
    reuse distances.

    Dispatches to the batched replay (:mod:`repro.memory.cache_sim_vec`)
    unless ``REPRO_SCALAR=1`` selects the loop-nest reference below;
    both produce bitwise-identical results.
    """
    from repro.backend import use_scalar

    if not use_scalar():
        from repro.memory.cache_sim_vec import simulate_caches_vectorized

        return simulate_caches_vectorized(
            trace, config, warps_per_core=warps_per_core
        )
    hierarchy = MemoryHierarchy(config)
    per_pc: Dict[int, PCStats] = {}

    # Per-warp cursors over the indices of memory instructions.
    mem_indices: List[List[int]] = []
    for warp in trace.warps:
        mem_indices.append(
            [
                i
                for i, op in enumerate(warp.ops)
                if op in (OpCode.LOAD, OpCode.STORE)
            ]
        )

    cursors = [0] * len(trace.warps)
    # Per-warp, per-PC occurrence counters for the cross-warp agreement
    # statistics.
    occurrence: List[Dict[int, int]] = [dict() for _ in trace.warps]
    waves = _resident_waves(trace, config, warps_per_core)
    wave_cursor = [0] * config.n_cores

    def replay_one(core: int, w: int) -> bool:
        """Replay warp w's next memory instruction; False if exhausted."""
        mem = mem_indices[w]
        cursor = cursors[w]
        if cursor >= len(mem):
            return False
        warp = trace.warps[w]
        index = mem[cursor]
        cursors[w] = cursor + 1
        pc = int(warp.pcs[index])
        is_store = warp.ops[index] == OpCode.STORE
        stats = per_pc.get(pc)
        if stats is None:
            stats = per_pc[pc] = PCStats(pc=pc, is_store=bool(is_store))
        worst = MissEvent.L1_HIT
        lines = warp.requests(index)
        for line in lines:
            event = hierarchy.access(core, int(line), is_store=is_store)
            stats.req_events[event] += 1
            if event > worst:
                worst = event
        stats.n_insts += 1
        stats.n_requests += len(lines)
        stats.inst_events[worst] += 1
        j = occurrence[w].get(pc, 0)
        occurrence[w][pc] = j + 1
        slots = stats.occurrence_events
        if j >= len(slots):
            slots.extend({} for _ in range(j + 1 - len(slots)))
        slots[j][worst] = slots[j].get(worst, 0) + 1
        return True

    while True:
        progressed = False
        for core in range(config.n_cores):
            while wave_cursor[core] < len(waves[core]):
                wave = waves[core][wave_cursor[core]]
                wave_progressed = False
                for w in wave:
                    if replay_one(core, w):
                        wave_progressed = True
                if wave_progressed:
                    progressed = True
                    break
                wave_cursor[core] += 1  # wave drained; admit the next
        if not progressed:
            break

    l1_accesses = sum(c.n_accesses for c in hierarchy.l1s)
    l1_misses = sum(c.n_misses for c in hierarchy.l1s)
    return CacheSimResult(
        per_pc=per_pc,
        l1_miss_rate=l1_misses / l1_accesses if l1_accesses else 0.0,
        l2_miss_rate=hierarchy.l2.miss_rate,
    )
