"""Two-level cache hierarchy: per-core L1s in front of a shared L2.

Classifies each memory request into one of the paper's three miss events
(Sec. V-B): ``l1_hit``, ``l2_hit`` or ``l2_miss``.  The events order by
latency, which is how a divergent instruction's overall event is chosen
(the request with the longest latency determines the instruction's stall).
"""

from __future__ import annotations

import enum
from typing import List

from repro.config import GPUConfig
from repro.memory.cache import Cache


class MissEvent(enum.IntEnum):
    """Miss events ordered by latency (higher = slower)."""

    L1_HIT = 0
    L2_HIT = 1
    L2_MISS = 2

    @property
    def key(self) -> str:
        """The ``GPUConfig.miss_event_latency`` key for this event."""
        return {"L1_HIT": "l1_hit", "L2_HIT": "l2_hit", "L2_MISS": "l2_miss"}[
            self.name
        ]


class MemoryHierarchy:
    """Per-core L1 caches and a shared L2, driven by line addresses."""

    def __init__(self, config: GPUConfig):
        self.config = config
        self.l1s: List[Cache] = [
            Cache(config.l1_size, config.l1_assoc, config.line_size)
            for _ in range(config.n_cores)
        ]
        self.l2 = Cache(config.l2_size, config.l2_assoc, config.line_size)

    def access(self, core: int, line_addr: int, is_store: bool = False) -> MissEvent:
        """Access one coalesced request; returns its miss event.

        Stores are write-through/no-allocate at both levels: they refresh
        recency on hit but never install lines nor evict.  Their miss
        event is still reported so bandwidth accounting can distinguish
        L2-filtered write traffic from DRAM write traffic.
        """
        if not (0 <= core < len(self.l1s)):
            raise IndexError("core %d out of range" % core)
        if self.l1s[core].access(line_addr, is_write=is_store):
            return MissEvent.L1_HIT
        if self.l2.access(line_addr, is_write=is_store):
            return MissEvent.L2_HIT
        return MissEvent.L2_MISS

    def event_latency(self, event: MissEvent) -> int:
        """End-to-end access latency of a miss event (no queuing)."""
        return self.config.miss_event_latency(event.key)
