"""Set-associative cache with true-LRU replacement (functional).

The cache tracks only tags — GPUMech never needs data contents — which
keeps the input collector's cache simulation fast (the paper reports its
cache simulator is ~108x faster than detailed simulation; ours is fast for
the same reason: no timing, no data).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List


class Cache:
    """A functional set-associative LRU cache.

    Parameters
    ----------
    size:
        Capacity in bytes.
    assoc:
        Ways per set.
    line_size:
        Line size in bytes (power of two).
    allocate_on_write:
        Whether stores allocate lines on miss.  GPU L1/L2 in this model
        are write-through, no-write-allocate (stores probe and refresh
        recency on hit but never install lines), matching the paper's
        premise that writes do not occupy MSHRs or cache space.
    """

    def __init__(
        self,
        size: int,
        assoc: int,
        line_size: int,
        allocate_on_write: bool = False,
    ):
        if line_size <= 0 or line_size & (line_size - 1):
            raise ValueError("line_size must be a positive power of two")
        if size % (assoc * line_size) != 0:
            raise ValueError("size must be divisible by assoc * line_size")
        self.size = size
        self.assoc = assoc
        self.line_size = line_size
        self.allocate_on_write = allocate_on_write
        self.n_sets = size // (assoc * line_size)
        self._offset_bits = line_size.bit_length() - 1
        # One OrderedDict per set: tag -> None, LRU at the front.
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.n_sets)]
        self.n_accesses = 0
        self.n_misses = 0

    def _locate(self, line_addr: int):
        block = line_addr >> self._offset_bits
        return self._sets[block % self.n_sets], block

    def access(self, line_addr: int, is_write: bool = False) -> bool:
        """Access a line (by any byte address within it); True on hit."""
        self.n_accesses += 1
        lines, tag = self._locate(line_addr)
        if tag in lines:
            lines.move_to_end(tag)
            return True
        self.n_misses += 1
        if is_write and not self.allocate_on_write:
            return False
        if len(lines) >= self.assoc:
            lines.popitem(last=False)
        lines[tag] = None
        return False

    def probe(self, line_addr: int) -> bool:
        """Check residency without touching LRU state or counters."""
        lines, tag = self._locate(line_addr)
        return tag in lines

    def flush(self) -> None:
        """Invalidate all lines (counters are preserved)."""
        for lines in self._sets:
            lines.clear()

    @property
    def miss_rate(self) -> float:
        """Observed miss rate over all accesses so far."""
        return self.n_misses / self.n_accesses if self.n_accesses else 0.0

    def __repr__(self) -> str:
        return "Cache(%dKB, %d-way, %dB lines, %d sets)" % (
            self.size // 1024,
            self.assoc,
            self.line_size,
            self.n_sets,
        )
