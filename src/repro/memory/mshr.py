"""Miss Status Holding Register (MSHR) file with miss merging.

Used by the timing oracle: every load request that misses in the L1
occupies an MSHR entry from issue until its data returns.  Requests to a
line that is already in flight *merge* into the existing entry (a pending
hit) instead of allocating a new one.  When no entry is free, the issuing
warp stalls — the structural hazard whose queuing delay GPUMech's MSHR
model (Sec. IV-B1) predicts analytically.

Stores never allocate entries (write-through, no-allocate), which is why
the paper needs the separate DRAM-bandwidth model for write-heavy
divergent kernels like ``kmeans_invert_mapping``.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, Optional, Sequence


class MSHRError(RuntimeError):
    """Raised on structurally invalid MSHR operations."""


class MSHRFile:
    """A fixed-capacity set of in-flight line addresses (one per core)."""

    def __init__(self, n_entries: int):
        if n_entries < 1:
            raise ValueError("n_entries must be >= 1")
        self.n_entries = n_entries
        self._inflight: Dict[int, float] = {}  # line -> completion cycle
        self.n_allocations = 0
        self.n_merges = 0
        self.stalled_allocation_attempts = 0

    def __len__(self) -> int:
        return len(self._inflight)

    @property
    def free_entries(self) -> int:
        """Unoccupied MSHR entries."""
        return self.n_entries - len(self._inflight)

    def entries_needed(self, lines: Sequence[int]) -> int:
        """How many *new* entries the given request lines would allocate."""
        return sum(1 for line in set(lines) if line not in self._inflight)

    def can_allocate(self, lines: Sequence[int]) -> bool:
        """Whether all the given lines fit (merges are free)."""
        return self.entries_needed(lines) <= self.free_entries

    def lookup(self, line: int) -> Optional[float]:
        """Completion cycle of an in-flight line, or None."""
        return self._inflight.get(line)

    def allocate(self, line: int, completion: float) -> float:
        """Allocate (or merge into) an entry; returns the completion cycle.

        Merged requests complete when the original miss returns, which may
        be earlier than a fresh miss issued now would.
        """
        existing = self._inflight.get(line)
        if existing is not None:
            self.n_merges += 1
            return existing
        if not self.free_entries:
            self.stalled_allocation_attempts += 1
            raise MSHRError("MSHR file full")
        self._inflight[line] = completion
        self.n_allocations += 1
        return completion

    def release_completed(self, now: float) -> int:
        """Free every entry whose data has returned by ``now``."""
        done = [line for line, t in self._inflight.items() if t <= now]
        for line in done:
            del self._inflight[line]
        return len(done)

    def next_completion(self) -> Optional[float]:
        """Earliest in-flight completion (for event-driven cycle skipping)."""
        return min(self._inflight.values()) if self._inflight else None

    def kth_completion(self, k: int) -> Optional[float]:
        """Time at which ``k`` in-flight entries will have completed.

        Event-driven accelerator: a warp stalled for ``k`` free entries
        cannot issue before this cycle, so the core can sleep until then
        instead of waking on every individual release.
        """
        if k <= 0:
            return self.next_completion()
        values = self._inflight.values()
        if len(values) < k:
            return None
        return heapq.nsmallest(k, values)[-1]

    def inflight_lines(self) -> Iterable[int]:
        """Line addresses currently being fetched."""
        return self._inflight.keys()
