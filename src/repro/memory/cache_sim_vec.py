"""Batched cache replay: the round-robin interleaving as one sorted stream.

The scalar :func:`~repro.memory.cache_simulator.simulate_caches` drives a
nest of Python loops: rounds over cores over resident warps, one memory
instruction per warp per round.  The crucial observation is that this
replay *order* is outcome-independent — which warp issues which request
when is fixed entirely by the residency waves and per-warp memory
instruction counts, never by hit/miss results.  So the order can be
precomputed wholesale: warp ``w``'s ``j``-th memory instruction replays
at sort key ``(wave_base + j, core, position_in_wave)``, and one
``np.lexsort`` recovers the exact global interleaving.

With the stream flattened, everything except the LRU state machine is
vectorized: request expansion, set/tag extraction, per-instruction worst
events (``np.maximum.reduceat``), per-PC counters (``np.bincount``).
True-LRU set state is inherently sequential, so each core's L1 (and the
shared L2) keeps the scalar per-set ``OrderedDict`` discipline — but in
one tight loop over plain ints instead of a call stack per instruction.

Bitwise-compatibility notes (the contract is pickle-identical
:class:`CacheSimResult` vs the scalar backend):

* ``per_pc`` dict insertion order must be the first-replay order of each
  PC (``avg_miss_latency`` sums floats in that order);
* each ``occurrence_events`` slot dict must insert event keys in
  first-occurrence order (``cross_warp_collision`` sums in dict order),
  so that small loop stays in Python, in replay order;
* every counter is cast back to a Python ``int`` — a stray ``np.int64``
  would change the pickle bytes.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

import numpy as np

from repro.config import GPUConfig
from repro.memory.hierarchy import MissEvent
from repro.trace.trace_types import KernelTrace, OpCode

#: Integer event code -> enum, in latency order (codes 0/1/2).
_EVENTS = (MissEvent.L1_HIT, MissEvent.L2_HIT, MissEvent.L2_MISS)


def _gather_slices(
    values: np.ndarray, starts: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Concatenate ``values[starts[i] : starts[i] + counts[i]]`` for all i."""
    total = int(counts.sum())
    if not total:
        return values[:0]
    ends = np.cumsum(counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    return values[np.repeat(starts, counts) + within]


def _lru_stream(
    blocks: List[int],
    set_ids: List[int],
    stores: List[int],
    n_sets: int,
    assoc: int,
) -> "tuple[bytearray, int]":
    """Replay one cache's request stream; returns (hit flags, n_misses).

    Same state machine as :meth:`repro.memory.cache.Cache.access`
    (true-LRU sets, write-through/no-write-allocate) over pre-extracted
    ints.
    """
    sets = [OrderedDict() for _ in range(n_sets)]
    hits = bytearray(len(blocks))
    misses = 0
    for i, (tag, set_id, store) in enumerate(zip(blocks, set_ids, stores)):
        lines = sets[set_id]
        if tag in lines:
            lines.move_to_end(tag)
            hits[i] = 1
        else:
            misses += 1
            if not store:
                if len(lines) >= assoc:
                    lines.popitem(last=False)
                lines[tag] = None
    return hits, misses


def simulate_caches_vectorized(
    trace: KernelTrace,
    config: GPUConfig,
    warps_per_core: Optional[int] = None,
):
    """Vectorized counterpart of scalar ``simulate_caches``."""
    # Deferred import: cache_simulator dispatches to this module.
    from repro.memory.cache_simulator import (
        CacheSimResult,
        PCStats,
        _resident_waves,
    )

    n_warps = len(trace.warps)
    mem_sel = [
        np.flatnonzero(
            (warp.ops == OpCode.LOAD) | (warp.ops == OpCode.STORE)
        )
        for warp in trace.warps
    ]
    mem_counts = np.array([len(sel) for sel in mem_sel], dtype=np.int64)
    total_insts = int(mem_counts.sum())
    if not total_insts:
        return CacheSimResult(per_pc={}, l1_miss_rate=0.0, l2_miss_rate=0.0)

    # ------------------------------------------------------------------
    # Replay order: warp w's j-th memory instruction runs at
    # (wave_base[w] + j, core[w], wave_position[w]).  Wave base is the
    # cumulative max instruction count of the earlier waves on the core
    # (a wave drains when its longest warp is done, then the next wave
    # is admitted within the same round).
    # ------------------------------------------------------------------
    warp_base = np.zeros(n_warps, dtype=np.int64)
    warp_core = np.zeros(n_warps, dtype=np.int64)
    warp_wavepos = np.zeros(n_warps, dtype=np.int64)
    for core, waves in enumerate(_resident_waves(trace, config, warps_per_core)):
        base = 0
        for wave in waves:
            for pos, w in enumerate(wave):
                warp_base[w] = base
                warp_core[w] = core
                warp_wavepos[w] = pos
            if wave:
                base += int(mem_counts[wave].max())

    # Warp-major flat arrays over memory instructions.
    inst_warp = np.repeat(np.arange(n_warps, dtype=np.int64), mem_counts)
    inst_ordinal = (
        np.arange(total_insts, dtype=np.int64)
        - np.repeat(np.cumsum(mem_counts) - mem_counts, mem_counts)
    )
    rounds = warp_base[inst_warp] + inst_ordinal
    perm = np.lexsort(
        (warp_wavepos[inst_warp], warp_core[inst_warp], rounds)
    )

    pcs_wm = np.concatenate(
        [w.pcs[sel] for w, sel in zip(trace.warps, mem_sel)]
    ).astype(np.int64)
    stores_wm = np.concatenate(
        [w.ops[sel] == OpCode.STORE for w, sel in zip(trace.warps, mem_sel)]
    )
    req_counts_wm = np.concatenate(
        [
            w.req_offsets[sel + 1] - w.req_offsets[sel]
            for w, sel in zip(trace.warps, mem_sel)
        ]
    )
    lines_wm = np.concatenate(
        [
            _gather_slices(
                w.req_lines,
                w.req_offsets[sel],
                w.req_offsets[sel + 1] - w.req_offsets[sel],
            )
            for w, sel in zip(trace.warps, mem_sel)
        ]
    )

    # Per-warp-per-PC occurrence ordinals (the "j-th execution of this
    # PC by this warp"), computed warp-major where within-warp order is
    # program order — exactly the scalar cursor semantics.
    pc_span = int(pcs_wm.max()) + 1 if pcs_wm.size else 1
    group_key = inst_warp * pc_span + pcs_wm
    order = np.argsort(group_key, kind="stable")
    sorted_key = group_key[order]
    group_start = np.flatnonzero(
        np.concatenate(([True], sorted_key[1:] != sorted_key[:-1]))
    )
    rank_sorted = np.arange(total_insts, dtype=np.int64) - np.repeat(
        group_start, np.diff(np.append(group_start, total_insts))
    )
    occ_wm = np.empty(total_insts, dtype=np.int64)
    occ_wm[order] = rank_sorted

    # Reorder instructions (and their request groups) into replay order.
    pcs_r = pcs_wm[perm]
    stores_r = stores_wm[perm]
    counts_r = req_counts_wm[perm]
    occ_r = occ_wm[perm]
    cores_r = warp_core[inst_warp[perm]]
    off_wm = np.concatenate(
        ([0], np.cumsum(req_counts_wm))
    )
    lines_r = _gather_slices(lines_wm, off_wm[perm], counts_r)

    # ------------------------------------------------------------------
    # L1s: each core sees its own subsequence of the global stream;
    # per-core state is independent, order within a core is preserved.
    # ------------------------------------------------------------------
    blocks_r = lines_r >> (config.line_size.bit_length() - 1)
    req_cores = np.repeat(cores_r, counts_r)
    req_stores = np.repeat(stores_r, counts_r)
    l1_sets = config.l1_size // (config.l1_assoc * config.line_size)
    l2_sets = config.l2_size // (config.l2_assoc * config.line_size)

    events = np.zeros(len(blocks_r), dtype=np.int64)
    l1_misses = 0
    for core in range(config.n_cores):
        in_core = np.flatnonzero(req_cores == core)
        if not in_core.size:
            continue
        core_blocks = blocks_r[in_core]
        hits, misses = _lru_stream(
            core_blocks.tolist(),
            (core_blocks % l1_sets).tolist(),
            req_stores[in_core].tolist(),
            l1_sets,
            config.l1_assoc,
        )
        l1_misses += misses
        missed = np.frombuffer(hits, dtype=np.uint8) == 0
        events[in_core[missed]] = 1

    # L2: the L1-missing subsequence, still in global replay order.
    to_l2 = np.flatnonzero(events == 1)
    l2_blocks = blocks_r[to_l2]
    l2_hits, l2_misses = _lru_stream(
        l2_blocks.tolist(),
        (l2_blocks % l2_sets).tolist(),
        req_stores[to_l2].tolist(),
        l2_sets,
        config.l2_assoc,
    )
    events[to_l2[np.frombuffer(l2_hits, dtype=np.uint8) == 0]] = 2

    # ------------------------------------------------------------------
    # Bookkeeping: per-instruction worst events, then per-PC counters.
    # ------------------------------------------------------------------
    # Zero-request instructions (fully inactive lanes) still count as
    # L1_HIT instructions but own no segment: reduce only over the
    # non-empty segments, whose starts are strictly increasing.
    seg_starts = np.concatenate(([0], np.cumsum(counts_r)[:-1]))
    nonzero = counts_r > 0
    worst = np.zeros(total_insts, dtype=np.int64)
    if len(blocks_r):
        worst[nonzero] = np.maximum.reduceat(events, seg_starts[nonzero])

    # per_pc insertion order == first-replay order of each PC.
    unique_pcs, first_idx = np.unique(pcs_r, return_index=True)
    first_order = np.argsort(first_idx, kind="stable")
    pc_codes = np.searchsorted(unique_pcs, pcs_r)
    n_pcs = len(unique_pcs)

    inst_ev_counts = np.bincount(
        pc_codes * 3 + worst, minlength=n_pcs * 3
    ).reshape(n_pcs, 3)
    req_ev_counts = np.bincount(
        np.repeat(pc_codes, counts_r) * 3 + events, minlength=n_pcs * 3
    ).reshape(n_pcs, 3)
    pc_insts = np.bincount(pc_codes, minlength=n_pcs)
    pc_reqs = np.bincount(pc_codes, weights=counts_r, minlength=n_pcs).astype(
        np.int64
    )
    pc_is_store = np.zeros(n_pcs, dtype=bool)
    pc_is_store[pc_codes] = stores_r  # static property: uniform per PC

    per_pc = {}
    for code in first_order.tolist():
        ie = inst_ev_counts[code].tolist()
        re = req_ev_counts[code].tolist()
        per_pc[int(unique_pcs[code])] = PCStats(
            pc=int(unique_pcs[code]),
            is_store=bool(pc_is_store[code]),
            n_insts=int(pc_insts[code]),
            n_requests=int(pc_reqs[code]),
            inst_events=dict(zip(_EVENTS, ie)),
            req_events=dict(zip(_EVENTS, re)),
        )

    # Occurrence slots: scalar inserts event keys as warps reach each
    # (pc, occurrence) in replay order; replicate with one light loop.
    for pc, j, ev in zip(pcs_r.tolist(), occ_r.tolist(), worst.tolist()):
        slots = per_pc[pc].occurrence_events
        if j >= len(slots):
            slots.extend({} for _ in range(j + 1 - len(slots)))
        slot = slots[j]
        event = _EVENTS[ev]
        slot[event] = slot.get(event, 0) + 1

    n_requests = len(blocks_r)
    l2_accesses = len(l2_blocks)
    return CacheSimResult(
        per_pc=per_pc,
        l1_miss_rate=l1_misses / n_requests if n_requests else 0.0,
        l2_miss_rate=l2_misses / l2_accesses if l2_accesses else 0.0,
    )
