"""DRAM bandwidth queue: a single FCFS server shared by all cores.

The timing oracle charges every DRAM transfer (load fills that missed the
L2, and all write-through store traffic) a slot on the DRAM bus.  The
service time of one cache line is ``line_size / bandwidth`` converted to
core cycles (Eq. 22 of the paper).  Queuing delay emerges naturally from
FCFS ordering — this is the ground truth against which GPUMech's M/D/1
approximation (Sec. IV-B2) is validated.
"""

from __future__ import annotations


class DRAMQueue:
    """FCFS single-server queue with deterministic service time."""

    def __init__(self, service_cycles: float):
        if service_cycles <= 0:
            raise ValueError("service_cycles must be positive")
        self.service_cycles = float(service_cycles)
        self._free_at = 0.0
        self.n_requests = 0
        self.busy_cycles = 0.0
        self.total_queue_delay = 0.0

    def enqueue(self, arrival: float) -> float:
        """Enqueue a transfer arriving at ``arrival``.

        Returns the cycle at which the transfer completes (queue wait +
        service).  The DRAM array access latency is *not* included — the
        caller adds the configured ``dram_latency`` on top.
        """
        start = max(float(arrival), self._free_at)
        completion = start + self.service_cycles
        self.total_queue_delay += start - float(arrival)
        self.busy_cycles += self.service_cycles
        self._free_at = completion
        self.n_requests += 1
        return completion

    @property
    def free_at(self) -> float:
        """Cycle at which the bus becomes idle."""
        return self._free_at

    def utilization(self, elapsed_cycles: float) -> float:
        """Fraction of elapsed time the bus was busy."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / elapsed_cycles)

    @property
    def mean_queue_delay(self) -> float:
        """Average per-request queuing delay observed so far."""
        return self.total_queue_delay / self.n_requests if self.n_requests else 0.0


class DRAMSystem:
    """Address-interleaved multi-channel DRAM (extension beyond Table I).

    The aggregate bandwidth is split evenly over ``n_channels`` FCFS
    queues; a line maps to channel ``(line_addr / line_size) % n``.  With
    one channel (the default, matching the paper) this degenerates to a
    single :class:`DRAMQueue`.  More channels keep the same aggregate
    bandwidth but serve each request ``n`` times slower — latency gets
    worse at equal utilisation while burst parallelism improves, the
    classic channel-count trade-off.
    """

    def __init__(self, aggregate_service_cycles: float, n_channels: int,
                 line_size: int):
        if n_channels < 1:
            raise ValueError("n_channels must be >= 1")
        self.n_channels = n_channels
        self.line_size = line_size
        self._shift = line_size.bit_length() - 1
        per_channel_service = aggregate_service_cycles * n_channels
        self.channels = [
            DRAMQueue(per_channel_service) for _ in range(n_channels)
        ]

    def channel_of(self, line_addr: int) -> int:
        """The channel a line address interleaves onto."""
        return (line_addr >> self._shift) % self.n_channels

    def enqueue(self, arrival: float, line_addr: int = 0) -> float:
        """Enqueue a transfer on the line's channel; returns completion."""
        return self.channels[self.channel_of(line_addr)].enqueue(arrival)

    # Aggregate statistics ----------------------------------------------------

    @property
    def n_requests(self) -> int:
        """Transfers served across all channels."""
        return sum(c.n_requests for c in self.channels)

    @property
    def busy_cycles(self) -> float:
        """Total channel-busy cycles across all channels."""
        return sum(c.busy_cycles for c in self.channels)

    def utilization(self, elapsed_cycles: float) -> float:
        """Mean per-channel busy fraction over the elapsed window."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(
            1.0, self.busy_cycles / (elapsed_cycles * self.n_channels)
        )

    @property
    def mean_queue_delay(self) -> float:
        """Average per-request queuing delay across channels."""
        total = sum(c.total_queue_delay for c in self.channels)
        n = self.n_requests
        return total / n if n else 0.0
