"""GPUMech reproduction: interval-analysis GPU performance modeling.

Reproduces Huang, Lee, Kim & Lee, *GPUMech: GPU Performance Modeling
Technique based on Interval Analysis*, MICRO 2014 — model, baselines,
input collector, cycle-level validation oracle, workload suite and the
paper's full experiment harness.

Quickstart
----------
>>> from repro import GPUConfig, GPUMech
>>> from repro.workloads import get_kernel
>>> kernel, memory = get_kernel("cfd_step_factor")
>>> model = GPUMech(GPUConfig.small())
>>> prediction = model.predict_kernel(kernel, memory=memory)
>>> print(prediction.summary())          # doctest: +SKIP
>>> print(prediction.cpi_stack.render()) # doctest: +SKIP
"""

from repro.config import GPUConfig
from repro.core.model import GPUMech, ModelInputs, Prediction
from repro.core.cpi_stack import CPIStack, StallType
from repro.obs import MetricsRegistry, Tracer
from repro.pipeline import EvalRequest, Pipeline

__version__ = "1.2.0"

__all__ = [
    "CPIStack",
    "EvalRequest",
    "GPUConfig",
    "GPUMech",
    "MetricsRegistry",
    "ModelInputs",
    "Pipeline",
    "Prediction",
    "StallType",
    "Tracer",
    "__version__",
]
