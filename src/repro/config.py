"""Machine configuration for GPUMech and the timing oracle.

This module encodes Table I of the paper (the simulated machine) as a
validated dataclass.  The same :class:`GPUConfig` instance drives

* the functional cache simulator (``repro.memory.cache_simulator``),
* the detailed timing simulator (``repro.timing``), and
* the GPUMech analytical model (``repro.core``),

so that model and oracle always describe the same machine.

All latencies are in core cycles at ``core_clock_ghz``.  The DRAM service
time of one cache line on the bus is ``line_size / dram_bandwidth`` seconds,
i.e. ``core_clock_ghz * line_size_bytes / dram_bandwidth_gbps`` cycles
(Eq. 22 of the paper).
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterable, Optional


class ConfigError(ValueError):
    """Raised when a :class:`GPUConfig` fails validation."""


#: Registered microarchitecture backends (see ``repro.arch``).  Defined
#: here rather than imported so the config layer stays import-cycle-free;
#: ``repro.arch`` cross-checks its registry against this tuple at import.
KNOWN_ARCHES = ("gpumech2014", "subcore")


#: Fields the *functional emulator* reads: they determine the dynamic
#: trace (lane count, coalescing granularity, bank-conflict degrees
#: — and, via the architecture backend's reconvergence policy, the
#: divergence serialisation order).  Changing any other field leaves the
#: trace artifact valid — the invariant behind the paper's Sec. VI-D
#: cost argument and the staged pipeline's invalidation rules
#: (``repro.pipeline``).  ``arch`` is here because independent-thread-
#: scheduling reconvergence reorders divergent warps' dynamic streams;
#: the scalar/vector *compute* backend (``repro.backend``) by contrast
#: never changes the trace and is deliberately absent.  ``simt_width``
#: is absent too: validation pins it to ``warp_size``, so the emulator
#: never reads it and keying on it would only double-count warp width
#: (a fact ``repro.depcheck`` verifies statically and at runtime).
TRACE_FIELDS: FrozenSet[str] = frozenset(
    {"warp_size", "line_size", "smem_banks", "arch"}
)


#: Instruction latencies (cycles) per operation class, following Table I
#: ("instruction latencies are modeled according to the CUDA manual (normal
#: FP instructions are 25 cycles)").  Integer ALU operations are cheaper;
#: SFU transcendentals are more expensive.
DEFAULT_OP_LATENCIES: Dict[str, int] = {
    "ialu": 4,
    "falu": 25,
    "sfu": 40,
}


@dataclass(frozen=True)
class GPUConfig:
    """Parameters of the modeled GPU (Table I of the paper).

    The defaults reproduce the paper's baseline configuration except for
    ``n_cores``: the paper simulates 16 homogeneous cores, which is
    prohibitively slow for a pure-Python cycle-level oracle, so the library
    default is 4 cores (see DESIGN.md, substitution 4).  Use
    :meth:`paper_baseline` for the literal Table I machine.
    """

    # Core organisation ----------------------------------------------------
    n_cores: int = 4
    core_clock_ghz: float = 1.0
    simt_width: int = 32
    warp_size: int = 32
    max_threads_per_core: int = 1024
    issue_width: int = 1  # warp-instructions per cycle

    # Scheduling -----------------------------------------------------------
    scheduler: str = "rr"  # "rr" (round-robin) or "gto" (greedy-then-oldest)

    # On-chip memory -------------------------------------------------------
    line_size: int = 128  # bytes
    l1_size: int = 32 * 1024
    l1_assoc: int = 8
    l1_latency: int = 25
    l2_size: int = 768 * 1024
    l2_assoc: int = 8
    l2_latency: int = 120  # includes NoC latency, per the paper
    n_mshrs: int = 32  # per-core MSHR entries

    # DRAM -----------------------------------------------------------------
    dram_latency: int = 300  # access latency without queuing
    dram_bandwidth_gbps: float = 192.0
    #: Memory channels the aggregate bandwidth is interleaved over
    #: (extension; the paper models a single queue, the default).
    n_dram_channels: int = 1

    # Software-managed (shared) memory ---------------------------------------
    #: Scratchpad size per core (Table I: "16 KB software managed cache").
    smem_size: int = 16 * 1024
    #: Scratchpad access latency in cycles (conflict-free).
    smem_latency: int = 30
    #: Scratchpad banks; lanes hitting the same bank (different words)
    #: serialise into that many accesses.
    smem_banks: int = 32

    # Special function units ------------------------------------------------
    #: SFU lanes per core.  The paper assumes a balanced design where
    #: "the resources used for normal operations are sufficient for each
    #: warp" and leaves SFU contention as future work (Sec. IV-B1); the
    #: default (= warp_size) reproduces that assumption.  Setting fewer
    #: lanes makes an SFU warp-instruction occupy the unit for
    #: ``warp_size / n_sfu_units`` cycles, creating the structural hazard
    #: that the extension model in ``core.contention`` predicts.
    n_sfu_units: int = 32

    # Instruction latencies ------------------------------------------------
    op_latencies: Dict[str, int] = field(
        default_factory=lambda: dict(DEFAULT_OP_LATENCIES)
    )

    # Microarchitecture backend --------------------------------------------
    #: Which machine family the model and oracle describe (``repro.arch``):
    #: ``"gpumech2014"`` — the paper's 2014-era core (one scheduler,
    #: stack-based reconvergence); ``"subcore"`` — a modern core with
    #: ``n_schedulers`` sub-core issue slots and independent-thread-
    #: scheduling-style reconvergence.  Unlike the scalar/vector compute
    #: backend, the architecture changes the *answer*, so this field is
    #: part of ``fingerprint()`` and keys the artifact store.
    arch: str = "gpumech2014"
    #: Sub-core schedulers (issue slots) per core; each owns a static
    #: partition of the resident warps.  Read only by backends with
    #: sub-core dispatch (``arch="subcore"``); gpumech2014 always runs
    #: one scheduler per core.
    n_schedulers: int = 4

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`ConfigError` unless every field is coherent.

        Called automatically on construction (``with_()`` round-trips
        re-validate too); public so callers holding a config from an
        untrusted source can re-assert the invariants explicitly.
        """
        if self.n_cores < 1:
            raise ConfigError("n_cores must be >= 1")
        if self.warp_size < 1:
            raise ConfigError("warp_size must be >= 1")
        if self.simt_width != self.warp_size:
            raise ConfigError(
                "this model assumes simt_width == warp_size (a warp issues "
                "in one cycle); got simt_width=%d warp_size=%d"
                % (self.simt_width, self.warp_size)
            )
        if self.max_threads_per_core % self.warp_size != 0:
            raise ConfigError("max_threads_per_core must be a multiple of warp_size")
        if self.scheduler not in ("rr", "gto"):
            raise ConfigError("scheduler must be 'rr' or 'gto'")
        if self.issue_width != 1:
            raise ConfigError("only issue_width == 1 is supported (Table I)")
        for cache_name, (size, assoc) in {
            "l1": (self.l1_size, self.l1_assoc),
            "l2": (self.l2_size, self.l2_assoc),
        }.items():
            if size % (self.line_size * assoc) != 0:
                raise ConfigError(
                    "%s cache size %d is not divisible by line_size*assoc"
                    % (cache_name, size)
                )
        if self.n_mshrs < 1:
            raise ConfigError("n_mshrs must be >= 1")
        if self.dram_bandwidth_gbps <= 0:
            raise ConfigError("dram_bandwidth_gbps must be positive")
        if self.core_clock_ghz <= 0:
            raise ConfigError("core_clock_ghz must be positive")
        missing = {"ialu", "falu", "sfu"} - set(self.op_latencies)
        if missing:
            raise ConfigError("op_latencies missing classes: %s" % sorted(missing))
        if not (1 <= self.n_sfu_units <= self.warp_size):
            raise ConfigError(
                "n_sfu_units must be in [1, warp_size]; got %d"
                % self.n_sfu_units
            )
        if self.n_dram_channels < 1:
            raise ConfigError("n_dram_channels must be >= 1")
        if self.smem_size < 0 or self.smem_latency < 1:
            raise ConfigError("invalid shared-memory parameters")
        if self.smem_banks < 1:
            raise ConfigError("smem_banks must be >= 1")
        if self.arch not in KNOWN_ARCHES:
            raise ConfigError(
                "unknown arch %r; known architecture backends: %s"
                % (self.arch, ", ".join(KNOWN_ARCHES))
            )
        if self.n_schedulers < 1:
            raise ConfigError("n_schedulers must be >= 1")
        if (
            self.arch == "subcore"
            and self.max_warps_per_core % self.n_schedulers != 0
        ):
            raise ConfigError(
                "n_schedulers=%d must divide warps_per_core=%d under "
                "arch='subcore' (warps are statically partitioned across "
                "the sub-core schedulers)"
                % (self.n_schedulers, self.max_warps_per_core)
            )

    # Derived quantities ---------------------------------------------------

    @property
    def max_warps_per_core(self) -> int:
        """Maximum resident warps on one core (Table I: 1024/32 = 32)."""
        return self.max_threads_per_core // self.warp_size

    @property
    def issue_rate(self) -> float:
        """Sustained issue rate in warp-instructions per cycle."""
        return float(self.issue_width)

    @property
    def dram_service_cycles(self) -> float:
        """Core cycles to transmit one cache line on the DRAM bus (Eq. 22).

        ``s = freq_core * L / B`` with L in bytes and B in bytes/second.
        """
        bandwidth_bytes_per_ns = self.dram_bandwidth_gbps  # GB/s == bytes/ns
        cycles_per_ns = self.core_clock_ghz
        return cycles_per_ns * self.line_size / bandwidth_bytes_per_ns

    @property
    def sfu_service_cycles(self) -> float:
        """Issue slots an SFU warp-instruction occupies on the SFU pipe."""
        return self.warp_size / self.n_sfu_units

    @property
    def l2_miss_latency(self) -> int:
        """Total latency of an access that misses in both caches."""
        return self.l2_latency + self.dram_latency

    def miss_event_latency(self, event: str) -> int:
        """Latency (cycles) of a memory access classified by miss event.

        ``event`` is one of ``"l1_hit"``, ``"l2_hit"``, ``"l2_miss"``.
        Latencies are end-to-end: an L2 hit costs the full L2 access
        latency (which subsumes the NoC), an L2 miss additionally pays the
        DRAM access latency.
        """
        if event == "l1_hit":
            return self.l1_latency
        if event == "l2_hit":
            return self.l2_latency
        if event == "l2_miss":
            return self.l2_miss_latency
        raise ConfigError("unknown miss event %r" % (event,))

    def with_(self, **overrides) -> "GPUConfig":
        """Return a copy with the given fields replaced (sweep helper)."""
        return replace(self, **overrides)

    # Fingerprints -----------------------------------------------------------

    def fingerprint(self, fields: Optional[Iterable[str]] = None) -> str:
        """Stable content hash of (a subset of) the configuration.

        Two configs with equal values for ``fields`` share a fingerprint
        regardless of how they were constructed (``with_()`` round-trips,
        dict insertion order in ``op_latencies``, ...).  This is the cache
        key primitive of ``repro.pipeline``: artifacts are addressed by
        the fingerprint of exactly the fields their stage reads, so a
        hardware-only override never invalidates the trace.
        """
        names = sorted(fields) if fields is not None else sorted(ALL_FIELDS)
        items = []
        for name in names:
            value = getattr(self, name)
            if isinstance(value, dict):
                value = tuple(sorted(value.items()))
            items.append((name, value))
        digest = hashlib.sha256(repr(items).encode("utf-8"))
        return digest.hexdigest()[:16]

    def trace_fingerprint(self) -> str:
        """Fingerprint of the trace-affecting fields only."""
        return self.fingerprint(TRACE_FIELDS)

    def hardware_fingerprint(self) -> str:
        """Fingerprint of the hardware-only (trace-preserving) fields."""
        return self.fingerprint(HARDWARE_FIELDS)

    # Presets ----------------------------------------------------------------

    @classmethod
    def paper_baseline(cls) -> "GPUConfig":
        """The literal Table I machine: 16 cores, 32 warps/core, 32 MSHRs,
        192 GB/s DRAM."""
        return cls(n_cores=16)

    @classmethod
    def small(cls, n_cores: int = 2, warps_per_core: int = 16) -> "GPUConfig":
        """A scaled-down machine for fast tests and examples."""
        return cls(
            n_cores=n_cores,
            max_threads_per_core=warps_per_core * 32,
        )


#: Every :class:`GPUConfig` field name.
ALL_FIELDS: FrozenSet[str] = frozenset(
    f.name for f in dataclasses.fields(GPUConfig)
)

#: Fields that do *not* change the functional trace: caches, latencies,
#: MSHRs, DRAM, scheduling, core count.  A sweep over these re-runs only
#: the cache-simulation-and-later pipeline stages.
HARDWARE_FIELDS: FrozenSet[str] = ALL_FIELDS - TRACE_FIELDS
