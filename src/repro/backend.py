"""Hot-path *compute* backend selection: vectorized vs scalar reference.

Terminology: this module selects **how** results are computed, never
**what** is modeled.  The *architecture* backends in :mod:`repro.arch`
(``GPUConfig.arch``) are the opposite: they change modeled semantics
(interval construction, multithreading sharing rules, reconvergence,
per-cycle issue) and therefore *do* participate in cache keys.  The two
axes are orthogonal: either compute backend must produce bitwise-equal
results under either architecture backend, which
``repro.arch.assert_backend_independent`` asserts for any kernel/config.

Three pipeline stages dominate wall-clock — functional emulation, the
Eq. 4 interval scan, and the functional cache replay.  Each has two
interchangeable implementations:

* ``vectorized`` — batched numpy over all warps at once (the default);
* ``scalar`` — the original one-warp/one-request-at-a-time loops, kept
  as the executable specification the vectorized code is tested against.

Both backends produce **bitwise-identical artifacts** (same trace
columns, same interval profiles, same cache counters, and therefore the
same content-addressed store fingerprints), which is asserted across the
whole workload suite by ``tests/test_vectorized_equivalence.py``.  The
backend is deliberately *not* part of any stage cache key: artifacts
written by one backend are valid hits for the other.

Set ``REPRO_SCALAR=1`` in the environment to select the scalar
reference backend (for debugging, differential testing, or measuring
the vectorization speedup — see ``benchmarks/test_bench_hotpath.py``).
The environment is consulted on every call so tests can flip backends
with ``monkeypatch.setenv``.
"""

from __future__ import annotations

import os

#: Backend names, as reported in metrics labels and span args.
VECTORIZED = "vectorized"
SCALAR = "scalar"

#: Environment variable selecting the scalar reference backend.
SCALAR_ENV = "REPRO_SCALAR"

#: Stages whose implementation the backend switch selects.
BACKEND_STAGES = frozenset({"trace", "interval_profiles", "cache_sim"})


def use_scalar() -> bool:
    """Whether the scalar reference backend is selected."""
    value = os.environ.get(SCALAR_ENV, "").strip().lower()
    return value not in ("", "0", "false", "no")


def current_backend() -> str:
    """Name of the active hot-path backend (``vectorized``/``scalar``)."""
    return SCALAR if use_scalar() else VECTORIZED
