"""Thread-escape analysis (concheck pass 1).

Thread *roots* are functions the codebase hands to a spawned thread:
``threading.Thread(target=self._run)`` resolves ``_run``; a handler
class passed to a ``ThreadingHTTPServer``-style constructor makes every
handler method a root (the server calls them on per-request threads).
Everything transitively callable from a root runs in *thread context*.

A shared-state subject is diagnosed when it is

* accessed from both thread context and non-thread context (ignoring
  constructor-phase methods, which run before the object is shared),
* written at least once outside construction, and
* the intersection of the lock sets over all those writes is empty —
  i.e. no single lock orders every mutation.

Reads with no lock are deliberately *not* diagnosed on their own:
lock-free snapshot reads of reference-assigned values are an explicit,
documented idiom here (see ``docs/concurrency.md``); it is unordered
**writes** that break the serial-vs-parallel identity guarantee.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.concheck.facts import INIT_METHODS, Access, CodeFacts
from repro.concheck.report import ConDiagnostic
from repro.staticcheck.report import Severity


def _method_name(qualname: str) -> str:
    return qualname.rsplit(".", 1)[-1]


def thread_roots(facts: CodeFacts) -> Tuple[List[str], List[str]]:
    """Functions directly entered on a spawned thread.

    Returns ``(roots, parallel_roots)``.  *Parallel* roots are handler
    methods: a threading server runs them on a fresh thread per
    request, so they race against **themselves** — unlocked writes
    there are racy even with no access from outside thread context.
    """
    roots: Set[str] = set()
    parallel: Set[str] = set()
    for fn_facts in facts.functions.values():
        for site in fn_facts.thread_sites:
            if site.kind == "resolved" and site.target:
                roots.add(site.target)
        for handler in fn_facts.handler_classes:
            cls = facts.index.classes.get(handler)
            if cls is None:
                continue
            for method in cls.methods.values():
                roots.add(method.qualname)
                parallel.add(method.qualname)
    return sorted(roots), sorted(parallel)


def reachable_from(facts: CodeFacts, roots: List[str]) -> Set[str]:
    """Transitive closure of the static call graph from ``roots``."""
    graph: Dict[str, Set[str]] = {}
    for qualname, fn_facts in facts.functions.items():
        graph[qualname] = {callee for callee, _, _ in fn_facts.calls}
    seen: Set[str] = set()
    stack = [root for root in roots if root in graph]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        for callee in graph.get(current, ()):
            if callee not in seen:
                stack.append(callee)
    return seen


def check_thread_shared(
    facts: CodeFacts,
) -> Tuple[List[ConDiagnostic], List[str], Set[str]]:
    """Run the pass.

    Returns ``(diagnostics, roots, diagnosed_subjects)`` — the subject
    set lets the lock-discipline pass avoid double-reporting.
    """
    roots, parallel_roots = thread_roots(facts)
    in_thread = reachable_from(facts, roots)
    in_parallel = reachable_from(facts, parallel_roots)
    diagnostics: List[ConDiagnostic] = []
    diagnosed: Set[str] = set()

    # Unresolvable Thread targets blind the closure: surface them.
    for fn_facts in facts.functions.values():
        for site in fn_facts.thread_sites:
            if site.kind == "unresolved":
                diagnostics.append(ConDiagnostic(
                    check_id="concheck-unresolved-thread-target",
                    severity=Severity.WARNING,
                    subject=fn_facts.fn.qualname,
                    message="cannot resolve Thread target %r; "
                            "thread-escape analysis is blind past it"
                            % site.text,
                    where=site.where,
                ))

    by_subject: Dict[str, List[Access]] = {}
    for access in facts.all_accesses():
        if _method_name(access.fn) in INIT_METHODS:
            continue
        by_subject.setdefault(access.subject, []).append(access)

    for subject in sorted(by_subject):
        accesses = by_subject[subject]
        inside = [a for a in accesses if a.fn in in_thread]
        outside = [a for a in accesses if a.fn not in in_thread]
        writes = [a for a in accesses if a.kind == "write"]
        if not inside or not writes:
            continue
        parallel_writes = [w for w in writes if w.fn in in_parallel]
        if not outside and not parallel_writes:
            continue
        common = frozenset.intersection(*(w.locks for w in writes))
        if common:
            continue
        bare = next((w for w in writes if not w.locks), writes[0])
        if outside:
            threaded = sorted({a.fn for a in inside})
            message = (
                "written without a common lock (%d write(s)) but "
                "reachable from thread context via %s"
                % (len(writes), ", ".join(threaded[:3]))
            )
        else:
            message = (
                "written without a common lock inside %s, which runs "
                "on a fresh thread per request and races against "
                "itself" % parallel_writes[0].fn
            )
        diagnostics.append(ConDiagnostic(
            check_id="concheck-thread-shared",
            severity=Severity.ERROR,
            subject=subject,
            message=message,
            where=bare.where,
        ))
        diagnosed.add(subject)

    return diagnostics, roots, diagnosed
