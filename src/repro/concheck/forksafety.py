"""Fork/pickle-safety and the global-mutable-state census (passes 3+4).

**Pool boundary.** Everything handed to a ``ProcessPoolExecutor`` —
``initargs``, mapped arguments, submitted callables — is pickled in the
parent and rebuilt in the worker.  A captured object holding a lock, a
live thread handle, a socket or a server crashes under ``spawn``
(unpicklable) and silently resurrects *stale* state under ``fork``
(e.g. a ``Thread`` object whose OS thread does not exist in the child).
A class that defines ``__getstate__``/``__reduce__`` has opted into
controlling its pickled form and is trusted; anything else holding a
hazard attribute is an ERROR.  The capture set is closed over
``attr_types``: capturing ``Pipeline`` captures its tracer, metrics
registry and store too.

**Census.** Module-level mutable values are the one category of state
that exists *twice* under different start methods: ``fork`` children
inherit the parent's current value, ``spawn`` children re-import the
module and get the pristine initial value.  Any such global that is
also mutated or rebound at runtime therefore makes results depend on
``REPRO_START_METHOD`` — exactly what the serial-vs-parallel identity
guarantee forbids — and gets a WARNING that must be justified in the
allowlist.  Globals that are initialised once and only read are listed
in the census but not diagnosed.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, List, Set, Tuple

from repro.concheck.facts import CodeFacts
from repro.concheck.report import ConDiagnostic
from repro.depcheck.modindex import ClassInfo
from repro.staticcheck.report import Severity

#: Constructor names whose instances must not cross a fork boundary.
_HAZARD_CTORS = frozenset({"Thread", "Timer", "socket"})


def _hazard_attrs(facts: CodeFacts, cls: ClassInfo) -> List[Tuple[str, str]]:
    """(attr, hazard kind) pairs a class instance may hold."""
    hazards: List[Tuple[str, str]] = []
    prefix = cls.qualname + "."
    for subject in sorted(facts.sync_subjects):
        if subject.startswith(prefix):
            attr = subject[len(prefix):]
            if "." not in attr:
                kind = ("lock" if subject in facts.locks
                        else "sync primitive")
                hazards.append((attr, kind))
    for method in cls.methods.values():
        for node in ast.walk(method.node):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            func = node.value.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else ""
            )
            if name in _HAZARD_CTORS:
                kind = "thread handle" if name in (
                    "Thread", "Timer"
                ) else "socket"
            elif name.endswith("Server"):
                kind = "server socket"
            else:
                continue
            for target in node.targets:
                if isinstance(target, ast.Attribute) and isinstance(
                    target.value, ast.Name
                ) and target.value.id == "self":
                    hazards.append((target.attr, kind))
    return hazards


def _capture_closure(facts: CodeFacts, seeds: List[str]) -> List[str]:
    """Close the captured-class set over instance attribute types."""
    seen: Set[str] = set()
    queue = list(seeds)
    while queue:
        qualname = queue.pop()
        if qualname in seen:
            continue
        seen.add(qualname)
        cls = facts.index.classes.get(qualname)
        if cls is None:
            continue
        for _, (kind, class_name) in sorted(cls.attr_types.items()):
            resolved = facts.index.resolve_name(cls.module, class_name)
            if isinstance(resolved, ClassInfo) and \
                    resolved.qualname not in seen:
                queue.append(resolved.qualname)
    return sorted(seen)


def _controls_pickling(facts: CodeFacts, cls: ClassInfo) -> bool:
    return (
        facts.index.find_method(cls, "__getstate__") is not None
        or facts.index.find_method(cls, "__reduce__") is not None
    )


def check_fork_safety(
    facts: CodeFacts,
) -> Tuple[List[ConDiagnostic], List[str]]:
    """Run the pool-boundary pass.

    Returns ``(diagnostics, captured_class_qualnames)``.
    """
    seeds: List[str] = []
    sites_by_seed: Dict[str, str] = {}
    for fn_facts in facts.functions.values():
        for site in fn_facts.pool_sites:
            for qualname in site.captured:
                seeds.append(qualname)
                sites_by_seed.setdefault(qualname, site.where)
    captured = _capture_closure(facts, seeds)

    diagnostics: List[ConDiagnostic] = []
    for qualname in captured:
        cls = facts.index.classes.get(qualname)
        if cls is None:
            continue
        hazards = _hazard_attrs(facts, cls)
        if not hazards or _controls_pickling(facts, cls):
            continue
        listing = ", ".join(
            "%s (%s)" % (attr, kind) for attr, kind in hazards
        )
        where = sites_by_seed.get(
            qualname,
            next(iter(sites_by_seed.values()), ""),
        )
        diagnostics.append(ConDiagnostic(
            check_id="concheck-fork-unsafe-capture",
            severity=Severity.ERROR,
            subject=qualname,
            message="crosses the process-pool boundary holding %s but "
                    "defines no __getstate__/__reduce__" % listing,
            where=where,
        ))
    return diagnostics, captured


def global_census(
    facts: CodeFacts,
) -> Tuple[List[ConDiagnostic], List[Dict[str, Any]]]:
    """Run the census pass.

    Returns ``(diagnostics, census_entries)`` — every module-level
    mutable is a census entry; only the mutated ones are diagnosed.
    """
    diagnostics: List[ConDiagnostic] = []
    census: List[Dict[str, Any]] = []
    for subject in sorted(facts.globals):
        entry = facts.globals[subject]
        mutated = bool(entry.mutations)
        census.append({
            "subject": subject,
            "kind": entry.kind,
            "where": entry.where,
            "mutated": mutated,
            "mutations": sorted(set(entry.mutations)),
        })
        if mutated:
            diagnostics.append(ConDiagnostic(
                check_id="concheck-global-mutable",
                severity=Severity.WARNING,
                subject=subject,
                message="module-level %s mutated at runtime; value "
                        "diverges between fork children (inherit it) "
                        "and spawn children (re-import pristine)"
                        % entry.kind,
                where=sorted(entry.mutations)[0],
            ))
    return diagnostics, census
