"""Concurrency diagnostics, the aggregate report, and the allowlist.

Mirrors :mod:`repro.depcheck.stagedeps`: findings are small frozen
dataclasses carrying a stable ``check_id``, a *subject* (the shared
state, lock pair or global the finding is about — the thing an
allowlist entry matches), a severity from the shared
:class:`~repro.staticcheck.report.Severity` scale and a human message.

Check ids (static passes):

``concheck-thread-shared`` (ERROR)
    State written without a common lock while reachable from both
    thread and non-thread context.
``concheck-inconsistent-guard`` (WARNING)
    A field written under a lock in some places and bare in others —
    the lock protects nothing if any writer bypasses it.
``concheck-lock-order-cycle`` (ERROR)
    The static lock-acquisition graph has a cycle: two threads taking
    the locks in opposite orders can deadlock.
``concheck-lock-reentry`` (ERROR)
    A non-reentrant lock acquired on a path that may already hold it.
``concheck-fork-unsafe-capture`` (ERROR)
    A class pickled across the ``ProcessPoolExecutor`` boundary holds a
    lock/thread/socket attribute and defines no ``__getstate__``.
``concheck-global-mutable`` (WARNING)
    Module-level mutable state rebound or mutated at runtime — its
    value diverges between ``fork`` children (which inherit it) and
    ``spawn`` children (which re-import pristine modules).
``concheck-unresolved-thread-target`` (WARNING)
    A ``Thread(target=...)`` whose target the analyzer cannot resolve;
    thread-escape analysis is blind past it.

Runtime check ids (``concheck-runtime-inversion`` / ``-race`` /
``-reentry``) come from :mod:`repro.concheck.runtime`.

The **allowlist** is a checked-in text file of justified exceptions::

    # check-id       subject-glob                  -- justification
    concheck-global-mutable repro.obs.tracer._CURRENT -- installed before threads start

Every live finding must either be fixed or carry such a line; waived
findings stay in the report (rendered with their justification) but do
not fail the run.
"""

from __future__ import annotations

import fnmatch
import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional

from repro.staticcheck.report import Severity


@dataclass(frozen=True)
class ConDiagnostic:
    """One concurrency finding."""

    check_id: str
    severity: Severity
    subject: str
    message: str
    where: str = ""
    #: Justification text when an allowlist entry waived this finding.
    waived_by: Optional[str] = None

    def render(self) -> str:
        location = " (%s)" % self.where if self.where else ""
        text = "%s: [%s] %s: %s%s" % (
            self.severity.value,
            self.check_id,
            self.subject,
            self.message,
            location,
        )
        if self.waived_by is not None:
            text += "\n    waived: %s" % self.waived_by
        return text

    def to_dict(self) -> dict:
        return {
            "check_id": self.check_id,
            "severity": self.severity.value,
            "subject": self.subject,
            "message": self.message,
            "where": self.where,
            "waived_by": self.waived_by,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ConDiagnostic":
        return cls(
            check_id=data["check_id"],
            severity=Severity(data["severity"]),
            subject=data["subject"],
            message=data["message"],
            where=data.get("where", ""),
            waived_by=data.get("waived_by"),
        )


@dataclass(frozen=True)
class AllowlistEntry:
    """One justified exception: check id + subject glob."""

    check_id: str
    pattern: str
    justification: str
    lineno: int = 0

    def matches(self, diagnostic: ConDiagnostic) -> bool:
        return (
            fnmatch.fnmatchcase(diagnostic.check_id, self.check_id)
            and fnmatch.fnmatchcase(diagnostic.subject, self.pattern)
        )


class Allowlist:
    """Parsed allowlist file; tracks which entries actually fired."""

    def __init__(self, entries: Optional[List[AllowlistEntry]] = None,
                 path: str = ""):
        self.entries = list(entries or ())
        self.path = path
        self.used: Dict[AllowlistEntry, int] = {}

    @classmethod
    def parse(cls, text: str, path: str = "") -> "Allowlist":
        entries = []
        for lineno, raw in enumerate(text.splitlines(), 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            head, sep, justification = line.partition("--")
            parts = head.split()
            if len(parts) != 2 or not sep or not justification.strip():
                raise ValueError(
                    "%s:%d: expected '<check-id> <subject-glob> -- "
                    "<justification>', got %r" % (path or "allowlist",
                                                  lineno, raw)
                )
            entries.append(AllowlistEntry(
                check_id=parts[0],
                pattern=parts[1],
                justification=justification.strip(),
                lineno=lineno,
            ))
        return cls(entries, path=path)

    @classmethod
    def load(cls, path: str) -> "Allowlist":
        with open(path, encoding="utf-8") as handle:
            return cls.parse(handle.read(), path=path)

    def match(self, diagnostic: ConDiagnostic) -> Optional[AllowlistEntry]:
        for entry in self.entries:
            if entry.matches(diagnostic):
                self.used[entry] = self.used.get(entry, 0) + 1
                return entry
        return None

    def unused(self) -> List[AllowlistEntry]:
        """Entries that waived nothing (stale — candidates for removal)."""
        return [e for e in self.entries if e not in self.used]


@dataclass
class ConcheckReport:
    """Full result of a concheck run (static passes + optional runtime)."""

    diagnostics: List[ConDiagnostic] = field(default_factory=list)
    #: Global-mutable census: every module-level mutable, flagged or not.
    census: List[Dict[str, Any]] = field(default_factory=list)
    #: Function qualnames running in thread context (analysis roots).
    thread_roots: List[str] = field(default_factory=list)
    #: Lock subject → sorted fields its ``with`` blocks guard.
    locks: Dict[str, List[str]] = field(default_factory=dict)
    #: Static lock-acquisition-order edges ("A -> B (witness)").
    lock_edges: List[str] = field(default_factory=list)
    #: Classes crossing the pool boundary (fork/pickle-safety pass).
    pool_captures: List[str] = field(default_factory=list)
    #: Runtime sanitizer summary when ``--runtime`` ran.
    runtime: Optional[Dict[str, Any]] = None
    #: Wall-clock seconds the static passes took (budgeted in CI).
    elapsed_s: float = 0.0

    # -- views ---------------------------------------------------------------

    @property
    def live(self) -> List[ConDiagnostic]:
        return [d for d in self.diagnostics if d.waived_by is None]

    @property
    def waived(self) -> List[ConDiagnostic]:
        return [d for d in self.diagnostics if d.waived_by is not None]

    @property
    def errors(self) -> List[ConDiagnostic]:
        return [d for d in self.live if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[ConDiagnostic]:
        return [d for d in self.live if d.severity is Severity.WARNING]

    @property
    def has_errors(self) -> bool:
        return bool(self.errors)

    @property
    def clean(self) -> bool:
        """No live finding of any severity (the CI gate)."""
        return not self.live

    def apply_allowlist(self, allowlist: Allowlist) -> None:
        """Mark findings matched by an allowlist entry as waived."""
        updated = []
        for diagnostic in self.diagnostics:
            if diagnostic.waived_by is None:
                entry = allowlist.match(diagnostic)
                if entry is not None:
                    diagnostic = replace(
                        diagnostic, waived_by=entry.justification
                    )
            updated.append(diagnostic)
        self.diagnostics = updated

    # -- rendering -----------------------------------------------------------

    def render_text(self, verbose: bool = False) -> str:
        lines = []
        lines.append(
            "concheck: %d thread root(s), %d lock(s), %d pool capture(s), "
            "%d mutable global(s)"
            % (len(self.thread_roots), len(self.locks),
               len(self.pool_captures), len(self.census))
        )
        if verbose:
            for root in self.thread_roots:
                lines.append("  thread-root %s" % root)
            for lock, fields_ in sorted(self.locks.items()):
                lines.append(
                    "  lock %s guards: %s"
                    % (lock, ", ".join(fields_) if fields_ else "(nothing)")
                )
            for edge in self.lock_edges:
                lines.append("  lock-order %s" % edge)
            for cls in self.pool_captures:
                lines.append("  pool-capture %s" % cls)
            for entry in self.census:
                lines.append(
                    "  global %s (%s%s)"
                    % (entry["subject"], entry["kind"],
                       ", mutated" if entry["mutated"] else "")
                )
        for diagnostic in self.live:
            lines.append(diagnostic.render())
        for diagnostic in self.waived:
            lines.append(diagnostic.render())
        if self.runtime is not None:
            lines.append(
                "runtime: %d kernel(s), %d lock(s), %d acquire(s), "
                "%d scrape(s), %d inversion(s), %d race(s), %d reentry(s)"
                % (self.runtime.get("kernels", 0),
                   len(self.runtime.get("locks", ())),
                   self.runtime.get("n_acquires", 0),
                   self.runtime.get("scrapes", 0),
                   len(self.runtime.get("inversions", ())),
                   len(self.runtime.get("races", ())),
                   len(self.runtime.get("reentries", ())))
            )
        if self.clean:
            lines.append(
                "concheck: clean (%d waived)" % len(self.waived)
            )
        else:
            lines.append(
                "concheck: %d error(s), %d warning(s), %d waived"
                % (len(self.errors), len(self.warnings), len(self.waived))
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "census": list(self.census),
            "thread_roots": list(self.thread_roots),
            "locks": {k: list(v) for k, v in sorted(self.locks.items())},
            "lock_edges": list(self.lock_edges),
            "pool_captures": list(self.pool_captures),
            "runtime": self.runtime,
            "elapsed_s": self.elapsed_s,
            "n_errors": len(self.errors),
            "n_warnings": len(self.warnings),
            "n_waived": len(self.waived),
            "clean": self.clean,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)
