"""Runtime lock sanitizer: the dynamic prong of ``repro.concheck``.

With ``REPRO_CONCHECK=1`` (checked once at import, or via
:func:`install`), :func:`make_lock` hands out :class:`TrackedLock`
objects instead of plain ``threading.Lock``s and the shared-state hot
spots of :mod:`repro.obs` report their reads/writes through
:func:`site_access`.  A process-wide :class:`LockMonitor` then watches
three invariants while real work runs:

* **Lock-order inversions** — every acquisition records held → wanted
  edges; observing both ``A → B`` and ``B → A`` means two threads can
  deadlock (each holding one lock, wanting the other).
* **Unguarded shared mutations** — the classic Eraser lockset
  algorithm per named *site*: the candidate lockset is the running
  intersection of locks held across accesses, refinement starting only
  once a second thread touches the site (so single-threaded
  initialisation never trips it).  An empty lockset on a written,
  multi-thread site is a data race.
* **Non-reentrant re-acquisition** — taking a plain ``Lock`` a thread
  already holds would deadlock; the tracked wrapper is backed by an
  ``RLock`` so the bug is *recorded* and the run continues.

Everything is pay-for-what-you-use: with the sanitizer off,
:func:`make_lock` returns a plain stdlib lock and :func:`site_access`
is a single global-load-and-compare.  This module deliberately imports
nothing from the rest of the package — :mod:`repro.obs` imports *it*,
never the reverse.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

#: Environment toggle; any value other than ``""``/``"0"`` installs the
#: monitor at import time (the ``REPRO_DEPCHECK`` precedent).
CONCHECK_ENV = "REPRO_CONCHECK"


def concheck_enabled() -> bool:
    """Is the runtime sanitizer requested for this process?"""
    return os.environ.get(CONCHECK_ENV, "0") not in ("", "0")


class _SiteState:
    """Eraser state machine for one named shared-state site.

    ``virgin → exclusive(first thread) → shared / shared-modified``;
    the candidate lockset starts as the held set of the first access
    from a *second* thread and only ever shrinks.
    """

    __slots__ = ("state", "first_tid", "lockset", "threads",
                 "written", "reported", "n_accesses")

    def __init__(self) -> None:
        self.state = "virgin"
        self.first_tid: Optional[int] = None
        self.lockset: Optional[FrozenSet[str]] = None
        self.threads: Set[int] = set()
        self.written = False
        self.reported = False
        self.n_accesses = 0


class LockMonitor:
    """Process-wide record of lock activity and shared-site accesses."""

    def __init__(self) -> None:
        #: Internal guard; a plain lock so the monitor never traces
        #: itself.  Strictly a leaf: nothing is acquired while held.
        self._guard = threading.Lock()
        self._local = threading.local()
        #: (held, wanted) → first witness ("function-ish" description).
        self.edges: Dict[Tuple[str, str], str] = {}
        self.inversions: List[Dict[str, Any]] = []
        self.reentries: List[Dict[str, Any]] = []
        self.races: List[Dict[str, Any]] = []
        self._sites: Dict[str, _SiteState] = {}
        self.lock_names: Set[str] = set()
        self.n_acquires = 0

    # -- held-lock bookkeeping (per thread) ---------------------------------

    def _held(self) -> List[str]:
        held = getattr(self._local, "held", None)
        if held is None:
            held = self._local.held = []
        return held

    def note_acquire(self, name: str, reentrant: bool) -> bool:
        """Record an acquisition attempt; returns False on a reentry
        violation (a non-reentrant lock the thread already holds)."""
        held = self._held()
        ok = True
        with self._guard:
            self.lock_names.add(name)
            self.n_acquires += 1
            if name in held and not reentrant:
                self.reentries.append({
                    "lock": name,
                    "held": list(held),
                    "thread": threading.get_ident(),
                })
                ok = False
            for outer in held:
                if outer == name:
                    continue
                edge = (outer, name)
                if edge not in self.edges:
                    self.edges[edge] = "thread %d" % threading.get_ident()
                    if (name, outer) in self.edges:
                        pair = tuple(sorted((outer, name)))
                        self.inversions.append({
                            "locks": list(pair),
                            "first": "%s -> %s" % (name, outer),
                            "second": "%s -> %s" % (outer, name),
                        })
        held.append(name)
        return ok

    def note_release(self, name: str) -> None:
        held = self._held()
        # Remove the innermost occurrence (reentrant locks stack).
        for i in range(len(held) - 1, -1, -1):
            if held[i] == name:
                del held[i]
                break

    # -- Eraser lockset per shared site -------------------------------------

    def access(self, site: str, write: bool = True) -> None:
        """Record a read/write of a named shared-state site."""
        tid = threading.get_ident()
        held = frozenset(self._held())
        with self._guard:
            state = self._sites.get(site)
            if state is None:
                state = self._sites[site] = _SiteState()
            state.n_accesses += 1
            state.threads.add(tid)
            state.written = state.written or write
            if state.state == "virgin":
                state.state = "exclusive"
                state.first_tid = tid
                return
            if state.state == "exclusive":
                if tid == state.first_tid:
                    return  # still the initialising thread
                state.state = "shared-modified" if (
                    write or state.written
                ) else "shared"
                state.lockset = held
            else:
                if write and state.state == "shared":
                    state.state = "shared-modified"
                assert state.lockset is not None
                state.lockset = state.lockset & held
            if (state.state == "shared-modified"
                    and not state.lockset
                    and not state.reported):
                state.reported = True
                self.races.append({
                    "site": site,
                    "threads": len(state.threads),
                    "accesses": state.n_accesses,
                })

    # -- reporting -----------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """JSON-able dump of everything observed so far."""
        with self._guard:
            sites = {
                name: {
                    "state": s.state,
                    "threads": len(s.threads),
                    "accesses": s.n_accesses,
                    "written": s.written,
                    "lockset": sorted(s.lockset)
                    if s.lockset is not None else None,
                }
                for name, s in sorted(self._sites.items())
            }
            return {
                "locks": sorted(self.lock_names),
                "n_acquires": self.n_acquires,
                "edges": sorted(
                    "%s -> %s" % edge for edge in self.edges
                ),
                "inversions": list(self.inversions),
                "reentries": list(self.reentries),
                "races": list(self.races),
                "sites": sites,
            }

    def reset(self) -> None:
        """Drop all state (fork children, test isolation)."""
        with self._guard:
            self.edges.clear()
            self.inversions.clear()
            self.reentries.clear()
            self.races.clear()
            self._sites.clear()
            self.lock_names.clear()
            self.n_acquires = 0
        self._local = threading.local()


class TrackedLock:
    """Drop-in ``threading.Lock``/``RLock`` that reports to the monitor.

    Backed by an ``RLock`` regardless of the declared kind so that a
    reentry *bug* on a plain lock is recorded instead of deadlocking
    the sanitized run.  Never pickled: every owner drops its lock in
    ``__getstate__`` and rebuilds via :func:`make_lock`.
    """

    __slots__ = ("name", "reentrant", "_inner", "_monitor")

    def __init__(self, name: str, monitor: LockMonitor,
                 reentrant: bool = False):
        self.name = name
        self.reentrant = reentrant
        self._inner = threading.RLock()
        self._monitor = monitor

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._monitor.note_acquire(self.name, self.reentrant)
        got = self._inner.acquire(blocking, timeout)
        if not got:
            self._monitor.note_release(self.name)
        return got

    def release(self) -> None:
        self._inner.release()
        self._monitor.note_release(self.name)

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()


#: The installed monitor, or ``None`` when the sanitizer is off.  The
#: hot-path contract: ``site_access`` and ``make_lock`` only do real
#: work when this is not ``None``.
_MONITOR: Optional[LockMonitor] = None


def monitor() -> Optional[LockMonitor]:
    """The installed monitor (``None`` when the sanitizer is off)."""
    return _MONITOR


def install(fresh: bool = False) -> LockMonitor:
    """Install (or return) the process-wide monitor."""
    global _MONITOR
    if _MONITOR is None or fresh:
        _MONITOR = LockMonitor()
    return _MONITOR


def uninstall() -> Optional[LockMonitor]:
    """Remove and return the monitor (test isolation)."""
    global _MONITOR
    current, _MONITOR = _MONITOR, None
    return current


def make_lock(name: str, reentrant: bool = False):
    """A lock for shared structure ``name``.

    Plain ``threading.Lock``/``RLock`` when the sanitizer is off; a
    :class:`TrackedLock` reporting to the monitor when it is on.  The
    name identifies the lock *class* (every ``Tracer`` shares the name
    ``"Tracer._lock"``), which is the granularity lock-order analysis
    needs.
    """
    mon = _MONITOR
    if mon is None:
        return threading.RLock() if reentrant else threading.Lock()
    return TrackedLock(name, mon, reentrant)


def site_access(site: str, write: bool = True) -> None:
    """Report an access to shared site ``site``; no-op when off."""
    mon = _MONITOR
    if mon is not None:
        mon.access(site, write)


def _reset_after_fork() -> None:
    # A forked child inherits the parent's monitor state but none of its
    # threads; parent observations must not double-count in the child.
    if _MONITOR is not None:
        _MONITOR.reset()


if hasattr(os, "register_at_fork"):  # pragma: no branch - posix only
    os.register_at_fork(after_in_child=_reset_after_fork)

if concheck_enabled():
    install()


def runtime_findings(mon: Optional[LockMonitor] = None) -> List[Dict[str, Any]]:
    """Monitor observations as raw finding dicts (one per violation)."""
    mon = mon if mon is not None else _MONITOR
    if mon is None:
        return []
    summary = mon.summary()
    findings: List[Dict[str, Any]] = []
    for inv in summary["inversions"]:
        findings.append({
            "check_id": "concheck-runtime-inversion",
            "subject": " / ".join(inv["locks"]),
            "message": (
                "lock-order inversion observed: both %s and %s — two "
                "threads interleaving these paths can deadlock"
                % (inv["first"], inv["second"])
            ),
        })
    for race in summary["races"]:
        findings.append({
            "check_id": "concheck-runtime-race",
            "subject": race["site"],
            "message": (
                "unguarded shared mutation: %d threads touched this "
                "site (%d accesses) with an empty common lockset"
                % (race["threads"], race["accesses"])
            ),
        })
    for re_entry in summary["reentries"]:
        findings.append({
            "check_id": "concheck-runtime-reentry",
            "subject": re_entry["lock"],
            "message": (
                "non-reentrant lock re-acquired while already held "
                "(held: %s) — would deadlock outside the sanitizer"
                % ", ".join(re_entry["held"])
            ),
        })
    return findings


def runtime_sweep(kernels=None, scale=None, config=None, jobs: int = 1):
    """Run the suite with the sanitizer on and live obs threads.

    Evaluates every requested kernel (defaults: the full suite at tiny
    scale on a small machine) with a fresh monitor installed, an
    enabled tracer, a metrics exporter being scraped concurrently and
    the sampling profiler running — i.e. every cross-thread path the
    static passes reason about is actually exercised.  Returns
    ``(summary, findings, kernel_names)``.
    """
    import json as _json
    import time as _time
    import urllib.request as _request

    previous = os.environ.get(CONCHECK_ENV)
    os.environ[CONCHECK_ENV] = "1"
    mon = install(fresh=True)
    try:
        from repro.config import GPUConfig
        from repro.obs import (
            MetricsExporter,
            SamplingProfiler,
            Tracer,
        )
        from repro.pipeline import Pipeline
        from repro.workloads.generators import Scale
        from repro.workloads.suite import SUITE

        kernels = list(kernels) if kernels is not None else sorted(SUITE)
        scale = scale if scale is not None else Scale.tiny()
        config = config if config is not None else GPUConfig.small()
        tracer = Tracer(enabled=True)
        pipeline = Pipeline(config, scale=scale, tracer=tracer, jobs=jobs)
        stop_scraping = threading.Event()
        n_scrapes = [0]

        def _scrape_loop(url: str) -> None:
            while not stop_scraping.wait(0.05):
                try:
                    with _request.urlopen(url + "/metrics",
                                          timeout=5.0) as response:
                        response.read()
                    with _request.urlopen(url + "/healthz",
                                          timeout=5.0) as response:
                        _json.loads(response.read())
                    n_scrapes[0] += 1
                except OSError:
                    _time.sleep(0.05)

        exporter = MetricsExporter(pipeline.metrics, tracer=tracer)
        profiler = SamplingProfiler(tracer=tracer)
        with exporter, profiler:
            scraper = threading.Thread(
                target=_scrape_loop, args=(exporter.url,),
                name="concheck-scraper", daemon=True,
            )
            scraper.start()
            try:
                if jobs > 1:
                    pipeline.evaluate_many(
                        [{"kernel": k} for k in kernels]
                    )
                else:
                    for kernel in kernels:
                        pipeline.evaluate(kernel)
            finally:
                stop_scraping.set()
                scraper.join(timeout=5.0)
        summary = mon.summary()
        summary["kernels"] = len(kernels)
        summary["scrapes"] = n_scrapes[0]
        summary["samples"] = profiler.n_samples
        return summary, runtime_findings(mon), kernels
    finally:
        if previous is None:
            del os.environ[CONCHECK_ENV]
        else:
            os.environ[CONCHECK_ENV] = previous
        if not concheck_enabled():
            uninstall()
