"""Concurrency fact extraction over the :class:`ModuleIndex`.

One syntactic walk per function distils everything the four concheck
passes reason about:

* **accesses** — reads/writes of *subjects*: instance attributes of
  indexed classes (``repro.obs.tracer.Tracer._spans``) and module-level
  globals (``repro.obs.tracer._CURRENT``), each tagged with the set of
  locks held at that program point;
* **lock activity** — which locks a function acquires (``with
  self._lock:``) and the nesting edges between them;
* **call edges** — resolved callee qualnames (annotation- and
  constructor-typed, the :mod:`repro.depcheck` approach), with the
  held-lock set at the call site so lock-order analysis can follow
  acquisitions through calls;
* **spawn points** — ``threading.Thread(target=...)`` sites, HTTP
  handler classes passed to a ``ThreadingHTTPServer``-style
  constructor, and ``ProcessPoolExecutor`` boundaries with the types
  captured across them.

Everything is best-effort and purely syntactic: an access the walk
cannot type is simply not a fact (the runtime sanitizer exists exactly
to catch what static resolution misses).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.depcheck.modindex import (
    ClassInfo,
    FunctionInfo,
    ModuleIndex,
    _strip_wrappers,
)

#: Method names that mutate their receiver in place.
MUTATORS = frozenset({
    "append", "extend", "insert", "add", "update", "pop", "popitem",
    "remove", "discard", "clear", "setdefault", "sort", "reverse",
    "appendleft", "popleft", "subtract",
})

#: ``threading`` constructors by the kind of primitive they build.
_SYNC_CTORS = {
    "Lock": "lock",
    "RLock": "rlock",
    "Condition": "condition",
    "Semaphore": "semaphore",
    "BoundedSemaphore": "semaphore",
    "Event": "event",
    "local": "thread-local",
}

#: Sync kinds usable as ``with`` targets (lock-discipline candidates).
_ACQUIRABLE = frozenset({"lock", "rlock", "condition", "semaphore"})

#: Mutable-container constructors for the global census.
_MUTABLE_CTORS = {
    "list": "list", "dict": "dict", "set": "set",
    "Counter": "counter", "defaultdict": "dict", "OrderedDict": "dict",
    "deque": "deque", "bytearray": "bytearray", "count": "iterator",
}

#: Docstring annotation declaring a locking precondition: a function
#: whose docstring contains ``concheck: caller-holds Foo._lock`` is
#: analyzed as if that lock were held on entry (the moral equivalent of
#: Clang's ``GUARDED_BY`` for helpers that must only be called with a
#: lock already taken).
_CALLER_HOLDS = re.compile(r"concheck:\s*caller-holds\s+([\w.]+)")

#: Methods excluded from shared-state reasoning: they run before the
#: object is published (or during unpickling in a fresh process).
INIT_METHODS = frozenset({
    "__init__", "__new__", "__post_init__", "__setstate__",
})


@dataclass(frozen=True)
class Access:
    """One read or write of a shared-state subject."""

    subject: str
    kind: str  # "read" | "write"
    locks: FrozenSet[str]
    fn: str
    where: str


@dataclass(frozen=True)
class ThreadSite:
    """One ``Thread(target=...)`` construction."""

    target: Optional[str]  # resolved function qualname
    text: str              # the target expression as written
    kind: str              # "resolved" | "opaque" | "local" | "unresolved"
    where: str


@dataclass
class PoolSite:
    """One ``ProcessPoolExecutor`` boundary."""

    where: str
    initializer: Optional[str] = None
    #: Class qualnames pickled across the boundary (initargs + the
    #: parameter types of mapped/submitted functions).
    captured: List[str] = field(default_factory=list)
    #: Mapped functions whose captures could not be typed.
    untyped: List[str] = field(default_factory=list)


@dataclass
class FunctionFacts:
    """Everything one function contributes to the analysis."""

    fn: FunctionInfo
    accesses: List[Access] = field(default_factory=list)
    #: (lock subject, where) for each direct acquisition.
    acquired: List[Tuple[str, str]] = field(default_factory=list)
    #: (outer lock, inner lock, where) for directly nested ``with``s.
    nest_edges: List[Tuple[str, str, str]] = field(default_factory=list)
    #: (callee qualname, locks held at the call, where).
    calls: List[Tuple[str, FrozenSet[str], str]] = field(
        default_factory=list
    )
    thread_sites: List[ThreadSite] = field(default_factory=list)
    handler_classes: List[str] = field(default_factory=list)
    pool_sites: List[PoolSite] = field(default_factory=list)


@dataclass(frozen=True)
class LockDef:
    """One lock discovered in the codebase."""

    subject: str
    kind: str  # "lock" | "rlock" | "condition" | "semaphore"
    where: str

    @property
    def reentrant(self) -> bool:
        return self.kind == "rlock"


@dataclass
class GlobalDef:
    """One module-level binding relevant to the census."""

    subject: str
    module: str
    name: str
    kind: str       # "list", "dict", "instance:<qual>", "rebound", ...
    where: str
    #: Where functions mutate/rebind it (empty = never touched).
    mutations: List[str] = field(default_factory=list)


class CodeFacts:
    """All extracted facts, plus the index they came from."""

    def __init__(self, index: ModuleIndex):
        self.index = index
        self.functions: Dict[str, FunctionFacts] = {}
        self.locks: Dict[str, LockDef] = {}
        #: Subjects that *are* synchronisation primitives (locks,
        #: events, thread-locals) — never shared-state findings.
        self.sync_subjects: Set[str] = set()
        self.globals: Dict[str, GlobalDef] = {}

    def all_accesses(self) -> List[Access]:
        return [
            access
            for facts in self.functions.values()
            for access in facts.accesses
        ]


# ---------------------------------------------------------------------------
# Phase A: lock / sync-primitive / mutable-global discovery
# ---------------------------------------------------------------------------


def _sync_kind(value: ast.expr) -> Optional[str]:
    """Kind of sync primitive ``value`` constructs, if any."""
    if isinstance(value, ast.IfExp):
        return _sync_kind(value.body) or _sync_kind(value.orelse)
    if isinstance(value, ast.BoolOp):
        for operand in value.values:
            kind = _sync_kind(operand)
            if kind:
                return kind
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    name = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute) and isinstance(
        func.value, ast.Name
    ) and func.value.id == "threading":
        name = func.attr
    if name == "make_lock":
        for kw in value.keywords:
            if kw.arg == "reentrant" and isinstance(
                kw.value, ast.Constant
            ) and kw.value.value:
                return "rlock"
        return "lock"
    return _SYNC_CTORS.get(name or "")


def _mutable_kind(value: ast.expr, index: ModuleIndex,
                  module: str) -> Optional[str]:
    """Census classification of a module-level value expression."""
    if isinstance(value, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "set"
    sync = _sync_kind(value)
    if sync:
        return sync
    if isinstance(value, ast.Call):
        func = value.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name in _MUTABLE_CTORS:
            return _MUTABLE_CTORS[name]
        if isinstance(func, ast.Name):
            resolved = index.resolve_name(module, func.id)
            if isinstance(resolved, ClassInfo):
                return "instance:%s" % resolved.qualname
    if isinstance(value, ast.Name):
        # One indirection: ``_CURRENT = NULL_TRACER`` inherits the
        # mutability of what the other global holds.
        mod = index.modules.get(module)
        if mod is not None and value.id in mod.global_assigns:
            inner = mod.global_assigns[value.id]
            if not isinstance(inner, ast.Name):  # no cycles
                return _mutable_kind(inner, index, module)
    return None


def _discover_definitions(facts: CodeFacts) -> None:
    index = facts.index
    for cls in index.classes.values():
        for method in cls.methods.values():
            for node in ast.walk(method.node):
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    kind = _sync_kind(node.value)
                    if kind is None:
                        continue
                    subject = "%s.%s" % (cls.qualname, target.attr)
                    facts.sync_subjects.add(subject)
                    if kind in _ACQUIRABLE:
                        facts.locks.setdefault(subject, LockDef(
                            subject=subject,
                            kind=kind,
                            where="%s:%d" % (cls.module, node.lineno),
                        ))
    for mod in index.modules.values():
        for name, value in mod.global_assigns.items():
            subject = "%s.%s" % (mod.name, name)
            kind = _sync_kind(value)
            if kind is not None:
                facts.sync_subjects.add(subject)
                if kind in _ACQUIRABLE:
                    facts.locks.setdefault(subject, LockDef(
                        subject=subject,
                        kind=kind,
                        where="%s:%d" % (mod.name, value.lineno),
                    ))
                continue
            mutable = _mutable_kind(value, index, mod.name)
            if mutable is not None:
                facts.globals[subject] = GlobalDef(
                    subject=subject,
                    module=mod.name,
                    name=name,
                    kind=mutable,
                    where="%s:%d" % (mod.name, value.lineno),
                )


# ---------------------------------------------------------------------------
# Phase B: per-function walk
# ---------------------------------------------------------------------------


class _FunctionWalker:
    """Extracts one function's facts with held-lock context."""

    def __init__(self, facts: CodeFacts, fn: FunctionInfo):
        self.facts = facts
        self.index = facts.index
        self.fn = fn
        self.module = fn.module
        self.cls = fn.cls
        self.out = FunctionFacts(fn=fn)
        self.local_names: Set[str] = set()
        self.global_decls: Set[str] = set()
        self.local_types: Dict[str, ClassInfo] = {}
        self.local_funcs: Set[str] = set()
        self.executors: Set[str] = set()

    # -- setup ---------------------------------------------------------------

    def run(self) -> FunctionFacts:
        self._prescan()
        held = self._declared_held()
        for stmt in self.fn.node.body:
            self._stmt(stmt, held)
        return self.out

    def _declared_held(self) -> Tuple[str, ...]:
        """Locks a ``concheck: caller-holds`` docstring annotation
        declares held on entry."""
        docstring = ast.get_docstring(self.fn.node) or ""
        held = []
        for name in _CALLER_HOLDS.findall(docstring):
            for subject in self.facts.locks:
                if subject == name or subject.endswith("." + name):
                    held.append(subject)
                    break
        return tuple(held)

    def _prescan(self) -> None:
        node = self.fn.node
        self.local_names.update(self.fn.params())
        for sub in ast.walk(node):
            if isinstance(sub, (ast.Global, ast.Nonlocal)):
                self.global_decls.update(sub.names)
            elif isinstance(sub, ast.Name) and isinstance(
                sub.ctx, (ast.Store, ast.Del)
            ):
                self.local_names.add(sub.id)
            elif isinstance(
                sub, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and sub is not node:
                self.local_funcs.add(sub.name)
                self.local_names.add(sub.name)
        self.local_names -= self.global_decls
        for param in self.fn.params():
            annotation = _strip_wrappers(self.fn.param_annotation(param))
            resolved = self.index.resolve_name(self.module, annotation)
            if isinstance(resolved, ClassInfo):
                self.local_types[param] = resolved
        for sub in ast.walk(node):
            if isinstance(sub, ast.Assign) and len(sub.targets) == 1 and \
                    isinstance(sub.targets[0], ast.Name):
                typed = self._type_of(sub.value, binding=True)
                if typed is not None:
                    self.local_types[sub.targets[0].id] = typed

    # -- typing --------------------------------------------------------------

    def _resolve_call_type(self, func: ast.expr) -> Optional[ClassInfo]:
        resolved = self._resolve_callee_obj(func)
        if isinstance(resolved, ClassInfo):
            return resolved
        if isinstance(resolved, FunctionInfo):
            text = _strip_wrappers(resolved.return_annotation())
            returned = self.index.resolve_name(resolved.module, text)
            if isinstance(returned, ClassInfo):
                return returned
        return None

    def _type_of(self, expr: ast.expr,
                 binding: bool = False) -> Optional[ClassInfo]:
        """The indexed class an expression evaluates to, if knowable."""
        if isinstance(expr, ast.Name):
            if expr.id == "self" and self.cls is not None:
                return self.cls
            return self.local_types.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self._type_of(expr.value)
            if base is None:
                return None
            return self._attr_class(base, expr.attr)
        if isinstance(expr, ast.Call):
            return self._resolve_call_type(expr.func)
        if isinstance(expr, ast.IfExp):
            typed = self._type_of(expr.body, binding=binding)
            return typed if typed is not None else self._type_of(
                expr.orelse, binding=binding
            )
        return None

    def _attr_class(self, cls: ClassInfo, attr: str) -> Optional[ClassInfo]:
        entry = cls.attr_types.get(attr)
        if entry is None or entry[0] != "instance":
            return None
        resolved = self.index.resolve_name(cls.module, entry[1])
        return resolved if isinstance(resolved, ClassInfo) else None

    # -- subjects ------------------------------------------------------------

    def _subject_of(self, expr: ast.expr) -> Optional[str]:
        """Shared-state subject named by an lvalue-ish expression."""
        if isinstance(expr, ast.Attribute):
            base = self._type_of(expr.value)
            if base is None:
                return None
            if expr.attr in base.methods:
                return None  # bound method, not state
            return "%s.%s" % (base.qualname, expr.attr)
        if isinstance(expr, ast.Name):
            return self._global_subject(expr.id)
        return None

    def _global_subject(self, name: str) -> Optional[str]:
        if name in self.local_names:
            return None
        mod = self.index.modules.get(self.module)
        if mod is None:
            return None
        if name in mod.global_assigns or name in self.global_decls:
            return "%s.%s" % (self.module, name)
        imported = mod.imports.get(name)
        if imported and "." in imported:
            target_mod, _, target_name = imported.rpartition(".")
            other = self.index.modules.get(target_mod)
            if other is not None and target_name in other.global_assigns:
                return imported
        return None

    def _where(self, node: ast.AST) -> str:
        return "%s:%d" % (self.module, getattr(node, "lineno", 0))

    def _record(self, subject: Optional[str], kind: str,
                held: Tuple[str, ...], node: ast.AST) -> None:
        if subject is None or subject in self.facts.sync_subjects:
            return
        self.out.accesses.append(Access(
            subject=subject,
            kind=kind,
            locks=frozenset(held),
            fn=self.fn.qualname,
            where=self._where(node),
        ))

    # -- lock resolution -----------------------------------------------------

    def _lock_expr(self, expr: ast.expr) -> Optional[str]:
        subject = None
        if isinstance(expr, ast.Attribute):
            base = self._type_of(expr.value)
            if base is not None:
                subject = "%s.%s" % (base.qualname, expr.attr)
        elif isinstance(expr, ast.Name):
            subject = self._global_subject(expr.id)
        if subject is not None and subject in self.facts.locks:
            return subject
        return None

    # -- statement traversal -------------------------------------------------

    def _stmt(self, stmt: ast.stmt, held: Tuple[str, ...]) -> None:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner = held
            for item in stmt.items:
                lock = self._lock_expr(item.context_expr)
                if lock is not None:
                    self.out.acquired.append(
                        (lock, self._where(item.context_expr))
                    )
                    for outer in inner:
                        if outer != lock:
                            self.out.nest_edges.append(
                                (outer, lock,
                                 self._where(item.context_expr))
                            )
                    inner = inner + (lock,)
                else:
                    if self._bind_executor(item):
                        continue
                    self._expr(item.context_expr, inner)
            for sub in stmt.body:
                self._stmt(sub, inner)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested function: body runs later, with no lock held.
            for sub in stmt.body:
                self._stmt(sub, ())
            return
        if isinstance(stmt, ast.Assign):
            self._expr(stmt.value, held)
            for target in stmt.targets:
                self._target(target, held)
            return
        if isinstance(stmt, ast.AugAssign):
            self._expr(stmt.value, held)
            self._record(self._subject_of(stmt.target), "read",
                         held, stmt)
            self._target(stmt.target, held)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._expr(stmt.value, held)
                self._target(stmt.target, held)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._target(target, held)
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self._expr(stmt.test, held)
            for sub in stmt.body:
                self._stmt(sub, held)
            for sub in stmt.orelse:
                self._stmt(sub, held)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._expr(stmt.iter, held)
            for sub in stmt.body:
                self._stmt(sub, held)
            for sub in stmt.orelse:
                self._stmt(sub, held)
            return
        if isinstance(stmt, ast.Try):
            for block in (stmt.body, stmt.orelse, stmt.finalbody):
                for sub in block:
                    self._stmt(sub, held)
            for handler in stmt.handlers:
                for sub in handler.body:
                    self._stmt(sub, held)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._expr(stmt.value, held)
            return
        if isinstance(stmt, ast.Expr):
            self._expr(stmt.value, held)
            return
        # Raise/Assert/Pass/Import/...: scan embedded expressions.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._expr(child, held)

    def _target(self, target: ast.expr, held: Tuple[str, ...]) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._target(element, held)
            return
        if isinstance(target, ast.Subscript):
            # Container mutation through an index: a write on the
            # container subject.
            self._record(self._subject_of(target.value), "write",
                         held, target)
            self._expr(target.slice, held)
            return
        if isinstance(target, ast.Starred):
            self._target(target.value, held)
            return
        subject = self._subject_of(target)
        if subject is None and isinstance(target, ast.Name) and \
                target.id in self.global_decls:
            subject = "%s.%s" % (self.module, target.id)
        self._record(subject, "write", held, target)

    # -- expression traversal ------------------------------------------------

    def _expr(self, expr: ast.expr, held: Tuple[str, ...]) -> None:
        if isinstance(expr, ast.Call):
            self._call(expr, held)
            return
        if isinstance(expr, (ast.Attribute, ast.Name)):
            self._record(self._subject_of(expr), "read", held, expr)
            if isinstance(expr, ast.Attribute):
                self._expr(expr.value, held)
            return
        if isinstance(expr, ast.Lambda):
            self._expr(expr.body, ())
            return
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._expr(child, held)
            elif isinstance(child, ast.comprehension):
                self._expr(child.iter, held)
                for cond in child.ifs:
                    self._expr(cond, held)

    def _call(self, call: ast.Call, held: Tuple[str, ...]) -> None:
        func = call.func
        handled_args = False
        if self._is_ctor(func, "Thread", "threading"):
            self._thread_site(call)
        elif self._is_ctor(func, "ProcessPoolExecutor",
                           "concurrent.futures"):
            self._pool_site(call)
            handled_args = True
        elif isinstance(func, ast.Attribute):
            receiver = func.value
            if isinstance(receiver, ast.Name) and \
                    receiver.id in self.executors and \
                    func.attr in ("map", "submit"):
                self._pool_dispatch(call)
                handled_args = True
            else:
                if func.attr in MUTATORS:
                    self._record(self._subject_of(receiver), "write",
                                 held, call)
                callee = self._resolve_callee_obj(func)
                if isinstance(callee, FunctionInfo):
                    self.out.calls.append(
                        (callee.qualname, frozenset(held),
                         self._where(call))
                    )
                self._expr(receiver, held)
        elif isinstance(func, ast.Name):
            callee = self._resolve_callee_obj(func)
            if isinstance(callee, FunctionInfo):
                self.out.calls.append(
                    (callee.qualname, frozenset(held), self._where(call))
                )
            elif isinstance(callee, ClassInfo):
                init = self.index.find_method(callee, "__init__")
                if init is not None:
                    self.out.calls.append(
                        (init.qualname, frozenset(held),
                         self._where(call))
                    )
                self._handler_args(call)
        if not handled_args:
            for arg in call.args:
                self._expr(arg, held)
            for keyword in call.keywords:
                self._expr(keyword.value, held)

    def _resolve_callee_obj(self, func: ast.expr):
        if isinstance(func, ast.Name):
            return self.index.resolve_name(self.module, func.id)
        if isinstance(func, ast.Attribute):
            base = self._type_of(func.value)
            if base is not None:
                return self.index.find_method(base, func.attr)
            if isinstance(func.value, ast.Name):
                return self.index.resolve_name(
                    self.module,
                    "%s.%s" % (func.value.id, func.attr),
                )
        return None

    def _is_ctor(self, func: ast.expr, name: str, module: str) -> bool:
        if isinstance(func, ast.Name) and func.id == name:
            mod = self.index.modules.get(self.module)
            imported = mod.imports.get(name, "") if mod else ""
            return imported.endswith(name)
        return (
            isinstance(func, ast.Attribute)
            and func.attr == name
            and isinstance(func.value, ast.Name)
            and func.value.id in (module.rsplit(".", 1)[-1], "threading",
                                  "futures")
        )

    # -- spawn points --------------------------------------------------------

    def _thread_site(self, call: ast.Call) -> None:
        target = None
        for keyword in call.keywords:
            if keyword.arg == "target":
                target = keyword.value
        where = self._where(call)
        if target is None:
            self.out.thread_sites.append(ThreadSite(
                target=None, text="(no target=)", kind="unresolved",
                where=where,
            ))
            return
        text = ast.unparse(target)
        if isinstance(target, ast.Attribute):
            base = self._type_of(target.value)
            if base is not None:
                method = self.index.find_method(base, target.attr)
                if method is not None:
                    self.out.thread_sites.append(ThreadSite(
                        target=method.qualname, text=text,
                        kind="resolved", where=where,
                    ))
                    return
                # An indexed receiver whose method lives in a stdlib
                # base (``server.serve_forever``): opaque, not an
                # analysis failure.
                self.out.thread_sites.append(ThreadSite(
                    target=None, text=text, kind="opaque", where=where,
                ))
                return
        elif isinstance(target, ast.Name):
            if target.id in self.local_funcs:
                self.out.thread_sites.append(ThreadSite(
                    target=None, text=text, kind="local", where=where,
                ))
                return
            resolved = self.index.resolve_name(self.module, target.id)
            if isinstance(resolved, FunctionInfo):
                self.out.thread_sites.append(ThreadSite(
                    target=resolved.qualname, text=text,
                    kind="resolved", where=where,
                ))
                return
        self.out.thread_sites.append(ThreadSite(
            target=None, text=text, kind="unresolved", where=where,
        ))

    def _handler_args(self, call: ast.Call) -> None:
        """Classes passed into a server constructor run their methods
        on server-spawned threads."""
        for arg in call.args:
            if not isinstance(arg, ast.Name):
                continue
            resolved = self.index.resolve_name(self.module, arg.id)
            if isinstance(resolved, ClassInfo) and self._is_handler(
                resolved
            ):
                self.out.handler_classes.append(resolved.qualname)

    def _is_handler(self, cls: ClassInfo) -> bool:
        seen: Set[str] = set()
        queue = [cls]
        while queue:
            current = queue.pop()
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            for base in current.base_names:
                if "RequestHandler" in base:
                    return True
                resolved = self.index.resolve_name(current.module, base)
                if isinstance(resolved, ClassInfo):
                    queue.append(resolved)
        return False

    def _bind_executor(self, item: ast.withitem) -> bool:
        """``with ProcessPoolExecutor(...) as pool:`` binds ``pool``."""
        expr = item.context_expr
        if isinstance(expr, ast.Call) and self._is_ctor(
            expr.func, "ProcessPoolExecutor", "concurrent.futures"
        ):
            self._pool_site(expr)
            if isinstance(item.optional_vars, ast.Name):
                self.executors.add(item.optional_vars.id)
            return True
        return False

    def _pool_site(self, call: ast.Call) -> None:
        site = PoolSite(where=self._where(call))
        for keyword in call.keywords:
            if keyword.arg == "initializer":
                resolved = self._resolve_callee_obj(keyword.value)
                if isinstance(resolved, FunctionInfo):
                    site.initializer = resolved.qualname
                    site.captured.extend(
                        self._param_classes(resolved)
                    )
            elif keyword.arg == "initargs":
                values = (keyword.value.elts
                          if isinstance(keyword.value, ast.Tuple)
                          else [keyword.value])
                for value in values:
                    typed = self._type_of(value)
                    if typed is not None:
                        site.captured.append(typed.qualname)
        self.out.pool_sites.append(site)
        self._last_pool_site = site

    def _pool_dispatch(self, call: ast.Call) -> None:
        """``pool.map(fn, ...)`` / ``pool.submit(fn, ...)``."""
        site = getattr(self, "_last_pool_site", None)
        if site is None or not call.args:
            return
        fn_expr = call.args[0]
        resolved = self._resolve_callee_obj(fn_expr)
        captured = []
        if isinstance(fn_expr, ast.Attribute):
            # A bound method drags its whole receiver through pickle.
            base = self._type_of(fn_expr.value)
            if base is not None:
                captured.append(base.qualname)
        if isinstance(resolved, FunctionInfo):
            captured.extend(self._param_classes(resolved))
            if captured:
                site.captured.extend(captured)
            else:
                site.untyped.append(resolved.qualname)
        elif captured:
            site.captured.extend(captured)
        elif isinstance(fn_expr, ast.Name):
            site.untyped.append(ast.unparse(fn_expr))

    def _param_classes(self, fn: FunctionInfo) -> List[str]:
        classes = []
        for param in fn.params():
            text = _strip_wrappers(fn.param_annotation(param))
            resolved = self.index.resolve_name(fn.module, text)
            if isinstance(resolved, ClassInfo):
                classes.append(resolved.qualname)
        return classes


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def extract_facts(index: Optional[ModuleIndex] = None) -> CodeFacts:
    """Run both extraction phases over every indexed function."""
    if index is None:
        index = ModuleIndex.build()
    facts = CodeFacts(index)
    _discover_definitions(facts)
    for qualname, fn in sorted(index.functions.items()):
        facts.functions[qualname] = _FunctionWalker(facts, fn).run()
    # Fold function-level global mutations into the census entries,
    # promoting rebound-only globals (initially immutable values) into
    # the census as "rebound".
    for facts_fn in facts.functions.values():
        for access in facts_fn.accesses:
            entry = facts.globals.get(access.subject)
            if entry is None:
                module, _, name = access.subject.rpartition(".")
                if module in index.modules and access.kind == "write" and \
                        name in index.modules[module].global_assigns:
                    entry = facts.globals[access.subject] = GlobalDef(
                        subject=access.subject,
                        module=module,
                        name=name,
                        kind="rebound",
                        where=access.where,
                    )
            if entry is not None and access.kind == "write":
                entry.mutations.append(access.where)
    return facts


__all__ = [
    "Access",
    "CodeFacts",
    "FunctionFacts",
    "GlobalDef",
    "LockDef",
    "PoolSite",
    "ThreadSite",
    "extract_facts",
    "INIT_METHODS",
    "MUTATORS",
]
