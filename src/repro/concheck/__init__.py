"""``repro.concheck`` — concurrency- and fork-safety analysis.

Static side (:func:`analyze_concurrency`): four passes over the
:class:`~repro.depcheck.modindex.ModuleIndex` — thread-escape,
lock-discipline (guard consistency + acquisition-order cycles),
fork/pickle-safety across the ``ProcessPoolExecutor`` boundary, and a
census of module-level mutable state.  Findings are either fixed or
justified in ``concheck-allow.txt``; the CI gate requires a clean
report.

Runtime side (:mod:`repro.concheck.runtime`): an opt-in sanitizer
(``REPRO_CONCHECK=1``) that wraps the locks built via
:func:`~repro.concheck.runtime.make_lock`, recording held-lock sets,
acquisition-order edges, and an Eraser-style lockset state machine per
instrumented access — cross-validating the static inference over the
real 40-kernel sweep.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.concheck.facts import CodeFacts, extract_facts
from repro.concheck.forksafety import check_fork_safety, global_census
from repro.concheck.locks import (
    check_guard_consistency,
    check_lock_order,
    guarded_fields,
)
from repro.concheck.report import (
    Allowlist,
    AllowlistEntry,
    ConcheckReport,
    ConDiagnostic,
)
from repro.concheck.runtime import (
    CONCHECK_ENV,
    LockMonitor,
    TrackedLock,
    concheck_enabled,
    install,
    make_lock,
    monitor,
    runtime_findings,
    runtime_sweep,
    site_access,
    uninstall,
)
from repro.concheck.threads import check_thread_shared
from repro.depcheck.modindex import ModuleIndex

#: Severity ranking for stable report ordering.
_SEVERITY_ORDER = {"error": 0, "warning": 1, "info": 2}


def analyze_concurrency(
    index: Optional[ModuleIndex] = None,
    facts: Optional[CodeFacts] = None,
    allowlist: Optional[Allowlist] = None,
) -> ConcheckReport:
    """Run all four static passes and assemble the report."""
    started = time.perf_counter()
    if facts is None:
        facts = extract_facts(index)

    report = ConcheckReport()

    thread_diags, roots, diagnosed = check_thread_shared(facts)
    report.diagnostics.extend(thread_diags)
    report.thread_roots = roots

    report.diagnostics.extend(check_guard_consistency(facts, diagnosed))
    order_diags, edges = check_lock_order(facts)
    report.diagnostics.extend(order_diags)
    report.locks = guarded_fields(facts)
    report.lock_edges = edges

    fork_diags, captured = check_fork_safety(facts)
    report.diagnostics.extend(fork_diags)
    report.pool_captures = captured

    census_diags, census = global_census(facts)
    report.diagnostics.extend(census_diags)
    report.census = census

    report.diagnostics.sort(key=lambda d: (
        _SEVERITY_ORDER.get(d.severity.value, 9), d.check_id, d.subject,
    ))
    if allowlist is not None:
        report.apply_allowlist(allowlist)
    report.elapsed_s = time.perf_counter() - started
    return report


__all__ = [
    "Allowlist",
    "AllowlistEntry",
    "CodeFacts",
    "CONCHECK_ENV",
    "ConcheckReport",
    "ConDiagnostic",
    "LockMonitor",
    "TrackedLock",
    "analyze_concurrency",
    "check_fork_safety",
    "check_guard_consistency",
    "check_lock_order",
    "check_thread_shared",
    "concheck_enabled",
    "extract_facts",
    "global_census",
    "install",
    "make_lock",
    "monitor",
    "runtime_findings",
    "runtime_sweep",
    "site_access",
    "uninstall",
]
