"""Lock-discipline inference (concheck pass 2).

Two questions, both answered from the extracted facts:

* **Guard consistency** — for each shared field, do all its mutation
  sites agree on a guarding lock?  A field written under ``self._lock``
  in four methods and bare in a fifth gets a WARNING: the lock protects
  nothing if any writer bypasses it.
* **Acquisition order** — build the static lock-order graph.  A direct
  edge A→B means some function acquires B while holding A (nested
  ``with``); a *closure* edge means a function called while holding A
  transitively acquires B.  A cycle of two or more locks is potential
  deadlock (two threads taking the locks in opposite orders); a
  self-loop on a non-reentrant lock is guaranteed deadlock on the path
  that triggers it.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.concheck.facts import INIT_METHODS, CodeFacts
from repro.concheck.report import ConDiagnostic
from repro.staticcheck.report import Severity


def _method_name(qualname: str) -> str:
    return qualname.rsplit(".", 1)[-1]


def guarded_fields(facts: CodeFacts) -> Dict[str, List[str]]:
    """Lock subject → sorted shared fields accessed under it."""
    mapping: Dict[str, Set[str]] = {lock: set() for lock in facts.locks}
    for access in facts.all_accesses():
        for lock in access.locks:
            mapping.setdefault(lock, set()).add(access.subject)
    return {lock: sorted(fields) for lock, fields in mapping.items()}


def check_guard_consistency(
    facts: CodeFacts, skip: Set[str]
) -> List[ConDiagnostic]:
    """WARN on fields guarded only sometimes.

    ``skip`` holds subjects already reported as thread-shared ERRORs;
    repeating them as WARNINGs would be noise.
    """
    writes_by_subject: Dict[str, List] = {}
    for access in facts.all_accesses():
        if access.kind != "write":
            continue
        if _method_name(access.fn) in INIT_METHODS:
            continue
        writes_by_subject.setdefault(access.subject, []).append(access)

    diagnostics: List[ConDiagnostic] = []
    for subject in sorted(writes_by_subject):
        if subject in skip or "." not in subject:
            continue
        writes = writes_by_subject[subject]
        locksets = {w.locks for w in writes}
        if len(locksets) <= 1:
            continue  # every write agrees (all bare or all same locks)
        common = frozenset.intersection(*locksets)
        if common:
            continue  # disagreement above a shared guard is fine
        guarded = [w for w in writes if w.locks]
        bare = [w for w in writes if not w.locks]
        if not guarded or not bare:
            # Disjoint non-empty locksets with no common lock: treat
            # like sometimes-guarded, witness the first write.
            bare = writes[:1]
        lock_names = sorted({
            lock for w in guarded for lock in w.locks
        })
        diagnostics.append(ConDiagnostic(
            check_id="concheck-inconsistent-guard",
            severity=Severity.WARNING,
            subject=subject,
            message="written under %s at %d site(s) but bare at %s"
                    % (", ".join(lock_names), len(guarded),
                       bare[0].where),
            where=bare[0].where,
        ))
    return diagnostics


# ---------------------------------------------------------------------------
# Lock-order graph
# ---------------------------------------------------------------------------


def _transitive_acquires(facts: CodeFacts) -> Dict[str, FrozenSet[str]]:
    """Fixpoint: locks each function may acquire, directly or via calls."""
    direct: Dict[str, Set[str]] = {}
    callees: Dict[str, Set[str]] = {}
    for qualname, fn_facts in facts.functions.items():
        direct[qualname] = {lock for lock, _ in fn_facts.acquired}
        callees[qualname] = {c for c, _, _ in fn_facts.calls}
    acquired = {q: set(locks) for q, locks in direct.items()}
    changed = True
    while changed:
        changed = False
        for qualname in acquired:
            before = len(acquired[qualname])
            for callee in callees[qualname]:
                acquired[qualname] |= acquired.get(callee, set())
            if len(acquired[qualname]) != before:
                changed = True
    return {q: frozenset(locks) for q, locks in acquired.items()}


def lock_order_edges(
    facts: CodeFacts,
) -> Dict[Tuple[str, str], str]:
    """(held, acquired) → witness location, direct and via calls."""
    transitive = _transitive_acquires(facts)
    edges: Dict[Tuple[str, str], str] = {}
    for fn_facts in facts.functions.values():
        for outer, inner, where in fn_facts.nest_edges:
            edges.setdefault((outer, inner), where)
        for callee, held, where in fn_facts.calls:
            if not held:
                continue
            for inner in transitive.get(callee, ()):
                for outer in held:
                    edges.setdefault(
                        (outer, inner),
                        "%s (via %s)" % (where, callee),
                    )
    return edges


def check_lock_order(facts: CodeFacts) -> Tuple[
    List[ConDiagnostic], List[str]
]:
    """Cycle / reentry detection over the static lock-order graph."""
    edges = lock_order_edges(facts)
    diagnostics: List[ConDiagnostic] = []

    graph: Dict[str, Set[str]] = {}
    for (outer, inner), where in sorted(edges.items()):
        if outer == inner:
            lock = facts.locks.get(outer)
            if lock is not None and not lock.reentrant:
                diagnostics.append(ConDiagnostic(
                    check_id="concheck-lock-reentry",
                    severity=Severity.ERROR,
                    subject=outer,
                    message="non-reentrant lock may be re-acquired "
                            "while already held",
                    where=where,
                ))
            continue
        graph.setdefault(outer, set()).add(inner)

    # Mutual reachability: A and B are in a cycle iff each reaches the
    # other.  The lock graph is tiny, so closure-per-node is fine.
    reach: Dict[str, Set[str]] = {}
    for node in graph:
        seen: Set[str] = set()
        stack = list(graph[node])
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(graph.get(current, ()))
        reach[node] = seen

    reported: Set[FrozenSet[str]] = set()
    for node in sorted(graph):
        cycle = {
            other for other in reach.get(node, ())
            if node in reach.get(other, ())
        }
        if not cycle:
            continue
        members = frozenset(cycle | {node})
        if members in reported:
            continue
        reported.add(members)
        ordered = sorted(members)
        witnesses = [
            "%s -> %s at %s" % (a, b, edges[(a, b)])
            for a in ordered for b in ordered
            if (a, b) in edges
        ]
        diagnostics.append(ConDiagnostic(
            check_id="concheck-lock-order-cycle",
            severity=Severity.ERROR,
            subject=" <-> ".join(ordered),
            message="locks acquired in conflicting orders: %s"
                    % "; ".join(witnesses[:4]),
            where=witnesses[0].rsplit(" at ", 1)[-1] if witnesses else "",
        ))

    rendered = [
        "%s -> %s (%s)" % (outer, inner, where)
        for (outer, inner), where in sorted(edges.items())
        if outer != inner
    ]
    return diagnostics, rendered
