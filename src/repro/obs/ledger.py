"""Prediction ledger: every prediction as one appended JSONL record.

A single run's prediction is ephemeral — printed, maybe cached, gone.
The ledger makes accuracy a *time series*: every pipeline evaluation
appends one JSON record carrying the prediction's full provenance (the
config fingerprint, architecture and hot-path backend that produced it)
next to its outcome (predicted vs. oracle CPI per model, the
per-component CPI-stack attribution, cache miss rates and stage
timings).  Append-only JSONL keeps writes atomic enough for concurrent
pool workers (one ``O_APPEND`` line per record) and trivially
mergeable across machines — ``cat`` is the merge operator.

On top of the record stream sit the two consumers this module also
houses:

* :func:`compare_ledgers` — the **accuracy-regression watchdog**: given
  a checked-in baseline ledger and a fresh run, it diffs per-kernel
  prediction error and flags every kernel whose error regressed beyond
  tolerance (the CI gate; CLI face ``repro watchdog``);
* :func:`runs` / :func:`per_kernel_errors` — the aggregations the HTML
  dashboard (:mod:`repro.obs.dashboard`) renders as trend tables.

Records validate against ``schemas/ledger.schema.json``
(``python -m repro.obs.schema ledger ledger.jsonl``).
"""

from __future__ import annotations

import json
import math
import os
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: The model whose error the watchdog guards by default: full GPUMech.
DEFAULT_MODEL = "mt_mshr_band"


def _sanitize(value: Any) -> Any:
    """JSON-safe copy: non-finite floats become ``None`` (strict JSON
    has no NaN/Infinity, and a degenerate-oracle ``nan`` error must
    never be silently rewritten as a perfect 0.0)."""
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {str(k): _sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    return value


class PredictionLedger:
    """Appends prediction records to a JSONL file.

    One ledger instance = one *run*: every record it appends shares a
    ``run_id``, which is how the dashboard groups a sweep's records
    into a point on the trend line.  :meth:`rotate_run` starts a new
    run on the same file (``repro serve-metrics --repeat N`` rotates
    between sweeps so each repetition is its own dashboard point).

    Instances hold only the path and run id — no open handle — so they
    pickle into pool workers, and every worker appends to the same
    file without coordination.
    """

    def __init__(self, path: str, run_id: Optional[str] = None):
        self.path = path
        self.run_id = run_id if run_id else uuid.uuid4().hex[:12]

    def rotate_run(self, run_id: Optional[str] = None) -> str:
        """Start a new run id; subsequent records belong to it."""
        self.run_id = run_id if run_id else uuid.uuid4().hex[:12]
        return self.run_id

    def append(self, record: Dict[str, Any]) -> Dict[str, Any]:
        """Stamp ``ts``/``run_id`` onto a record and append it."""
        record = dict(record)
        record.setdefault("ts", time.time())
        record.setdefault("run_id", self.run_id)
        record = _sanitize(record)
        line = json.dumps(record, sort_keys=True, allow_nan=False)
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
        return record


def build_record(
    result,
    config,
    scale,
    backend: str,
    cache_result=None,
    stage_seconds: Optional[Dict[str, float]] = None,
    duration_s: Optional[float] = None,
) -> Dict[str, Any]:
    """One ledger record from a finished evaluation.

    ``result`` is a :class:`~repro.harness.runner.KernelResult` (duck-
    typed to avoid the circular import); ``config`` the effective
    :class:`~repro.config.GPUConfig`; ``backend`` the hot-path backend
    (``vectorized``/``scalar``) that produced the artifacts.
    """
    record: Dict[str, Any] = {
        "kernel": result.kernel,
        "arch": config.arch,
        "backend": backend,
        "policy": result.policy,
        "n_warps": result.n_warps,
        "fingerprint": config.fingerprint(),
        "scale": {
            "n_blocks": scale.n_blocks,
            "block_size": scale.block_size,
            "iters": scale.iters,
        },
        "oracle_cpi": result.oracle_cpi,
        "model_cpis": dict(result.model_cpis),
        "errors": result.errors(),
        "cpi_stack": result.prediction.cpi_stack.as_dict(),
    }
    if cache_result is not None:
        record["cache"] = {
            "l1_miss_rate": cache_result.l1_miss_rate,
            "l2_miss_rate": cache_result.l2_miss_rate,
        }
    if stage_seconds:
        record["stage_seconds"] = {
            stage: seconds for stage, seconds in stage_seconds.items()
            if seconds
        }
    if duration_s is not None:
        record["duration_s"] = duration_s
    return record


# ---------------------------------------------------------------------------
# Reading and aggregating
# ---------------------------------------------------------------------------


def read_ledger(path: str) -> List[Dict[str, Any]]:
    """All records of one ledger file, in file (append) order."""
    records: List[Dict[str, Any]] = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError as exc:
                raise ValueError(
                    "%s:%d: not a JSON record (%s)" % (path, lineno, exc)
                ) from exc
    return records


def read_ledgers(paths: Sequence[str]) -> List[Dict[str, Any]]:
    """Concatenate several ledger files (``cat`` as a function)."""
    records: List[Dict[str, Any]] = []
    for path in paths:
        records.extend(read_ledger(path))
    return records


def runs(records: Iterable[Dict[str, Any]]) -> List[Tuple[str, List[Dict[str, Any]]]]:
    """Records grouped by ``run_id``, runs ordered by first timestamp."""
    grouped: Dict[str, List[Dict[str, Any]]] = {}
    for record in records:
        grouped.setdefault(record.get("run_id", "?"), []).append(record)
    return sorted(
        grouped.items(),
        key=lambda kv: min(r.get("ts", 0.0) for r in kv[1]),
    )


def per_kernel_errors(
    records: Iterable[Dict[str, Any]], model: str = DEFAULT_MODEL
) -> Dict[str, Optional[float]]:
    """Last-recorded prediction error per kernel (None: degenerate)."""
    errors: Dict[str, Optional[float]] = {}
    for record in sorted(records, key=lambda r: r.get("ts", 0.0)):
        errors[record["kernel"]] = (record.get("errors") or {}).get(model)
    return errors


# ---------------------------------------------------------------------------
# The accuracy-regression watchdog
# ---------------------------------------------------------------------------


@dataclass
class WatchdogRow:
    """Per-kernel verdict of one baseline-vs-current comparison."""

    kernel: str
    baseline_error: Optional[float]
    current_error: Optional[float]
    regressed: bool
    note: str = ""

    @property
    def delta(self) -> Optional[float]:
        if self.baseline_error is None or self.current_error is None:
            return None
        return self.current_error - self.baseline_error


@dataclass
class WatchdogReport:
    """Everything ``repro watchdog`` prints and CI gates on."""

    model: str
    tolerance: float
    rel_tolerance: float
    rows: List[WatchdogRow] = field(default_factory=list)

    @property
    def regressions(self) -> List[WatchdogRow]:
        return [row for row in self.rows if row.regressed]

    @property
    def has_regressions(self) -> bool:
        return bool(self.regressions)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "model": self.model,
            "tolerance": self.tolerance,
            "rel_tolerance": self.rel_tolerance,
            "n_kernels": len(self.rows),
            "n_regressions": len(self.regressions),
            "rows": [
                {
                    "kernel": row.kernel,
                    "baseline_error": _sanitize(row.baseline_error),
                    "current_error": _sanitize(row.current_error),
                    "delta": _sanitize(row.delta),
                    "regressed": row.regressed,
                    "note": row.note,
                }
                for row in self.rows
            ],
        }

    def render_text(self) -> str:
        from repro.harness.reporting import render_table

        def fmt(value: Optional[float]) -> str:
            return "-" if value is None else "%.2f%%" % (100.0 * value)

        table_rows = []
        for row in sorted(self.rows,
                          key=lambda r: (not r.regressed,
                                         -(r.delta or 0.0), r.kernel)):
            table_rows.append((
                row.kernel, fmt(row.baseline_error),
                fmt(row.current_error), fmt(row.delta),
                "REGRESSED" if row.regressed else (row.note or "ok"),
            ))
        verdict = (
            "%d kernel(s) compared, %d regression(s) beyond "
            "tolerance %.1f%% (+%.0f%% rel) on %s"
            % (len(self.rows), len(self.regressions),
               100.0 * self.tolerance, 100.0 * self.rel_tolerance,
               self.model)
        )
        return render_table(
            ("kernel", "baseline err", "current err", "delta", "verdict"),
            table_rows,
            title="accuracy watchdog: " + verdict,
        )


def compare_ledgers(
    baseline_records: Iterable[Dict[str, Any]],
    current_records: Iterable[Dict[str, Any]],
    model: str = DEFAULT_MODEL,
    tolerance: float = 0.02,
    rel_tolerance: float = 0.0,
    allow_missing: bool = False,
) -> WatchdogReport:
    """Diff per-kernel prediction error between two ledgers.

    A kernel regresses when ``current > baseline + tolerance +
    rel_tolerance * baseline``.  A kernel present in the baseline but
    absent from the current run counts as a regression (coverage loss)
    unless ``allow_missing``; a kernel whose error *became* degenerate
    (``None``) regresses unconditionally — losing the oracle is never
    an improvement.  New kernels (no baseline) are reported informational.
    """
    report = WatchdogReport(model=model, tolerance=tolerance,
                            rel_tolerance=rel_tolerance)
    baseline = per_kernel_errors(baseline_records, model)
    current = per_kernel_errors(current_records, model)
    for kernel in sorted(set(baseline) | set(current)):
        if kernel not in current:
            report.rows.append(WatchdogRow(
                kernel, baseline.get(kernel), None,
                regressed=not allow_missing, note="missing from current",
            ))
            continue
        if kernel not in baseline:
            report.rows.append(WatchdogRow(
                kernel, None, current[kernel],
                regressed=False, note="new kernel (no baseline)",
            ))
            continue
        base_err, cur_err = baseline[kernel], current[kernel]
        if cur_err is None:
            report.rows.append(WatchdogRow(
                kernel, base_err, None,
                regressed=base_err is not None,
                note="degenerate oracle",
            ))
            continue
        if base_err is None:
            report.rows.append(WatchdogRow(
                kernel, None, cur_err, regressed=False,
                note="baseline degenerate",
            ))
            continue
        budget = base_err + tolerance + rel_tolerance * base_err
        report.rows.append(WatchdogRow(
            kernel, base_err, cur_err, regressed=cur_err > budget,
        ))
    return report
