"""Checked-in JSON schemas for the exported artifacts + a mini validator.

The trace (Chrome ``trace_event``), span-JSONL and metrics-snapshot
formats are contracts: tests and the CI smoke job validate every emitted
file against the schemas under ``repro/obs/schemas/``.  The validator
implements the JSON-Schema subset those schemas use (``type``,
``required``, ``properties``, ``items``, ``enum``, ``minimum``,
``maximum``, ``additionalProperties``) so validation needs no
third-party dependency.

The ``openmetrics`` kind is text, not JSON: it dispatches to the
dependency-free exposition checker in :mod:`repro.obs.openmetrics`
(line syntax, counter/histogram suffix rules, cumulative buckets,
terminating ``# EOF``), so one validator entry point covers every
artifact the system emits.

Command line::

    python -m repro.obs.schema trace trace.json [more.json ...]
    python -m repro.obs.schema metrics metrics.json
    python -m repro.obs.schema spans spans.jsonl
    python -m repro.obs.schema ledger ledger.jsonl
    python -m repro.obs.schema openmetrics metrics.txt
"""

from __future__ import annotations

import json
import os
import sys
from typing import Any, Dict, List, Optional

SCHEMA_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "schemas")

#: Schema name → (file, jsonl?) — jsonl formats validate per line.
FORMATS = {
    "trace": ("trace_event.schema.json", False),
    "spans": ("span.schema.json", True),
    "metrics": ("metrics.schema.json", False),
    "ledger": ("ledger.schema.json", True),
}

#: Text (non-JSON) formats → their file validator.  Kept separate from
#: ``FORMATS`` so ``load_schema`` stays JSON-only.
TEXT_FORMATS = ("openmetrics",)

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def load_schema(name: str) -> Dict[str, Any]:
    """Load one of the checked-in schemas by format name."""
    filename, _ = FORMATS[name]
    with open(os.path.join(SCHEMA_DIR, filename), encoding="utf-8") as f:
        return json.load(f)


def _type_ok(value: Any, expected: str) -> bool:
    if expected == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if expected == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    return isinstance(value, _TYPES[expected])


def validate(instance: Any, schema: Dict[str, Any],
             path: str = "$") -> List[str]:
    """Validate ``instance`` against the schema subset; returns errors."""
    errors: List[str] = []
    expected = schema.get("type")
    if expected is not None:
        options = expected if isinstance(expected, list) else [expected]
        if not any(_type_ok(instance, t) for t in options):
            errors.append("%s: expected type %s, got %s"
                          % (path, "/".join(options),
                             type(instance).__name__))
            return errors  # structural mismatch: nothing below applies
    if "enum" in schema and instance not in schema["enum"]:
        errors.append("%s: %r not in enum %r"
                      % (path, instance, schema["enum"]))
    if isinstance(instance, (int, float)) and not isinstance(instance, bool):
        if "minimum" in schema and instance < schema["minimum"]:
            errors.append("%s: %r < minimum %r"
                          % (path, instance, schema["minimum"]))
        if "maximum" in schema and instance > schema["maximum"]:
            errors.append("%s: %r > maximum %r"
                          % (path, instance, schema["maximum"]))
    if isinstance(instance, dict):
        for name in schema.get("required", ()):
            if name not in instance:
                errors.append("%s: missing required property %r"
                              % (path, name))
        properties = schema.get("properties", {})
        for name, value in instance.items():
            sub = properties.get(name)
            if sub is not None:
                errors.extend(validate(value, sub, "%s.%s" % (path, name)))
            elif schema.get("additionalProperties") is False:
                errors.append("%s: unexpected property %r" % (path, name))
    if isinstance(instance, list) and "items" in schema:
        for i, item in enumerate(instance):
            errors.extend(
                validate(item, schema["items"], "%s[%d]" % (path, i))
            )
    return errors


def validate_file(kind: str, path: str) -> List[str]:
    """Validate one emitted file against the named format's schema."""
    if kind in TEXT_FORMATS:
        from repro.obs.openmetrics import validate_openmetrics_file

        return validate_openmetrics_file(path)
    schema = load_schema(kind)
    _, jsonl = FORMATS[kind]
    errors: List[str] = []
    with open(path, encoding="utf-8") as handle:
        if jsonl:
            for lineno, line in enumerate(handle, 1):
                if not line.strip():
                    continue
                try:
                    instance = json.loads(line)
                except ValueError as exc:
                    errors.append("line %d: not JSON (%s)" % (lineno, exc))
                    continue
                errors.extend(
                    "line %d: %s" % (lineno, e)
                    for e in validate(instance, schema)
                )
        else:
            try:
                instance = json.load(handle)
            except ValueError as exc:
                return ["not JSON (%s)" % exc]
            errors = validate(instance, schema)
    return errors


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.schema",
        description="validate emitted trace/metrics files against the "
        "checked-in schemas",
    )
    parser.add_argument("kind",
                        choices=sorted(FORMATS) + sorted(TEXT_FORMATS))
    parser.add_argument("files", nargs="+", metavar="FILE")
    args = parser.parse_args(argv)
    failed = 0
    for path in args.files:
        errors = validate_file(args.kind, path)
        if errors:
            failed += 1
            print("%s: INVALID (%d error(s))" % (path, len(errors)))
            for error in errors[:20]:
                print("  " + error)
        else:
            print("%s: ok (%s schema)" % (path, args.kind))
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI smoke
    sys.exit(main())
