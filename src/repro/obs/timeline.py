"""Per-interval timeline sampling of the timing oracle.

The cycle-level oracle aggregates per-core stall attribution over the
whole run; a :class:`Timeline` additionally snapshots each core's
cumulative counters every ``interval`` cycles, turning "this kernel is
23% MSHR-stalled" into "core 1 saturates its MSHR file between cycles
4k and 9k while core 0 is already done".  Samples store *cumulative*
values (cheap to record in the hot loop); per-interval deltas are
derived at export time.

:meth:`Timeline.counter_events` renders the samples as Chrome-trace
counter ('C') events — one occupancy track and one stall-attribution
track per core — which land in the same Perfetto file as the pipeline
spans (cycle timestamps are mapped onto microseconds 1:1, so the
"time" axis of these tracks reads as cycles).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Counter fields carried by every sample (cumulative at sample time).
SAMPLE_FIELDS = (
    "insts_issued",
    "issue_cycles",
    "mshr_stall_cycles",
    "sfu_stall_cycles",
    "barrier_stall_cycles",
    "dep_stall_cycles",
)


@dataclass
class TimelineSample:
    """Cumulative per-core counters at one sample point."""

    cycle: float
    occupancy: int  # resident warps at sample time
    insts_issued: int = 0
    issue_cycles: int = 0
    mshr_stall_cycles: int = 0
    sfu_stall_cycles: int = 0
    barrier_stall_cycles: int = 0
    dep_stall_cycles: int = 0


@dataclass
class Timeline:
    """Sampled per-core activity of one oracle run."""

    interval: float
    #: core id → samples in cycle order.
    samples: Dict[int, List[TimelineSample]] = field(default_factory=dict)

    def record(self, core_id: int, cycle: float, occupancy: int,
               **counters: int) -> None:
        """Append one cumulative sample for ``core_id`` at ``cycle``."""
        self.samples.setdefault(core_id, []).append(
            TimelineSample(cycle=cycle, occupancy=occupancy, **counters)
        )

    @property
    def n_samples(self) -> int:
        return sum(len(s) for s in self.samples.values())

    def deltas(self, core_id: int) -> List[Dict[str, Any]]:
        """Per-interval counter increments for one core."""
        out: List[Dict[str, Any]] = []
        previous: Optional[TimelineSample] = None
        for sample in self.samples.get(core_id, ()):
            row: Dict[str, Any] = {
                "cycle": sample.cycle,
                "occupancy": sample.occupancy,
            }
            for name in SAMPLE_FIELDS:
                before = getattr(previous, name) if previous else 0
                row[name] = getattr(sample, name) - before
            out.append(row)
            previous = sample
        return out

    def counter_events(self, pid: int = 0, base_ts: float = 0.0,
                       cycles_per_us: float = 1.0,
                       track_prefix: str = "") -> List[Dict[str, Any]]:
        """Chrome-trace counter tracks (ph='C'), one pair per core.

        ``base_ts`` places the tracks on the trace's time axis (pass the
        enclosing oracle span's start); ``cycles_per_us`` scales cycles
        onto it (1.0 shows raw cycle numbers as microseconds).
        ``track_prefix`` (e.g. ``"memcoal "``) keeps several kernels'
        tracks distinct inside one trace file.
        """
        events: List[Dict[str, Any]] = []
        for core_id in sorted(self.samples):
            for row in self.deltas(core_id):
                ts = base_ts + row["cycle"] / cycles_per_us
                events.append({
                    "name": "%score%d occupancy" % (track_prefix, core_id),
                    "cat": "timeline",
                    "ph": "C",
                    "ts": ts,
                    "pid": pid,
                    "args": {"resident_warps": row["occupancy"]},
                })
                events.append({
                    "name": "%score%d activity" % (track_prefix, core_id),
                    "cat": "timeline",
                    "ph": "C",
                    "ts": ts,
                    "pid": pid,
                    "args": {
                        "issued": row["insts_issued"],
                        "mshr_stall": row["mshr_stall_cycles"],
                        "sfu_stall": row["sfu_stall_cycles"],
                        "barrier_stall": row["barrier_stall_cycles"],
                        "dep_stall": row["dep_stall_cycles"],
                    },
                })
        return events
