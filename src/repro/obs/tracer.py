"""Hierarchical span tracer with Chrome-trace/Perfetto export.

A :class:`Tracer` hands out context managers that time a named region of
work and record it as a *span*: start/duration (microseconds), the
process and thread that ran it, and the enclosing span's id (so nesting
is explicit, not just implied by timestamps).  Design constraints, in
order:

1. **Near-zero overhead when disabled.**  ``tracer.span(...)`` on a
   disabled tracer returns one shared no-op context manager — no span
   object, no dict, no clock read is ever allocated on that path, which
   is what lets the pipeline keep a tracer unconditionally.
2. **Thread- and process-safe.**  Finished spans append under a lock;
   the per-thread open-span stack lives in ``threading.local``.  Worker
   processes record into their own (forked or unpickled) tracer and ship
   finished spans back with :meth:`drain`; the parent folds them in with
   :meth:`merge`.  ``time.perf_counter`` is CLOCK_MONOTONIC on Linux —
   machine-wide, so timestamps from different processes share one axis
   (the epoch is captured once and travels through fork/pickle).
3. **Standard viewers.**  :func:`write_chrome_trace` emits the Chrome
   ``trace_event`` JSON format: open the file in ``chrome://tracing`` or
   https://ui.perfetto.dev.  :func:`write_jsonl` emits one raw span per
   line for programmatic consumers.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.concheck.runtime import make_lock, site_access

#: Per-process span id source; combined with ``pid`` ids are globally
#: unique, and 0 is reserved for "no parent".
_IDS = itertools.count(1)


class _NullSpan:
    """Shared no-op context manager returned by disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _SpanHandle:
    """Open span: records itself into the tracer on ``__exit__``."""

    __slots__ = ("tracer", "name", "category", "args", "span_id",
                 "parent_id", "_start")

    def __init__(self, tracer: "Tracer", name: str, category: str,
                 args: Optional[Dict[str, Any]]):
        self.tracer = tracer
        self.name = name
        self.category = category
        self.args = args

    def __enter__(self) -> "_SpanHandle":
        tracer = self.tracer
        stack = tracer._stack()
        self.parent_id = stack[-1] if stack else 0
        self.span_id = next(_IDS)
        stack.append(self.span_id)
        # Cross-thread view of open span names (keyed by thread ident)
        # so the sampling profiler can attribute a sampled stack to the
        # pipeline stage the sampled thread is currently inside.  The
        # sampler reads this map from its own thread, so every mutation
        # happens under the tracer lock.
        with tracer._lock:
            site_access("Tracer._open_names")
            names = tracer._open_names
            names.setdefault(threading.get_ident(), []).append(self.name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.perf_counter()
        tracer = self.tracer
        stack = tracer._stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        tid = threading.get_ident()
        record: Dict[str, Any] = {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "cat": self.category,
            "ts": (self._start - tracer.epoch) * 1e6,
            "dur": (end - self._start) * 1e6,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
        }
        if self.args:
            record["args"] = dict(self.args)
        if exc_type is not None:
            record["error"] = exc_type.__name__
        with tracer._lock:
            site_access("Tracer._open_names")
            open_names = tracer._open_names.get(tid)
            if open_names:
                open_names.pop()
                if not open_names:
                    tracer._open_names.pop(tid, None)
            site_access("Tracer._spans")
            tracer._spans.append(record)
        return False


class Tracer:
    """Collects spans; one instance per logical run (shared by workers)."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        #: perf_counter value mapped to ts=0; shared across processes.
        self.epoch = time.perf_counter()
        self._lock = make_lock("Tracer._lock")
        self._local = threading.local()
        self._spans: List[Dict[str, Any]] = []
        #: thread ident → names of that thread's currently-open spans
        #: (outermost first); read by the sampling profiler.
        self._open_names: Dict[int, List[str]] = {}

    # -- recording ----------------------------------------------------------

    def span(self, name: str, category: str = "repro",
             args: Optional[Dict[str, Any]] = None):
        """Context manager timing one region; no-op when disabled."""
        if not self.enabled:
            return NULL_SPAN
        return _SpanHandle(self, name, category, args)

    def instant(self, name: str, category: str = "repro",
                args: Optional[Dict[str, Any]] = None) -> None:
        """Record a zero-duration marker event."""
        if not self.enabled:
            return
        record: Dict[str, Any] = {
            "id": next(_IDS),
            "parent": (self._stack() or [0])[-1],
            "name": name,
            "cat": category,
            "ts": (time.perf_counter() - self.epoch) * 1e6,
            "dur": 0.0,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
        }
        if args:
            record["args"] = dict(args)
        with self._lock:
            site_access("Tracer._spans")
            self._spans.append(record)

    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def open_span_names(self, tid: Optional[int] = None) -> tuple:
        """Names of the spans currently open on a thread (outermost
        first); the calling thread's by default.

        Safe to call from *another* thread — this is how the sampling
        profiler maps a sampled stack to the pipeline stage that thread
        is executing.  The copy is taken under the tracer lock, so the
        view is a consistent snapshot (it may still trail the sampled
        thread by an in-flight span push/pop).
        """
        if tid is None:
            tid = threading.get_ident()
        with self._lock:
            site_access("Tracer._open_names", write=False)
            return tuple(self._open_names.get(tid, ()))

    # -- collection ---------------------------------------------------------

    @property
    def n_spans(self) -> int:
        with self._lock:
            site_access("Tracer._spans", write=False)
            return len(self._spans)

    def spans(self) -> List[Dict[str, Any]]:
        """Snapshot of all finished spans (oldest first)."""
        with self._lock:
            site_access("Tracer._spans", write=False)
            return list(self._spans)

    def drain(self) -> List[Dict[str, Any]]:
        """Remove and return all finished spans (worker → parent hop)."""
        with self._lock:
            site_access("Tracer._spans")
            spans, self._spans = self._spans, []
        return spans

    def merge(self, spans: Iterable[Dict[str, Any]]) -> None:
        """Fold spans drained from another tracer (e.g. a pool worker)."""
        with self._lock:
            site_access("Tracer._spans")
            self._spans.extend(spans)

    # -- export -------------------------------------------------------------

    def export_jsonl(self, path: str) -> None:
        write_jsonl(self.spans(), path)

    def export_chrome(self, path: str,
                      extra_events: Sequence[Dict[str, Any]] = (),
                      metadata: Optional[Dict[str, Any]] = None) -> None:
        write_chrome_trace(path, self.spans(), extra_events=extra_events,
                           metadata=metadata)

    # -- pickling (fork start method never pickles; spawn does) -------------

    def __getstate__(self) -> Dict[str, Any]:
        # Workers must not replay the parent's already-recorded spans,
        # and locks/thread-locals do not pickle.
        return {"enabled": self.enabled, "epoch": self.epoch}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.enabled = state["enabled"]
        self.epoch = state["epoch"]
        self._lock = make_lock("Tracer._lock")
        self._local = threading.local()
        self._spans = []
        self._open_names = {}


#: Process-wide disabled tracer: the default collaborator everywhere.
NULL_TRACER = Tracer(enabled=False)

_CURRENT: Tracer = NULL_TRACER


def get_tracer() -> Tracer:
    """The process-wide current tracer (disabled unless configured)."""
    return _CURRENT


def set_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Install (or, with ``None``, reset) the process-wide tracer."""
    global _CURRENT
    _CURRENT = tracer if tracer is not None else NULL_TRACER
    return _CURRENT


# ---------------------------------------------------------------------------
# Export formats
# ---------------------------------------------------------------------------


def write_jsonl(spans: Sequence[Dict[str, Any]], path: str) -> None:
    """One span dict per line, oldest first."""
    with open(path, "w", encoding="utf-8") as handle:
        for span in sorted(spans, key=lambda s: s["ts"]):
            handle.write(json.dumps(span, sort_keys=True) + "\n")


def chrome_events(spans: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Spans as Chrome ``trace_event`` complete ('X') events."""
    events: List[Dict[str, Any]] = []
    for span in spans:
        args = dict(span.get("args") or {})
        args["span_id"] = span["id"]
        if span.get("parent"):
            args["parent_id"] = span["parent"]
        if "error" in span:
            args["error"] = span["error"]
        events.append({
            "name": span["name"],
            "cat": span["cat"],
            "ph": "X",
            "ts": span["ts"],
            "dur": span["dur"],
            "pid": span["pid"],
            "tid": span["tid"],
            "args": args,
        })
    return events


def _metadata_events(events: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Name every pid so Perfetto shows 'repro' / 'repro worker'."""
    pids = sorted({e["pid"] for e in events})
    parent = os.getpid()
    out = []
    for pid in pids:
        name = "repro" if pid == parent else "repro worker %d" % pid
        out.append({
            "name": "process_name",
            "ph": "M",
            "ts": 0,
            "pid": pid,
            "args": {"name": name},
        })
    return out


def write_chrome_trace(path: str, spans: Sequence[Dict[str, Any]],
                       extra_events: Sequence[Dict[str, Any]] = (),
                       metadata: Optional[Dict[str, Any]] = None) -> None:
    """Write a Chrome-trace JSON object file.

    ``extra_events`` are appended verbatim (counter tracks from the
    timeline sampler); ``metadata`` lands in ``otherData``.
    """
    events = chrome_events(spans) + list(extra_events)
    events += _metadata_events(events)
    payload: Dict[str, Any] = {
        "traceEvents": sorted(events, key=lambda e: (e["ts"], e["pid"])),
        "displayTimeUnit": "ms",
        "otherData": dict(metadata or {}),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
