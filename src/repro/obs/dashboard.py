"""Self-contained HTML dashboard over ledger history and benchmarks.

``repro dash`` renders one HTML file — no external assets, no
JavaScript dependencies, openable from a CI artifact tab — that answers
the operating question the ledger exists for: *is prediction accuracy
drifting?*  Sections:

* stat tiles (runs, kernels, latest mean error, worst drift);
* per-kernel **accuracy trend**: an inline SVG sparkline of the
  prediction error across runs, first/latest values, and the drift
  delta (icon + label, never color alone);
* per-kernel **CPI-stack attribution** of the latest run as stacked
  bars (fixed component→hue assignment, 2px surface gaps, hover
  ``<title>`` tooltips, legend);
* **cache miss-rate trends** (L1/L2 sparklines per kernel);
* run history and the checked-in ``BENCH_*.json`` trajectory.

Charts follow the repo-neutral dataviz method: categorical hues are
assigned in fixed order and never cycled, sparklines are single-series
(the row names the series, so no legend box), text wears ink tokens
rather than series colors, numbers that must align use tabular
figures, and dark mode is a *selected* palette (same hues re-stepped
for the dark surface), not an automatic inversion.
"""

from __future__ import annotations

import datetime
import glob
import html
import json
import os
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.ledger import DEFAULT_MODEL, per_kernel_errors, runs

#: CPI-stack component → categorical slot (fixed order, never cycled).
#: SFU/SMEM fold into the eighth slot: the palette validates eight
#: adjacent stacked series, and both are zero under the paper's
#: balanced-design default.
_STACK_SLOTS: Tuple[Tuple[str, str], ...] = (
    ("BASE", "series-1"),
    ("DEP", "series-2"),
    ("L1", "series-3"),
    ("L2", "series-4"),
    ("DRAM", "series-5"),
    ("MSHR", "series-6"),
    ("QUEUE", "series-7"),
    ("OTHER", "series-8"),
)

_CSS = """
:root { color-scheme: light dark; }
body {
  margin: 0; padding: 24px;
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page); color: var(--text-primary);
}
.viz-root {
  --page: #f9f9f7; --surface-1: #fcfcfb;
  --text-primary: #0b0b0b; --text-secondary: #52514e;
  --muted: #898781; --grid: #e1e0d9; --baseline: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --delta-good: #006300; --delta-bad: #d03b3b;
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
  --series-4: #eda100; --series-5: #e87ba4; --series-6: #008300;
  --series-7: #4a3aa7; --series-8: #e34948;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    --page: #0d0d0d; --surface-1: #1a1a19;
    --text-primary: #ffffff; --text-secondary: #c3c2b7;
    --muted: #898781; --grid: #2c2c2a; --baseline: #383835;
    --border: rgba(255,255,255,0.10);
    --delta-good: #0ca30c; --delta-bad: #d03b3b;
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
    --series-4: #c98500; --series-5: #d55181; --series-6: #008300;
    --series-7: #9085e9; --series-8: #e66767;
  }
}
:root[data-theme="dark"] .viz-root {
  --page: #0d0d0d; --surface-1: #1a1a19;
  --text-primary: #ffffff; --text-secondary: #c3c2b7;
  --muted: #898781; --grid: #2c2c2a; --baseline: #383835;
  --border: rgba(255,255,255,0.10);
  --delta-good: #0ca30c; --delta-bad: #d03b3b;
  --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
  --series-4: #c98500; --series-5: #d55181; --series-6: #008300;
  --series-7: #9085e9; --series-8: #e66767;
}
body { background: var(--page); }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 8px; }
.subtitle { color: var(--text-secondary); font-size: 13px; margin: 0 0 16px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 16px 0; }
.tile {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 16px; min-width: 130px;
}
.tile .value { font-size: 24px; font-weight: 600; }
.tile .label { font-size: 12px; color: var(--text-secondary); margin-top: 2px; }
table {
  border-collapse: collapse; background: var(--surface-1);
  border: 1px solid var(--border); border-radius: 8px; font-size: 13px;
}
th {
  text-align: left; color: var(--text-secondary); font-weight: 500;
  padding: 6px 12px; border-bottom: 1px solid var(--grid); font-size: 12px;
}
td { padding: 5px 12px; border-bottom: 1px solid var(--grid); }
tr:last-child td { border-bottom: none; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
.delta-good { color: var(--delta-good); }
.delta-bad { color: var(--delta-bad); }
.legend { display: flex; flex-wrap: wrap; gap: 12px; margin: 8px 0;
          font-size: 12px; color: var(--text-secondary); }
.legend .swatch {
  display: inline-block; width: 10px; height: 10px; border-radius: 2px;
  margin-right: 4px; vertical-align: baseline;
}
.footer { margin-top: 28px; font-size: 12px; color: var(--muted); }
svg text { fill: var(--text-secondary); }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value))


def _fmt_pct(value: Optional[float]) -> str:
    return "–" if value is None else "%.2f%%" % (100.0 * value)


def _fmt_ts(ts: float) -> str:
    return datetime.datetime.fromtimestamp(
        ts, tz=datetime.timezone.utc
    ).strftime("%Y-%m-%d %H:%M:%SZ")


def _delta_cell(delta: Optional[float], down_is_good: bool = True) -> str:
    """A drift delta as icon + label (state is never color alone)."""
    if delta is None:
        return '<td class="num">–</td>'
    if abs(delta) < 5e-5:
        return '<td class="num">±0.00%</td>'
    good = (delta < 0) == down_is_good
    cls = "delta-good" if good else "delta-bad"
    arrow = "▼" if delta < 0 else "▲"
    return '<td class="num %s">%s %+.2f%%</td>' % (
        cls, arrow, 100.0 * delta
    )


def _sparkline(values: Sequence[Optional[float]], width: int = 140,
               height: int = 30, color: str = "var(--series-1)") -> str:
    """Single-series inline SVG sparkline with hover tooltips.

    The row label names the series (one series → no legend box); exact
    first/latest values ride in adjacent table columns, so the spark is
    shape, not the only carrier of the numbers.
    """
    points = [(i, v) for i, v in enumerate(values) if v is not None]
    if len(points) < 2:
        return '<span style="color: var(--muted)">n/a</span>'
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    lo, hi = min(ys), max(ys)
    span = (hi - lo) or 1.0
    pad = 5.0
    n = max(xs) - min(xs) or 1

    def scale(i: int, v: float) -> Tuple[float, float]:
        x = pad + (width - 2 * pad) * (i - min(xs)) / n
        y = pad + (height - 2 * pad) * (1.0 - (v - lo) / span)
        return x, y

    coords = [scale(i, v) for i, v in points]
    polyline = " ".join("%.1f,%.1f" % c for c in coords)
    last_x, last_y = coords[-1]
    dots = "".join(
        '<circle cx="%.1f" cy="%.1f" r="4" fill="transparent">'
        "<title>run %d: %s</title></circle>"
        % (x, y, i + 1, _fmt_pct(v))
        for (x, y), (i, v) in zip(coords, points)
    )
    return (
        '<svg width="%d" height="%d" role="img" aria-label="trend">'
        '<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" '
        'stroke="var(--baseline)" stroke-width="1"/>'
        '<polyline points="%s" fill="none" stroke="%s" '
        'stroke-width="2" stroke-linejoin="round" '
        'stroke-linecap="round"/>'
        '<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>'
        "%s</svg>"
        % (width, height, pad, height - pad, width - pad, height - pad,
           polyline, color, last_x, last_y, color, dots)
    )


def _folded_stack(stack: Dict[str, float]) -> List[Tuple[str, float]]:
    """CPI-stack components in slot order; SFU/SMEM fold into OTHER."""
    named = {k: v for k, v in (stack or {}).items()}
    other = sum(
        v for k, v in named.items()
        if k not in {slot for slot, _ in _STACK_SLOTS}
    )
    out = []
    for component, _ in _STACK_SLOTS:
        value = other if component == "OTHER" else named.get(component, 0.0)
        out.append((component, float(value or 0.0)))
    return out


def _stacked_bar(stack: Dict[str, float], max_total: float,
                 width: int = 360, height: int = 16) -> str:
    """One kernel's CPI stack as a horizontal stacked bar.

    Segment widths share one scale across kernels (``max_total``), a
    2px surface gap separates adjacent fills, and every segment carries
    a hover ``<title>`` with component, cycles and share.
    """
    components = _folded_stack(stack)
    total = sum(v for _, v in components) or 1.0
    scale = (width - 2 * max(0, len(
        [v for _, v in components if v > 0]
    ) - 1)) / (max_total or 1.0)
    x = 0.0
    rects = []
    for (component, value), (_, slot) in zip(components, _STACK_SLOTS):
        if value <= 0:
            continue
        w = max(value * scale, 1.0)
        rects.append(
            '<rect x="%.1f" y="0" width="%.1f" height="%d" rx="2" '
            'fill="var(--%s)"><title>%s: %.3f CPI (%.1f%%)</title></rect>'
            % (x, w, height, slot, component, value, 100.0 * value / total)
        )
        x += w + 2.0
    return '<svg width="%d" height="%d" role="img">%s</svg>' % (
        width, height, "".join(rects)
    )


def collect_bench(root: str) -> Dict[str, Dict[str, Any]]:
    """The checked-in ``BENCH_*.json`` files under ``root``, by name."""
    bench: Dict[str, Dict[str, Any]] = {}
    for path in sorted(glob.glob(os.path.join(root, "BENCH_*.json"))):
        try:
            with open(path, encoding="utf-8") as handle:
                bench[os.path.basename(path)] = json.load(handle)
        except (OSError, ValueError):
            continue
    return bench


def _mean(values: Iterable[Optional[float]]) -> Optional[float]:
    finite = [v for v in values if v is not None]
    if not finite:
        return None
    return sum(finite) / len(finite)


def render_dashboard(
    records: Sequence[Dict[str, Any]],
    bench: Optional[Dict[str, Dict[str, Any]]] = None,
    model: str = DEFAULT_MODEL,
    title: str = "GPUMech accuracy dashboard",
) -> str:
    """Render the full dashboard HTML for a set of ledger records."""
    by_run = runs(records)
    run_errors: List[Dict[str, Optional[float]]] = [
        per_kernel_errors(run_records, model)
        for _, run_records in by_run
    ]
    kernels = sorted({r["kernel"] for r in records})
    latest = run_errors[-1] if run_errors else {}
    first = run_errors[0] if run_errors else {}

    parts: List[str] = []
    parts.append("<!DOCTYPE html><html><head><meta charset='utf-8'>")
    parts.append("<title>%s</title>" % _esc(title))
    parts.append("<style>%s</style></head>" % _CSS)
    parts.append("<body class='viz-root'><h1>%s</h1>" % _esc(title))
    parts.append(
        "<p class='subtitle'>%d ledger record(s), %d run(s), %d kernel(s) "
        "— error model: %s</p>"
        % (len(records), len(by_run), len(kernels), _esc(model))
    )

    # -- stat tiles ---------------------------------------------------------
    latest_mean = _mean(latest.values())
    drifts = {
        k: latest[k] - first[k]
        for k in kernels
        if latest.get(k) is not None and first.get(k) is not None
    }
    worst_kernel, worst_drift = (None, None)
    if drifts:
        worst_kernel = max(drifts, key=lambda k: drifts[k])
        worst_drift = drifts[worst_kernel]
    tiles = [
        ("%d" % len(by_run), "runs"),
        ("%d" % len(kernels), "kernels"),
        (_fmt_pct(latest_mean), "latest mean error"),
        ("%s" % (_fmt_pct(worst_drift) if worst_drift is not None
                 else "–"),
         "worst drift (%s)" % (worst_kernel or "n/a")),
    ]
    parts.append("<div class='tiles'>")
    for value, label in tiles:
        parts.append(
            "<div class='tile'><div class='value'>%s</div>"
            "<div class='label'>%s</div></div>"
            % (_esc(value), _esc(label))
        )
    parts.append("</div>")

    # -- accuracy trend per kernel ------------------------------------------
    parts.append("<h2>Prediction error per kernel across runs</h2>")
    parts.append("<table><tr><th>kernel</th><th>trend</th>"
                 "<th class='num'>first</th><th class='num'>latest</th>"
                 "<th class='num'>drift</th></tr>")
    for kernel in kernels:
        series = [errors.get(kernel) for errors in run_errors]
        drift = drifts.get(kernel)
        parts.append(
            "<tr><td>%s</td><td>%s</td><td class='num'>%s</td>"
            "<td class='num'>%s</td>%s</tr>"
            % (_esc(kernel), _sparkline(series),
               _fmt_pct(first.get(kernel)), _fmt_pct(latest.get(kernel)),
               _delta_cell(drift))
        )
    parts.append("</table>")

    # -- CPI stack of the latest run ----------------------------------------
    if by_run:
        _, latest_records = by_run[-1]
        latest_by_kernel: Dict[str, Dict[str, Any]] = {}
        for record in sorted(latest_records,
                             key=lambda r: r.get("ts", 0.0)):
            latest_by_kernel[record["kernel"]] = record
        stacks = {
            k: r.get("cpi_stack") or {}
            for k, r in latest_by_kernel.items()
        }
        max_total = max(
            (sum(_folded_stack(s)[i][1]
                 for i in range(len(_STACK_SLOTS)))
             for s in stacks.values()), default=1.0,
        )
        parts.append("<h2>CPI-stack attribution (latest run)</h2>")
        parts.append("<div class='legend'>")
        for component, slot in _STACK_SLOTS:
            parts.append(
                "<span><span class='swatch' "
                "style='background: var(--%s)'></span>%s</span>"
                % (slot, _esc(component))
            )
        parts.append("</div>")
        parts.append("<table><tr><th>kernel</th><th>CPI stack</th>"
                     "<th class='num'>predicted CPI</th>"
                     "<th class='num'>oracle CPI</th></tr>")
        for kernel in kernels:
            record = latest_by_kernel.get(kernel)
            if record is None:
                continue
            predicted = (record.get("model_cpis") or {}).get(model)
            parts.append(
                "<tr><td>%s</td><td>%s</td><td class='num'>%s</td>"
                "<td class='num'>%s</td></tr>"
                % (_esc(kernel),
                   _stacked_bar(stacks.get(kernel, {}), max_total),
                   "–" if predicted is None else "%.3f" % predicted,
                   "–" if record.get("oracle_cpi") is None
                   else "%.3f" % record["oracle_cpi"])
            )
        parts.append("</table>")

    # -- cache miss-rate trends ---------------------------------------------
    def _rate_series(kernel: str, key: str) -> List[Optional[float]]:
        out: List[Optional[float]] = []
        for _, run_records in by_run:
            value = None
            for record in sorted(run_records,
                                 key=lambda r: r.get("ts", 0.0)):
                if record["kernel"] == kernel and record.get("cache"):
                    value = record["cache"].get(key)
            out.append(value)
        return out

    if any(r.get("cache") for r in records):
        parts.append("<h2>Cache miss-rate trends</h2>")
        parts.append("<table><tr><th>kernel</th><th>L1 miss rate</th>"
                     "<th class='num'>latest L1</th><th>L2 miss rate</th>"
                     "<th class='num'>latest L2</th></tr>")
        for kernel in kernels:
            l1 = _rate_series(kernel, "l1_miss_rate")
            l2 = _rate_series(kernel, "l2_miss_rate")
            l1_last = next((v for v in reversed(l1) if v is not None), None)
            l2_last = next((v for v in reversed(l2) if v is not None), None)
            parts.append(
                "<tr><td>%s</td><td>%s</td><td class='num'>%s</td>"
                "<td>%s</td><td class='num'>%s</td></tr>"
                % (_esc(kernel), _sparkline(l1), _fmt_pct(l1_last),
                   _sparkline(l2, color="var(--series-2)"),
                   _fmt_pct(l2_last))
            )
        parts.append("</table>")

    # -- run history --------------------------------------------------------
    parts.append("<h2>Run history</h2>")
    parts.append("<table><tr><th>run</th><th>started</th>"
                 "<th class='num'>records</th><th>arch</th>"
                 "<th>backend</th><th class='num'>mean error</th></tr>")
    for run_id, run_records in by_run:
        arches = sorted({r.get("arch", "?") for r in run_records})
        backends = sorted({r.get("backend", "?") for r in run_records})
        mean_err = _mean(
            per_kernel_errors(run_records, model).values()
        )
        parts.append(
            "<tr><td>%s</td><td>%s</td><td class='num'>%d</td>"
            "<td>%s</td><td>%s</td><td class='num'>%s</td></tr>"
            % (_esc(run_id),
               _fmt_ts(min(r.get("ts", 0.0) for r in run_records)),
               len(run_records), _esc(",".join(arches)),
               _esc(",".join(backends)), _fmt_pct(mean_err))
        )
    parts.append("</table>")

    # -- benchmark trajectory ------------------------------------------------
    if bench:
        parts.append("<h2>Checked-in benchmark trajectory</h2>")
        parts.append("<table><tr><th>file</th><th>metric</th>"
                     "<th class='num'>value</th></tr>")
        for name in sorted(bench):
            numeric = {
                k: v for k, v in sorted(bench[name].items())
                if isinstance(v, (int, float)) and not isinstance(v, bool)
            }
            for i, (key, value) in enumerate(numeric.items()):
                parts.append(
                    "<tr><td>%s</td><td>%s</td>"
                    "<td class='num'>%s</td></tr>"
                    % (_esc(name) if i == 0 else "", _esc(key),
                       ("%.4g" % value))
                )
        parts.append("</table>")

    parts.append(
        "<p class='footer'>generated by <code>repro dash</code> · "
        "records validate via <code>python -m repro.obs.schema ledger"
        "</code> · gate via <code>repro watchdog</code></p>"
    )
    parts.append("</body></html>")
    return "".join(parts)


def write_dashboard(path: str, records: Sequence[Dict[str, Any]],
                    bench: Optional[Dict[str, Dict[str, Any]]] = None,
                    model: str = DEFAULT_MODEL) -> None:
    """Render and write the dashboard HTML file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_dashboard(records, bench=bench, model=model))
