"""Stdlib HTTP exporter: live ``/metrics``, ``/healthz`` and ``/spans``.

:class:`MetricsExporter` serves the process's metrics registry and span
tracer over HTTP from a background thread, so a long-running sweep (or
a future prediction service) is scrapeable *while it runs* — Prometheus
polls ``/metrics``, a load balancer polls ``/healthz``, and ``/spans``
streams the recorded span log as JSONL.  Everything rides on
``http.server`` from the standard library: no third-party dependency,
no new process, and near-zero cost when nobody scrapes (the server
thread sleeps in ``select`` inside ``serve_forever``).

Endpoints
---------
``GET /metrics``
    The registry snapshot in OpenMetrics text format
    (:mod:`repro.obs.openmetrics`), ``Content-Type:
    application/openmetrics-text``.
``GET /healthz``
    JSON liveness document: status, uptime, pid, span/scrape counters.
``GET /spans``
    The tracer's finished spans, one JSON object per line (the same
    format ``Tracer.export_jsonl`` writes), oldest first.

Usage::

    exporter = MetricsExporter(metrics, tracer=tracer, port=9100)
    with exporter:                      # or .start() / .stop()
        run_sweep()                     # scrapeable the whole time

``port=0`` (the default) binds an ephemeral port; read it back from
``exporter.port`` / ``exporter.url`` after :meth:`start`.  The CLI face
is ``repro serve-metrics`` (see :mod:`repro.cli`).
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional

from repro.concheck.runtime import make_lock, site_access
from repro.obs.metrics import MetricsRegistry
from repro.obs.openmetrics import render_openmetrics
from repro.obs.tracer import Tracer

_LOG = logging.getLogger(__name__)

#: Content type the OpenMetrics spec mandates for text exposition.
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)


class _Handler(BaseHTTPRequestHandler):
    """Routes one request; the exporter instance rides on the server."""

    server: "_ExporterServer"
    protocol_version = "HTTP/1.1"

    # -- plumbing -----------------------------------------------------------

    def log_message(self, fmt: str, *args: Any) -> None:
        _LOG.debug("exporter: %s", fmt % args)

    def _reply(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # -- routes -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        exporter = self.server.exporter
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                exporter.note_scrape()
                body = render_openmetrics(
                    exporter.metrics.snapshot()
                ).encode("utf-8")
                self._reply(200, body, OPENMETRICS_CONTENT_TYPE)
            elif path == "/healthz":
                body = (json.dumps(exporter.health(), sort_keys=True)
                        + "\n").encode("utf-8")
                self._reply(200, body, "application/json")
            elif path == "/spans":
                lines = [
                    json.dumps(span, sort_keys=True)
                    for span in sorted(exporter.tracer.spans(),
                                       key=lambda s: s["ts"])
                ]
                body = ("\n".join(lines) + "\n" if lines else "").encode(
                    "utf-8"
                )
                self._reply(200, body, "application/x-ndjson")
            else:
                body = (json.dumps({
                    "error": "not found",
                    "endpoints": ["/metrics", "/healthz", "/spans"],
                }) + "\n").encode("utf-8")
                self._reply(404, body, "application/json")
        except (BrokenPipeError, ConnectionResetError):
            pass  # scraper went away mid-reply; nothing to clean up


class _ExporterServer(ThreadingHTTPServer):
    daemon_threads = True
    #: Back-reference set by MetricsExporter.start().
    exporter: "MetricsExporter"


class MetricsExporter:
    """Background-thread HTTP server over a registry and tracer."""

    def __init__(
        self,
        metrics: MetricsRegistry,
        tracer: Optional[Tracer] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.metrics = metrics
        #: Tracer backing ``/spans``; a disabled tracer serves an empty
        #: log, which keeps the endpoint shape stable.
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.host = host
        self.requested_port = port
        self.n_scrapes = 0
        self.started_at: Optional[float] = None
        self._server: Optional[_ExporterServer] = None
        self._thread: Optional[threading.Thread] = None
        #: pid that called start(); a mismatch means we are a forked
        #: child holding the parent's server state (the OS thread and
        #: the serve loop exist only in the parent).
        self._pid: Optional[int] = None
        self._lock = make_lock("MetricsExporter._lock")

    # -- lifecycle ----------------------------------------------------------

    def _forked(self) -> bool:
        """True in a child that inherited a started exporter.

        concheck: caller-holds MetricsExporter._lock
        """
        return self._pid is not None and self._pid != os.getpid()

    def _drop_forked_state(self) -> None:
        """Forget state inherited across ``fork``.

        concheck: caller-holds MetricsExporter._lock

        The inherited ``_thread`` handle claims to be alive but its OS
        thread does not exist here: ``join`` would block for the full
        timeout and ``server.shutdown()`` would wait forever for a
        serve loop that is not running.  We close our copy of the
        listening socket (the parent's stays open — descriptors are
        per-process) and drop everything else.
        """
        server = self._server
        self._server = None
        self._thread = None
        self._pid = None
        self.started_at = None
        if server is not None:
            try:
                server.server_close()
            except OSError:
                pass

    def start(self) -> "MetricsExporter":
        """Bind and serve from a daemon thread; idempotent.

        In a forked child the inherited (dead) server state is dropped
        first, so ``start()`` brings up a fresh server on a fresh port
        instead of silently doing nothing.
        """
        with self._lock:
            site_access("MetricsExporter._server")
            if self._forked():
                self._drop_forked_state()
            if self._server is not None:
                return self
            server = _ExporterServer(
                (self.host, self.requested_port), _Handler
            )
            server.exporter = self
            self._server = server
            self._pid = os.getpid()
            self.started_at = time.time()
            thread = threading.Thread(
                target=server.serve_forever,
                kwargs={"poll_interval": 0.1},
                name="repro-metrics-exporter",
                daemon=True,
            )
            self._thread = thread
        thread.start()
        _LOG.info("metrics exporter serving on %s", self.url)
        return self

    def stop(self) -> None:
        """Shut the server down and join the thread; idempotent.

        In a forked child this only drops the inherited state — there
        is no thread to join and no serve loop to shut down here.
        """
        with self._lock:
            site_access("MetricsExporter._server")
            if self._forked():
                self._drop_forked_state()
                return
            server, thread = self._server, self._thread
            self._server = self._thread = None
            self._pid = None
            self.started_at = None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsExporter":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- introspection ------------------------------------------------------

    def note_scrape(self) -> None:
        """Count one ``/metrics`` hit (handler threads race on this)."""
        with self._lock:
            site_access("MetricsExporter.n_scrapes")
            self.n_scrapes += 1

    @property
    def running(self) -> bool:
        """True while this process's own server thread is serving.

        False in a forked child even though the inherited ``_server``
        attribute is non-None — the serving thread lives in the parent.
        """
        with self._lock:
            return self._server is not None and not self._forked()

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral pick)."""
        server = self._server
        if server is None:
            return self.requested_port
        return server.server_address[1]

    @property
    def url(self) -> str:
        return "http://%s:%d" % (self.host, self.port)

    def health(self) -> Dict[str, Any]:
        """The ``/healthz`` document."""
        with self._lock:
            started_at = self.started_at
            n_scrapes = self.n_scrapes
        return {
            "status": "ok",
            "pid": os.getpid(),
            "uptime_s": (time.time() - started_at
                         if started_at else 0.0),
            "n_scrapes": n_scrapes,
            "n_spans": self.tracer.n_spans,
        }
