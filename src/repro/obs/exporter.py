"""Stdlib HTTP exporter: live ``/metrics``, ``/healthz`` and ``/spans``.

:class:`MetricsExporter` serves the process's metrics registry and span
tracer over HTTP from a background thread, so a long-running sweep (or
a future prediction service) is scrapeable *while it runs* — Prometheus
polls ``/metrics``, a load balancer polls ``/healthz``, and ``/spans``
streams the recorded span log as JSONL.  Everything rides on
``http.server`` from the standard library: no third-party dependency,
no new process, and near-zero cost when nobody scrapes (the server
thread sleeps in ``select`` inside ``serve_forever``).

Endpoints
---------
``GET /metrics``
    The registry snapshot in OpenMetrics text format
    (:mod:`repro.obs.openmetrics`), ``Content-Type:
    application/openmetrics-text``.
``GET /healthz``
    JSON liveness document: status, uptime, pid, span/scrape counters.
``GET /spans``
    The tracer's finished spans, one JSON object per line (the same
    format ``Tracer.export_jsonl`` writes), oldest first.

Usage::

    exporter = MetricsExporter(metrics, tracer=tracer, port=9100)
    with exporter:                      # or .start() / .stop()
        run_sweep()                     # scrapeable the whole time

``port=0`` (the default) binds an ephemeral port; read it back from
``exporter.port`` / ``exporter.url`` after :meth:`start`.  The CLI face
is ``repro serve-metrics`` (see :mod:`repro.cli`).
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.openmetrics import render_openmetrics
from repro.obs.tracer import Tracer

_LOG = logging.getLogger(__name__)

#: Content type the OpenMetrics spec mandates for text exposition.
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)


class _Handler(BaseHTTPRequestHandler):
    """Routes one request; the exporter instance rides on the server."""

    server: "_ExporterServer"
    protocol_version = "HTTP/1.1"

    # -- plumbing -----------------------------------------------------------

    def log_message(self, fmt: str, *args: Any) -> None:
        _LOG.debug("exporter: %s", fmt % args)

    def _reply(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # -- routes -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        exporter = self.server.exporter
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                exporter.n_scrapes += 1
                body = render_openmetrics(
                    exporter.metrics.snapshot()
                ).encode("utf-8")
                self._reply(200, body, OPENMETRICS_CONTENT_TYPE)
            elif path == "/healthz":
                body = (json.dumps(exporter.health(), sort_keys=True)
                        + "\n").encode("utf-8")
                self._reply(200, body, "application/json")
            elif path == "/spans":
                lines = [
                    json.dumps(span, sort_keys=True)
                    for span in sorted(exporter.tracer.spans(),
                                       key=lambda s: s["ts"])
                ]
                body = ("\n".join(lines) + "\n" if lines else "").encode(
                    "utf-8"
                )
                self._reply(200, body, "application/x-ndjson")
            else:
                body = (json.dumps({
                    "error": "not found",
                    "endpoints": ["/metrics", "/healthz", "/spans"],
                }) + "\n").encode("utf-8")
                self._reply(404, body, "application/json")
        except (BrokenPipeError, ConnectionResetError):
            pass  # scraper went away mid-reply; nothing to clean up


class _ExporterServer(ThreadingHTTPServer):
    daemon_threads = True
    #: Back-reference set by MetricsExporter.start().
    exporter: "MetricsExporter"


class MetricsExporter:
    """Background-thread HTTP server over a registry and tracer."""

    def __init__(
        self,
        metrics: MetricsRegistry,
        tracer: Optional[Tracer] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.metrics = metrics
        #: Tracer backing ``/spans``; a disabled tracer serves an empty
        #: log, which keeps the endpoint shape stable.
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.host = host
        self.requested_port = port
        self.n_scrapes = 0
        self.started_at: Optional[float] = None
        self._server: Optional[_ExporterServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "MetricsExporter":
        """Bind and serve from a daemon thread; idempotent."""
        if self._server is not None:
            return self
        server = _ExporterServer((self.host, self.requested_port), _Handler)
        server.exporter = self
        self._server = server
        self.started_at = time.time()
        self._thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-metrics-exporter",
            daemon=True,
        )
        self._thread.start()
        _LOG.info("metrics exporter serving on %s", self.url)
        return self

    def stop(self) -> None:
        """Shut the server down and join the thread; idempotent."""
        server, thread = self._server, self._thread
        self._server = self._thread = None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsExporter":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- introspection ------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._server is not None

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral pick)."""
        if self._server is None:
            return self.requested_port
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return "http://%s:%d" % (self.host, self.port)

    def health(self) -> Dict[str, Any]:
        """The ``/healthz`` document."""
        return {
            "status": "ok",
            "pid": os.getpid(),
            "uptime_s": (time.time() - self.started_at
                         if self.started_at else 0.0),
            "n_scrapes": self.n_scrapes,
            "n_spans": self.tracer.n_spans,
        }
