"""Metrics registry: counters, gauges and fixed-bucket histograms.

The registry is the single home for every operational number the system
produces — pipeline stage executions and wall-clock, cache hit/miss
rates, MSHR traffic, per-core stall counters — replacing ad-hoc dicts
that were lost whenever work ran inside a pool worker.  The key design
point is **mergeability**: :meth:`MetricsRegistry.snapshot` produces a
plain-JSON structure, :func:`diff_snapshots` subtracts a baseline from
it, and :meth:`MetricsRegistry.merge` folds such a delta into another
registry.  A worker therefore ships ``diff(now, at_fork)`` back with
each result and the parent's totals end up identical to a serial run.

Metrics are identified by a name plus a small set of string labels
(``registry.counter("pipeline.stage_executions", stage="trace")``);
histograms use fixed bucket upper bounds so percentiles of merged
histograms stay exact (to bucket resolution) without storing samples.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

from collections import Counter as _Counter

from repro.concheck.runtime import make_lock, site_access

LabelItems = Tuple[Tuple[str, str], ...]

#: Default latency buckets in milliseconds (exponential-ish ladder).
DEFAULT_MS_BUCKETS: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)

#: Default ratio buckets (hit/miss rates, utilizations).
RATIO_BUCKETS: Tuple[float, ...] = (
    0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0,
)


def _label_items(labels: Dict[str, Any]) -> LabelItems:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


#: Characters in a label value that force the quoted-and-escaped form.
_UNSAFE_LABEL_CHARS = frozenset(',={}"\\\n')


def escape_label_value(value: str) -> str:
    """Escape a label value for quoted exposition (OpenMetrics rules).

    Exactly three escapes exist in the text format: backslash, double
    quote and line feed.  Everything else passes through verbatim, so
    ``unescape_label_value`` is an exact inverse.
    """
    return (value.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\n", "\\n"))


def unescape_label_value(value: str) -> str:
    """Exact inverse of :func:`escape_label_value`."""
    out: List[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "n":
                out.append("\n")
                i += 2
                continue
            if nxt in ('"', "\\"):
                out.append(nxt)
                i += 2
                continue
        out.append(ch)
        i += 1
    return "".join(out)


def render_key(name: str, labels: LabelItems) -> str:
    """Human-readable ``name{k=v,...}`` form used in tables and logs.

    Values are rendered bare while they contain no structural character;
    a value holding any of ``, = { } " \\`` or a newline is emitted in
    the quoted-and-escaped OpenMetrics form instead, so rendered keys
    survive a round-trip through text formats and JSON without two
    different label sets ever colliding on one rendered string.
    """
    if not labels:
        return name
    parts = []
    for key, value in labels:
        if _UNSAFE_LABEL_CHARS.isdisjoint(value):
            parts.append("%s=%s" % (key, value))
        else:
            parts.append('%s="%s"' % (key, escape_label_value(value)))
    return "%s{%s}" % (name, ",".join(parts))


class CounterMetric:
    """Monotonically increasing value (int or float).

    Mutations serialize on a per-metric lock so concurrent ``inc``
    calls from the exporter's handler threads, the sampler and the
    pipeline never lose an update.  Reading ``value`` without the lock
    stays safe (one attribute load of an immutable number) and is the
    documented snapshot idiom.
    """

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value: float = 0
        self._lock = make_lock("CounterMetric._lock")

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase; got %r" % (amount,))
        with self._lock:
            site_access("CounterMetric.value")
            self.value += amount

    def __getstate__(self) -> Dict[str, Any]:
        return {"value": self.value}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.value = state["value"]
        self._lock = make_lock("CounterMetric._lock")


class GaugeMetric:
    """Last-write-wins value."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value: float = 0.0
        self._lock = make_lock("GaugeMetric._lock")

    def set(self, value: float) -> None:
        with self._lock:
            site_access("GaugeMetric.value")
            self.value = float(value)

    def __getstate__(self) -> Dict[str, Any]:
        return {"value": self.value}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.value = state["value"]
        self._lock = make_lock("GaugeMetric._lock")


class HistogramMetric:
    """Fixed-bucket histogram with percentile estimates.

    ``bounds`` are inclusive upper bucket edges; one overflow bucket is
    appended automatically.  Merging histograms with identical bounds is
    exact; percentiles are resolved to the matching bucket edge.
    """

    __slots__ = ("bounds", "counts", "sum", "count", "max", "_lock")

    def __init__(self, bounds: Iterable[float]):
        self.bounds: Tuple[float, ...] = tuple(sorted(float(b) for b in bounds))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.sum: float = 0.0
        self.count: int = 0
        self.max: float = 0.0
        self._lock = make_lock("HistogramMetric._lock")

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            site_access("HistogramMetric.counts")
            self.sum += value
            self.count += 1
            if value > self.max:
                self.max = value
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self.counts[i] += 1
                    return
            self.counts[-1] += 1

    def merge_entry(self, entry: Dict[str, Any]) -> None:
        """Fold one snapshot entry in, atomically w.r.t. ``observe``."""
        if list(self.bounds) != list(entry["bounds"]):
            raise ValueError(
                "histogram %r bucket bounds differ; cannot merge"
                % entry["name"]
            )
        with self._lock:
            site_access("HistogramMetric.counts")
            for i, n in enumerate(entry["counts"]):
                self.counts[i] += n
            self.sum += entry["sum"]
            self.count += entry["count"]
            if entry["max"] > self.max:
                self.max = entry["max"]

    def entry(self) -> Dict[str, Any]:
        """Consistent multi-field dump (the tear-free read path)."""
        with self._lock:
            site_access("HistogramMetric.counts", write=False)
            return {
                "bounds": list(self.bounds),
                "counts": list(self.counts),
                "sum": self.sum,
                "count": self.count,
                "max": self.max,
            }

    @property
    def mean(self) -> float:
        with self._lock:
            return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Upper bucket edge at or above the p-th percentile (0..100).

        Values in the overflow bucket resolve to the observed maximum.
        An empty histogram has no percentiles: the result is ``nan``
        (explicitly — callers render it or skip it, they never mistake
        it for a real zero-latency observation).
        """
        with self._lock:
            if not self.count:
                return float("nan")
            target = self.count * min(max(p, 0.0), 100.0) / 100.0
            cumulative = 0
            for i, n in enumerate(self.counts):
                cumulative += n
                if cumulative >= target and n:
                    return (self.bounds[i] if i < len(self.bounds)
                            else self.max)
            return self.max

    def __getstate__(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "bounds": self.bounds,
                "counts": list(self.counts),
                "sum": self.sum,
                "count": self.count,
                "max": self.max,
            }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.bounds = state["bounds"]
        self.counts = list(state["counts"])
        self.sum = state["sum"]
        self.count = state["count"]
        self.max = state["max"]
        self._lock = make_lock("HistogramMetric._lock")


class MetricsRegistry:
    """Named, labeled metrics with snapshot/merge/diff support."""

    def __init__(self) -> None:
        self._lock = make_lock("MetricsRegistry._lock")
        self._counters: Dict[Tuple[str, LabelItems], CounterMetric] = {}
        self._gauges: Dict[Tuple[str, LabelItems], GaugeMetric] = {}
        self._histograms: Dict[Tuple[str, LabelItems], HistogramMetric] = {}

    # -- accessors (get-or-create) ------------------------------------------
    #
    # The unlocked ``.get`` fast path is deliberate: a plain dict read
    # is atomic under the GIL and the hit case (every call but the
    # first per key) pays no lock.  Insertions always go through
    # ``setdefault`` under the lock, so two racing first calls still
    # agree on one metric object.

    def counter(self, name: str, **labels: Any) -> CounterMetric:
        key = (name, _label_items(labels))
        metric = self._counters.get(key)
        if metric is None:
            with self._lock:
                site_access("MetricsRegistry._counters")
                metric = self._counters.setdefault(key, CounterMetric())
        return metric

    def gauge(self, name: str, **labels: Any) -> GaugeMetric:
        key = (name, _label_items(labels))
        metric = self._gauges.get(key)
        if metric is None:
            with self._lock:
                site_access("MetricsRegistry._gauges")
                metric = self._gauges.setdefault(key, GaugeMetric())
        return metric

    def histogram(self, name: str,
                  buckets: Iterable[float] = DEFAULT_MS_BUCKETS,
                  **labels: Any) -> HistogramMetric:
        key = (name, _label_items(labels))
        metric = self._histograms.get(key)
        if metric is None:
            with self._lock:
                site_access("MetricsRegistry._histograms")
                metric = self._histograms.setdefault(
                    key, HistogramMetric(buckets)
                )
        return metric

    # -- views --------------------------------------------------------------

    def counter_value(self, name: str, **labels: Any) -> float:
        metric = self._counters.get((name, _label_items(labels)))
        return metric.value if metric is not None else 0

    def labeled_values(self, name: str, label: str) -> "_Counter":
        """``{label value: counter value}`` across one label dimension.

        Backs the pipeline's ``counters``/``hits``/``timings`` views:
        ``labeled_values("pipeline.stage_executions", "stage")`` is a
        :class:`collections.Counter` keyed by stage name.
        """
        out: _Counter = _Counter()
        with self._lock:
            items = list(self._counters.items())
        for (metric_name, labels), metric in items:
            if metric_name != name:
                continue
            for key, value in labels:
                if key == label:
                    out[value] += metric.value
        return out

    # -- snapshot / merge / diff --------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able structured dump of every metric."""
        with self._lock:
            counters = [
                {"name": name, "labels": dict(labels), "value": m.value}
                for (name, labels), m in sorted(self._counters.items())
            ]
            gauges = [
                {"name": name, "labels": dict(labels), "value": m.value}
                for (name, labels), m in sorted(self._gauges.items())
            ]
            histograms = [
                {"name": name, "labels": dict(labels), **m.entry()}
                for (name, labels), m in sorted(self._histograms.items())
            ]
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold a snapshot (typically a worker delta) into this registry."""
        for entry in snapshot.get("counters", ()):
            self.counter(entry["name"], **entry["labels"]).inc(entry["value"])
        for entry in snapshot.get("gauges", ()):
            self.gauge(entry["name"], **entry["labels"]).set(entry["value"])
        for entry in snapshot.get("histograms", ()):
            metric = self.histogram(
                entry["name"], buckets=entry["bounds"], **entry["labels"]
            )
            metric.merge_entry(entry)

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def export(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    # -- pickling -----------------------------------------------------------

    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = make_lock("MetricsRegistry._lock")


def _index(entries: Iterable[Dict[str, Any]]):
    return {
        (e["name"], _label_items(e["labels"])): e for e in entries
    }


def diff_snapshots(current: Dict[str, Any],
                   baseline: Dict[str, Any]) -> Dict[str, Any]:
    """The metric activity between two snapshots of one registry.

    Counters and histograms subtract (zero deltas are dropped); gauges
    pass through at their current value.  The result is itself a valid
    snapshot, suitable for :meth:`MetricsRegistry.merge`.
    """
    base_counters = _index(baseline.get("counters", ()))
    counters = []
    for entry in current.get("counters", ()):
        key = (entry["name"], _label_items(entry["labels"]))
        base = base_counters.get(key)
        delta = entry["value"] - (base["value"] if base else 0)
        if delta:
            counters.append({**entry, "value": delta})
    base_hists = _index(baseline.get("histograms", ()))
    histograms = []
    for entry in current.get("histograms", ()):
        key = (entry["name"], _label_items(entry["labels"]))
        base = base_hists.get(key)
        if base is None:
            if entry["count"]:
                histograms.append(entry)
            continue
        counts = [n - m for n, m in zip(entry["counts"], base["counts"])]
        if any(counts):
            histograms.append({
                **entry,
                "counts": counts,
                "sum": entry["sum"] - base["sum"],
                "count": entry["count"] - base["count"],
            })
    return {
        "counters": counters,
        "gauges": list(current.get("gauges", ())),
        "histograms": histograms,
    }
