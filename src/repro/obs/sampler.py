"""Stdlib sampling profiler with collapsed-stack flamegraph export.

:class:`SamplingProfiler` interrupts nothing: a daemon thread wakes at
a fixed period, grabs every live thread's current Python frame via
``sys._current_frames()``, and folds each walk from innermost frame to
root into a counter of *collapsed stacks* — the ``root;caller;callee N``
text format every flamegraph renderer understands (flamegraph.pl,
speedscope, Firefox Profiler's importer).  Because sampling reads
frames instead of instrumenting calls, the profiled code runs
unmodified and the overhead is bounded by the sampling period, not by
call volume — which is what makes it safe to leave on for a whole
sweep (``repro profile --sample``).

Span attribution: when a :class:`~repro.obs.tracer.Tracer` is supplied,
every sample taken on a thread that currently has open spans is
prefixed with those span names (``stage:trace;...``), so hot frames
map directly to the pipeline stage that was executing them — the
flamegraph and the stage-timing table tell one story.

Worker processes are out of scope by design: the sampler sees the
process it runs in (the pool fans work out to *other* processes), so
profile serially (``--jobs 1``, the default) when a whole-run
flamegraph is wanted.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from collections import Counter
from typing import Dict, List, Optional, Tuple

from repro.concheck.runtime import make_lock, site_access
from repro.obs.tracer import Tracer

#: Default sampling period in seconds (~97 Hz; a prime-ish rate avoids
#: resonating with timer-driven work the way a round 100 Hz can).
DEFAULT_INTERVAL = 0.0103


def _frame_label(frame) -> str:
    """One collapsed-stack frame: ``module:function``."""
    code = frame.f_code
    module = frame.f_globals.get("__name__", "?")
    return "%s:%s" % (module, code.co_name)


class SamplingProfiler:
    """Periodic whole-process stack sampler (start/stop or ``with``)."""

    def __init__(
        self,
        interval: float = DEFAULT_INTERVAL,
        tracer: Optional[Tracer] = None,
        span_prefix: str = "stage:",
    ):
        if interval <= 0:
            raise ValueError("sampling interval must be positive; got %r"
                             % (interval,))
        self.interval = float(interval)
        #: Tracer whose open-span names attribute samples to stages.
        self.tracer = tracer
        self.span_prefix = span_prefix
        self.n_samples = 0
        #: collapsed stack tuple → number of samples observed there.
        self._stacks: Counter = Counter()
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        #: pid that called start(); a mismatch means we inherited a
        #: started profiler across fork and its thread is not ours.
        self._pid: Optional[int] = None
        self._lock = make_lock("SamplingProfiler._lock")

    # -- lifecycle ----------------------------------------------------------

    def _forked(self) -> bool:
        """True in a forked child holding the parent's sampler state.

        concheck: caller-holds SamplingProfiler._lock
        """
        return self._pid is not None and self._pid != os.getpid()

    def start(self) -> "SamplingProfiler":
        with self._lock:
            if self._forked():
                # The inherited handle's OS thread exists only in the
                # parent; drop it so we start a fresh one here.
                self._thread = None
                self._pid = None
            if self._thread is not None:
                return self
            self._stop.clear()
            thread = threading.Thread(
                target=self._run, name="repro-sampler", daemon=True
            )
            self._thread = thread
            self._pid = os.getpid()
        thread.start()
        return self

    def stop(self) -> None:
        with self._lock:
            thread = self._thread
            self._thread = None
            forked = self._forked()
            self._pid = None
        if thread is not None and not forked:
            self._stop.set()
            thread.join(timeout=5.0)

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        """True while this process's own sampler thread is running
        (False in a forked child that merely inherited the handle)."""
        with self._lock:
            return self._thread is not None and not self._forked()

    # -- sampling -----------------------------------------------------------

    def _run(self) -> None:
        own_ident = threading.get_ident()
        while not self._stop.wait(self.interval):
            self.sample_once(skip={own_ident})

    def sample_once(self, skip: Optional[set] = None) -> None:
        """Take one sample of every live thread (the timer tick)."""
        skip = skip or set()
        frames = sys._current_frames()
        try:
            for tid, frame in frames.items():
                if tid in skip:
                    continue
                stack: List[str] = []
                while frame is not None:
                    stack.append(_frame_label(frame))
                    frame = frame.f_back
                stack.reverse()  # root first, collapsed-stack order
                if self.tracer is not None:
                    spans = self.tracer.open_span_names(tid)
                    if spans:
                        stack = [
                            self.span_prefix + name for name in spans
                        ] + stack
                # Taken after the tracer lock is released: the sampler
                # lock stays a leaf in the lock-order graph.
                with self._lock:
                    site_access("SamplingProfiler._stacks")
                    self._stacks[tuple(stack)] += 1
                    self.n_samples += 1
        finally:
            del frames  # frame objects pin locals; drop them promptly

    # -- output -------------------------------------------------------------

    def stacks(self) -> Dict[Tuple[str, ...], int]:
        """Snapshot of the collapsed-stack counter."""
        with self._lock:
            site_access("SamplingProfiler._stacks", write=False)
            return dict(self._stacks)

    def collapsed(self) -> List[str]:
        """Collapsed-stack lines (``frame;frame;... count``), sorted by
        descending count then lexicographically — feed to flamegraph.pl
        or paste into speedscope."""
        return [
            "%s %d" % (";".join(stack), count)
            for stack, count in sorted(
                self.stacks().items(), key=lambda kv: (-kv[1], kv[0])
            )
        ]

    def write_collapsed(self, path: str) -> None:
        """Write the collapsed-stack profile to a file."""
        with open(path, "w", encoding="utf-8") as handle:
            for line in self.collapsed():
                handle.write(line + "\n")

    def hot_frames(self, top: int = 10) -> List[Tuple[str, int]]:
        """The ``top`` most-sampled leaf frames (inclusive of span
        prefixes is wrong for leaves, so prefixes are skipped)."""
        leaves: Counter = Counter()
        for stack, count in self.stacks().items():
            if stack:
                leaves[stack[-1]] += count
        return leaves.most_common(top)

    def by_span(self) -> Dict[str, int]:
        """Samples grouped by innermost attributed span (stage)."""
        spans: Counter = Counter()
        for stack, count in self.stacks().items():
            innermost = None
            for frame in stack:
                if frame.startswith(self.span_prefix):
                    innermost = frame[len(self.span_prefix):]
                else:
                    break
            spans[innermost or "(no span)"] += count
        return dict(spans)


def profile_call(fn, *args, interval: float = DEFAULT_INTERVAL,
                 tracer: Optional[Tracer] = None, **kwargs):
    """Run ``fn(*args, **kwargs)`` under a sampler; returns
    ``(result, profiler)`` — the one-shot convenience wrapper."""
    profiler = SamplingProfiler(interval=interval, tracer=tracer)
    with profiler:
        result = fn(*args, **kwargs)
    return result, profiler


def wait_for_samples(profiler: SamplingProfiler, n: int,
                     timeout: float = 5.0) -> bool:
    """Block until the profiler has at least ``n`` samples (tests)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if profiler.n_samples >= n:
            return True
        time.sleep(profiler.interval)
    return profiler.n_samples >= n
