"""Observability layer: span tracing, metrics, timeline sampling.

``tracer``
    Hierarchical span tracer (context-manager API, thread/process-safe,
    no-op when disabled) with JSONL and Chrome-trace/Perfetto export.
``metrics``
    Registry of counters/gauges/fixed-bucket histograms that snapshots,
    diffs and merges — how pool workers ship their stage counters back
    to the parent.
``timeline``
    Per-interval occupancy/issue/stall samples of the timing oracle,
    rendered as Perfetto counter tracks alongside the spans.
``schema``
    Checked-in JSON schemas for every exported format plus a
    dependency-free validator (also a CLI: ``python -m repro.obs.schema``).
"""

from repro.obs.metrics import (
    DEFAULT_MS_BUCKETS,
    RATIO_BUCKETS,
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
    diff_snapshots,
    render_key,
)
from repro.obs.timeline import Timeline, TimelineSample
from repro.obs.tracer import (
    NULL_TRACER,
    Tracer,
    get_tracer,
    set_tracer,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "CounterMetric",
    "DEFAULT_MS_BUCKETS",
    "GaugeMetric",
    "HistogramMetric",
    "MetricsRegistry",
    "NULL_TRACER",
    "RATIO_BUCKETS",
    "Timeline",
    "TimelineSample",
    "Tracer",
    "diff_snapshots",
    "get_tracer",
    "render_key",
    "set_tracer",
    "write_chrome_trace",
    "write_jsonl",
]
