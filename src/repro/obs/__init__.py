"""Observability layer: span tracing, metrics, timeline sampling.

``tracer``
    Hierarchical span tracer (context-manager API, thread/process-safe,
    no-op when disabled) with JSONL and Chrome-trace/Perfetto export.
``metrics``
    Registry of counters/gauges/fixed-bucket histograms that snapshots,
    diffs and merges — how pool workers ship their stage counters back
    to the parent.
``timeline``
    Per-interval occupancy/issue/stall samples of the timing oracle,
    rendered as Perfetto counter tracks alongside the spans.
``schema``
    Checked-in JSON schemas for every exported format plus a
    dependency-free validator (also a CLI: ``python -m repro.obs.schema``).
``openmetrics`` / ``exporter``
    OpenMetrics text exposition of any metrics snapshot and the
    stdlib HTTP exporter serving it live (``/metrics``, ``/healthz``,
    ``/spans``; CLI face ``repro serve-metrics``).
``sampler``
    Stdlib sampling profiler (collapsed-stack flamegraph export,
    span-attributed; CLI face ``repro profile --sample``).
``ledger`` / ``dashboard``
    Append-only JSONL prediction ledger, the accuracy-regression
    watchdog over it (``repro watchdog``), and the self-contained
    HTML dashboard (``repro dash``).
"""

from repro.obs.dashboard import collect_bench, render_dashboard, write_dashboard
from repro.obs.exporter import OPENMETRICS_CONTENT_TYPE, MetricsExporter
from repro.obs.ledger import (
    DEFAULT_MODEL,
    PredictionLedger,
    WatchdogReport,
    WatchdogRow,
    build_record,
    compare_ledgers,
    read_ledger,
    read_ledgers,
)
from repro.obs.metrics import (
    DEFAULT_MS_BUCKETS,
    RATIO_BUCKETS,
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
    diff_snapshots,
    escape_label_value,
    render_key,
    unescape_label_value,
)
from repro.obs.openmetrics import (
    render_openmetrics,
    validate_openmetrics,
    validate_openmetrics_file,
)
from repro.obs.sampler import SamplingProfiler
from repro.obs.timeline import Timeline, TimelineSample
from repro.obs.tracer import (
    NULL_TRACER,
    Tracer,
    get_tracer,
    set_tracer,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "CounterMetric",
    "DEFAULT_MODEL",
    "DEFAULT_MS_BUCKETS",
    "GaugeMetric",
    "HistogramMetric",
    "MetricsExporter",
    "MetricsRegistry",
    "NULL_TRACER",
    "OPENMETRICS_CONTENT_TYPE",
    "PredictionLedger",
    "RATIO_BUCKETS",
    "SamplingProfiler",
    "Timeline",
    "TimelineSample",
    "Tracer",
    "WatchdogReport",
    "WatchdogRow",
    "build_record",
    "collect_bench",
    "compare_ledgers",
    "diff_snapshots",
    "escape_label_value",
    "get_tracer",
    "read_ledger",
    "read_ledgers",
    "render_dashboard",
    "render_key",
    "render_openmetrics",
    "set_tracer",
    "unescape_label_value",
    "validate_openmetrics",
    "validate_openmetrics_file",
    "write_chrome_trace",
    "write_dashboard",
    "write_jsonl",
]
