"""OpenMetrics/Prometheus text exposition of a metrics snapshot.

:func:`render_openmetrics` turns any :meth:`MetricsRegistry.snapshot`
structure into the OpenMetrics text format — the lingua franca every
Prometheus-compatible scraper speaks — so a running sweep or prediction
service exposes its counters, gauges and histograms at ``/metrics``
(:mod:`repro.obs.exporter`) without any third-party dependency.

Format contract (the subset this module emits and validates):

* counter families end in ``_total`` and carry ``# TYPE <family> counter``;
* gauges are plain samples under ``# TYPE <family> gauge``;
* histograms expose cumulative ``<family>_bucket{le="..."}`` samples
  ending in ``le="+Inf"``, plus exact ``<family>_sum`` and
  ``<family>_count`` (the running sum is tracked exactly by
  :class:`~repro.obs.metrics.HistogramMetric`, never reconstructed from
  bucket midpoints);
* label values are quoted with the three OpenMetrics escapes
  (backslash, double quote, line feed);
* the exposition ends with ``# EOF``.

:func:`validate_openmetrics` is the matching dependency-free checker
(same spirit as :mod:`repro.obs.schema`, which dispatches its
``openmetrics`` kind here): it re-parses an exposition and verifies
line syntax, name legality, counter monotonicity hints, and the
histogram invariants (cumulative buckets, ``+Inf`` == ``_count``).
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import escape_label_value, unescape_label_value

#: Legal OpenMetrics metric-family name.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
#: One exposition sample line: name, optional labels, value.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>[^ ]+)$"
)
#: One label inside a sample's label set (value quoted, escapes kept).
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

_TYPES = ("counter", "gauge", "histogram", "unknown")


def metric_name(name: str) -> str:
    """A registry metric name as a legal OpenMetrics family name.

    Registry names are dotted (``pipeline.stage_ms``); OpenMetrics
    names admit ``[a-zA-Z0-9_:]`` only, so every illegal character
    becomes ``_`` and a leading digit gains a ``_`` prefix.
    """
    sanitized = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def format_value(value: float) -> str:
    """A sample value in exposition syntax (incl. ``+Inf``/``NaN``)."""
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _render_labels(labels: Dict[str, str],
                   extra: Optional[Tuple[str, str]] = None) -> str:
    items = sorted((str(k), str(v)) for k, v in labels.items())
    if extra is not None:
        items.append(extra)
    if not items:
        return ""
    return "{%s}" % ",".join(
        '%s="%s"' % (key, escape_label_value(value))
        for key, value in items
    )


def render_openmetrics(snapshot: Dict[str, Any]) -> str:
    """An OpenMetrics text exposition of one metrics snapshot.

    Families are emitted sorted by name, counters first renamed to
    their ``_total`` form; the result always terminates with ``# EOF``.
    """
    lines: List[str] = []
    families: Dict[str, str] = {}

    def _declare(family: str, om_type: str) -> None:
        declared = families.get(family)
        if declared is None:
            families[family] = om_type
            lines.append("# TYPE %s %s" % (family, om_type))
        elif declared != om_type:
            raise ValueError(
                "metric family %r sanitizes to both %s and %s"
                % (family, declared, om_type)
            )

    for entry in sorted(snapshot.get("counters", ()),
                        key=lambda e: (metric_name(e["name"]),
                                       sorted(e["labels"].items()))):
        family = metric_name(entry["name"])
        _declare(family, "counter")
        lines.append("%s_total%s %s" % (
            family, _render_labels(entry["labels"]),
            format_value(entry["value"]),
        ))
    for entry in sorted(snapshot.get("gauges", ()),
                        key=lambda e: (metric_name(e["name"]),
                                       sorted(e["labels"].items()))):
        family = metric_name(entry["name"])
        _declare(family, "gauge")
        lines.append("%s%s %s" % (
            family, _render_labels(entry["labels"]),
            format_value(entry["value"]),
        ))
    for entry in sorted(snapshot.get("histograms", ()),
                        key=lambda e: (metric_name(e["name"]),
                                       sorted(e["labels"].items()))):
        family = metric_name(entry["name"])
        _declare(family, "histogram")
        labels = entry["labels"]
        cumulative = 0
        for bound, count in zip(entry["bounds"], entry["counts"]):
            cumulative += count
            lines.append("%s_bucket%s %s" % (
                family,
                _render_labels(labels, extra=("le", format_value(bound))),
                format_value(cumulative),
            ))
        lines.append("%s_bucket%s %s" % (
            family, _render_labels(labels, extra=("le", "+Inf")),
            format_value(entry["count"]),
        ))
        lines.append("%s_sum%s %s" % (
            family, _render_labels(labels), format_value(entry["sum"]),
        ))
        lines.append("%s_count%s %s" % (
            family, _render_labels(labels), format_value(entry["count"]),
        ))
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Parsing / validation
# ---------------------------------------------------------------------------


def parse_labels(text: str) -> Optional[Dict[str, str]]:
    """Parse a sample's label body (``a="x",b="y"``); None when invalid."""
    if not text:
        return {}
    labels: Dict[str, str] = {}
    pos = 0
    while pos < len(text):
        match = _LABEL_RE.match(text, pos)
        if match is None:
            return None
        labels[match.group(1)] = unescape_label_value(match.group(2))
        pos = match.end()
        if pos < len(text):
            if text[pos] != ",":
                return None
            pos += 1
    return labels


def _parse_value(text: str) -> Optional[float]:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        return None


def _base_family(name: str, families: Dict[str, str]) -> Optional[str]:
    """The declared family a sample name belongs to, if any."""
    for suffix in ("_total", "_bucket", "_sum", "_count", ""):
        if suffix and not name.endswith(suffix):
            continue
        base = name[:len(name) - len(suffix)] if suffix else name
        if base in families:
            return base
    return None


def validate_openmetrics(text: str) -> List[str]:
    """Validate an OpenMetrics exposition; returns a list of errors.

    Checks line syntax, family-name legality, the terminating ``# EOF``,
    that counter/histogram samples use their mandated suffixes, that
    histogram buckets are cumulative and the ``+Inf`` bucket equals
    ``_count``, and that counter samples are non-negative.
    """
    errors: List[str] = []
    lines = text.split("\n")
    families: Dict[str, str] = {}
    # (family, frozen labels minus le) → [(le, value)], plus sum/count
    buckets: Dict[Tuple[str, tuple], List[Tuple[float, float]]] = {}
    counts: Dict[Tuple[str, tuple], float] = {}
    saw_eof = False

    for lineno, line in enumerate(lines, 1):
        if not line:
            continue
        if saw_eof:
            errors.append("line %d: content after # EOF" % lineno)
            break
        if line.startswith("#"):
            parts = line.split(" ")
            if line == "# EOF":
                saw_eof = True
                continue
            if len(parts) >= 4 and parts[1] == "TYPE":
                family, om_type = parts[2], parts[3]
                if not _NAME_RE.match(family):
                    errors.append(
                        "line %d: illegal family name %r" % (lineno, family)
                    )
                if om_type not in _TYPES:
                    errors.append(
                        "line %d: unknown type %r" % (lineno, om_type)
                    )
                if family in families:
                    errors.append(
                        "line %d: duplicate TYPE for %r" % (lineno, family)
                    )
                families[family] = om_type
                continue
            if len(parts) >= 2 and parts[1] in ("HELP", "UNIT"):
                continue
            errors.append("line %d: unrecognized comment %r"
                          % (lineno, line))
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            errors.append("line %d: not a valid sample line %r"
                          % (lineno, line))
            continue
        name = match.group("name")
        labels = parse_labels(match.group("labels") or "")
        if labels is None:
            errors.append("line %d: malformed labels %r"
                          % (lineno, match.group("labels")))
            continue
        value = _parse_value(match.group("value"))
        if value is None:
            errors.append("line %d: malformed value %r"
                          % (lineno, match.group("value")))
            continue
        family = _base_family(name, families)
        if family is None:
            continue  # sample of an undeclared family: tolerated
        om_type = families[family]
        if om_type == "counter":
            if not name.endswith("_total"):
                errors.append(
                    "line %d: counter sample %r must end in _total"
                    % (lineno, name)
                )
            elif value < 0:
                errors.append(
                    "line %d: negative counter value %r" % (lineno, value)
                )
        elif om_type == "histogram":
            key_labels = tuple(sorted(
                (k, v) for k, v in labels.items() if k != "le"
            ))
            key = (family, key_labels)
            if name.endswith("_bucket"):
                if "le" not in labels:
                    errors.append(
                        "line %d: histogram bucket without le label"
                        % lineno
                    )
                    continue
                le = _parse_value(labels["le"])
                if le is None:
                    errors.append("line %d: malformed le %r"
                                  % (lineno, labels["le"]))
                    continue
                buckets.setdefault(key, []).append((le, value))
            elif name.endswith("_count"):
                counts[key] = value

    if not saw_eof:
        errors.append("exposition does not end with # EOF")

    for (family, labels), series in sorted(buckets.items()):
        bounds = [le for le, _ in series]
        values = [v for _, v in series]
        if bounds != sorted(bounds):
            errors.append("histogram %s%r: buckets not ordered by le"
                          % (family, dict(labels)))
        if values != sorted(values):
            errors.append("histogram %s%r: bucket counts not cumulative"
                          % (family, dict(labels)))
        if not bounds or not math.isinf(bounds[-1]):
            errors.append("histogram %s%r: missing le=\"+Inf\" bucket"
                          % (family, dict(labels)))
        elif (family, labels) in counts and values[-1] != counts[
            (family, labels)
        ]:
            errors.append(
                "histogram %s%r: +Inf bucket %s != _count %s"
                % (family, dict(labels), values[-1],
                   counts[(family, labels)])
            )
        if (family, labels) not in counts:
            errors.append("histogram %s%r: missing _count sample"
                          % (family, dict(labels)))
    return errors


def validate_openmetrics_file(path: str) -> List[str]:
    """Validate one exposition file (the ``repro.obs.schema`` hook)."""
    with open(path, encoding="utf-8") as handle:
        return validate_openmetrics(handle.read())
