"""Trace containers: the artifact the input collector produces.

A :class:`WarpTrace` is a column-oriented record of one warp's dynamic
instruction stream: static PC, operation class, up to three producer
indices (dependencies *within* the same warp trace, resolved from register
names at emulation time), the active-lane count, and the coalesced memory
request line addresses for loads/stores.

Column orientation (parallel numpy arrays rather than objects) keeps the
memory footprint small enough to trace whole kernels and makes the
interval algorithm and the timing simulator cache-friendly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np


class OpCode(enum.IntEnum):
    """Compact operation-class codes stored in trace columns."""

    IALU = 0
    FALU = 1
    SFU = 2
    LOAD = 3
    STORE = 4
    BRANCH = 5
    EXIT = 6
    SMEM_LOAD = 7  # software-managed (shared) memory
    SMEM_STORE = 8
    BARRIER = 9  # block-level __syncthreads()

    @property
    def is_memory(self) -> bool:
        """Whether this op accesses the global-memory hierarchy."""
        return self in (OpCode.LOAD, OpCode.STORE)

    @property
    def is_shared_memory(self) -> bool:
        """Whether this op accesses the software-managed scratchpad."""
        return self in (OpCode.SMEM_LOAD, OpCode.SMEM_STORE)

    @property
    def latency_class(self) -> str:
        """Latency-table key for non-memory operations."""
        if self in (OpCode.IALU, OpCode.BRANCH, OpCode.EXIT,
                    OpCode.BARRIER):
            return "ialu"
        if self is OpCode.FALU:
            return "falu"
        if self is OpCode.SFU:
            return "sfu"
        raise ValueError("%s is priced by the memory hierarchy" % self)


#: Maximum producer (dependency) slots recorded per dynamic instruction.
MAX_DEPS = 3

#: Sentinel for "no producer" in dependency columns.
NO_DEP = -1


@dataclass
class WarpTrace:
    """The dynamic instruction trace of a single warp.

    All arrays share the same length ``n`` (dynamic instruction count).

    Attributes
    ----------
    warp_id:
        Global warp index within the launch.
    block_id:
        Thread block this warp belongs to (unit of core assignment).
    pcs:
        Static instruction index per dynamic instruction.
    ops:
        :class:`OpCode` values (int8).
    deps:
        ``(n, MAX_DEPS)`` int32 array of producer indices into this same
        trace (``NO_DEP`` padding).  A dynamic instruction may issue only
        after all its producers have completed.
    active:
        Active-lane count per dynamic instruction (int16).
    req_offsets:
        ``(n + 1,)`` int64 prefix array into :attr:`req_lines`; dynamic
        instruction ``k`` issued ``req_offsets[k+1] - req_offsets[k]``
        coalesced memory requests.
    req_lines:
        Flat int64 array of cache-line base addresses, one per request.
    conflict:
        Shared-memory bank-conflict degree per dynamic instruction
        (int16): 0 for non-scratchpad instructions, otherwise the number
        of serialised bank accesses (1 = conflict-free).
    """

    warp_id: int
    block_id: int
    pcs: np.ndarray
    ops: np.ndarray
    deps: np.ndarray
    active: np.ndarray
    req_offsets: np.ndarray
    req_lines: np.ndarray
    conflict: np.ndarray = None

    def __post_init__(self) -> None:
        n = len(self.pcs)
        if self.conflict is None:
            self.conflict = np.zeros(n, dtype=np.int16)
        if len(self.conflict) != n:
            raise ValueError("conflict column length mismatch")
        if not (
            len(self.ops) == n
            and self.deps.shape == (n, MAX_DEPS)
            and len(self.active) == n
            and len(self.req_offsets) == n + 1
        ):
            raise ValueError("inconsistent trace column lengths")
        if n and self.req_offsets[-1] != len(self.req_lines):
            raise ValueError("request offsets do not cover req_lines")

    def __len__(self) -> int:
        return len(self.pcs)

    @property
    def n_insts(self) -> int:
        """Dynamic instruction count of this warp."""
        return len(self.pcs)

    def n_requests(self, index: int) -> int:
        """Number of coalesced memory requests of dynamic instruction."""
        return int(self.req_offsets[index + 1] - self.req_offsets[index])

    def requests(self, index: int) -> np.ndarray:
        """Cache-line base addresses requested by dynamic instruction."""
        return self.req_lines[self.req_offsets[index]: self.req_offsets[index + 1]]

    @property
    def is_load(self) -> np.ndarray:
        """Boolean mask of load instructions."""
        return self.ops == OpCode.LOAD

    @property
    def is_store(self) -> np.ndarray:
        """Boolean mask of store instructions."""
        return self.ops == OpCode.STORE

    @property
    def is_memory(self) -> np.ndarray:
        """Boolean mask of memory instructions."""
        return (self.ops == OpCode.LOAD) | (self.ops == OpCode.STORE)

    @property
    def is_shared_memory(self) -> np.ndarray:
        """Boolean mask of scratchpad instructions."""
        return (self.ops == OpCode.SMEM_LOAD) | (self.ops == OpCode.SMEM_STORE)

    @property
    def requests_per_inst(self) -> np.ndarray:
        """Vector of request counts (0 for non-memory instructions)."""
        return np.diff(self.req_offsets)


class WarpTraceBuilder:
    """Accumulates one warp's trace row by row, then freezes to arrays."""

    def __init__(self, warp_id: int, block_id: int):
        self.warp_id = warp_id
        self.block_id = block_id
        self._pcs: List[int] = []
        self._ops: List[int] = []
        self._deps: List[Sequence[int]] = []
        self._active: List[int] = []
        self._req_counts: List[int] = []
        self._req_lines: List[int] = []
        self._conflict: List[int] = []

    def append(
        self,
        pc: int,
        op: OpCode,
        deps: Sequence[int],
        active: int,
        request_lines: Sequence[int] = (),
        conflict: int = 0,
    ) -> int:
        """Record one dynamic instruction; returns its trace index."""
        index = len(self._pcs)
        self._pcs.append(pc)
        self._ops.append(int(op))
        padded = list(deps)[:MAX_DEPS]
        padded.extend([NO_DEP] * (MAX_DEPS - len(padded)))
        self._deps.append(padded)
        self._active.append(active)
        self._req_counts.append(len(request_lines))
        self._req_lines.extend(int(r) for r in request_lines)
        self._conflict.append(conflict)
        return index

    def __len__(self) -> int:
        return len(self._pcs)

    def build(self) -> WarpTrace:
        """Freeze the accumulated rows into an immutable WarpTrace."""
        n = len(self._pcs)
        offsets = np.zeros(n + 1, dtype=np.int64)
        if n:
            np.cumsum(self._req_counts, out=offsets[1:])
        return WarpTrace(
            warp_id=self.warp_id,
            block_id=self.block_id,
            pcs=np.asarray(self._pcs, dtype=np.int32),
            ops=np.asarray(self._ops, dtype=np.int8),
            deps=np.asarray(self._deps, dtype=np.int32).reshape(n, MAX_DEPS),
            active=np.asarray(self._active, dtype=np.int16),
            req_offsets=offsets,
            req_lines=np.asarray(self._req_lines, dtype=np.int64),
            conflict=np.asarray(self._conflict, dtype=np.int16),
        )


@dataclass
class KernelTrace:
    """All warp traces of one kernel launch."""

    kernel_name: str
    warp_size: int
    line_size: int
    n_blocks: int
    warps: List[WarpTrace] = field(default_factory=list)

    @property
    def n_warps(self) -> int:
        """Number of warps in the launch."""
        return len(self.warps)

    @property
    def total_insts(self) -> int:
        """Dynamic instructions across all warps."""
        return sum(len(w) for w in self.warps)

    @property
    def total_requests(self) -> int:
        """Coalesced memory requests across all warps."""
        return sum(len(w.req_lines) for w in self.warps)

    def warps_of_block(self, block_id: int) -> List[WarpTrace]:
        """The warps belonging to one thread block."""
        return [w for w in self.warps if w.block_id == block_id]

    def summary(self) -> str:
        """One-line description for logs and examples."""
        return (
            "trace of %s: %d warps in %d blocks, %d dynamic insts, "
            "%d memory requests"
            % (
                self.kernel_name,
                self.n_warps,
                self.n_blocks,
                self.total_insts,
                self.total_requests,
            )
        )
