"""SIMT reconvergence stack for control divergence.

Implements the classic post-dominator stack (GPGPU-Sim style) with the
reconvergence PC supplied explicitly by each conditional branch (the
kernel builder computes it for structured control flow):

* On a *divergent* branch, the top-of-stack entry becomes the *join*
  entry — it keeps the full mask and waits at the reconvergence PC —
  and one child entry per outcome (taken / fall-through) is pushed with
  the corresponding lane subset.
* A child entry whose PC reaches its reconvergence PC is popped, handing
  control back to its sibling or, once all siblings drained, to the join
  entry with the full mask restored.

The emulator executes only the top-of-stack entry, which serialises the
two sides of a divergent branch exactly as SIMT hardware does — and
thereby inflates divergent warps' dynamic instruction counts, the effect
the representative-warp clustering (Sec. III-C) exists to absorb.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np


class SimtStackError(RuntimeError):
    """Raised on structurally impossible stack operations."""


@dataclass
class StackEntry:
    """One lane group: where it executes and where it rejoins."""

    pc: int
    mask: np.ndarray  # bool array over lanes
    reconv: Optional[int]  # None for the top-level entry

    @property
    def n_active(self) -> int:
        """Number of active lanes in this group."""
        return int(self.mask.sum())


class SimtStack:
    """Reconvergence stack of one warp."""

    def __init__(self, initial_mask: np.ndarray):
        mask = np.asarray(initial_mask, dtype=bool)
        if not mask.any():
            raise SimtStackError("warp has no active lanes")
        self._entries: List[StackEntry] = [StackEntry(0, mask.copy(), None)]

    @property
    def depth(self) -> int:
        """Current stack depth (1 = no divergence in flight)."""
        return len(self._entries)

    @property
    def top(self) -> StackEntry:
        """The executing lane group."""
        return self._entries[-1]

    def pop_reconverged(self) -> bool:
        """Pop the TOS if it has reached its reconvergence PC.

        Returns True if a pop happened (the caller should re-inspect the
        new TOS before executing).
        """
        top = self.top
        if top.reconv is not None and top.pc == top.reconv:
            self._entries.pop()
            if not self._entries:
                raise SimtStackError("popped the top-level entry")
            return True
        return False

    def branch(self, taken_mask: np.ndarray, target: int, reconv: Optional[int]) -> None:
        """Apply a conditional branch outcome to the TOS.

        ``taken_mask`` is the lanes (within the TOS mask) that take the
        branch.  Uniform outcomes just redirect the PC; divergent ones
        split the entry as described in the module docstring.
        """
        top = self.top
        taken = np.asarray(taken_mask, dtype=bool) & top.mask
        not_taken = top.mask & ~taken
        if not taken.any():
            top.pc += 1
            return
        if not not_taken.any():
            top.pc = target
            return
        if reconv is None:
            raise SimtStackError("divergent branch without a reconvergence pc")
        fallthrough_pc = top.pc + 1
        # TOS becomes the join entry, holding the full mask at the
        # reconvergence point; children carry the split masks.
        top.pc = reconv
        self._entries.append(StackEntry(target, taken, reconv))
        self._entries.append(StackEntry(fallthrough_pc, not_taken, reconv))

    def jump(self, target: int) -> None:
        """Unconditional branch of the TOS."""
        self.top.pc = target

    def advance(self) -> None:
        """Fall through to the next instruction."""
        self.top.pc += 1
