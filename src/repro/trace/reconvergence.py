"""Independent-thread-scheduling-style divergence handling.

The classic post-dominator stack (:mod:`repro.trace.simt_stack`) runs
one side of a divergent branch to its reconvergence point before
starting the other.  Volta-class cores instead keep every lane group
schedulable and *interleave* them, reconverging greedily when all
groups of a split reach the common post-dominator ("Control Flow
Management in Modern GPUs" surveys the design space; this module models
the scheduling-visible part of it).

:class:`InterleavedStack` exposes the same interface the functional
emulator drives the stack with (``pop_reconverged`` / ``top`` /
``branch`` / ``jump`` / ``advance`` / ``depth``), so either policy can
plug into the same per-warp execution loop — the architecture backend
(``repro.arch``) picks which one.  Instead of a stack it keeps a flat
list of lane groups; each group carries the *join chain* of
reconvergence PCs it still owes (innermost last, the path-history
analogue of nested stack entries):

* A divergent branch splits the executing group in two, both extending
  their join chain with the branch's reconvergence PC.
* The scheduler always runs the group with the smallest PC (ties:
  oldest group), the canonical min-PC heuristic — it bounds how far any
  group runs ahead and drives siblings toward their join point.
* A group whose PC reaches its innermost owed join parks there.  When
  every group owing the same chain has parked (and no deeper split is
  outstanding), they merge into one group with the union mask and the
  join is popped.

For straight-line or uniformly-branching warps this executes the exact
same instruction sequence as the stack; under divergence it emits the
same multiset of trace rows per warp but interleaves the two sides —
which changes producer→consumer distances and therefore the interval
profiles, the effect the ``subcore`` backend exists to model.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.trace.simt_stack import SimtStackError


class _LaneGroup:
    """One schedulable lane group and the joins it still owes."""

    __slots__ = ("pc", "mask", "joins", "order")

    def __init__(
        self, pc: int, mask: np.ndarray, joins: Tuple[int, ...], order: int
    ):
        self.pc = pc
        self.mask = mask
        self.joins = joins
        self.order = order

    @property
    def n_active(self) -> int:
        """Number of active lanes in this group."""
        return int(self.mask.sum())


class InterleavedStack:
    """ITS-style lane-group scheduler of one warp.

    Drop-in replacement for :class:`~repro.trace.simt_stack.SimtStack`
    in the emulator's warp loop; ``depth`` is the live group count, so
    the loop's "reconverged before bar/exit" checks carry over.
    """

    def __init__(self, initial_mask: np.ndarray):
        mask = np.asarray(initial_mask, dtype=bool)
        if not mask.any():
            raise SimtStackError("warp has no active lanes")
        self._groups: List[_LaneGroup] = [_LaneGroup(0, mask.copy(), (), 0)]
        self._order_counter = 1
        self._current = self._groups[0]

    @property
    def depth(self) -> int:
        """Live lane groups (1 = no divergence in flight)."""
        return len(self._groups)

    @property
    def top(self) -> _LaneGroup:
        """The lane group selected to execute this step."""
        return self._current

    @staticmethod
    def _parked(group: _LaneGroup) -> bool:
        return bool(group.joins) and group.pc == group.joins[-1]

    def pop_reconverged(self) -> bool:
        """Merge one fully-arrived sibling set, else pick the next group.

        Returns True if a merge happened (the caller should re-inspect
        before executing) — mirroring the stack's pop protocol.  When no
        merge is possible, selects the min-PC runnable group that
        subsequent ``top``/``branch``/``advance`` calls operate on.
        """
        if len(self._groups) > 1:
            merged = self._merge_arrived()
            if merged:
                return True
        self._select()
        return False

    def _merge_arrived(self) -> bool:
        """Merge the deepest join chain whose owners have all parked."""
        by_chain = {}
        for group in self._groups:
            by_chain.setdefault(group.joins, []).append(group)
        best = None
        for chain, members in by_chain.items():
            if not chain:
                continue
            if not all(self._parked(g) for g in members):
                continue
            # A deeper outstanding split means more lanes will still
            # arrive at this join; wait for the inner merge first.
            deeper = any(
                len(g.joins) > len(chain) and g.joins[: len(chain)] == chain
                for g in self._groups
                if g.joins != chain
            )
            if deeper:
                continue
            if best is None or len(chain) > len(best[0]):
                best = (chain, members)
        if best is None:
            return False
        chain, members = best
        keep = min(members, key=lambda g: g.order)
        mask = keep.mask.copy()
        for group in members:
            if group is not keep:
                mask |= group.mask
                self._groups.remove(group)
        keep.mask = mask
        keep.joins = chain[:-1]
        return True

    def _select(self) -> None:
        best = None
        for group in self._groups:
            if self._parked(group):
                continue
            if (
                best is None
                or group.pc < best.pc
                or (group.pc == best.pc and group.order < best.order)
            ):
                best = group
        if best is None:
            raise SimtStackError(
                "no runnable lane group (unstructured control flow?)"
            )
        self._current = best

    def branch(
        self, taken_mask: np.ndarray, target: int, reconv: Optional[int]
    ) -> None:
        """Apply a conditional branch outcome to the executing group."""
        group = self._current
        taken = np.asarray(taken_mask, dtype=bool) & group.mask
        not_taken = group.mask & ~taken
        if not taken.any():
            group.pc += 1
            return
        if not not_taken.any():
            group.pc = target
            return
        if reconv is None:
            raise SimtStackError("divergent branch without a reconvergence pc")
        joins = group.joins + (reconv,)
        fallthrough_pc = group.pc + 1
        group.pc = target
        group.mask = taken
        group.joins = joins
        self._groups.append(
            _LaneGroup(fallthrough_pc, not_taken, joins, self._order_counter)
        )
        self._order_counter += 1

    def jump(self, target: int) -> None:
        """Unconditional branch of the executing group."""
        self._current.pc = target

    def advance(self) -> None:
        """Fall through to the next instruction."""
        self._current.pc += 1
