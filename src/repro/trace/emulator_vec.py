"""Vectorized SIMT emulator: all warps in lockstep over the static program.

The scalar emulator (:mod:`repro.trace.emulator`) runs one warp to
completion at a time, one dynamic instruction per Python iteration.
This backend instead advances *every* live warp by one instruction per
step: warps whose reconvergence stacks sit at the same static PC are
grouped and executed as one batched numpy operation over a
``(n_warps_in_group, warp_size)`` lane block — registers, addresses,
coalescing, bank-conflict degrees and dependency compaction all
vectorize across the group.  Per-warp Python survives only where SIMT
state genuinely diverges: reconvergence-stack pushes/pops and scratchpad
dictionaries.

Trace rows are emitted into preallocated 2-D SoA columns (one row per
warp, geometric growth along the instruction axis) and sliced into
per-warp :class:`~repro.trace.trace_types.WarpTrace` arrays at the end —
no per-instruction Python lists.

Equivalence with the scalar backend
-----------------------------------
Every trace column is bitwise-identical to the scalar emulator's output
(asserted suite-wide by ``tests/test_vectorized_equivalence.py``): the
same ufuncs run on the same float64 values, and elementwise numpy ops
are shape-independent at the bit level.  The one semantic difference is
*invisible to traces*: stores from different warps land in the shared
:class:`~repro.trace.memory_image.MemoryImage` overlay in lockstep
order rather than warp-major order, so a kernel whose cross-warp
read-after-write *values* feed back into addresses or branch predicates
could diverge.  No suite kernel does (loaded RAW values only ever flow
into stored data), which the equivalence suite enforces.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config import GPUConfig
from repro.isa.instructions import Imm, Instruction, Reg, Special
from repro.isa.kernel import Kernel
from repro.trace.memory_image import MemoryImage, _hash_unit
from repro.trace.simt_stack import SimtStackError
from repro.trace.trace_types import (
    MAX_DEPS,
    NO_DEP,
    KernelTrace,
    OpCode,
    WarpTrace,
)

#: Sorts after every real line/word in row-wise unique extraction.
_SENT = np.iinfo(np.int64).max

# Dispatch kinds (precomputed per static instruction).
_K_ALU = 0
_K_SETP = 1
_K_LD = 2
_K_ST = 3
_K_LDS = 4
_K_STS = 5
_K_BRA = 6
_K_BAR = 7
_K_EXIT = 8

_KINDS = {
    "ld": _K_LD,
    "st": _K_ST,
    "lds": _K_LDS,
    "sts": _K_STS,
    "bra": _K_BRA,
    "bar": _K_BAR,
    "exit": _K_EXIT,
    "setp": _K_SETP,
}


class _InstPlan:
    """Pre-resolved execution plan of one static instruction."""

    __slots__ = ("inst", "kind", "op_int", "dep_regs", "dst", "alu_fn")

    def __init__(self, inst: Instruction, alu_ops, cmp_ops, opcode_code):
        self.inst = inst
        self.kind = _KINDS.get(inst.opcode, _K_ALU)
        self.dep_regs = tuple(r.index for r in inst.source_registers)
        self.dst = inst.dst.index if inst.dst is not None else -1
        if self.kind == _K_SETP:
            self.alu_fn = cmp_ops[inst.cmp_op]
            self.op_int = int(OpCode.IALU)
        elif self.kind == _K_ALU:
            self.alu_fn = alu_ops[inst.opcode]
            self.op_int = opcode_code(inst)
        else:
            self.alu_fn = None
            self.op_int = {
                _K_LD: int(OpCode.LOAD),
                _K_ST: int(OpCode.STORE),
                _K_LDS: int(OpCode.SMEM_LOAD),
                _K_STS: int(OpCode.SMEM_STORE),
                _K_BRA: int(OpCode.BRANCH),
                _K_BAR: int(OpCode.BARRIER),
                _K_EXIT: int(OpCode.EXIT),
            }[self.kind]


def _rowwise_unique(
    values: np.ndarray, mask: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Sorted distinct values per row over the masked lanes.

    Returns ``(sorted, keep)``: ``sorted[keep]`` flattens to each row's
    ascending distinct values back to back (exactly ``np.unique`` of the
    row's active lanes, batched).
    """
    filled = np.where(mask, values, _SENT)
    filled.sort(axis=1)
    keep = filled != _SENT
    if filled.shape[1] > 1:
        keep[:, 1:] &= filled[:, 1:] != filled[:, :-1]
    return filled, keep


def _conflict_degrees(
    addrs: np.ndarray, mask: np.ndarray, n_banks: int, word: int = 4
) -> np.ndarray:
    """Batched :func:`~repro.trace.emulator.bank_conflict_degree`."""
    g = addrs.shape[0]
    srt, keep = _rowwise_unique(addrs // word, mask)
    rows = np.nonzero(keep)[0]
    banks = srt[keep] % n_banks
    counts = np.bincount(rows * n_banks + banks, minlength=g * n_banks)
    return counts.reshape(g, n_banks).max(axis=1)


def _addresses_2d(base, offset: int, mask: np.ndarray) -> np.ndarray:
    """Batched :func:`~repro.trace.emulator._addresses` over a group."""
    addrs = np.asarray(
        np.broadcast_to(np.asarray(base, dtype=np.float64), mask.shape)
    ).astype(np.int64) + offset
    return np.where(mask, np.abs(addrs), 0)


class _LaunchState:
    """Mutable lockstep execution state of a whole kernel launch."""

    def __init__(self, kernel: Kernel, config: GPUConfig):
        from repro.trace.emulator import EmulatorError

        n_warps = kernel.n_warps
        warp_size = config.warp_size
        n_regs = max(kernel.max_register + 1, 1)
        self.n_warps = n_warps
        self.warp_size = warp_size

        lanes = np.arange(warp_size, dtype=np.int64)
        warp_ids = np.arange(n_warps, dtype=np.int64)
        tids = warp_ids[:, None] * warp_size + lanes[None, :]
        init_mask = tids < kernel.n_threads
        empty = ~init_mask.any(axis=1)
        if empty.any():
            raise EmulatorError(
                "warp %d has no threads" % int(np.flatnonzero(empty)[0])
            )
        self.block_ids = (warp_ids * warp_size) // kernel.block_size

        self.specials = {
            Special.TID: tids.astype(np.float64),
            Special.LANE: np.broadcast_to(
                lanes.astype(np.float64), (n_warps, warp_size)
            ),
            Special.WARP: np.broadcast_to(
                warp_ids.astype(np.float64)[:, None], (n_warps, warp_size)
            ),
            Special.CTAID: np.broadcast_to(
                self.block_ids.astype(np.float64)[:, None],
                (n_warps, warp_size),
            ),
            Special.NTID: np.full(
                (n_warps, warp_size), float(kernel.block_size)
            ),
        }

        self.regs = np.zeros((n_warps, n_regs, warp_size), dtype=np.float64)
        self.writers = np.full((n_warps, n_regs), -1, dtype=np.int64)
        self.smem: List[Dict[int, float]] = [{} for _ in range(n_warps)]

        # Top-of-stack state, struct-of-arrays; suspended entries (the
        # part of each warp's SIMT stack below the TOS) stay per-warp.
        self.cur_pc = np.zeros(n_warps, dtype=np.int64)
        self.cur_mask = init_mask.copy()
        self.cur_reconv = np.full(n_warps, -1, dtype=np.int64)  # -1: none
        self.depths = np.ones(n_warps, dtype=np.int64)
        self.suspended: List[List[Tuple[int, np.ndarray, int]]] = [
            [] for _ in range(n_warps)
        ]
        self.finished = np.zeros(n_warps, dtype=bool)

        # Preallocated SoA trace columns, one row per warp.
        cap = 64
        self.cap = cap
        self.lengths = np.zeros(n_warps, dtype=np.int64)
        self.pcs2d = np.zeros((n_warps, cap), dtype=np.int32)
        self.ops2d = np.zeros((n_warps, cap), dtype=np.int8)
        self.deps2d = np.full((n_warps, cap, MAX_DEPS), NO_DEP, dtype=np.int32)
        self.active2d = np.zeros((n_warps, cap), dtype=np.int16)
        self.conflict2d = np.zeros((n_warps, cap), dtype=np.int16)
        self.reqcount2d = np.zeros((n_warps, cap), dtype=np.int64)
        self.req_chunks: List[List[np.ndarray]] = [
            [] for _ in range(n_warps)
        ]

    def ensure_capacity(self) -> None:
        """Guarantee room for one more row in every warp's columns."""
        if int(self.lengths.max(initial=0)) < self.cap:
            return
        new_cap = self.cap * 2
        n_warps = self.n_warps

        def grow(arr, fill, extra_shape=()):
            out = np.full(
                (n_warps, new_cap) + extra_shape, fill, dtype=arr.dtype
            )
            out[:, : self.cap] = arr
            return out

        self.pcs2d = grow(self.pcs2d, 0)
        self.ops2d = grow(self.ops2d, 0)
        self.deps2d = grow(self.deps2d, NO_DEP, (MAX_DEPS,))
        self.active2d = grow(self.active2d, 0)
        self.conflict2d = grow(self.conflict2d, 0)
        self.reqcount2d = grow(self.reqcount2d, 0)
        self.cap = new_cap

    def append(
        self,
        warps: np.ndarray,
        pc: int,
        op_int: int,
        deps: np.ndarray,
        n_active: np.ndarray,
        req_counts: Optional[np.ndarray] = None,
        req_flat: Optional[np.ndarray] = None,
        conflict: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Record one dynamic instruction for every warp in the group;
        returns the per-warp trace indices (the producer indices
        downstream dependencies point at)."""
        pos = self.lengths[warps]
        self.pcs2d[warps, pos] = pc
        self.ops2d[warps, pos] = op_int
        self.deps2d[warps, pos] = deps
        self.active2d[warps, pos] = n_active
        if conflict is not None:
            self.conflict2d[warps, pos] = conflict
        if req_counts is not None:
            self.reqcount2d[warps, pos] = req_counts
            pieces = np.split(req_flat, np.cumsum(req_counts)[:-1])
            chunks = self.req_chunks
            for i, w in enumerate(warps.tolist()):
                chunks[w].append(pieces[i])
        self.lengths[warps] = pos + 1
        return pos

    def build_traces(self, kernel: Kernel, config: GPUConfig) -> KernelTrace:
        """Slice the SoA columns into per-warp WarpTrace arrays."""
        trace = KernelTrace(
            kernel_name=kernel.name,
            warp_size=config.warp_size,
            line_size=config.line_size,
            n_blocks=kernel.n_blocks,
        )
        empty_lines = np.empty(0, dtype=np.int64)
        for w in range(self.n_warps):
            n = int(self.lengths[w])
            offsets = np.zeros(n + 1, dtype=np.int64)
            if n:
                np.cumsum(self.reqcount2d[w, :n], out=offsets[1:])
            chunks = self.req_chunks[w]
            req_lines = (
                np.concatenate(chunks) if chunks else empty_lines
            ).astype(np.int64, copy=False)
            trace.warps.append(
                WarpTrace(
                    warp_id=w,
                    block_id=int(self.block_ids[w]),
                    pcs=self.pcs2d[w, :n].copy(),
                    ops=self.ops2d[w, :n].copy(),
                    deps=self.deps2d[w, :n].copy(),
                    active=self.active2d[w, :n].copy(),
                    req_offsets=offsets,
                    req_lines=req_lines,
                    conflict=self.conflict2d[w, :n].copy(),
                )
            )
        return trace


def emulate_vectorized(
    kernel: Kernel,
    config: GPUConfig,
    memory: MemoryImage,
    max_warp_insts: int,
) -> KernelTrace:
    """Lockstep-vectorized counterpart of scalar ``emulate``."""
    from repro.trace.emulator import (
        _ALU_OPS,
        _CMP_OPS,
        EmulatorError,
        _opcode_code,
    )

    program = kernel.program
    n_prog = len(program)
    state = _LaunchState(kernel, config)
    plans: List[Optional[_InstPlan]] = [None] * n_prog
    line_shift = config.line_size.bit_length() - 1
    smem_banks = config.smem_banks

    cur_pc = state.cur_pc
    cur_reconv = state.cur_reconv
    cur_mask = state.cur_mask
    depths = state.depths
    finished = state.finished
    suspended = state.suspended
    regs = state.regs
    writers = state.writers
    lengths = state.lengths
    specials = state.specials

    def fetch(operand, warps: np.ndarray):
        if isinstance(operand, Reg):
            return regs[warps, operand.index]
        if isinstance(operand, Imm):
            return np.float64(operand.value)
        return specials[operand][warps]

    def deps_group(warps: np.ndarray, reg_idxs: Tuple[int, ...]) -> np.ndarray:
        g = warps.shape[0]
        out = np.full((g, MAX_DEPS), NO_DEP, dtype=np.int32)
        if not reg_idxs:
            return out
        rows = np.arange(g)
        pos = np.zeros(g, dtype=np.int64)
        seen: List[np.ndarray] = []
        for r in reg_idxs:
            producer = writers[warps, r]
            valid = producer >= 0
            for prev in seen:
                valid &= producer != prev
            seen.append(producer)
            out[rows[valid], pos[valid]] = producer[valid]
            pos += valid
        return out

    def coalesce_rows(
        addrs: np.ndarray, mask: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-row sorted distinct line bases (flattened) and counts."""
        srt, keep = _rowwise_unique(addrs >> line_shift, mask)
        return srt[keep] << line_shift, keep.sum(axis=1)

    while True:
        alive = ~finished
        if not alive.any():
            break

        over = alive & (lengths > max_warp_insts)
        if over.any():
            raise EmulatorError(
                "warp %d exceeded %d dynamic instructions (runaway loop?)"
                % (int(np.flatnonzero(over)[0]), max_warp_insts)
            )

        # Pop reconverged TOS entries (cascading, like the scalar loop).
        while True:
            pend = np.flatnonzero(
                alive & (cur_reconv >= 0) & (cur_pc == cur_reconv)
            )
            if not pend.size:
                break
            for w in pend.tolist():
                pc, mask_w, reconv = suspended[w].pop()
                cur_pc[w] = pc
                cur_mask[w] = mask_w
                cur_reconv[w] = reconv
                depths[w] -= 1

        off = alive & (cur_pc >= n_prog)
        if off.any():
            raise EmulatorError(
                "warp %d fell off the end of the program"
                % int(np.flatnonzero(off)[0])
            )

        state.ensure_capacity()

        # Group live warps by top-of-stack PC; execute groups in
        # ascending PC order (deterministic shared-memory-image order).
        alive_idx = np.flatnonzero(alive)
        pcs_alive = cur_pc[alive_idx]
        first_pc = pcs_alive[0]
        if (pcs_alive == first_pc).all():  # common case: full lockstep
            groups = [(int(first_pc), alive_idx)]
        else:
            order = np.argsort(pcs_alive, kind="stable")
            sorted_w = alive_idx[order]
            sorted_pc = pcs_alive[order]
            bounds = np.flatnonzero(np.diff(sorted_pc)) + 1
            starts = [0] + bounds.tolist() + [len(sorted_w)]
            groups = [
                (int(sorted_pc[starts[i]]), sorted_w[starts[i]: starts[i + 1]])
                for i in range(len(starts) - 1)
            ]

        for pc, warps in groups:
            plan = plans[pc]
            if plan is None:
                plan = plans[pc] = _InstPlan(
                    program[pc], _ALU_OPS, _CMP_OPS, _opcode_code
                )
            inst = plan.inst
            kind = plan.kind
            mask = cur_mask[warps]
            n_active = mask.sum(axis=1)

            if kind == _K_EXIT:
                deep = depths[warps] != 1
                if deep.any():
                    raise EmulatorError(
                        "exit reached under divergence (stack depth %d); "
                        "kernels must reconverge before exiting"
                        % int(depths[warps][deep][0])
                    )
                state.append(warps, pc, plan.op_int,
                             deps_group(warps, ()), n_active)
                finished[warps] = True
                continue

            if kind == _K_BAR:
                deep = depths[warps] != 1
                if deep.any():
                    raise EmulatorError(
                        "barrier reached under divergence (stack depth %d)"
                        % int(depths[warps][deep][0])
                    )
                state.append(warps, pc, plan.op_int,
                             deps_group(warps, ()), n_active)
                cur_pc[warps] += 1
                continue

            if kind == _K_BRA:
                state.append(warps, pc, plan.op_int,
                             deps_group(warps, plan.dep_regs), n_active)
                if inst.pred is None:
                    cur_pc[warps] = inst.target
                    continue
                taken = (regs[warps, inst.pred.index] != 0) & mask
                not_taken = mask & ~taken
                any_taken = taken.any(axis=1)
                any_nt = not_taken.any(axis=1)
                uniform_nt = ~any_taken
                uniform_t = any_taken & ~any_nt
                divergent = any_taken & any_nt
                if uniform_nt.any():
                    cur_pc[warps[uniform_nt]] += 1
                if uniform_t.any():
                    cur_pc[warps[uniform_t]] = inst.target
                if divergent.any():
                    reconv = inst.reconv
                    if reconv is None:
                        raise SimtStackError(
                            "divergent branch without a reconvergence pc"
                        )
                    for i in np.flatnonzero(divergent).tolist():
                        w = int(warps[i])
                        # TOS becomes the join entry; taken side is
                        # suspended; fall-through executes first.
                        suspended[w].append(
                            (reconv, cur_mask[w].copy(), int(cur_reconv[w]))
                        )
                        suspended[w].append(
                            (inst.target, taken[i].copy(), reconv)
                        )
                        cur_pc[w] = pc + 1
                        cur_mask[w] = not_taken[i]
                        cur_reconv[w] = reconv
                        depths[w] += 2
                continue

            if kind in (_K_LD, _K_ST):
                addrs = _addresses_2d(
                    fetch(inst.srcs[0], warps), inst.offset, mask
                )
                req_flat, req_counts = coalesce_rows(addrs, mask)
                deps = deps_group(warps, plan.dep_regs)
                if kind == _K_LD:
                    values = memory.read(addrs)
                    index = state.append(
                        warps, pc, plan.op_int, deps, n_active,
                        req_counts=req_counts, req_flat=req_flat,
                    )
                    dst = plan.dst
                    regs[warps, dst] = np.where(
                        mask, values, regs[warps, dst]
                    )
                    writers[warps, dst] = index
                else:
                    values = np.broadcast_to(
                        np.asarray(
                            fetch(inst.srcs[1], warps), dtype=np.float64
                        ),
                        mask.shape,
                    )
                    memory.write(addrs, values, mask)
                    state.append(
                        warps, pc, plan.op_int, deps, n_active,
                        req_counts=req_counts, req_flat=req_flat,
                    )
                cur_pc[warps] += 1
                continue

            if kind in (_K_LDS, _K_STS):
                addrs = _addresses_2d(
                    fetch(inst.srcs[0], warps), inst.offset, mask
                )
                degrees = _conflict_degrees(addrs, mask, smem_banks)
                deps = deps_group(warps, plan.dep_regs)
                if kind == _K_LDS:
                    values = _hash_unit(addrs)
                    warp_list = warps.tolist()
                    for i, w in enumerate(warp_list):
                        overlay = state.smem[w]
                        if overlay:
                            row = values[i]
                            for j, addr in enumerate(addrs[i].tolist()):
                                hit = overlay.get(addr)
                                if hit is not None:
                                    row[j] = hit
                    index = state.append(
                        warps, pc, plan.op_int, deps, n_active,
                        conflict=degrees,
                    )
                    dst = plan.dst
                    regs[warps, dst] = np.where(
                        mask, values, regs[warps, dst]
                    )
                    writers[warps, dst] = index
                else:
                    values = np.broadcast_to(
                        np.asarray(
                            fetch(inst.srcs[1], warps), dtype=np.float64
                        ),
                        mask.shape,
                    )
                    for i, w in enumerate(warps.tolist()):
                        overlay = state.smem[w]
                        for addr, value, on in zip(
                            addrs[i].tolist(),
                            values[i].tolist(),
                            mask[i].tolist(),
                        ):
                            if on:
                                overlay[addr] = value
                    state.append(
                        warps, pc, plan.op_int, deps, n_active,
                        conflict=degrees,
                    )
                cur_pc[warps] += 1
                continue

            # ALU / SETP
            if kind == _K_SETP:
                a = fetch(inst.srcs[0], warps)
                b = fetch(inst.srcs[1], warps)
                result = plan.alu_fn(a, b).astype(np.float64)
            else:
                result = plan.alu_fn(
                    *(fetch(s, warps) for s in inst.srcs)
                )
            result = np.broadcast_to(
                np.asarray(result, dtype=np.float64), mask.shape
            )
            index = state.append(
                warps, pc, plan.op_int,
                deps_group(warps, plan.dep_regs), n_active,
            )
            dst = plan.dst
            regs[warps, dst] = np.where(mask, result, regs[warps, dst])
            writers[warps, dst] = index
            cur_pc[warps] += 1

    return state.build_traces(kernel, config)
