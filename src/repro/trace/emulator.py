"""Warp-level functional SIMT emulator (the input collector's front half).

Executes a kernel warp by warp, vectorising over the 32 lanes with numpy.
For every dynamic instruction it records a trace row: static PC, operation
class, the trace indices of its producers (dependencies), the active-lane
count, and — for loads/stores — the coalesced cache-line requests.

Design notes
------------
* Registers are a single ``(n_regs, warp_size)`` float64 bank; integer
  opcodes round-trip through int64.  float64 represents integers exactly
  up to 2**53, far beyond any address or counter the workloads use.
* Dependencies are resolved here (register → last-writer trace index) so
  downstream consumers never need a register model: the interval
  algorithm (Eq. 4) and the timing oracle both operate on producer
  indices directly.
* Stores record a dependency on their address/value producers but expose
  no destination, so nothing ever waits on a store — matching the paper's
  observation that stores are not on the critical path.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.config import GPUConfig
from repro.isa.instructions import CmpOp, Imm, Instruction, Reg, Special
from repro.isa.kernel import Kernel
from repro.trace.coalescer import coalesce
from repro.trace.memory_image import MemoryImage
from repro.trace.simt_stack import SimtStack
from repro.trace.trace_types import KernelTrace, OpCode, WarpTraceBuilder


class EmulatorError(RuntimeError):
    """Raised when a kernel cannot be executed functionally."""


_EXP_CLIP = 60.0  # keep fexp finite
_EPS = 1e-12


def _binary_int(fn: Callable) -> Callable:
    def op(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return fn(a.astype(np.int64), b.astype(np.int64)).astype(np.float64)

    return op


def _safe_idiv(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.where(b == 0, 0, a // np.where(b == 0, 1, b))


def _safe_imod(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.where(b == 0, 0, a % np.where(b == 0, 1, b))


_ALU_OPS: Dict[str, Callable] = {
    "mov": lambda a: a,
    "iadd": _binary_int(np.add),
    "isub": _binary_int(np.subtract),
    "imul": _binary_int(np.multiply),
    "idiv": _binary_int(_safe_idiv),
    "imod": _binary_int(_safe_imod),
    "iand": _binary_int(np.bitwise_and),
    "ior": _binary_int(np.bitwise_or),
    "ishl": _binary_int(lambda a, b: a << np.clip(b, 0, 62)),
    "ishr": _binary_int(lambda a, b: a >> np.clip(b, 0, 62)),
    "imin": _binary_int(np.minimum),
    "imax": _binary_int(np.maximum),
    "fadd": np.add,
    "fsub": np.subtract,
    "fmul": np.multiply,
    "ffma": lambda a, b, c: a * b + c,
    "fmin": np.minimum,
    "fmax": np.maximum,
    "fneg": np.negative,
    "fabs": np.abs,
    "frcp": lambda a: 1.0 / np.where(np.abs(a) < _EPS, _EPS, a),
    "fsqrt": lambda a: np.sqrt(np.abs(a)),
    "frsqrt": lambda a: 1.0 / np.sqrt(np.maximum(np.abs(a), _EPS)),
    "fexp": lambda a: np.exp(np.clip(a, -_EXP_CLIP, _EXP_CLIP)),
    "flog": lambda a: np.log(np.maximum(np.abs(a), _EPS)),
    "fsin": np.sin,
}

_CMP_OPS: Dict[CmpOp, Callable] = {
    CmpOp.LT: np.less,
    CmpOp.LE: np.less_equal,
    CmpOp.GT: np.greater,
    CmpOp.GE: np.greater_equal,
    CmpOp.EQ: np.equal,
    CmpOp.NE: np.not_equal,
}


class _WarpContext:
    """Execution state of one warp."""

    def __init__(
        self,
        kernel: Kernel,
        warp_id: int,
        warp_size: int,
        n_regs: int,
        stack_factory: Optional[Callable] = None,
    ):
        self.warp_id = warp_id
        base_thread = warp_id * warp_size
        lanes = np.arange(warp_size, dtype=np.int64)
        tids = base_thread + lanes
        active = tids < kernel.n_threads
        if not active.any():
            raise EmulatorError("warp %d has no threads" % warp_id)
        # The architecture backend picks the divergence structure (stack
        # vs ITS-style interleaving); default is the classic SIMT stack.
        factory = stack_factory if stack_factory is not None else SimtStack
        self.stack = factory(active)
        self.regs = np.zeros((max(n_regs, 1), warp_size), dtype=np.float64)
        self.writers = np.full(max(n_regs, 1), -1, dtype=np.int64)
        block_id = base_thread // kernel.block_size
        # Functional scratchpad contents (warp-local view; shared-memory
        # *timing* is what the model cares about, values only need to
        # support a warp reading back its own staging writes).
        self.smem: Dict[int, float] = {}
        self.specials = {
            Special.TID: tids.astype(np.float64),
            Special.LANE: lanes.astype(np.float64),
            Special.WARP: np.full(warp_size, float(warp_id)),
            Special.CTAID: np.full(warp_size, float(block_id)),
            Special.NTID: np.full(warp_size, float(kernel.block_size)),
        }
        self.block_id = int(block_id)
        self.builder = WarpTraceBuilder(warp_id, self.block_id)


def emulate(
    kernel: Kernel,
    config: Optional[GPUConfig] = None,
    memory: Optional[MemoryImage] = None,
    max_warp_insts: int = 2_000_000,
) -> KernelTrace:
    """Functionally execute ``kernel`` and return its per-warp traces.

    Parameters
    ----------
    kernel:
        The program plus launch geometry.
    config:
        Machine description; only ``warp_size`` and ``line_size`` matter
        here (coalescing granularity).  Defaults to :class:`GPUConfig`.
    memory:
        Synthetic memory contents; defaults to the hash-valued image.
    max_warp_insts:
        Safety bound on dynamic instructions per warp (runaway loops).

    The divergence structure comes from the architecture backend
    (``config.arch``): stack reconvergence for ``gpumech2014``,
    ITS-style interleaving for ``subcore``.  For stack traces the
    batched lockstep backend (:mod:`repro.trace.emulator_vec`) runs by
    default and produces bitwise-identical traces; ``REPRO_SCALAR=1``
    forces this module's per-warp reference loop.  Interleaved policies
    always run the per-warp loop (lockstep batching assumes the stack),
    so the compute backend is trivially result-invariant there.
    """
    from repro.arch import get_arch  # deferred: circular import
    from repro.backend import use_scalar

    config = config if config is not None else GPUConfig()
    memory = memory if memory is not None else MemoryImage()
    arch = get_arch(config.arch)
    if arch.reconvergence == "stack" and not use_scalar():
        from repro.trace.emulator_vec import emulate_vectorized

        return emulate_vectorized(kernel, config, memory, max_warp_insts)
    n_regs = kernel.max_register + 1
    trace = KernelTrace(
        kernel_name=kernel.name,
        warp_size=config.warp_size,
        line_size=config.line_size,
        n_blocks=kernel.n_blocks,
    )
    for warp_id in range(kernel.n_warps):
        ctx = _WarpContext(
            kernel, warp_id, config.warp_size, n_regs,
            stack_factory=arch.make_reconvergence_stack,
        )
        _run_warp(kernel, ctx, config, memory, max_warp_insts)
        trace.warps.append(ctx.builder.build())
    return trace


def _run_warp(
    kernel: Kernel,
    ctx: _WarpContext,
    config: GPUConfig,
    memory: MemoryImage,
    max_warp_insts: int,
) -> None:
    program = kernel.program
    stack = ctx.stack
    regs = ctx.regs
    writers = ctx.writers
    builder = ctx.builder
    specials = ctx.specials

    def fetch(operand) -> np.ndarray:
        if isinstance(operand, Reg):
            return regs[operand.index]
        if isinstance(operand, Imm):
            return np.float64(operand.value)
        return specials[operand]

    def deps_of(inst: Instruction) -> List[int]:
        seen: List[int] = []
        for reg in inst.source_registers:
            producer = int(writers[reg.index])
            if producer >= 0 and producer not in seen:
                seen.append(producer)
        return seen

    while True:
        if len(builder) > max_warp_insts:
            raise EmulatorError(
                "warp %d exceeded %d dynamic instructions (runaway loop?)"
                % (ctx.warp_id, max_warp_insts)
            )
        if stack.pop_reconverged():
            continue
        entry = stack.top
        pc = entry.pc
        if pc >= len(program):
            raise EmulatorError(
                "warp %d fell off the end of the program" % ctx.warp_id
            )
        inst = program[pc]
        mask = entry.mask
        opcode = inst.opcode

        if opcode == "exit":
            if stack.depth != 1:
                raise EmulatorError(
                    "exit reached under divergence (stack depth %d); kernels "
                    "must reconverge before exiting" % stack.depth
                )
            builder.append(pc, OpCode.EXIT, (), entry.n_active)
            return

        if opcode == "bar":
            if stack.depth != 1:
                raise EmulatorError(
                    "barrier reached under divergence (stack depth %d)"
                    % stack.depth
                )
            builder.append(pc, OpCode.BARRIER, (), entry.n_active)
            stack.advance()
            continue

        if opcode == "bra":
            builder.append(pc, OpCode.BRANCH, deps_of(inst), entry.n_active)
            if inst.pred is None:
                stack.jump(inst.target)
            else:
                taken = (regs[inst.pred.index] != 0) & mask
                stack.branch(taken, inst.target, inst.reconv)
            continue

        if opcode == "ld":
            addrs = _addresses(fetch(inst.srcs[0]), inst.offset, mask)
            lines = coalesce(addrs[mask], config.line_size)
            values = memory.read(addrs)
            index = builder.append(
                pc, OpCode.LOAD, deps_of(inst), entry.n_active, lines
            )
            regs[inst.dst.index][mask] = values[mask]
            writers[inst.dst.index] = index
            stack.advance()
            continue

        if opcode == "st":
            addrs = _addresses(fetch(inst.srcs[0]), inst.offset, mask)
            lines = coalesce(addrs[mask], config.line_size)
            values = np.broadcast_to(
                np.asarray(fetch(inst.srcs[1]), dtype=np.float64),
                (config.warp_size,),
            )
            memory.write(addrs, values, mask)
            builder.append(pc, OpCode.STORE, deps_of(inst), entry.n_active, lines)
            stack.advance()
            continue

        if opcode == "lds":
            addrs = _addresses(fetch(inst.srcs[0]), inst.offset, mask)
            degree = bank_conflict_degree(addrs, mask, config.smem_banks)
            values = _smem_read(ctx.smem, addrs)
            index = builder.append(
                pc, OpCode.SMEM_LOAD, deps_of(inst), entry.n_active,
                conflict=degree,
            )
            regs[inst.dst.index][mask] = values[mask]
            writers[inst.dst.index] = index
            stack.advance()
            continue

        if opcode == "sts":
            addrs = _addresses(fetch(inst.srcs[0]), inst.offset, mask)
            degree = bank_conflict_degree(addrs, mask, config.smem_banks)
            values = np.broadcast_to(
                np.asarray(fetch(inst.srcs[1]), dtype=np.float64),
                (config.warp_size,),
            )
            for addr, value, on in zip(
                addrs.tolist(), values.tolist(), mask.tolist()
            ):
                if on:
                    ctx.smem[addr] = value
            builder.append(
                pc, OpCode.SMEM_STORE, deps_of(inst), entry.n_active,
                conflict=degree,
            )
            stack.advance()
            continue

        if opcode == "setp":
            a, b = (fetch(s) for s in inst.srcs)
            result = _CMP_OPS[inst.cmp_op](a, b).astype(np.float64)
        else:
            result = _ALU_OPS[opcode](*(fetch(s) for s in inst.srcs))
        result = np.broadcast_to(
            np.asarray(result, dtype=np.float64), (config.warp_size,)
        )
        index = builder.append(
            pc, OpCode(_opcode_code(inst)), deps_of(inst), entry.n_active
        )
        regs[inst.dst.index][mask] = result[mask]
        writers[inst.dst.index] = index
        stack.advance()


def bank_conflict_degree(
    addresses: np.ndarray, mask: np.ndarray, n_banks: int, word: int = 4
) -> int:
    """Serialised accesses of a shared-memory instruction.

    Lanes mapping to the same bank but *different words* serialise;
    lanes reading the same word broadcast (count once).  The degree is
    the maximum number of distinct words any bank must serve: 1 means
    conflict-free, ``warp_size`` is the worst case.
    """
    active = np.asarray(addresses, dtype=np.int64)[np.asarray(mask, dtype=bool)]
    if len(active) == 0:
        return 0
    words = np.unique(active // word)  # broadcast: same word counts once
    banks = words % n_banks
    _, counts = np.unique(banks, return_counts=True)
    return int(counts.max())


def _addresses(base: np.ndarray, offset: int, mask: np.ndarray) -> np.ndarray:
    """Per-lane byte addresses; inactive lanes pinned to a safe address."""
    addrs = np.asarray(
        np.broadcast_to(np.asarray(base, dtype=np.float64), mask.shape)
    ).astype(np.int64) + offset
    return np.where(mask, np.abs(addrs), 0)


def _smem_read(smem: Dict[int, float], addrs: np.ndarray) -> np.ndarray:
    """Read the warp-local scratchpad; unwritten words hash like DRAM."""
    from repro.trace.memory_image import _hash_unit

    values = _hash_unit(np.asarray(addrs, dtype=np.int64))
    if smem:
        out = values.copy()
        for i, addr in enumerate(addrs.tolist()):
            hit = smem.get(addr)
            if hit is not None:
                out[i] = hit
        return out
    return values


def _opcode_code(inst: Instruction) -> int:
    cls = inst.opclass.value
    if cls == "ialu":
        return OpCode.IALU
    if cls == "falu":
        return OpCode.FALU
    if cls == "sfu":
        return OpCode.SFU
    raise EmulatorError("unexpected opcode class %r" % cls)
