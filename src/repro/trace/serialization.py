"""Trace persistence: save/load kernel traces as ``.npz`` archives.

Functional emulation is the most expensive hardware-independent stage of
the pipeline (the paper runs GPUOcelot once and reuses its traces for
both the model and the detailed simulator).  Persisting traces lets a
design-space study emulate each kernel once and sweep hardware
configurations across processes or machines.

The format is a single compressed numpy archive: a small JSON header
plus, per warp, the five column arrays of :class:`WarpTrace`.  Integers
are stored at their natural widths; the archive is portable and
versioned.
"""

from __future__ import annotations

import json
import os
from typing import Union

import numpy as np

from repro.trace.trace_types import KernelTrace, WarpTrace

#: Bump when the on-disk layout changes incompatibly.
FORMAT_VERSION = 2


class TraceFormatError(RuntimeError):
    """Raised when an archive is not a valid trace file."""


def save_trace(trace: KernelTrace, path: Union[str, os.PathLike]) -> None:
    """Write a kernel trace to ``path`` (a ``.npz`` archive)."""
    header = {
        "format_version": FORMAT_VERSION,
        "kernel_name": trace.kernel_name,
        "warp_size": trace.warp_size,
        "line_size": trace.line_size,
        "n_blocks": trace.n_blocks,
        "warps": [
            {"warp_id": w.warp_id, "block_id": w.block_id}
            for w in trace.warps
        ],
    }
    arrays = {"header": np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )}
    for i, warp in enumerate(trace.warps):
        arrays["w%d_pcs" % i] = warp.pcs
        arrays["w%d_ops" % i] = warp.ops
        arrays["w%d_deps" % i] = warp.deps
        arrays["w%d_active" % i] = warp.active
        arrays["w%d_req_offsets" % i] = warp.req_offsets
        arrays["w%d_req_lines" % i] = warp.req_lines
        arrays["w%d_conflict" % i] = warp.conflict
    np.savez_compressed(path, **arrays)


def load_trace(path: Union[str, os.PathLike]) -> KernelTrace:
    """Read a kernel trace written by :func:`save_trace`."""
    with np.load(path) as archive:
        if "header" not in archive:
            raise TraceFormatError("%s is not a trace archive" % path)
        try:
            header = json.loads(bytes(archive["header"]).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise TraceFormatError("corrupt trace header in %s" % path) from exc
        version = header.get("format_version")
        if version not in (1, FORMAT_VERSION):
            raise TraceFormatError(
                "unsupported trace format version %r (expected <= %d)"
                % (version, FORMAT_VERSION)
            )
        trace = KernelTrace(
            kernel_name=header["kernel_name"],
            warp_size=header["warp_size"],
            line_size=header["line_size"],
            n_blocks=header["n_blocks"],
        )
        for i, meta in enumerate(header["warps"]):
            trace.warps.append(
                WarpTrace(
                    warp_id=meta["warp_id"],
                    block_id=meta["block_id"],
                    pcs=archive["w%d_pcs" % i],
                    ops=archive["w%d_ops" % i],
                    deps=archive["w%d_deps" % i],
                    active=archive["w%d_active" % i],
                    req_offsets=archive["w%d_req_offsets" % i],
                    req_lines=archive["w%d_req_lines" % i],
                    conflict=(
                        archive["w%d_conflict" % i]
                        if "w%d_conflict" % i in archive
                        else None  # v1 archives predate scratchpad support
                    ),
                )
            )
    return trace
