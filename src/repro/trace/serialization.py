"""Trace persistence: save/load kernel traces as ``.npz`` archives.

Functional emulation is the most expensive hardware-independent stage of
the pipeline (the paper runs GPUOcelot once and reuses its traces for
both the model and the detailed simulator).  Persisting traces lets a
design-space study emulate each kernel once and sweep hardware
configurations across processes or machines.

The format is a single compressed numpy archive: a small JSON header
plus, per warp, the column arrays of :class:`WarpTrace`.  Integers are
stored at their natural widths; the archive is portable and versioned.

Every column has exactly one canonical dtype (:data:`COLUMN_DTYPES`),
enforced on *both* save and load: whatever widths an archive carries —
a hand-built trace, an older tool, a different platform's default int —
the loaded trace holds the canonical columns.  That is what keeps
disk-cached artifacts backend- and platform-independent: the pipeline's
content-addressed keys hash the raw column bytes (``trace_digest``), so
a dtype drift would silently fork the cache.
"""

from __future__ import annotations

import json
import os
from typing import Union

import numpy as np

from repro.trace.trace_types import MAX_DEPS, KernelTrace, WarpTrace

#: Bump when the on-disk layout changes incompatibly.
FORMAT_VERSION = 2

#: Canonical dtype of every WarpTrace column (the dtypes
#: ``WarpTraceBuilder.build`` produces).  ``deps`` is additionally
#: shape-normalised to ``(n, MAX_DEPS)``.
COLUMN_DTYPES = {
    "pcs": np.dtype(np.int32),
    "ops": np.dtype(np.int8),
    "deps": np.dtype(np.int32),
    "active": np.dtype(np.int16),
    "req_offsets": np.dtype(np.int64),
    "req_lines": np.dtype(np.int64),
    "conflict": np.dtype(np.int16),
}


class TraceFormatError(RuntimeError):
    """Raised when an archive is not a valid trace file."""


def _canonical(name: str, value: np.ndarray) -> np.ndarray:
    """``value`` as the canonical dtype/shape of column ``name``.

    Already-canonical arrays pass through untouched (no copy); anything
    else is cast, with a :class:`TraceFormatError` if the values do not
    survive the cast exactly.
    """
    spec = COLUMN_DTYPES[name]
    array = np.asarray(value)
    if name == "deps":
        array = array.reshape(-1, MAX_DEPS)
    if array.dtype == spec:
        return array
    cast = array.astype(spec)
    if not np.array_equal(cast, array):
        raise TraceFormatError(
            "column %r does not fit its canonical dtype %s" % (name, spec)
        )
    return cast


def save_trace(trace: KernelTrace, path: Union[str, os.PathLike]) -> None:
    """Write a kernel trace to ``path`` (a ``.npz`` archive)."""
    header = {
        "format_version": FORMAT_VERSION,
        "kernel_name": trace.kernel_name,
        "warp_size": trace.warp_size,
        "line_size": trace.line_size,
        "n_blocks": trace.n_blocks,
        "warps": [
            {"warp_id": w.warp_id, "block_id": w.block_id}
            for w in trace.warps
        ],
    }
    arrays = {"header": np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )}
    for i, warp in enumerate(trace.warps):
        for name in COLUMN_DTYPES:
            arrays["w%d_%s" % (i, name)] = _canonical(
                name, getattr(warp, name)
            )
    np.savez_compressed(path, **arrays)


def load_trace(path: Union[str, os.PathLike]) -> KernelTrace:
    """Read a kernel trace written by :func:`save_trace`."""
    with np.load(path) as archive:
        if "header" not in archive:
            raise TraceFormatError("%s is not a trace archive" % path)
        try:
            header = json.loads(bytes(archive["header"]).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise TraceFormatError("corrupt trace header in %s" % path) from exc
        version = header.get("format_version")
        if version not in (1, FORMAT_VERSION):
            raise TraceFormatError(
                "unsupported trace format version %r (expected <= %d)"
                % (version, FORMAT_VERSION)
            )
        trace = KernelTrace(
            kernel_name=header["kernel_name"],
            warp_size=header["warp_size"],
            line_size=header["line_size"],
            n_blocks=header["n_blocks"],
        )
        for i, meta in enumerate(header["warps"]):
            columns = {}
            for name in COLUMN_DTYPES:
                key = "w%d_%s" % (i, name)
                if key not in archive:
                    if name == "conflict":
                        continue  # v1 archives predate scratchpad support
                    raise TraceFormatError(
                        "missing column %s in %s" % (key, path)
                    )
                columns[name] = _canonical(name, archive[key])
            trace.warps.append(
                WarpTrace(
                    warp_id=meta["warp_id"],
                    block_id=meta["block_id"],
                    conflict=columns.pop("conflict", None),
                    **columns,
                )
            )
    return trace
