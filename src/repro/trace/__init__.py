"""Input collector: functional SIMT emulation producing per-warp traces.

This package is the reproduction's stand-in for GPUOcelot (Sec. V of the
paper): it functionally executes a kernel, models control divergence with
a reconvergence stack, coalesces memory accesses into cache-line requests,
and emits per-warp dynamic instruction traces tagged with dependency
information — exactly the input the interval algorithm consumes.
"""

from repro.trace.trace_types import KernelTrace, OpCode, WarpTrace
from repro.trace.memory_image import MemoryImage
from repro.trace.coalescer import coalesce
from repro.trace.simt_stack import SimtStack
from repro.trace.emulator import EmulatorError, emulate
from repro.trace.serialization import TraceFormatError, load_trace, save_trace

__all__ = [
    "EmulatorError",
    "KernelTrace",
    "MemoryImage",
    "OpCode",
    "SimtStack",
    "TraceFormatError",
    "WarpTrace",
    "coalesce",
    "emulate",
    "load_trace",
    "save_trace",
]
