"""Memory-access coalescing: per-lane addresses → cache-line requests.

GPUs coalesce the (up to 32) byte addresses of a warp's memory instruction
into requests for distinct cache lines.  The *memory divergence degree* of
an instruction is the number of distinct lines it touches: 1 for a fully
coalesced access, up to ``warp_size`` for a fully diverged one.  This
degree is the central workload property the paper's contention models
react to (Sec. II-B, Fig. 3).
"""

from __future__ import annotations

import numpy as np


def coalesce(addresses: np.ndarray, line_size: int) -> np.ndarray:
    """Coalesce active-lane byte addresses into unique line base addresses.

    Parameters
    ----------
    addresses:
        int64 array of byte addresses of the *active* lanes only.
    line_size:
        Cache line size in bytes (must be a power of two).

    Returns
    -------
    Sorted int64 array of distinct cache-line base addresses.
    """
    if line_size <= 0 or (line_size & (line_size - 1)) != 0:
        raise ValueError("line_size must be a positive power of two")
    if len(addresses) == 0:
        return np.empty(0, dtype=np.int64)
    lines = np.unique(np.asarray(addresses, dtype=np.int64) >> _log2(line_size))
    return lines << _log2(line_size)


def divergence_degree(addresses: np.ndarray, line_size: int) -> int:
    """Number of distinct cache lines touched (1 = fully coalesced)."""
    return len(coalesce(addresses, line_size))


def _log2(value: int) -> int:
    return value.bit_length() - 1
