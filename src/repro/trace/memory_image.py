"""Deterministic synthetic memory contents for the functional emulator.

The paper's input collector executes real CUDA kernels on real inputs; we
substitute a :class:`MemoryImage` that returns deterministic values for any
address, so kernels with data-dependent behaviour (gather indices, loop
trip counts) are reproducible without any external data files.

By default a load returns a pseudo-random value in ``[0, 1)`` derived from
a multiplicative hash of the address (Knuth's 2654435761), which is enough
entropy to drive divergent control flow.  Kernels that need structured
data (index arrays for gathers, bounded trip counts) register *regions*:
half-open byte ranges whose values come from a vectorised function of the
address.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np

_KNUTH = np.int64(2654435761)
_MOD = np.int64(1 << 32)


def _hash_unit(addrs: np.ndarray) -> np.ndarray:
    """Deterministic per-address value in [0, 1)."""
    mixed = (addrs.astype(np.int64) * _KNUTH) % _MOD
    return mixed.astype(np.float64) / float(_MOD)


RegionFn = Callable[[np.ndarray], np.ndarray]


class MemoryImage:
    """Address → value mapping with optional structured regions.

    Stores update a sparse overlay so read-after-write through memory is
    functionally correct; tracking can be disabled for store-only kernels
    to bound memory use.
    """

    def __init__(self, track_stores: bool = True):
        self._regions: List[Tuple[int, int, RegionFn]] = []
        self._overlay: Dict[int, float] = {}
        self.track_stores = track_stores

    # Region registration ----------------------------------------------------

    def add_region(self, base: int, size: int, fn: RegionFn) -> None:
        """Values of addresses in ``[base, base + size)`` come from ``fn``.

        ``fn`` receives the raw byte addresses (int64 array) and must
        return a float64 array of the same shape.  Later regions shadow
        earlier ones.
        """
        if size <= 0:
            raise ValueError("region size must be positive")
        self._regions.append((base, base + size, fn))

    def add_uniform_int_region(
        self, base: int, size: int, low: int, high: int, salt: int = 0
    ) -> None:
        """Region of deterministic pseudo-uniform integers in [low, high)."""
        if high <= low:
            raise ValueError("need high > low")
        span = high - low

        def fn(addrs: np.ndarray) -> np.ndarray:
            u = _hash_unit(addrs + np.int64(salt) * np.int64(40503))
            return np.floor(u * span) + low

        self.add_region(base, size, fn)

    def add_gradient_int_region(
        self,
        base: int,
        size: int,
        low: int,
        high: int,
        element_size: int = 4,
        waves: float = 2.0,
        jitter: float = 0.3,
        salt: int = 0,
    ) -> None:
        """Spatially structured integers in [low, high): a sinusoidal
        gradient across the region plus per-element jitter.

        Real workloads' data-dependent behaviour (loop trip counts,
        frontier membership) is spatially correlated — neighbouring
        threads, and hence whole warps, see similar values while distant
        warps differ.  This is what makes warps *heterogeneous* and the
        representative-warp selection of Sec. III-C meaningful; purely
        i.i.d. per-lane randomness makes every warp statistically
        identical.

        ``waves`` is the number of full sine periods across the region;
        ``jitter`` is the fraction of the range driven by the hash.
        """
        if high <= low:
            raise ValueError("need high > low")
        span = high - low

        def fn(addrs: np.ndarray) -> np.ndarray:
            position = (addrs.astype(np.float64) - base) / (
                element_size * max(size // element_size, 1)
            )
            gradient = 0.5 + 0.5 * np.sin(2.0 * np.pi * waves * position)
            noise = _hash_unit(addrs + np.int64(salt) * np.int64(40503))
            mixed = np.clip(
                (1.0 - jitter) * gradient + jitter * noise, 0.0, 1.0
            )
            return np.minimum(np.floor(mixed * span), span - 1) + low

        self.add_region(base, size, fn)

    def add_constant_region(self, base: int, size: int, value: float) -> None:
        """Region returning a single constant value."""
        self.add_region(base, size, lambda addrs: np.full(addrs.shape, float(value)))

    def add_linear_region(
        self, base: int, size: int, scale: float = 1.0, offset: float = 0.0
    ) -> None:
        """Region returning ``scale * (addr - base) + offset``."""

        def fn(addrs: np.ndarray) -> np.ndarray:
            return scale * (addrs.astype(np.float64) - base) + offset

        self.add_region(base, size, fn)

    # Access -------------------------------------------------------------------

    def read(self, addrs: np.ndarray) -> np.ndarray:
        """Vectorised read of raw byte addresses (int64 array)."""
        addrs = np.asarray(addrs, dtype=np.int64)
        values = _hash_unit(addrs)
        for base, end, fn in self._regions:
            mask = (addrs >= base) & (addrs < end)
            if mask.any():
                values = np.where(mask, fn(addrs), values)
        if self._overlay:
            flat = addrs.ravel()
            out = values.ravel()
            for i, addr in enumerate(flat.tolist()):
                hit = self._overlay.get(addr)
                if hit is not None:
                    out[i] = hit
        return values

    def write(self, addrs: np.ndarray, values: np.ndarray, mask: np.ndarray) -> None:
        """Masked store into the overlay (no-op if tracking is disabled)."""
        if not self.track_stores:
            return
        flat_addrs = np.asarray(addrs, dtype=np.int64).ravel()
        flat_vals = np.asarray(values, dtype=np.float64).ravel()
        flat_mask = np.asarray(mask, dtype=bool).ravel()
        for addr, value, on in zip(
            flat_addrs.tolist(), flat_vals.tolist(), flat_mask.tolist()
        ):
            if on:
                self._overlay[addr] = value

    @property
    def n_overlaid(self) -> int:
        """Number of addresses written so far (diagnostics)."""
        return len(self._overlay)
