"""Wall-clock speedup of GPUMech over detailed simulation (Sec. VI-D).

The paper reports ~97x end-to-end speedup, with the cache simulator ~108x
faster than the detailed simulator and clustering a one-time per-input
cost.  This harness measures the same decomposition on our substrates:
trace emulation is excluded (GPUOcelot feeds both sides in the paper),
and the model side is split into its one-time (interval profiles of all
warps + clustering) and per-configuration (cache sim + representative
interval profile + analytical model) parts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.harness.reporting import render_table
from repro.harness.runner import Runner
from repro.pipeline import MemoryStore, Pipeline
from repro.timing.simulator import TimingSimulator


@dataclass
class SpeedupResult:
    """Per-kernel timing breakdown."""

    kernel: str
    oracle_seconds: float
    model_seconds: float  # full model pipeline (cache sim + profiles + predict)
    cache_sim_seconds: float
    profiling_seconds: float  # interval profiles of all warps + clustering
    predict_seconds: float
    #: Wall-clock of the oracle with cycle skipping disabled — the honest
    #: analogue of the paper's cycle-by-cycle detailed simulator (Macsim
    #: steps every cycle; our default oracle is event-driven and therefore
    #: already much faster than what the paper's 97x is measured against).
    naive_oracle_seconds: Optional[float] = None

    @property
    def speedup(self) -> float:
        """Oracle wall-clock over model wall-clock."""
        return (
            self.oracle_seconds / self.model_seconds
            if self.model_seconds
            else float("inf")
        )

    @property
    def speedup_vs_naive(self) -> Optional[float]:
        """Speedup against the cycle-by-cycle oracle loop, if measured."""
        if self.naive_oracle_seconds is None or not self.model_seconds:
            return None
        return self.naive_oracle_seconds / self.model_seconds

    @property
    def reconfigure_seconds(self) -> float:
        """Cost of re-modeling a new hardware configuration (Sec. VI-D):
        cache sim + one interval profile + the analytical model — the
        all-warp profiling and clustering are per-input one-time costs."""
        per_warp = self.profiling_seconds and (
            self.profiling_seconds / max(self._n_warps, 1)
        )
        return self.cache_sim_seconds + per_warp + self.predict_seconds

    _n_warps: int = 1


def measure_speedup(
    runner: Runner,
    kernels: Sequence[str],
    include_naive: bool = False,
) -> List[SpeedupResult]:
    """Time oracle vs. model on each kernel (traces pre-built, excluded).

    ``include_naive`` additionally times the oracle with cycle skipping
    disabled — the cycle-by-cycle loop that corresponds to the paper's
    detailed simulator.  It is very slow; use small workloads.
    """
    results: List[SpeedupResult] = []
    config = runner.config
    for name in kernels:
        trace = runner.trace(name)  # warm the cache; not timed

        # Bypass all memoisation: this is a timing measurement, not a
        # result lookup.
        start = time.perf_counter()
        TimingSimulator(config).run(trace)
        oracle_seconds = time.perf_counter() - start

        naive_seconds = None
        if include_naive:
            start = time.perf_counter()
            TimingSimulator(config, cycle_skipping=False).run(trace)
            naive_seconds = time.perf_counter() - start

        # A fresh cold pipeline per kernel: every stage executes exactly
        # once and its wall-clock lands in ``pipeline.timings``.
        pipeline = Pipeline(config, scale=runner.scale, store=MemoryStore())
        pipeline.store.put(pipeline.trace_key(name), trace)
        pipeline.predict(name)
        timings = pipeline.timings
        cache_sim_seconds = timings["cache_sim"] + timings["latency_table"]
        profiling_seconds = (
            timings["interval_profiles"] + timings["clustering"]
        )
        predict_seconds = timings["predict"]

        result = SpeedupResult(
            kernel=name,
            oracle_seconds=oracle_seconds,
            model_seconds=cache_sim_seconds + profiling_seconds + predict_seconds,
            cache_sim_seconds=cache_sim_seconds,
            profiling_seconds=profiling_seconds,
            predict_seconds=predict_seconds,
            naive_oracle_seconds=naive_seconds,
        )
        result._n_warps = trace.n_warps
        results.append(result)
    return results


def run_speedup(
    runner: Runner,
    kernels: Optional[Sequence[str]] = None,
    include_naive: bool = False,
) -> "Dict":
    """Measure and render the Sec. VI-D speedup table.

    ``include_naive`` adds a column comparing against the cycle-by-cycle
    oracle loop (the paper's detailed-simulation baseline); only feasible
    on small workloads.
    """
    from repro.harness.experiments import SWEEP_KERNELS, ExperimentResult

    kernels = list(kernels) if kernels is not None else list(SWEEP_KERNELS)
    results = measure_speedup(runner, kernels, include_naive=include_naive)
    headers = ["kernel", "oracle (s)", "model (s)", "speedup", "reconfig (s)"]
    if include_naive:
        headers += ["cycle-loop (s)", "vs cycle-loop"]
    rows = []
    for r in results:
        row = [
            r.kernel,
            "%.3f" % r.oracle_seconds,
            "%.3f" % r.model_seconds,
            "%.1fx" % r.speedup,
            "%.4f" % r.reconfigure_seconds,
        ]
        if include_naive:
            row += [
                "%.3f" % r.naive_oracle_seconds,
                "%.1fx" % r.speedup_vs_naive,
            ]
        rows.append(tuple(row))
    total_oracle = sum(r.oracle_seconds for r in results)
    total_model = sum(r.model_seconds for r in results)
    total_row = [
        "TOTAL",
        "%.3f" % total_oracle,
        "%.3f" % total_model,
        "%.1fx" % (total_oracle / total_model if total_model else 0.0),
        "",
    ]
    naive_speedup = None
    if include_naive:
        total_naive = sum(r.naive_oracle_seconds for r in results)
        naive_speedup = total_naive / total_model if total_model else 0.0
        total_row += ["%.3f" % total_naive, "%.1fx" % naive_speedup]
    rows.append(tuple(total_row))
    text = render_table(
        tuple(headers),
        rows,
        title="Sec. VI-D: GPUMech wall-clock speedup over detailed simulation",
    )
    return ExperimentResult(
        "speedup",
        text,
        data={
            "results": results,
            "overall_speedup": total_oracle / total_model if total_model else 0.0,
            "overall_speedup_vs_cycle_loop": naive_speedup,
        },
    )
