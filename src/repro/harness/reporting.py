"""Plain-text rendering of experiment results.

The paper reports bar charts and line series; a terminal reproduction
renders the same data as fixed-width tables so diffs against
EXPERIMENTS.md stay reviewable.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render rows as a fixed-width table with a rule under the header."""
    materialised: List[List[str]] = [
        [_fmt(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in materialised:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip()
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in materialised:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)).rstrip()
        )
    return "\n".join(lines)


def render_series(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    title: str = "",
    percent: bool = False,
) -> str:
    """Render one row per series across sweep points (a line chart)."""
    headers = [x_label] + [_fmt(x) for x in x_values]
    rows = []
    for name, values in series.items():
        cells: List[object] = [name]
        for value in values:
            cells.append("%.1f%%" % (100.0 * value) if percent else value)
        rows.append(cells)
    return render_table(headers, rows, title=title)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return "%.3f" % cell
    return str(cell)
