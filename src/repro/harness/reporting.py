"""Plain-text rendering of experiment results + report/diagnostic logging.

The paper reports bar charts and line series; a terminal reproduction
renders the same data as fixed-width tables so diffs against
EXPERIMENTS.md stay reviewable.

Output discipline: human-facing reports go through :func:`emit` (the
``repro.out`` logger, plain messages on stdout, silenced by ``-q``);
diagnostics go through ordinary module loggers under ``repro`` (stderr,
enabled by ``-v``); machine-readable output (JSON) bypasses logging and
prints directly so it stays pipeable regardless of verbosity.
:func:`configure_logging` is called once per CLI invocation and is
idempotent — library users who never call it get standard
logging-library behaviour (everything silent by default).
"""

from __future__ import annotations

import logging
import sys
from typing import Iterable, List, Mapping, Optional, Sequence

#: Logger carrying primary human-readable output (tables, summaries).
OUTPUT_LOGGER = "repro.out"


def emit(text: str) -> None:
    """Report one block of human-readable output (stdout via logging)."""
    logging.getLogger(OUTPUT_LOGGER).info("%s", text)


def configure_logging(
    verbose: int = 0,
    quiet: bool = False,
    stdout=None,
    stderr=None,
) -> None:
    """Route ``repro.out`` to stdout and diagnostics to stderr.

    ``verbose`` raises the diagnostic level (1: INFO, 2+: DEBUG);
    ``quiet`` silences reports and keeps only errors.  Handlers are
    replaced, not stacked, so repeated calls (tests invoking ``main``
    many times) never duplicate output, and streams are rebound to the
    *current* ``sys.stdout``/``sys.stderr`` on every call.
    """
    out = logging.getLogger(OUTPUT_LOGGER)
    for handler in list(out.handlers):
        out.removeHandler(handler)
    out_handler = logging.StreamHandler(stdout if stdout is not None
                                        else sys.stdout)
    out_handler.setFormatter(logging.Formatter("%(message)s"))
    out.addHandler(out_handler)
    out.propagate = False
    out.setLevel(logging.WARNING if quiet else logging.INFO)

    diag = logging.getLogger("repro")
    for handler in list(diag.handlers):
        diag.removeHandler(handler)
    diag_handler = logging.StreamHandler(stderr if stderr is not None
                                         else sys.stderr)
    diag_handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s: %(message)s")
    )
    diag.addHandler(diag_handler)
    if quiet:
        diag.setLevel(logging.ERROR)
    elif verbose >= 2:
        diag.setLevel(logging.DEBUG)
    elif verbose == 1:
        diag.setLevel(logging.INFO)
    else:
        diag.setLevel(logging.WARNING)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render rows as a fixed-width table with a rule under the header."""
    materialised: List[List[str]] = [
        [_fmt(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in materialised:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip()
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in materialised:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)).rstrip()
        )
    return "\n".join(lines)


def render_series(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    title: str = "",
    percent: bool = False,
) -> str:
    """Render one row per series across sweep points (a line chart)."""
    headers = [x_label] + [_fmt(x) for x in x_values]
    rows = []
    for name, values in series.items():
        cells: List[object] = [name]
        for value in values:
            cells.append("%.1f%%" % (100.0 * value) if percent else value)
        rows.append(cells)
    return render_table(headers, rows, title=title)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return "%.3f" % cell
    return str(cell)


def render_stage_table(metrics, title: str = "pipeline stages") -> Optional[str]:
    """Stage-timing table from a pipeline's metrics registry.

    One row per executed stage, in DAG order: runs, cache hits, total
    wall time, mean and p95 per-run latency, and — for the stages with
    a scalar/vectorized implementation switch — which hot-path backend
    the runs used.  ``None`` when the registry has recorded no stage
    executions (nothing ran), so callers can skip the section entirely.
    """
    from repro.backend import SCALAR, VECTORIZED
    from repro.pipeline.stages import STAGES

    runs = metrics.labeled_values("pipeline.stage_executions", "stage")
    hits = metrics.labeled_values("pipeline.stage_hits", "stage")
    seconds = metrics.labeled_values("pipeline.stage_seconds", "stage")
    stages = [s for s in STAGES if runs.get(s) or hits.get(s)]
    stages += sorted((set(runs) | set(hits)) - set(stages))
    if not stages:
        return None
    rows = []
    for stage in stages:
        n = int(runs.get(stage, 0))
        histogram = metrics.histogram("pipeline.stage_ms", stage=stage)
        rows.append(
            [
                stage,
                n,
                int(hits.get(stage, 0)),
                "%.3f" % seconds.get(stage, 0.0),
                "%.2f" % histogram.mean if n else "-",
                "%.2f" % histogram.percentile(95.0) if n else "-",
                _stage_backend(metrics, stage, (VECTORIZED, SCALAR)),
            ]
        )
    return render_table(
        ["stage", "runs", "hits", "total s", "mean ms", "p95 ms", "backend"],
        rows,
        title=title,
    )


def _stage_backend(metrics, stage: str, backends) -> str:
    """Which hot-path backend a stage's runs used: one of the backend
    names, ``mixed`` when runs split across both, ``-`` when the stage
    has no backend switch (or never ran)."""
    used = [
        name
        for name in backends
        if metrics.counter_value(
            "pipeline.backend_executions", stage=stage, backend=name
        )
    ]
    if not used:
        return "-"
    if len(used) > 1:
        return "mixed"
    return used[0]
