"""Experiment harness: model-vs-oracle validation and figure drivers.

``runner`` evaluates all Table II models against the timing oracle on one
kernel; ``experiments`` contains one driver per evaluation figure/table of
the paper; ``reporting`` renders the same rows/series the paper plots;
``speedup`` measures the model's wall-clock advantage (Sec. VI-D).
"""

from repro.harness.runner import (
    MODELS,
    KernelResult,
    Runner,
    nanmean,
)
from repro.harness.reporting import render_series, render_table
from repro.harness.sweeps import Sweep, SweepResult
from repro.harness.validation import (
    ModelValidation,
    render_validation,
    validate_all,
    validate_model,
)

__all__ = [
    "KernelResult",
    "MODELS",
    "ModelValidation",
    "Runner",
    "Sweep",
    "SweepResult",
    "nanmean",
    "render_series",
    "render_table",
    "render_validation",
    "validate_all",
    "validate_model",
]
