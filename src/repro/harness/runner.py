"""Model-vs-oracle evaluation of one kernel (the Table II comparison).

:class:`Runner` is a thin facade over :class:`repro.pipeline.Pipeline`:
every expensive artifact (functional trace, cache simulation, interval
profiles, oracle run) is content-addressed by the fingerprint of exactly
the configuration fields it depends on, so a hardware sweep re-runs only
the cache-sim-and-later stages — the cost structure the paper describes
in Sec. VI-D.  ``jobs > 1`` fans independent (kernel × sweep-point) work
out over processes; ``cache_dir`` persists artifacts across runs.

Evaluated models (Table II):

=================  =========================================================
``naive``          Eq. 1: optimistic overlap
``markov``         Chen & Aamodt first-order Markov-chain model
``mt``             GPUMech multithreading only (Sec. IV-A)
``mt_mshr``        multithreading + MSHR contention (Sec. IV-B1)
``mt_mshr_band``   full GPUMech: + DRAM bandwidth (Sec. IV-B2)
=================  =========================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.config import GPUConfig
from repro.core.model import GPUMech, ModelInputs, Prediction
from repro.pipeline import ArtifactStore, EvalRequest, Pipeline
from repro.timing.stats import SimStats
from repro.trace.trace_types import KernelTrace
from repro.workloads.generators import Scale

#: Evaluation order of Table II.
MODELS = ("naive", "markov", "mt", "mt_mshr", "mt_mshr_band")

#: Display names used in reports (matching the paper's legends).
MODEL_LABELS = {
    "naive": "Naive_Interval",
    "markov": "Markov_Chain",
    "mt": "MT",
    "mt_mshr": "MT_MSHR",
    "mt_mshr_band": "MT_MSHR_BAND",
}


def nanmean(values: Iterable[float]) -> float:
    """Mean over the finite values, ``nan`` if none remain.

    Degenerate oracle runs report ``nan`` errors (see
    :meth:`KernelResult.error`); aggregations skip them rather than
    letting one broken point poison a whole sweep series.
    """
    finite = [v for v in values if not math.isnan(v)]
    if not finite:
        return float("nan")
    return sum(finite) / len(finite)


@dataclass
class KernelResult:
    """All model predictions and the oracle measurement for one kernel."""

    kernel: str
    policy: str
    n_warps: int
    oracle_cpi: float
    model_cpis: Dict[str, float]
    oracle: SimStats
    prediction: Prediction  # the full GPUMech prediction (stack etc.)

    def error(self, model: str) -> float:
        """Relative CPI error of a model against the oracle.

        A degenerate oracle run (zero CPI) has no meaningful error;
        report ``nan`` — never a silently perfect ``0.0`` — and let
        aggregations skip it (:func:`nanmean`).
        """
        if not self.oracle_cpi:
            return float("nan")
        return abs(self.model_cpis[model] - self.oracle_cpi) / self.oracle_cpi

    def errors(self) -> Dict[str, float]:
        """Relative errors of every evaluated model."""
        return {m: self.error(m) for m in self.model_cpis}


class Runner:
    """Evaluates suite kernels against the oracle under config sweeps.

    Parameters
    ----------
    config:
        Machine description (Table I) every evaluation defaults to.
    scale:
        Workload scale the suite kernels are built at (trace cache keys
        include it, so one process can hold runners at several scales).
    jobs:
        Process-pool width for :meth:`evaluate_many` and the per-warp
        profile loop; 1 (the default) runs everything serially.
    cache_dir:
        Optional directory for a persistent on-disk artifact store
        (content-addressed; safe to share across runs and processes).
    store:
        Pre-built :class:`~repro.pipeline.ArtifactStore` (mutually
        exclusive with ``cache_dir``).
    lint:
        Opt-in static verification: lint every kernel (cached and timed
        as its own pipeline stage) before its first trace, aborting on
        error-severity diagnostics.
    tracer:
        Span tracer shared with the pipeline (defaults to the
        process-wide tracer, which is disabled unless configured).
    metrics:
        Metrics registry the pipeline records into (a fresh private one
        by default).
    timeline_interval:
        Oracle sampling period in cycles; populates
        ``SimStats.timeline`` on every oracle run (None: off).
    ledger:
        Optional :class:`~repro.obs.ledger.PredictionLedger`; every
        evaluation appends one provenance + accuracy JSONL record.
    """

    def __init__(
        self,
        config: GPUConfig,
        scale: Optional[Scale] = None,
        jobs: int = 1,
        cache_dir: Optional[str] = None,
        store: Optional[ArtifactStore] = None,
        lint: bool = False,
        tracer=None,
        metrics=None,
        timeline_interval: Optional[float] = None,
        ledger=None,
    ):
        self.config = config
        self.scale = scale if scale is not None else Scale.small()
        self.pipeline = Pipeline(
            config,
            scale=self.scale,
            store=store,
            cache_dir=cache_dir,
            jobs=jobs,
            lint=lint,
            tracer=tracer,
            metrics=metrics,
            timeline_interval=timeline_interval,
            ledger=ledger,
        )

    @property
    def jobs(self) -> int:
        """Process-pool width used for parallel evaluation."""
        return self.pipeline.jobs

    @property
    def metrics(self):
        """The pipeline's metrics registry (stage counters and more)."""
        return self.pipeline.metrics

    def trace(self, kernel_name: str) -> KernelTrace:
        """The (cached) functional trace of a suite kernel."""
        return self.pipeline.trace(kernel_name)

    def prepare(
        self,
        kernel_name: str,
        config: Optional[GPUConfig] = None,
        selection_strategy: str = "clustering",
        warps_per_core: Optional[int] = None,
    ) -> Tuple[GPUMech, ModelInputs]:
        """Run the input collector + single-warp model for one kernel."""
        config = config if config is not None else self.config
        inputs = self.pipeline.model_inputs(
            kernel_name,
            config,
            selection_strategy=selection_strategy,
            warps_per_core=warps_per_core,
        )
        model = GPUMech(
            config,
            selection_strategy=selection_strategy,
            pipeline=self.pipeline,
        )
        return model, inputs

    def simulate(
        self,
        kernel_name: str,
        config: Optional[GPUConfig] = None,
        warps_per_core: Optional[int] = None,
    ) -> SimStats:
        """Run the timing oracle for one kernel (content-addressed)."""
        return self.pipeline.simulate(kernel_name, config, warps_per_core)

    def evaluate(
        self,
        kernel_name: str,
        config: Optional[GPUConfig] = None,
        policy: Optional[str] = None,
        warps_per_core: Optional[int] = None,
        selection_strategy: str = "clustering",
    ) -> KernelResult:
        """Oracle + all five Table II models on one kernel."""
        return self.pipeline.evaluate(
            kernel_name,
            config=config,
            policy=policy,
            warps_per_core=warps_per_core,
            selection_strategy=selection_strategy,
        )

    def evaluate_many(
        self,
        requests: Sequence[Union[EvalRequest, dict]],
        jobs: Optional[int] = None,
    ) -> List[KernelResult]:
        """Evaluate many sweep points, in parallel when ``jobs > 1``.

        Results come back in request order, bitwise-identical to serial
        execution.
        """
        return self.pipeline.evaluate_many(requests, jobs=jobs)
