"""Model-vs-oracle evaluation of one kernel (the Table II comparison).

:class:`Runner` owns the expensive per-kernel artifacts and caches the
functional trace — traces are machine-independent (the coalescing
granularity never changes across the paper's sweeps), so a hardware sweep
re-runs only the cache simulation, the representative warp's interval
profile and the analytical model, exactly the cost structure the paper
describes in Sec. VI-D.

Evaluated models (Table II):

=================  =========================================================
``naive``          Eq. 1: optimistic overlap
``markov``         Chen & Aamodt first-order Markov-chain model
``mt``             GPUMech multithreading only (Sec. IV-A)
``mt_mshr``        multithreading + MSHR contention (Sec. IV-B1)
``mt_mshr_band``   full GPUMech: + DRAM bandwidth (Sec. IV-B2)
=================  =========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.config import GPUConfig
from repro.baselines.markov import markov_chain_cpi
from repro.baselines.naive import naive_interval_cpi
from repro.core.model import GPUMech, ModelInputs, Prediction, resident_warps_per_core
from repro.timing.simulator import TimingSimulator
from repro.timing.stats import SimStats
from repro.trace.emulator import emulate
from repro.trace.trace_types import KernelTrace
from repro.workloads.generators import Scale
from repro.workloads.suite import SUITE

#: Evaluation order of Table II.
MODELS = ("naive", "markov", "mt", "mt_mshr", "mt_mshr_band")

#: Display names used in reports (matching the paper's legends).
MODEL_LABELS = {
    "naive": "Naive_Interval",
    "markov": "Markov_Chain",
    "mt": "MT",
    "mt_mshr": "MT_MSHR",
    "mt_mshr_band": "MT_MSHR_BAND",
}


@dataclass
class KernelResult:
    """All model predictions and the oracle measurement for one kernel."""

    kernel: str
    policy: str
    n_warps: int
    oracle_cpi: float
    model_cpis: Dict[str, float]
    oracle: SimStats
    prediction: Prediction  # the full GPUMech prediction (stack etc.)

    def error(self, model: str) -> float:
        """Relative CPI error of a model against the oracle."""
        if not self.oracle_cpi:
            return 0.0
        return abs(self.model_cpis[model] - self.oracle_cpi) / self.oracle_cpi

    def errors(self) -> Dict[str, float]:
        """Relative errors of every evaluated model."""
        return {m: self.error(m) for m in self.model_cpis}


class Runner:
    """Evaluates suite kernels against the oracle under config sweeps."""

    def __init__(self, config: GPUConfig, scale: Optional[Scale] = None):
        self.config = config
        self.scale = scale if scale is not None else Scale.small()
        self._traces: Dict[str, KernelTrace] = {}
        # Oracle results are deterministic in (kernel, machine, residency):
        # cache them so e.g. the Fig. 7 strategy comparison simulates once.
        self._oracle_cache: Dict[tuple, SimStats] = {}

    def trace(self, kernel_name: str) -> KernelTrace:
        """The (cached) functional trace of a suite kernel."""
        cached = self._traces.get(kernel_name)
        if cached is None:
            kernel, memory = SUITE[kernel_name].build(self.scale)
            cached = emulate(kernel, self.config, memory=memory)
            self._traces[kernel_name] = cached
        return cached

    def prepare(
        self,
        kernel_name: str,
        config: Optional[GPUConfig] = None,
        selection_strategy: str = "clustering",
        warps_per_core: Optional[int] = None,
    ) -> Tuple[GPUMech, ModelInputs]:
        """Run the input collector + single-warp model for one kernel."""
        config = config if config is not None else self.config
        model = GPUMech(config, selection_strategy=selection_strategy)
        inputs = model.prepare(
            trace=self.trace(kernel_name), warps_per_core=warps_per_core
        )
        return model, inputs

    def simulate(
        self,
        kernel_name: str,
        config: Optional[GPUConfig] = None,
        warps_per_core: Optional[int] = None,
    ) -> SimStats:
        """Run the timing oracle for one kernel (memoised)."""
        config = config if config is not None else self.config
        key = (kernel_name, warps_per_core, repr(config))
        cached = self._oracle_cache.get(key)
        if cached is None:
            simulator = TimingSimulator(config, warps_per_core=warps_per_core)
            cached = simulator.run(self.trace(kernel_name))
            self._oracle_cache[key] = cached
        return cached

    def evaluate(
        self,
        kernel_name: str,
        config: Optional[GPUConfig] = None,
        policy: Optional[str] = None,
        warps_per_core: Optional[int] = None,
        selection_strategy: str = "clustering",
    ) -> KernelResult:
        """Oracle + all five Table II models on one kernel."""
        config = config if config is not None else self.config
        if policy is not None:
            config = config.with_(scheduler=policy)
        oracle = self.simulate(kernel_name, config, warps_per_core)
        model, inputs = self.prepare(
            kernel_name, config, selection_strategy=selection_strategy,
            warps_per_core=warps_per_core,
        )
        n_warps = resident_warps_per_core(inputs.trace, config, warps_per_core)
        prediction = model.predict(inputs, n_warps=n_warps)
        representative = inputs.representative
        mt_cpi = prediction.cpi_multithreading
        model_cpis = {
            "naive": naive_interval_cpi(representative, n_warps),
            "markov": markov_chain_cpi(representative, n_warps),
            "mt": mt_cpi,
            "mt_mshr": mt_cpi + prediction.cpi_mshr,
            "mt_mshr_band": prediction.cpi,
        }
        return KernelResult(
            kernel=kernel_name,
            policy=config.scheduler,
            n_warps=n_warps,
            oracle_cpi=oracle.cpi,
            model_cpis=model_cpis,
            oracle=oracle,
            prediction=prediction,
        )
