"""One driver per evaluation figure/table of the paper (Sec. VI-VII).

Every ``run_figure*`` function takes a :class:`~repro.harness.runner.Runner`
(which fixes the machine configuration and workload scale), produces the
same rows/series the paper plots, renders them as text, and returns a
structured result for programmatic use.  Absolute numbers differ from the
paper — the oracle is our own simulator, the kernels are synthetic
analogues — but the *shape* (model orderings, sweep directionality) is
asserted by ``tests/test_experiments.py`` and recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.cpi_stack import StallType
from repro.harness.reporting import render_series, render_table
from repro.harness.runner import (
    MODEL_LABELS,
    MODELS,
    KernelResult,
    Runner,
    nanmean,
)
from repro.pipeline import EvalRequest
from repro.workloads.suite import kernel_names, kernels_with_tag

#: Kernels used by the hardware-configuration sweeps (Fig. 13-15): a
#: cross-section of the suite's behaviour classes, kept small because
#: every sweep point re-runs the cycle-level oracle.
SWEEP_KERNELS = (
    "cfd_step_factor",
    "cfd_compute_flux",
    "kmeans_invert_mapping",
    "srad_kernel1",
    "strided_deg8",
    "strided_deg32",
    "kmeans_point",
    "sad_calc_8",
    "blackscholes",
    "mandelbrot",
    "spmv_jds",
    "sgemm_tile",
)

#: The Sec. VII case-study kernels (Fig. 16), in the paper's order.
CASE_STUDY_KERNELS = (
    "cfd_step_factor",
    "cfd_compute_flux",
    "kmeans_invert_mapping",
)

#: Warp counts of the scaling sweeps (Fig. 13 and Fig. 16).
WARP_SWEEP = (8, 16, 32, 48)

#: MSHR-entry sweep (Fig. 14).
MSHR_SWEEP = (64, 96, 128, 256)

#: DRAM bandwidth sweep in GB/s (Fig. 15).
BANDWIDTH_SWEEP = (64.0, 128.0, 192.0, 256.0)


@dataclass
class ExperimentResult:
    """Common result shape: structured data plus a rendered report."""

    experiment: str
    text: str
    data: Dict = field(default_factory=dict)

    def __str__(self) -> str:
        return self.text


def _mean_errors(results: Sequence[KernelResult]) -> Dict[str, float]:
    return {
        model: nanmean(r.error(model) for r in results)
        for model in MODELS
    }


def _fraction_under(
    results: Sequence[KernelResult], model: str, threshold: float = 0.20
) -> float:
    """Fraction of kernels with error below ``threshold`` (NaNs skipped)."""
    return nanmean(
        e if math.isnan(e) else (1.0 if e < threshold else 0.0)
        for e in (r.error(model) for r in results)
    )


# ---------------------------------------------------------------------------
# Fig. 4 — component-by-component error reduction on the SRAD kernel
# ---------------------------------------------------------------------------


def run_figure4(
    runner: Runner, kernel: str = "srad_kernel1"
) -> ExperimentResult:
    """Error ladder Naive -> MT -> +MSHR -> +Bandwidth for one kernel."""
    result = runner.evaluate(kernel)
    ladder = ["naive", "mt", "mt_mshr", "mt_mshr_band"]
    rows = [
        (MODEL_LABELS[m], result.model_cpis[m], "%.1f%%" % (100 * result.error(m)))
        for m in ladder
    ]
    rows.append(("oracle (detailed sim)", result.oracle_cpi, "-"))
    text = render_table(
        ("model", "CPI", "error"),
        rows,
        title="Figure 4: modeling components for %s (%s, %d warps/core)"
        % (kernel, result.policy, result.n_warps),
    )
    return ExperimentResult(
        "figure4",
        text,
        data={
            "kernel": kernel,
            "result": result,
            "errors": {m: result.error(m) for m in ladder},
        },
    )


# ---------------------------------------------------------------------------
# Fig. 7 — representative-warp selection strategies
# ---------------------------------------------------------------------------


def run_figure7(
    runner: Runner, kernels: Optional[Sequence[str]] = None
) -> ExperimentResult:
    """MAX vs MIN vs Clustering selection on control-divergent kernels."""
    kernels = (
        list(kernels)
        if kernels is not None
        else kernels_with_tag("control_divergent")
    )
    strategies = ("max", "min", "clustering")
    requests = [
        EvalRequest(kernel=name, selection_strategy=strategy)
        for name in kernels
        for strategy in strategies
    ]
    results = iter(runner.evaluate_many(requests))
    per_kernel: Dict[str, Dict[str, float]] = {
        name: {s: next(results).error("mt_mshr_band") for s in strategies}
        for name in kernels
    }
    ordered = sorted(per_kernel, key=lambda k: per_kernel[k]["clustering"])
    rows = [
        (name,)
        + tuple("%.1f%%" % (100 * per_kernel[name][s]) for s in strategies)
        for name in ordered
    ]
    means = {
        s: nanmean(per_kernel[k][s] for k in per_kernel)
        for s in strategies
    }
    rows.append(
        ("MEAN",) + tuple("%.1f%%" % (100 * means[s]) for s in strategies)
    )
    text = render_table(
        ("kernel", "MAX", "MIN", "Clustering"),
        rows,
        title="Figure 7: representative-warp selection on control-divergent "
        "kernels",
    )
    return ExperimentResult(
        "figure7", text, data={"per_kernel": per_kernel, "means": means}
    )


# ---------------------------------------------------------------------------
# Fig. 11 / Fig. 12 — per-kernel model comparison, RR and GTO
# ---------------------------------------------------------------------------


def run_model_comparison(
    runner: Runner,
    policy: str,
    kernels: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Per-kernel errors of all Table II models under one policy."""
    kernels = list(kernels) if kernels is not None else kernel_names()
    results = runner.evaluate_many(
        [EvalRequest(kernel=name, policy=policy) for name in kernels]
    )
    rows = []
    for result in results:
        rows.append(
            (result.kernel,)
            + tuple("%.1f%%" % (100 * result.error(m)) for m in MODELS)
        )
    means = _mean_errors(results)
    rows.append(
        ("MEAN",) + tuple("%.1f%%" % (100 * means[m]) for m in MODELS)
    )
    gpumech_under_20 = _fraction_under(results, "mt_mshr_band")
    markov_under_20 = _fraction_under(results, "markov")
    figure = "figure11" if policy == "rr" else "figure12"
    text = render_table(
        ("kernel",) + tuple(MODEL_LABELS[m] for m in MODELS),
        rows,
        title="%s: model comparison, %s policy (%d kernels)"
        % (figure.capitalize(), policy.upper(), len(kernels)),
    )
    text += (
        "\nkernels with <20%% error: GPUMech %.0f%%, Markov_Chain %.0f%%"
        % (100 * gpumech_under_20, 100 * markov_under_20)
    )
    from repro.harness.validation import render_validation, validate_all

    text += "\n\n" + render_validation(validate_all(results))
    return ExperimentResult(
        figure,
        text,
        data={
            "policy": policy,
            "results": results,
            "means": means,
            "gpumech_under_20": gpumech_under_20,
            "markov_under_20": markov_under_20,
        },
    )


def run_figure11(runner: Runner, kernels=None) -> ExperimentResult:
    """Model comparison under the round-robin policy."""
    return run_model_comparison(runner, "rr", kernels)


def run_figure12(runner: Runner, kernels=None) -> ExperimentResult:
    """Model comparison under the greedy-then-oldest policy."""
    return run_model_comparison(runner, "gto", kernels)


# ---------------------------------------------------------------------------
# Fig. 13/14/15 — hardware-configuration sweeps
# ---------------------------------------------------------------------------


def _sweep(
    runner: Runner,
    figure: str,
    x_label: str,
    x_values: Sequence,
    request_for,
    kernels: Sequence[str],
) -> ExperimentResult:
    """Fan every (kernel × sweep point) out through the pipeline at once.

    ``request_for(name, x)`` builds the :class:`EvalRequest` of one
    point; with ``runner.jobs > 1`` the whole grid runs in parallel.
    """
    requests = [
        request_for(name, x) for x in x_values for name in kernels
    ]
    flat = iter(runner.evaluate_many(requests))
    series: Dict[str, List[float]] = {MODEL_LABELS[m]: [] for m in MODELS}
    all_results: Dict = {}
    for x in x_values:
        results = [next(flat) for _ in kernels]
        all_results[x] = results
        means = _mean_errors(results)
        for model in MODELS:
            series[MODEL_LABELS[model]].append(means[model])
    text = render_series(
        x_label,
        list(x_values),
        series,
        title="%s: mean relative error over %d kernels"
        % (figure.capitalize(), len(kernels)),
        percent=True,
    )
    return ExperimentResult(
        figure, text, data={"series": series, "results": all_results}
    )


def run_figure13(
    runner: Runner,
    kernels: Sequence[str] = SWEEP_KERNELS,
    warp_counts: Sequence[int] = WARP_SWEEP,
) -> ExperimentResult:
    """Mean error vs. warps per core (round-robin policy)."""
    return _sweep(
        runner,
        "figure13",
        "warps/core",
        warp_counts,
        lambda name, warps: EvalRequest(kernel=name, warps_per_core=warps),
        kernels,
    )


def run_figure14(
    runner: Runner,
    kernels: Sequence[str] = SWEEP_KERNELS,
    mshr_counts: Sequence[int] = MSHR_SWEEP,
) -> ExperimentResult:
    """Mean error vs. number of MSHR entries."""
    return _sweep(
        runner,
        "figure14",
        "MSHRs",
        mshr_counts,
        lambda name, mshrs: EvalRequest(
            kernel=name, config=runner.config.with_(n_mshrs=mshrs)
        ),
        kernels,
    )


def run_figure15(
    runner: Runner,
    kernels: Sequence[str] = SWEEP_KERNELS,
    bandwidths: Sequence[float] = BANDWIDTH_SWEEP,
) -> ExperimentResult:
    """Mean error vs. DRAM bandwidth (GB/s)."""
    return _sweep(
        runner,
        "figure15",
        "GB/s",
        bandwidths,
        lambda name, gbps: EvalRequest(
            kernel=name, config=runner.config.with_(dram_bandwidth_gbps=gbps)
        ),
        kernels,
    )


# ---------------------------------------------------------------------------
# Fig. 16 — CPI stacks across warp counts (the Sec. VII application)
# ---------------------------------------------------------------------------


def run_figure16(
    runner: Runner,
    kernels: Sequence[str] = CASE_STUDY_KERNELS,
    warp_counts: Sequence[int] = WARP_SWEEP,
) -> ExperimentResult:
    """CPI stacks + oracle CPI vs. warps/core for the case-study kernels.

    All values are normalised by the oracle CPI of the 8-warp
    configuration, as in the paper's Fig. 16.
    """
    sections: List[str] = []
    data: Dict[str, Dict] = {}
    categories = [t for t in StallType]
    flat = iter(
        runner.evaluate_many(
            [
                EvalRequest(kernel=name, warps_per_core=warps)
                for name in kernels
                for warps in warp_counts
            ]
        )
    )
    for name in kernels:
        rows = []
        norm = None
        kernel_data: Dict[int, Dict] = {}
        for warps in warp_counts:
            result = next(flat)
            if norm is None:
                norm = result.oracle_cpi or 1.0
            stack = result.prediction.cpi_stack
            rows.append(
                (warps,)
                + tuple(
                    "%.3f" % (stack[c] / norm) for c in categories
                )
                + (
                    "%.3f" % (stack.total / norm),
                    "%.3f" % (result.oracle_cpi / norm),
                )
            )
            kernel_data[warps] = {
                "stack": {c.value: stack[c] / norm for c in categories},
                "model_cpi": stack.total / norm,
                "oracle_cpi": result.oracle_cpi / norm,
            }
        sections.append(
            render_table(
                ("warps",)
                + tuple(c.value for c in categories)
                + ("model", "oracle"),
                rows,
                title="Figure 16: %s (normalised to 8-warp oracle CPI)" % name,
            )
        )
        data[name] = kernel_data
    return ExperimentResult("figure16", "\n\n".join(sections), data=data)


# ---------------------------------------------------------------------------
# Everything
# ---------------------------------------------------------------------------


def run_all(runner: Runner) -> List[ExperimentResult]:
    """Run every figure driver; returns results in paper order."""
    return [
        run_figure4(runner),
        run_figure7(runner),
        run_figure11(runner),
        run_figure12(runner),
        run_figure13(runner),
        run_figure14(runner),
        run_figure15(runner),
        run_figure16(runner),
    ]
