"""Export experiment results to JSON/CSV for downstream analysis.

The figure drivers return :class:`ExperimentResult` objects whose
``data`` payloads contain rich objects (predictions, oracle statistics,
numpy values).  This module coerces them into plain JSON-serialisable
structures and writes per-kernel error tables as CSV — the formats a
plotting pipeline or a results archive actually wants.
"""

from __future__ import annotations

import csv
import dataclasses
import enum
import json
import os
from typing import Dict, Iterable, List, Union

import numpy as np

PathLike = Union[str, os.PathLike]


def to_jsonable(value):
    """Recursively coerce experiment payloads into JSON-friendly types."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {str(to_jsonable(k)): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [to_jsonable(v) for v in value]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: to_jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if hasattr(value, "as_dict"):
        return to_jsonable(value.as_dict())
    return str(value)


def experiment_to_dict(result) -> Dict:
    """Structured JSON form of an ExperimentResult."""
    return {
        "experiment": result.experiment,
        "text": result.text,
        "data": to_jsonable(result.data),
    }


def save_experiment_json(result, path: PathLike) -> None:
    """Write one experiment result as pretty-printed JSON."""
    with open(path, "w") as handle:
        json.dump(experiment_to_dict(result), handle, indent=2)
        handle.write("\n")


def save_comparison_csv(result, path: PathLike) -> None:
    """Write a Fig. 11/12-style model comparison as CSV.

    One row per kernel: the oracle CPI, every model's CPI and its
    relative error.
    """
    results: List = result.data.get("results", [])
    if not results:
        raise ValueError(
            "experiment %r has no per-kernel results" % result.experiment
        )
    models = sorted(results[0].model_cpis)
    header = ["kernel", "policy", "n_warps", "oracle_cpi"]
    for model in models:
        header += ["%s_cpi" % model, "%s_error" % model]
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for item in results:
            row = [item.kernel, item.policy, item.n_warps,
                   "%.6f" % item.oracle_cpi]
            for model in models:
                row += [
                    "%.6f" % item.model_cpis[model],
                    "%.6f" % item.error(model),
                ]
            writer.writerow(row)


def save_series_csv(result, path: PathLike) -> None:
    """Write a Fig. 13/14/15-style sweep (x -> per-model mean error)."""
    series: Dict[str, Iterable[float]] = result.data.get("series", {})
    if not series:
        raise ValueError(
            "experiment %r has no sweep series" % result.experiment
        )
    x_values = sorted(result.data.get("results", {}).keys())
    names = list(series)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["x"] + names)
        for i, x in enumerate(x_values):
            writer.writerow(
                [x] + ["%.6f" % list(series[name])[i] for name in names]
            )
