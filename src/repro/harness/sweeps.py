"""General design-space sweeps: any machine parameter x any kernels.

The paper's motivating use case is early design-space exploration; this
module provides the generic harness the figure drivers specialise:

>>> sweep = Sweep("n_mshrs", [16, 32, 64, 128])         # doctest: +SKIP
>>> result = sweep.run(runner, ["srad_kernel1"])        # doctest: +SKIP
>>> print(result.render())                              # doctest: +SKIP

Sweepable parameters are any :class:`~repro.config.GPUConfig` field
(``n_mshrs``, ``dram_bandwidth_gbps``, ``scheduler``, ``n_sfu_units``,
...) plus the pseudo-parameter ``warps_per_core`` (residency override).
Each point evaluates the oracle and all Table II models, so a sweep both
*predicts* (model CPIs) and *validates* (errors) in one pass.
"""

from __future__ import annotations

import dataclasses
import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.config import GPUConfig
from repro.harness.reporting import render_table
from repro.harness.runner import KernelResult, Runner, nanmean
from repro.pipeline import EvalRequest


class SweepError(ValueError):
    """Raised for unsweepable parameters."""


@dataclass
class SweepPoint:
    """All kernel results at one parameter value."""

    value: object
    results: Dict[str, KernelResult]

    def mean_error(self, model: str = "mt_mshr_band") -> float:
        """Mean relative error of one model at this point (NaNs skipped)."""
        return nanmean(
            r.error(model) for r in self.results.values()
        )

    def mean_cpi(self, model: Optional[str] = "mt_mshr_band") -> float:
        """Mean predicted (or, with ``model=None``, oracle) CPI."""
        if model is None:
            return statistics.fmean(
                r.oracle_cpi for r in self.results.values()
            )
        return statistics.fmean(
            r.model_cpis[model] for r in self.results.values()
        )


@dataclass
class SweepResult:
    """A completed sweep."""

    parameter: str
    points: List[SweepPoint] = field(default_factory=list)

    @property
    def values(self) -> List[object]:
        return [p.value for p in self.points]

    def best_value(self, kernel: str, by: str = "oracle") -> object:
        """Parameter value minimising a kernel's CPI.

        ``by`` is ``"oracle"`` or a model name — comparing the two tells
        you whether the *model* would have picked the right design point,
        the real test of a design-space-exploration tool.
        """
        def cpi(point: SweepPoint) -> float:
            result = point.results[kernel]
            if by == "oracle":
                return result.oracle_cpi
            return result.model_cpis[by]

        return min(self.points, key=cpi).value

    def model_picks_oracle_best(
        self, kernel: str, model: str = "mt_mshr_band"
    ) -> bool:
        """Whether the model and the oracle agree on the best point."""
        return self.best_value(kernel, "oracle") == self.best_value(
            kernel, model
        )

    def render(self, model: str = "mt_mshr_band") -> str:
        """Per-kernel CPI (model vs oracle) across the sweep."""
        kernels = sorted(self.points[0].results) if self.points else []
        rows = []
        for kernel in kernels:
            for point in self.points:
                result = point.results[kernel]
                rows.append(
                    (
                        kernel,
                        point.value,
                        "%.3f" % result.oracle_cpi,
                        "%.3f" % result.model_cpis[model],
                        "%.1f%%" % (100 * result.error(model)),
                    )
                )
        return render_table(
            ("kernel", self.parameter, "oracle CPI", "model CPI", "error"),
            rows,
            title="sweep of %s over %s" % (self.parameter, self.values),
        )


class Sweep:
    """A one-parameter sweep specification."""

    def __init__(self, parameter: str, values: Sequence[object]):
        if not values:
            raise SweepError("sweep needs at least one value")
        config_fields = {f.name for f in dataclasses.fields(GPUConfig)}
        if parameter != "warps_per_core" and parameter not in config_fields:
            raise SweepError(
                "unknown parameter %r; sweepable: warps_per_core, %s"
                % (parameter, ", ".join(sorted(config_fields)))
            )
        self.parameter = parameter
        self.values = list(values)

    def request(self, runner: Runner, kernel: str, value: object) -> EvalRequest:
        """The pipeline request of one (kernel × value) sweep point."""
        if self.parameter == "warps_per_core":
            return EvalRequest(kernel=kernel, warps_per_core=int(value))
        return EvalRequest(
            kernel=kernel,
            config=runner.config.with_(**{self.parameter: value}),
        )

    def run(self, runner: Runner, kernels: Sequence[str]) -> SweepResult:
        """Evaluate oracle + all models at every sweep point.

        The whole (value × kernel) grid goes through
        :meth:`Runner.evaluate_many` in one batch, so a runner with
        ``jobs > 1`` evaluates points in parallel and a warm artifact
        store skips everything already computed.
        """
        requests = [
            self.request(runner, kernel, value)
            for value in self.values
            for kernel in kernels
        ]
        flat = iter(runner.evaluate_many(requests))
        result = SweepResult(parameter=self.parameter)
        for value in self.values:
            point_results: Dict[str, KernelResult] = {
                kernel: next(flat) for kernel in kernels
            }
            result.points.append(SweepPoint(value=value, results=point_results))
        return result
