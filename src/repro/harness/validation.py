"""Aggregate validation metrics for model-vs-oracle comparisons.

Relative error alone (the paper's metric) hides whether a model ranks
configurations correctly — which is what an early-design-space user
actually needs.  This module computes, over a set of
:class:`~repro.harness.runner.KernelResult`:

* mean / median / max absolute relative error (the paper's numbers),
* the fraction of kernels under an error threshold (the paper's
  "<20%" statistic),
* Pearson correlation of predicted vs. measured CPI, and
* Spearman rank correlation — does the model order kernels (or
  hardware configurations) the same way the oracle does?
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Dict, List, Sequence

from scipy import stats as scipy_stats

from repro.harness.reporting import render_table
from repro.harness.runner import MODEL_LABELS, MODELS, KernelResult


@dataclass
class ModelValidation:
    """Accuracy summary of one model over a result set."""

    model: str
    n: int
    mean_error: float
    median_error: float
    max_error: float
    fraction_under_20pct: float
    pearson_r: float
    spearman_rho: float


def validate_model(
    results: Sequence[KernelResult], model: str
) -> ModelValidation:
    """Compute all metrics for one model.

    Results with a degenerate oracle (``nan`` error) are excluded from
    every statistic rather than silently counted as perfect.
    """
    if not results:
        raise ValueError("no results to validate")
    results = [r for r in results if not math.isnan(r.error(model))]
    if not results:
        nan = float("nan")
        return ModelValidation(
            model=model,
            n=0,
            mean_error=nan,
            median_error=nan,
            max_error=nan,
            fraction_under_20pct=nan,
            pearson_r=nan,
            spearman_rho=nan,
        )
    errors = [r.error(model) for r in results]
    predicted = [r.model_cpis[model] for r in results]
    measured = [r.oracle_cpi for r in results]
    if len(results) >= 2 and len(set(measured)) > 1 and len(set(predicted)) > 1:
        pearson = float(scipy_stats.pearsonr(predicted, measured)[0])
        spearman = float(scipy_stats.spearmanr(predicted, measured)[0])
    else:
        pearson = float("nan")
        spearman = float("nan")
    return ModelValidation(
        model=model,
        n=len(results),
        mean_error=statistics.fmean(errors),
        median_error=statistics.median(errors),
        max_error=max(errors),
        fraction_under_20pct=statistics.fmean(
            1.0 if e < 0.20 else 0.0 for e in errors
        ),
        pearson_r=pearson,
        spearman_rho=spearman,
    )


def validate_all(
    results: Sequence[KernelResult],
    models: Sequence[str] = MODELS,
) -> Dict[str, ModelValidation]:
    """Metrics for every Table II model."""
    return {model: validate_model(results, model) for model in models}


def render_validation(validations: Dict[str, ModelValidation]) -> str:
    """Fixed-width summary table."""
    rows: List[tuple] = []
    for model, v in validations.items():
        rows.append(
            (
                MODEL_LABELS.get(model, model),
                "%.1f%%" % (100 * v.mean_error),
                "%.1f%%" % (100 * v.median_error),
                "%.1f%%" % (100 * v.max_error),
                "%.0f%%" % (100 * v.fraction_under_20pct),
                "%.3f" % v.pearson_r,
                "%.3f" % v.spearman_rho,
            )
        )
    return render_table(
        ("model", "mean err", "median err", "max err", "<20%",
         "pearson r", "spearman rho"),
        rows,
        title="model validation over %d kernels"
        % (next(iter(validations.values())).n if validations else 0),
    )
