"""Per-core issue logic of the timing oracle.

Each core holds a queue of thread blocks, keeps up to ``warps_per_core``
warps resident (block-granular residency, like real GPUs), and issues
through one or more *scheduler partitions* — the architecture backend
(``repro.arch``) decides how many.  The paper's ``gpumech2014`` machine
has a single partition holding every resident warp; the ``subcore``
backend builds ``n_schedulers`` partitions (warp → partition by
activation age, one issue slot each per cycle — sub-core dispatch).
Within a partition the configured scheduler picks the issuing warp:

* **RR** (round-robin): priority rotates to the warp after the last
  issuer; the first ready warp in rotation order issues.
* **GTO** (greedy-then-oldest): keep issuing from the current warp until
  it stalls, then switch to the *oldest* resident warp that is ready
  (age = activation order) [Rogers et al., MICRO'12].

Dependency semantics match the interval algorithm (Eq. 4): a consumer may
issue ``latency`` cycles after its producer issued.  Loads walk the timed
L1/MSHR/L2/DRAM path built from :mod:`repro.memory`; stores are
write-through fire-and-forget traffic that consumes DRAM bandwidth but
never blocks the warp (and never occupies MSHRs) — the asymmetry behind
the paper's DRAM-bandwidth model.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Sequence

from repro.config import GPUConfig
from repro.memory.cache import Cache
from repro.memory.dram import DRAMSystem
from repro.memory.mshr import MSHRError, MSHRFile
from repro.timing.stats import CoreStats
from repro.trace.trace_types import NO_DEP, OpCode, WarpTrace


class IssueStatus(enum.Enum):
    """Outcome of asking a warp whether it can issue this cycle."""

    OK = "ok"
    DEP_STALL = "dep"  # producers not complete yet
    MSHR_STALL = "mshr"  # ready but the MSHR file is full
    SFU_STALL = "sfu"  # ready but the SFU pipeline is occupied
    SMEM_STALL = "smem"  # ready but the scratchpad LSU is occupied
    BARRIER_STALL = "bar"  # waiting for block-mates at a barrier
    FINISHED = "finished"


_LOAD = int(OpCode.LOAD)
_STORE = int(OpCode.STORE)
_SFU = int(OpCode.SFU)
_SMEM_LOAD = int(OpCode.SMEM_LOAD)
_SMEM_STORE = int(OpCode.SMEM_STORE)
_BARRIER = int(OpCode.BARRIER)


class _WarpRun:
    """Runtime state of one resident warp.

    Trace columns are converted to native Python lists on activation:
    the issue loop touches them once per instruction per scheduler scan,
    where numpy scalar boxing would dominate the simulation time.
    """

    __slots__ = (
        "trace",
        "age",
        "next_idx",
        "done",
        "_ready_at",
        "n_insts",
        "ops",
        "pcs",
        "deps",
        "req_lines",
        "req_offsets",
        "conflict",
        "bar_count",
        "block_runs",
    )

    def __init__(self, trace: WarpTrace, age: int):
        self.trace = trace
        self.age = age
        self.next_idx = 0
        self.n_insts = len(trace)
        self.ops = trace.ops.tolist()
        self.pcs = trace.pcs.tolist()
        self.deps = trace.deps.tolist()
        self.req_lines = trace.req_lines.tolist()
        self.req_offsets = trace.req_offsets.tolist()
        self.conflict = trace.conflict.tolist()
        self.bar_count = 0
        self.block_runs: List["_WarpRun"] = []
        # Completion cycle of each issued dynamic instruction.
        self.done = [0.0] * self.n_insts
        self._ready_at: float = 0.0
        self._refresh_ready()

    @property
    def finished(self) -> bool:
        """Whether every traced instruction has issued."""
        return self.next_idx >= self.n_insts

    @property
    def ready_at(self) -> float:
        """Earliest cycle the next instruction may issue."""
        return self._ready_at

    def requests(self, index: int):
        """Request line addresses of one dynamic instruction (list slice)."""
        return self.req_lines[self.req_offsets[index]: self.req_offsets[index + 1]]

    def _refresh_ready(self) -> None:
        """Recompute the earliest issue cycle of the next instruction."""
        if self.next_idx >= self.n_insts:
            self._ready_at = float("inf")
            return
        ready = 0.0
        done = self.done
        for dep in self.deps[self.next_idx]:
            if dep != NO_DEP:
                t = done[dep]
                if t > ready:
                    ready = t
        self._ready_at = ready

    def complete_at(self, completion: float) -> None:
        """Record the just-issued instruction's completion and advance."""
        self.done[self.next_idx] = completion
        self.next_idx += 1
        self._refresh_ready()


class _SchedulerPartition:
    """One issue slot: a warp subset with its own scheduler state.

    ``resident`` stays age-ordered (activation appends increasing ages,
    retirement preserves relative order), so GTO's oldest-first fallback
    is plain list order here just as it was core-wide.
    """

    __slots__ = ("resident", "rr_next", "gto_current")

    def __init__(self) -> None:
        self.resident: List[_WarpRun] = []
        self.rr_next = 0
        self.gto_current: Optional[_WarpRun] = None

    def candidates_rr(self) -> List[_WarpRun]:
        resident = self.resident
        n = len(resident)
        start = self.rr_next % n if n else 0
        if not start:
            # Returning the live list is safe: the scan in step() stops
            # at the first issue, and _issue only mutates residency on
            # the path that immediately moves to the next partition.
            return resident
        rotated = resident[start:]
        rotated += resident[:start]
        return rotated

    def candidates_gto(self) -> List[_WarpRun]:
        current = self.gto_current
        if current is None or current.finished:
            return self.resident
        order = [current]
        for run in self.resident:
            if run is not current:
                order.append(run)
        return order

    def note_issue(self, run: "_WarpRun", rr: bool) -> None:
        """Update scheduler priority after ``run`` issued."""
        if rr:
            if run in self.resident:
                self.rr_next = (self.resident.index(run) + 1) % max(
                    len(self.resident), 1
                )
        else:
            self.gto_current = run if not run.finished else None

    def on_retired(self) -> None:
        """Re-clamp priorities after warps left ``resident``."""
        if self.rr_next >= len(self.resident):
            self.rr_next = 0
        if self.gto_current is not None and self.gto_current.finished:
            self.gto_current = None


class CoreModel:
    """One in-order SIMT core with private L1 and MSHR file."""

    def __init__(
        self,
        core_id: int,
        config: GPUConfig,
        l2: Cache,
        dram: DRAMSystem,
        blocks: Sequence[Sequence[WarpTrace]],
        warps_per_core: Optional[int] = None,
    ):
        self.core_id = core_id
        self.config = config
        self.l1 = Cache(config.l1_size, config.l1_assoc, config.line_size)
        self.l2 = l2
        self.dram = dram
        self.mshr = MSHRFile(config.n_mshrs)
        self.warps_per_core = (
            warps_per_core if warps_per_core is not None
            else config.max_warps_per_core
        )
        self.stats = CoreStats(core_id)
        self._latency: Dict[int, float] = {
            int(op): float(config.op_latencies[op.latency_class])
            for op in (OpCode.IALU, OpCode.FALU, OpCode.SFU)
        }
        # Branches and exits occupy the issue slot for one cycle and have
        # no consumers.
        self._latency[int(OpCode.BRANCH)] = 1.0
        self._latency[int(OpCode.EXIT)] = 1.0

        self._block_queue: List[List[WarpTrace]] = [list(b) for b in blocks]
        self._resident_blocks: List[List[_WarpRun]] = []
        self._resident: List[_WarpRun] = []
        self._age_counter = 0
        # Scheduler partitions (sub-core dispatch): the architecture
        # backend decides how many issue slots the core has; warps are
        # statically assigned to partitions by activation age.
        from repro.arch import get_arch  # deferred: circular import

        n_partitions = get_arch(config.arch).schedulers_per_core(config)
        self._partitions = [
            _SchedulerPartition() for _ in range(max(n_partitions, 1))
        ]
        # A core's issue eligibility only changes with its own events
        # (dependency completions, MSHR releases), so after a failed scan
        # it can sleep until the earliest such event instead of rescanning
        # every cycle.
        self._sleep_until = 0.0
        self._sleep_kind = IssueStatus.DEP_STALL
        # Entries the cheapest MSHR-stalled load is waiting for; lets
        # next_event_after sleep until the k-th MSHR release rather than
        # waking on every single one.
        self._mshr_need = 1
        self._last_mshr_need = 1
        # SFU pipeline occupancy (extension beyond Table I: with fewer
        # SFU lanes than the SIMT width, an SFU warp-instruction blocks
        # the unit for warp_size / n_sfu_units cycles).
        self._sfu_limited = config.n_sfu_units < config.warp_size
        self._sfu_free_at = 0.0
        # Scratchpad LSU occupancy: a bank-conflicted access replays for
        # its conflict degree, blocking other scratchpad accesses.
        self._smem_free_at = 0.0
        self._smem_latency = float(config.smem_latency)
        # Hoisted per-cycle/per-request config reads (step and the issue
        # helpers run once per cycle / memory instruction).
        self._rr = config.scheduler == "rr"
        self._l1_latency = float(config.l1_latency)
        self._l2_latency = float(config.l2_latency)
        self._dram_latency = float(config.dram_latency)
        self._sfu_service_cycles = float(config.sfu_service_cycles)
        self._activate_blocks()

    # Residency -------------------------------------------------------------

    def _activate_blocks(self) -> None:
        """Bring queued blocks on-core while warp slots are available."""
        while self._block_queue:
            block = self._block_queue[0]
            if len(self._resident) + len(block) > self.warps_per_core:
                break
            self._block_queue.pop(0)
            runs = []
            for trace in block:
                run = _WarpRun(trace, self._age_counter)
                self._age_counter += 1
                runs.append(run)
            for run in runs:
                run.block_runs = runs
            self._resident_blocks.append(runs)
            self._resident.extend(runs)
            n_partitions = len(self._partitions)
            for run in runs:
                self._partitions[run.age % n_partitions].resident.append(run)

    def _retire_blocks(self) -> None:
        """Release blocks whose warps all finished; admit new ones."""
        finished = [b for b in self._resident_blocks if all(w.finished for w in b)]
        if not finished:
            return
        n_partitions = len(self._partitions)
        for block in finished:
            self._resident_blocks.remove(block)
            for run in block:
                self._resident.remove(run)
                self._partitions[run.age % n_partitions].resident.remove(run)
        for partition in self._partitions:
            partition.on_retired()
        self._activate_blocks()

    @property
    def finished(self) -> bool:
        """Whether all assigned blocks have completed."""
        return not self._resident and not self._block_queue

    @property
    def n_resident(self) -> int:
        """Warps currently resident on the core."""
        return len(self._resident)

    # Issue -----------------------------------------------------------------

    def _issue_check(self, run: _WarpRun, now: float) -> IssueStatus:
        if run.next_idx >= run.n_insts:
            return IssueStatus.FINISHED
        if run.ready_at > now:
            return IssueStatus.DEP_STALL
        index = run.next_idx
        if (
            self._sfu_limited
            and run.ops[index] == _SFU
            and self._sfu_free_at > now
        ):
            return IssueStatus.SFU_STALL
        if (
            run.ops[index] in (_SMEM_LOAD, _SMEM_STORE)
            and self._smem_free_at > now
        ):
            return IssueStatus.SMEM_STALL
        if run.ops[index] == _BARRIER and not self._barrier_open(run):
            return IssueStatus.BARRIER_STALL
        if run.ops[index] == _LOAD:
            needed = 0
            mshr_lookup = self.mshr.lookup
            l1_probe = self.l1.probe
            for line in run.requests(index):
                if not l1_probe(line) and mshr_lookup(line) is None:
                    needed += 1
            if needed > self.mshr.n_entries:
                raise MSHRError(
                    "load at pc %d needs %d MSHR entries but the file only "
                    "has %d; configure n_mshrs >= warp_size"
                    % (run.pcs[index], needed, self.mshr.n_entries)
                )
            if needed > self.mshr.free_entries:
                self._last_mshr_need = needed
                return IssueStatus.MSHR_STALL
        return IssueStatus.OK

    def _barrier_open(self, run: _WarpRun) -> bool:
        """Whether every block-mate has arrived at this warp's barrier.

        A mate has arrived when it already issued this barrier
        (``bar_count`` greater), is parked at it (next instruction is the
        same barrier), or has finished the kernel.
        """
        k = run.bar_count
        for mate in run.block_runs:
            if mate is run or mate.finished or mate.bar_count > k:
                continue
            if not (
                mate.bar_count == k
                and mate.ops[mate.next_idx] == _BARRIER
            ):
                return False
        return True

    def _issue(self, run: _WarpRun, now: float) -> None:
        index = run.next_idx
        op = run.ops[index]
        if op == _LOAD:
            completion = self._issue_load(run, index, now)
        elif op == _STORE:
            self._issue_store(run, index, now)
            completion = now + 1.0
        elif op == _SMEM_LOAD:
            degree = max(run.conflict[index], 1)
            completion = now + self._smem_latency + (degree - 1)
            self._smem_free_at = now + degree
        elif op == _SMEM_STORE:
            degree = max(run.conflict[index], 1)
            completion = now + 1.0
            self._smem_free_at = now + degree
        elif op == _BARRIER:
            completion = now + 1.0
            run.bar_count += 1
        else:
            completion = now + self._latency[op]
            if op == _SFU and self._sfu_limited:
                self._sfu_free_at = now + self._sfu_service_cycles
        run.complete_at(completion)
        self.stats.insts_issued += 1
        if run.finished:
            self._retire_blocks()

    def _issue_load(self, run: _WarpRun, index: int, now: float) -> float:
        """Walk every coalesced request through L1/MSHR/L2/DRAM."""
        completion = 0.0
        for line in run.requests(index):
            if self.l1.access(line):
                # Tag hit; if the line's fill is still in flight this is a
                # pending hit and completes when the original miss returns.
                t = now + self._l1_latency
                pending = self.mshr.lookup(line)
                if pending is not None and pending > t:
                    t = pending
            else:
                merged = self.mshr.lookup(line)
                if merged is not None:
                    t = merged
                else:
                    if self.l2.access(line):
                        completion = now + self._l2_latency
                    else:
                        arrival = now + self._l2_latency
                        completion = (
                            self.dram.enqueue(arrival, line)
                            + self._dram_latency
                        )
                    try:
                        t = self.mshr.allocate(line, completion)
                    except MSHRError:
                        # The issue check counted this line as an L1 hit,
                        # but an earlier request of this same instruction
                        # evicted it.  Model a replay: the miss starts
                        # once the earliest in-flight entry releases.
                        free_at = self.mshr.next_completion() or now
                        t = completion + max(free_at - now, 0.0)
            if t > completion:
                completion = t
        return completion

    def _issue_store(self, run: _WarpRun, index: int, now: float) -> None:
        """Write-through store: probes caches, always consumes DRAM bus."""
        for line in run.requests(index):
            self.l1.access(line, is_write=True)
            self.l2.access(line, is_write=True)
            self.dram.enqueue(now + self._l2_latency, line)

    # Scheduling --------------------------------------------------------------

    def step(self, now: float) -> bool:
        """Attempt to issue instructions at cycle ``now``.

        Every scheduler partition may issue at most one instruction
        (``gpumech2014`` has a single partition, so at most one per core
        — the paper's machine).  Returns True if anything issued;
        updates stall statistics otherwise.
        """
        if self.finished:
            return False
        if now < self._sleep_until:
            # Known-stalled: no event of this core can have fired yet.
            if self._sleep_kind is IssueStatus.MSHR_STALL:
                self.stats.mshr_stall_cycles += 1
            elif self._sleep_kind is IssueStatus.SFU_STALL:
                self.stats.sfu_stall_cycles += 1
            else:
                self.stats.dep_stall_cycles += 1
            self.stats.active_cycles += 1
            return False
        self.mshr.release_completed(now)
        self.stats.active_cycles += 1
        rr = self._rr
        issued_any = False
        saw_mshr_stall = False
        saw_sfu_stall = False
        min_mshr_need = None
        for partition in self._partitions:
            candidates = (
                partition.candidates_rr() if rr
                else partition.candidates_gto()
            )
            for run in candidates:
                status = self._issue_check(run, now)
                if status is IssueStatus.OK:
                    self._issue(run, now)
                    self.stats.finish_cycle = now
                    partition.note_issue(run, rr)
                    issued_any = True
                    break
                if status is IssueStatus.MSHR_STALL:
                    saw_mshr_stall = True
                    if (
                        min_mshr_need is None
                        or self._last_mshr_need < min_mshr_need
                    ):
                        min_mshr_need = self._last_mshr_need
                elif status in (IssueStatus.SFU_STALL, IssueStatus.SMEM_STALL):
                    saw_sfu_stall = True
                elif status is IssueStatus.BARRIER_STALL:
                    self.stats.barrier_stall_cycles += 1
        if issued_any:
            self.stats.issue_cycles += 1
            return True
        if saw_mshr_stall:
            self.stats.mshr_stall_cycles += 1
            self._sleep_kind = IssueStatus.MSHR_STALL
        elif saw_sfu_stall:
            self.stats.sfu_stall_cycles += 1
            self._sleep_kind = IssueStatus.SFU_STALL
        else:
            self.stats.dep_stall_cycles += 1
            self._sleep_kind = IssueStatus.DEP_STALL
        self._mshr_need = min_mshr_need or 1
        self._sleep_until = self.next_event_after(now)
        return False

    def next_event_after(self, now: float) -> float:
        """Earliest future cycle at which this core could possibly issue.

        Used for cycle skipping when no core can issue: the core wakes at
        the earliest dependency-ready time or MSHR release, whichever
        comes first.
        """
        if self.finished:
            return float("inf")
        best = float("inf")
        for run in self._resident:
            ready = run.ready_at
            if now < ready < best:
                best = ready
        k = 1
        if self._sleep_kind is IssueStatus.MSHR_STALL:
            k = max(1, self._mshr_need - self.mshr.free_entries)
        mshr_next = self.mshr.kth_completion(k)
        if mshr_next is not None and now < mshr_next < best:
            best = mshr_next
        if self._sfu_limited and now < self._sfu_free_at < best:
            best = self._sfu_free_at
        if now < self._smem_free_at < best:
            best = self._smem_free_at
        return best if best != float("inf") else now + 1.0
