"""Statistics collected by the timing oracle."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.obs.timeline import Timeline


@dataclass
class CoreStats:
    """Per-core counters."""

    core_id: int
    insts_issued: int = 0
    active_cycles: int = 0  # cycles with at least one resident warp
    issue_cycles: int = 0  # cycles in which an instruction issued
    mshr_stall_cycles: int = 0  # ready warp blocked only by a full MSHR file
    sfu_stall_cycles: int = 0  # ready warp blocked by SFU/scratchpad pipes
    barrier_stall_cycles: int = 0  # warp-cycles parked at block barriers
    dep_stall_cycles: int = 0  # no warp ready (dependency/latency stalls)
    finish_cycle: float = 0.0

    @property
    def ipc(self) -> float:
        """Issued instructions per (stepped) active cycle."""
        return self.insts_issued / self.active_cycles if self.active_cycles else 0.0


@dataclass
class SimStats:
    """Whole-simulation results."""

    kernel_name: str
    scheduler: str
    #: Architecture backend the oracle modeled (``GPUConfig.arch``).
    arch: str = "gpumech2014"
    total_cycles: float = 0.0
    total_insts: int = 0
    n_cores_used: int = 0
    cores: List[CoreStats] = field(default_factory=list)
    dram_requests: int = 0
    dram_mean_queue_delay: float = 0.0
    dram_utilization: float = 0.0
    mshr_merges: int = 0
    mshr_allocations: int = 0
    #: Per-interval occupancy/issue/stall samples per core; populated
    #: only when the simulator ran with ``timeline_interval`` set.
    timeline: Optional[Timeline] = None

    @property
    def cpi(self) -> float:
        """Cycles per (core-)instruction: the paper's validation metric.

        With homogeneous cores this equals per-core cycles over per-core
        instructions; computed over *used* cores so kernels smaller than
        the machine are not artificially inflated.
        """
        if not self.total_insts:
            return 0.0
        return self.total_cycles * self.n_cores_used / self.total_insts

    @property
    def ipc(self) -> float:
        """Per-core instructions per cycle (reciprocal of CPI)."""
        return 1.0 / self.cpi if self.cpi else 0.0

    def summary(self) -> str:
        """One-line result description for logs and examples."""
        return (
            "%s [%s]: %d insts on %d cores in %.0f cycles -> CPI %.3f "
            "(DRAM util %.2f, mean queue delay %.1f)"
            % (
                self.kernel_name,
                self.scheduler,
                self.total_insts,
                self.n_cores_used,
                self.total_cycles,
                self.cpi,
                self.dram_utilization,
                self.dram_mean_queue_delay,
            )
        )
