"""Detailed cycle-level timing simulator — the validation oracle.

This package replaces Macsim in the paper's methodology (Sec. VI-A): a
trace-driven, in-order, multithreaded SIMT core model with round-robin and
greedy-then-oldest warp schedulers, dependency scoreboarding, timed L1/L2
caches, per-core MSHR files with miss merging and pending hits, and a
shared FCFS DRAM bandwidth queue.  GPUMech's predictions are validated by
relative CPI error against this simulator.
"""

from repro.timing.simulator import TimingSimulator, simulate_kernel
from repro.timing.stats import SimStats

__all__ = ["SimStats", "TimingSimulator", "simulate_kernel"]
