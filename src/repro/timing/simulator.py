"""Top-level multi-core timing simulation with cycle skipping.

All cores share the L2 and the DRAM bandwidth queue and advance in
lockstep on a global cycle counter.  When *no* core can issue (all warps
dependency- or MSHR-stalled), the clock jumps directly to the earliest
cycle at which any core could wake — an optimisation that changes nothing
observable because stalled cores have no per-cycle side effects (verified
by ``tests/test_timing.py`` against the naive single-step loop).
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, List, Optional

from repro.config import GPUConfig
from repro.memory.cache import Cache
from repro.memory.cache_simulator import core_of_block
from repro.memory.dram import DRAMSystem
from repro.obs.timeline import Timeline
from repro.timing.core_model import CoreModel
from repro.timing.stats import SimStats
from repro.trace.trace_types import KernelTrace, WarpTrace


class SimulationError(RuntimeError):
    """Raised when a simulation cannot make progress."""


class TimingSimulator:
    """Cycle-level oracle for one kernel launch.

    Parameters
    ----------
    config:
        Machine description (Table I).
    warps_per_core:
        Override of the resident-warp limit (Fig. 13/16 sweeps); defaults
        to ``config.max_warps_per_core``.
    cycle_skipping:
        Disable to force the naive one-cycle-at-a-time loop (used by the
        equivalence tests; dramatically slower).
    timeline_interval:
        When set, sample every core's occupancy and cumulative stall
        attribution every that-many cycles into ``SimStats.timeline``
        (see :mod:`repro.obs.timeline`); ``None`` (the default) records
        nothing and adds no per-cycle work.
    """

    def __init__(
        self,
        config: GPUConfig,
        warps_per_core: Optional[int] = None,
        cycle_skipping: bool = True,
        max_cycles: float = 5e8,
        timeline_interval: Optional[float] = None,
    ):
        self.config = config
        self.warps_per_core = warps_per_core
        self.cycle_skipping = cycle_skipping
        self.max_cycles = max_cycles
        if timeline_interval is not None and timeline_interval <= 0:
            raise ValueError("timeline_interval must be positive")
        self.timeline_interval = timeline_interval

    def run(self, trace: KernelTrace) -> SimStats:
        """Simulate the kernel launch; returns aggregate statistics."""
        config = self.config
        blocks: Dict[int, List[WarpTrace]] = defaultdict(list)
        for warp in trace.warps:
            blocks[warp.block_id].append(warp)
        per_core_blocks: List[List[List[WarpTrace]]] = [
            [] for _ in range(config.n_cores)
        ]
        for block_id in sorted(blocks):
            per_core_blocks[core_of_block(block_id, config.n_cores)].append(
                blocks[block_id]
            )

        l2 = Cache(config.l2_size, config.l2_assoc, config.line_size)
        dram = DRAMSystem(
            config.dram_service_cycles, config.n_dram_channels,
            config.line_size,
        )
        cores = [
            CoreModel(
                core_id,
                config,
                l2,
                dram,
                per_core_blocks[core_id],
                warps_per_core=self.warps_per_core,
            )
            for core_id in range(config.n_cores)
            if per_core_blocks[core_id]
        ]
        if not cores:
            raise SimulationError("kernel launch assigned no warps to any core")

        timeline: Optional[Timeline] = None
        next_sample = float("inf")
        if self.timeline_interval is not None:
            timeline = Timeline(self.timeline_interval)
            next_sample = self.timeline_interval

        now = 0.0
        while True:
            if now >= next_sample:
                self._sample(timeline, cores, now)
                while next_sample <= now:
                    next_sample += self.timeline_interval
            issued_any = False
            all_finished = True
            for core in cores:
                if core.finished:
                    continue
                all_finished = False
                if core.step(now):
                    issued_any = True
            if all_finished:
                break
            if issued_any or not self.cycle_skipping:
                now += 1.0
            else:
                wake = min(core.next_event_after(now) for core in cores
                           if not core.finished)
                if wake == float("inf"):
                    raise SimulationError("deadlock: no core has a future event")
                # Completion events can be fractional (the DRAM service time
                # is not an integer number of cycles) but issue happens on
                # integer cycle boundaries only.
                now = max(now + 1.0, math.ceil(wake))
            if now > self.max_cycles:
                raise SimulationError(
                    "exceeded max_cycles=%g (runaway simulation)" % self.max_cycles
                )

        total_cycles = max(core.stats.finish_cycle for core in cores) + 1.0
        if timeline is not None:
            # Closing sample: the final cumulative counters of every core.
            self._sample(timeline, cores, total_cycles)
        stats = SimStats(
            kernel_name=trace.kernel_name,
            scheduler=config.scheduler,
            arch=config.arch,
            total_cycles=total_cycles,
            total_insts=sum(core.stats.insts_issued for core in cores),
            n_cores_used=len(cores),
            cores=[core.stats for core in cores],
            dram_requests=dram.n_requests,
            dram_mean_queue_delay=dram.mean_queue_delay,
            dram_utilization=dram.utilization(total_cycles),
            mshr_merges=sum(core.mshr.n_merges for core in cores),
            mshr_allocations=sum(core.mshr.n_allocations for core in cores),
            timeline=timeline,
        )
        return stats

    @staticmethod
    def _sample(timeline: Timeline, cores: List[CoreModel],
                now: float) -> None:
        """Record every core's cumulative counters at cycle ``now``."""
        for core in cores:
            stats = core.stats
            timeline.record(
                core.core_id,
                now,
                0 if core.finished else core.n_resident,
                insts_issued=stats.insts_issued,
                issue_cycles=stats.issue_cycles,
                mshr_stall_cycles=stats.mshr_stall_cycles,
                sfu_stall_cycles=stats.sfu_stall_cycles,
                barrier_stall_cycles=stats.barrier_stall_cycles,
                dep_stall_cycles=stats.dep_stall_cycles,
            )


def simulate_kernel(
    trace: KernelTrace,
    config: GPUConfig,
    warps_per_core: Optional[int] = None,
) -> SimStats:
    """Convenience wrapper: run the oracle on a kernel trace."""
    return TimingSimulator(config, warps_per_core=warps_per_core).run(trace)
