"""Parametric kernel-family generators.

Each generator returns ``(Kernel, MemoryImage)`` — a program in the mini
ISA plus the deterministic synthetic memory contents that drive its
data-dependent behaviour.  Generators are parameterised by a
:class:`Scale` (launch geometry and loop-trip multipliers) so the same
kernel runs at test size or experiment size.

Element-wise kernels use *grid-stride loops* (each thread processes
``scale.iters`` elements spaced ``n_threads`` apart), exactly as
production CUDA kernels do.  Besides realism, this keeps traces long
enough that steady-state behaviour dominates the cold-cache warm-up
transient — interval analysis, like the paper's, is a steady-state model.

Behavioural axes covered (and the paper feature they exercise):

* coalesced streaming            — baseline interval behaviour
* strided access, degree 2..32   — memory divergence (Fig. 3, Sec. IV-B)
* gathers with tunable footprint — cache locality vs. MSHR pressure
* divergent scatter stores       — DRAM write bandwidth (invert_mapping)
* data-dependent loops/ifs       — control divergence (Sec. III-C)
* FP/SFU chains, tunable ILP     — dependence stalls, issue behaviour
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Tuple

from repro.isa.builder import KernelBuilder
from repro.isa.kernel import Kernel
from repro.trace.memory_image import MemoryImage

KernelAndMemory = Tuple[Kernel, MemoryImage]

#: Cache line size assumed by stride arithmetic below (Table I).
LINE = 128
WORD = 4  # bytes per data element


@dataclass(frozen=True)
class Scale:
    """Launch geometry and work-amount preset."""

    n_blocks: int
    block_size: int
    iters: int  # grid-stride trip count / inner-loop multiplier

    @property
    def n_threads(self) -> int:
        """Total threads in the launch."""
        return self.n_blocks * self.block_size

    @property
    def n_elements(self) -> int:
        """Elements touched by a grid-stride kernel."""
        return self.n_threads * self.iters

    @classmethod
    def tiny(cls) -> "Scale":
        """Unit-test size: a handful of warps, short loops."""
        return cls(n_blocks=4, block_size=64, iters=2)

    @classmethod
    def small(cls) -> "Scale":
        """Default experiment size: 3x occupancy on the default 2-core,
        32-warps/core experiment machine (48 blocks of 4 warps)."""
        return cls(n_blocks=48, block_size=128, iters=3)

    @classmethod
    def large(cls) -> "Scale":
        """Occupancy-matched size for the 16-core Table I machine."""
        return cls(n_blocks=384, block_size=128, iters=4)


class Layout:
    """Allocates disjoint array base addresses in the flat byte space."""

    #: Space between arrays: large enough that distinct arrays never share
    #: cache sets systematically.
    SPACING = 1 << 24

    def __init__(self) -> None:
        self._next = self.SPACING  # keep address 0 unused

    def array(self, n_bytes: int = 0) -> int:
        """Reserve an array of ``n_bytes``; returns its base address."""
        base = self._next
        needed = max(n_bytes, 1)
        slots = -(-needed // self.SPACING)
        self._next += slots * self.SPACING
        return base


@contextlib.contextmanager
def grid_stride(b: KernelBuilder, scale: Scale):
    """Grid-stride loop: yields the element-index register.

    The loop trip count (``scale.iters``) is uniform across lanes, so the
    backward branch never diverges.
    """
    tid = b.tid()
    idx = b.mov(tid)
    trip = b.mov(0)
    head = b.loop_begin()
    yield idx
    b.iadd(idx, scale.n_threads, dst=idx)
    b.iadd(trip, 1, dst=trip)
    pred = b.setp_lt(trip, scale.iters)
    b.loop_end(head, pred)


# ---------------------------------------------------------------------------
# Streaming / coalesced
# ---------------------------------------------------------------------------


def streaming(
    name: str,
    scale: Scale,
    n_arrays: int = 2,
    chain: int = 4,
    suite: str = "synthetic",
) -> KernelAndMemory:
    """Coalesced streaming: load ``n_arrays`` inputs, FP chain, store.

    Every access is unit-stride so each warp instruction coalesces to a
    single cache-line request; no reuse, so traffic streams to DRAM.
    """
    layout = Layout()
    inputs = [layout.array(scale.n_elements * WORD) for _ in range(n_arrays)]
    output = layout.array(scale.n_elements * WORD)
    b = KernelBuilder(name, suite)
    with grid_stride(b, scale) as idx:
        offset = b.imul(idx, WORD)
        acc = b.mov(0.0)
        for base in inputs:
            value = b.ld(b.iadd(offset, base))
            acc = b.ffma(value, 1.5, acc)
        for _ in range(chain):
            acc = b.fmul(acc, 1.0001, dst=acc)
        b.st(b.iadd(offset, output), acc)
    b.exit()
    return b.build(scale.n_threads, scale.block_size), MemoryImage()


def strided(
    name: str,
    scale: Scale,
    stride_bytes: int,
    n_loads: int = 2,
    suite: str = "synthetic",
) -> KernelAndMemory:
    """Strided access with memory-divergence degree ``stride/4`` (max 32).

    Lane ``i`` accesses ``base + idx * stride``; with a 128-byte line a
    stride of 128 puts every lane on its own line (degree 32), 64 gives
    degree 16, and so on down to fully coalesced at stride 4.
    """
    layout = Layout()
    inputs = [
        layout.array(scale.n_elements * stride_bytes) for _ in range(n_loads)
    ]
    output = layout.array(scale.n_elements * stride_bytes)
    b = KernelBuilder(name, suite)
    with grid_stride(b, scale) as idx:
        offset = b.imul(idx, stride_bytes)
        acc = b.mov(1.0)
        for base in inputs:
            value = b.ld(b.iadd(offset, base))
            acc = b.ffma(value, 2.0, acc)
        b.st(b.iadd(offset, output), acc)
    b.exit()
    return b.build(scale.n_threads, scale.block_size), MemoryImage()


def transpose_scatter(
    name: str,
    scale: Scale,
    row_words: int = 1024,
    suite: str = "synthetic",
) -> KernelAndMemory:
    """Coalesced loads, column-major (fully divergent) stores.

    The write-traffic pathology of matrix transpose: reads coalesce, the
    scatter store touches one line per lane.
    """
    layout = Layout()
    src = layout.array(scale.n_elements * WORD)
    dst = layout.array(scale.n_elements * row_words * WORD)
    b = KernelBuilder(name, suite)
    with grid_stride(b, scale) as idx:
        value = b.ld(b.iadd(b.imul(idx, WORD), src))
        row = b.imod(idx, row_words)
        col = b.idiv(idx, row_words)
        out = b.iadd(b.imul(b.iadd(b.imul(row, row_words), col), WORD), dst)
        b.st(out, value)
    b.exit()
    return b.build(scale.n_threads, scale.block_size), MemoryImage(
        track_stores=False
    )


# ---------------------------------------------------------------------------
# Compute-bound
# ---------------------------------------------------------------------------


def compute_chain(
    name: str,
    scale: Scale,
    chain: int = 32,
    ilp: int = 1,
    use_sfu: bool = False,
    suite: str = "synthetic",
) -> KernelAndMemory:
    """Dependent FP (or SFU) chains with ``ilp`` independent streams.

    ``ilp = 1`` maximises dependence stalls; larger ILP approaches
    issue-bound behaviour.
    """
    layout = Layout()
    output = layout.array(scale.n_threads * WORD)
    b = KernelBuilder(name, suite)
    tid = b.tid()
    accs = [b.mov(1.0 + i) for i in range(ilp)]
    for step in range(chain * scale.iters):
        lane = step % ilp
        if use_sfu and step % 4 == 0:
            accs[lane] = b.fsqrt(accs[lane], dst=accs[lane])
        else:
            accs[lane] = b.ffma(accs[lane], 1.0001, 0.25, dst=accs[lane])
    total = accs[0]
    for extra in accs[1:]:
        total = b.fadd(total, extra, dst=total)
    b.st(b.iadd(b.imul(tid, WORD), output), total)
    b.exit()
    return b.build(scale.n_threads, scale.block_size), MemoryImage()


def mandelbrot_like(
    name: str,
    scale: Scale,
    max_iters: int = 16,
    suite: str = "synthetic",
) -> KernelAndMemory:
    """Control-divergent compute: data-dependent escape-time loop.

    Each thread loads its trip count (pseudo-uniform in [1, max_iters])
    and iterates a dependent FP recurrence — lanes exit at different
    times, shrinking the active mask exactly like an escape-time fractal.
    """
    layout = Layout()
    trips = layout.array(scale.n_threads * WORD)
    output = layout.array(scale.n_threads * WORD)
    b = KernelBuilder(name, suite)
    tid = b.tid()
    word = b.imul(tid, WORD)
    limit = b.ld(b.iadd(word, trips))
    z = b.mov(0.1)
    count = b.mov(0)
    head = b.loop_begin()
    z = b.ffma(z, z, 0.3, dst=z)
    z = b.fmul(z, 0.9, dst=z)
    count = b.iadd(count, 1, dst=count)
    pred = b.setp_lt(count, limit)
    b.loop_end(head, pred)
    b.st(b.iadd(word, output), z)
    b.exit()
    memory = MemoryImage()
    # Escape times are spatially correlated (points near the set iterate
    # long, points far from it exit immediately): a gradient across the
    # grid makes whole warps cheap or expensive, so warps are genuinely
    # heterogeneous and representative-warp selection matters (Fig. 7).
    memory.add_gradient_int_region(
        trips, scale.n_threads * WORD, 1, max_iters * scale.iters,
        waves=1.5, jitter=0.35, salt=7,
    )
    return b.build(scale.n_threads, scale.block_size), memory


def blackscholes_like(
    name: str,
    scale: Scale,
    suite: str = "synthetic",
) -> KernelAndMemory:
    """SFU-heavy option pricing: coalesced loads, exp/log/sqrt chain."""
    layout = Layout()
    spot = layout.array(scale.n_elements * WORD)
    strike = layout.array(scale.n_elements * WORD)
    call_out = layout.array(scale.n_elements * WORD)
    put_out = layout.array(scale.n_elements * WORD)
    b = KernelBuilder(name, suite)
    with grid_stride(b, scale) as idx:
        word = b.imul(idx, WORD)
        s = b.ld(b.iadd(word, spot))
        k = b.ld(b.iadd(word, strike))
        ratio = b.fmul(s, b.frcp(b.fadd(k, 0.01)))
        d1 = b.flog(ratio)
        d1 = b.fadd(d1, 0.08, dst=d1)
        vol = b.fsqrt(b.fabs(d1))
        d2 = b.fsub(d1, vol)
        nd1 = b.fexp(b.fneg(b.fmul(d1, d1)))
        nd2 = b.fexp(b.fneg(b.fmul(d2, d2)))
        call = b.fsub(b.fmul(s, nd1), b.fmul(k, nd2))
        put = b.fsub(b.fmul(k, nd2), b.fmul(s, nd1))
        b.st(b.iadd(word, call_out), call)
        b.st(b.iadd(word, put_out), put)
    b.exit()
    return b.build(scale.n_threads, scale.block_size), MemoryImage()


def nbody_tile(
    name: str,
    scale: Scale,
    n_bodies: int = 16,
    suite: str = "synthetic",
) -> KernelAndMemory:
    """Broadcast-load compute loop: all lanes read the same body position.

    Broadcast loads coalesce to one request and hit the L1 after the
    first pass — a compute-bound kernel with token memory traffic.
    """
    layout = Layout()
    bodies = layout.array(n_bodies * scale.iters * WORD)
    output = layout.array(scale.n_threads * WORD)
    b = KernelBuilder(name, suite)
    tid = b.tid()
    accel = b.mov(0.0)
    pos = b.fmul(tid, 0.001)
    index = b.mov(0)
    head = b.loop_begin()
    body = b.ld(b.iadd(b.imul(index, WORD), bodies))
    dist = b.fsub(body, pos)
    dist2 = b.ffma(dist, dist, 0.01)
    inv = b.frsqrt(dist2)
    inv3 = b.fmul(b.fmul(inv, inv), inv)
    accel = b.ffma(dist, inv3, accel, dst=accel)
    index = b.iadd(index, 1, dst=index)
    pred = b.setp_lt(index, n_bodies * scale.iters)
    b.loop_end(head, pred)
    b.st(b.iadd(b.imul(tid, WORD), output), accel)
    b.exit()
    memory = MemoryImage()
    memory.add_linear_region(bodies, n_bodies * scale.iters * WORD, scale=0.25)
    return b.build(scale.n_threads, scale.block_size), memory


# ---------------------------------------------------------------------------
# Gathers and irregular memory
# ---------------------------------------------------------------------------


def gather(
    name: str,
    scale: Scale,
    table_words: int,
    n_gathers: int = 4,
    suite: str = "synthetic",
) -> KernelAndMemory:
    """Random gather through an index array.

    ``table_words`` tunes the footprint: a table that fits in the L1
    yields divergent-but-cached accesses (the ``invert_mapping`` load
    pattern); a huge table defeats both caches and saturates MSHRs.
    """
    layout = Layout()
    indices = layout.array(scale.n_elements * WORD * n_gathers)
    table = layout.array(table_words * WORD)
    output = layout.array(scale.n_elements * WORD)
    b = KernelBuilder(name, suite)
    with grid_stride(b, scale) as idx:
        word = b.imul(idx, WORD)
        acc = b.mov(0.0)
        for g in range(n_gathers):
            index = b.ld(b.iadd(word, indices + g * scale.n_elements * WORD))
            addr = b.iadd(b.imul(index, WORD), table)
            value = b.ld(addr)
            acc = b.ffma(value, 1.1, acc)
        b.st(b.iadd(word, output), acc)
    b.exit()
    memory = MemoryImage()
    memory.add_uniform_int_region(
        indices, scale.n_elements * WORD * n_gathers, 0, table_words, salt=13
    )
    return b.build(scale.n_threads, scale.block_size), memory


def spmv_like(
    name: str,
    scale: Scale,
    max_nnz: int = 8,
    n_cols: int = 1 << 16,
    suite: str = "synthetic",
) -> KernelAndMemory:
    """Sparse matrix-vector product: variable row lengths + gathers.

    Control divergence from per-row nnz counts plus memory divergence
    from column gathers — both axes at once, like graph workloads.
    """
    layout = Layout()
    row_len = layout.array(scale.n_threads * WORD)
    cols = layout.array(scale.n_threads * max_nnz * WORD)
    values = layout.array(scale.n_threads * max_nnz * WORD)
    vector = layout.array(n_cols * WORD)
    output = layout.array(scale.n_threads * WORD)
    b = KernelBuilder(name, suite)
    tid = b.tid()
    word = b.imul(tid, WORD)
    nnz = b.ld(b.iadd(word, row_len))
    base = b.imul(tid, max_nnz * WORD)
    acc = b.mov(0.0)
    k = b.mov(0)
    head = b.loop_begin()
    element = b.iadd(base, b.imul(k, WORD))
    col = b.ld(b.iadd(element, cols))
    val = b.ld(b.iadd(element, values))
    x = b.ld(b.iadd(b.imul(col, WORD), vector))
    acc = b.ffma(val, x, acc, dst=acc)
    k = b.iadd(k, 1, dst=k)
    pred = b.setp_lt(k, nnz)
    b.loop_end(head, pred)
    b.st(b.iadd(word, output), acc)
    b.exit()
    memory = MemoryImage()
    # Row lengths follow the matrix structure (dense bands vs. sparse
    # tails), so nearby rows — and hence whole warps — have correlated
    # trip counts.
    memory.add_gradient_int_region(
        row_len, scale.n_threads * WORD, 1, max_nnz * scale.iters + 1,
        waves=2.5, jitter=0.4, salt=3,
    )
    memory.add_uniform_int_region(
        cols, scale.n_threads * max_nnz * WORD, 0, n_cols, salt=5
    )
    return b.build(scale.n_threads, scale.block_size), memory


def bfs_like(
    name: str,
    scale: Scale,
    max_degree: int = 6,
    n_nodes: int = 1 << 18,
    suite: str = "synthetic",
) -> KernelAndMemory:
    """Frontier expansion: visit a variable number of random neighbours.

    Half the threads find their node unvisited (guarded by an ``if``) and
    walk its adjacency list; edge targets are random gathers over a large
    node array.  Strong control *and* memory divergence.
    """
    layout = Layout()
    visited = layout.array(scale.n_threads * WORD)
    degree = layout.array(scale.n_threads * WORD)
    edges = layout.array(scale.n_threads * max_degree * scale.iters * WORD)
    levels = layout.array(n_nodes * WORD)
    b = KernelBuilder(name, suite)
    tid = b.tid()
    word = b.imul(tid, WORD)
    is_active = b.ld(b.iadd(word, visited))
    active_pred = b.setp_ne(is_active, 0)
    with b.if_(active_pred):
        deg = b.ld(b.iadd(word, degree))
        base = b.imul(tid, max_degree * scale.iters * WORD)
        k = b.mov(0)
        head = b.loop_begin()
        neighbor = b.ld(b.iadd(b.iadd(base, b.imul(k, WORD)), edges))
        level_addr = b.iadd(b.imul(neighbor, WORD), levels)
        level = b.ld(level_addr)
        b.st(level_addr, b.fadd(level, 1.0))
        k = b.iadd(k, 1, dst=k)
        pred = b.setp_lt(k, deg)
        b.loop_end(head, pred)
    b.exit()
    memory = MemoryImage(track_stores=False)
    # Frontier membership is clustered in real BFS levels: some regions
    # of the node array are dense (most warps fully active) and others
    # are sparse (warps nearly idle) — inter-warp heterogeneity again.
    memory.add_gradient_int_region(
        visited, scale.n_threads * WORD, 0, 2, waves=1.0, jitter=0.5, salt=2
    )
    memory.add_gradient_int_region(
        degree, scale.n_threads * WORD, 1, max_degree * scale.iters + 1,
        waves=3.0, jitter=0.4, salt=11,
    )
    memory.add_uniform_int_region(
        edges, scale.n_threads * max_degree * scale.iters * WORD, 0, n_nodes,
        salt=17,
    )
    return b.build(scale.n_threads, scale.block_size), memory


def histogram_like(
    name: str,
    scale: Scale,
    n_bins: int = 4096,
    n_samples: int = 4,
    suite: str = "synthetic",
) -> KernelAndMemory:
    """Scatter read-modify-write into a bin array (no atomics modeled)."""
    layout = Layout()
    samples = layout.array(scale.n_elements * n_samples * WORD)
    bins = layout.array(n_bins * WORD)
    b = KernelBuilder(name, suite)
    with grid_stride(b, scale) as idx:
        for s in range(n_samples):
            sample = b.ld(
                b.iadd(b.imul(idx, WORD), samples + s * scale.n_elements * WORD)
            )
            bin_addr = b.iadd(b.imul(sample, WORD), bins)
            count = b.ld(bin_addr)
            b.st(bin_addr, b.fadd(count, 1.0))
    b.exit()
    memory = MemoryImage(track_stores=False)
    memory.add_uniform_int_region(
        samples, scale.n_elements * n_samples * WORD, 0, n_bins, salt=23
    )
    return b.build(scale.n_threads, scale.block_size), memory


# ---------------------------------------------------------------------------
# Stencils and cache-friendly kernels
# ---------------------------------------------------------------------------


def stencil_1d(
    name: str,
    scale: Scale,
    radius: int = 2,
    suite: str = "synthetic",
) -> KernelAndMemory:
    """1-D stencil: neighbouring threads share lines -> strong L1 reuse."""
    layout = Layout()
    grid = layout.array((scale.n_elements + 2 * radius) * WORD)
    output = layout.array(scale.n_elements * WORD)
    b = KernelBuilder(name, suite)
    with grid_stride(b, scale) as idx:
        center = b.iadd(b.imul(idx, WORD), grid + radius * WORD)
        acc = b.mov(0.0)
        for offset in range(-radius, radius + 1):
            value = b.ld(center, offset=offset * WORD)
            acc = b.ffma(value, 1.0 / (2 * radius + 1), acc)
        b.st(b.iadd(b.imul(idx, WORD), output), acc)
    b.exit()
    return b.build(scale.n_threads, scale.block_size), MemoryImage()


def stencil_2d(
    name: str,
    scale: Scale,
    row_words: int = 256,
    chain: int = 4,
    strided_load_words: int = 0,
    suite: str = "synthetic",
) -> KernelAndMemory:
    """2-D five-point stencil over a row-major grid (SRAD/hotspot shape).

    North/south neighbours live one row away: coalesced per warp but a
    different line per row, exercising L2 locality; a short FP chain
    (the SRAD divergence computation) follows.  ``strided_load_words``
    adds one load from a transposed coefficient array at that element
    stride — SRAD-style divergent accesses.
    """
    layout = Layout()
    n_cells = scale.n_elements + 2 * row_words
    grid = layout.array(n_cells * WORD)
    output = layout.array(scale.n_elements * WORD)
    coeff = (
        layout.array(scale.n_elements * strided_load_words * WORD)
        if strided_load_words
        else None
    )
    b = KernelBuilder(name, suite)
    with grid_stride(b, scale) as idx:
        center = b.iadd(b.imul(idx, WORD), grid + row_words * WORD)
        c = b.ld(center)
        n = b.ld(center, offset=-row_words * WORD)
        s = b.ld(center, offset=row_words * WORD)
        w = b.ld(center, offset=-WORD)
        e = b.ld(center, offset=WORD)
        lap = b.fadd(b.fadd(n, s), b.fadd(w, e))
        lap = b.fsub(lap, b.fmul(c, 4.0), dst=lap)
        g = b.fmul(lap, b.frcp(b.fadd(c, 0.01)))
        if coeff is not None:
            scale_val = b.ld(
                b.iadd(b.imul(idx, strided_load_words * WORD), coeff)
            )
            g = b.ffma(g, scale_val, 0.0001, dst=g)
        for _ in range(chain):
            g = b.ffma(g, 0.9, 0.001, dst=g)
        b.st(b.iadd(b.imul(idx, WORD), output), g)
    b.exit()
    return b.build(scale.n_threads, scale.block_size), MemoryImage()


def matmul_tile(
    name: str,
    scale: Scale,
    k_dim: int = 16,
    suite: str = "synthetic",
) -> KernelAndMemory:
    """Inner-product loop: one coalesced row load + one broadcast load.

    The broadcast column load hits the L1 after its first touch, so the
    kernel mixes streaming traffic with cache-resident traffic.
    """
    layout = Layout()
    a = layout.array(scale.n_threads * k_dim * scale.iters * WORD)
    bmat = layout.array(k_dim * scale.iters * WORD)
    c = layout.array(scale.n_threads * WORD)
    b = KernelBuilder(name, suite)
    tid = b.tid()
    acc = b.mov(0.0)
    k = b.mov(0)
    row = b.imul(tid, WORD)
    head = b.loop_begin()
    a_val = b.ld(b.iadd(row, b.iadd(b.imul(k, scale.n_threads * WORD), a)))
    b_val = b.ld(b.iadd(b.imul(k, WORD), bmat))
    acc = b.ffma(a_val, b_val, acc, dst=acc)
    k = b.iadd(k, 1, dst=k)
    pred = b.setp_lt(k, k_dim * scale.iters)
    b.loop_end(head, pred)
    b.st(b.iadd(row, c), acc)
    b.exit()
    return b.build(scale.n_threads, scale.block_size), MemoryImage()


def reduction_tree(
    name: str,
    scale: Scale,
    suite: str = "synthetic",
) -> KernelAndMemory:
    """Tree reduction with halving active masks (structured divergence)."""
    layout = Layout()
    data = layout.array(scale.n_elements * WORD)
    partial = layout.array(scale.n_elements * WORD)
    b = KernelBuilder(name, suite)
    lane = b.lane()
    with grid_stride(b, scale) as idx:
        word = b.imul(idx, WORD)
        value = b.ld(b.iadd(word, data))
        b.st(b.iadd(word, partial), value)
        stride = 16
        while stride >= 1:
            pred = b.setp_lt(lane, stride)
            with b.if_(pred):
                other = b.ld(b.iadd(word, partial), offset=stride * WORD)
                value = b.fadd(value, other, dst=value)
                b.st(b.iadd(word, partial), value)
            stride //= 2
    b.exit()
    return b.build(scale.n_threads, scale.block_size), MemoryImage(
        track_stores=True
    )


def pathfinder_like(
    name: str,
    scale: Scale,
    n_steps: int = 4,
    suite: str = "synthetic",
) -> KernelAndMemory:
    """Row-wise dynamic programming with boundary divergence.

    Each step loads three neighbours from the previous row (L1-shared),
    takes the min, with edge lanes short-circuited by an ``if``.
    """
    layout = Layout()
    rows = [
        layout.array(scale.n_elements * WORD)
        for _ in range(n_steps + 1)
    ]
    b = KernelBuilder(name, suite)
    lane = b.lane()
    edge = b.setp_gt(lane, 0)
    with grid_stride(b, scale) as idx:
        word = b.imul(idx, WORD)
        best = b.ld(b.iadd(word, rows[0]))
        for step in range(n_steps):
            left = b.mov(best)
            with b.if_(edge):
                left_val = b.ld(b.iadd(word, rows[step]), offset=-WORD)
                left = b.fmin(left, left_val, dst=left)
            right = b.ld(b.iadd(word, rows[step]), offset=WORD)
            best = b.fadd(b.fmin(left, right), 1.0, dst=best)
            b.st(b.iadd(word, rows[step + 1]), best)
    b.exit()
    return b.build(scale.n_threads, scale.block_size), MemoryImage()


# ---------------------------------------------------------------------------
# Write-heavy / paper case-study analogues
# ---------------------------------------------------------------------------


def scatter_writes(
    name: str,
    scale: Scale,
    n_stores: int = 4,
    stride_bytes: int = LINE,
    suite: str = "synthetic",
) -> KernelAndMemory:
    """Write-bound kernel: little compute, heavy divergent store traffic.

    The ``sad`` analogue: store bandwidth dominates, and because stores
    never occupy MSHRs only the DRAM-bandwidth model can see the
    bottleneck.
    """
    layout = Layout()
    src = layout.array(scale.n_elements * WORD)
    outs = [
        layout.array(scale.n_elements * stride_bytes) for _ in range(n_stores)
    ]
    b = KernelBuilder(name, suite)
    with grid_stride(b, scale) as idx:
        value = b.ld(b.iadd(b.imul(idx, WORD), src))
        offset = b.imul(idx, stride_bytes)
        for out in outs:
            value = b.ffma(value, 1.01, 0.5, dst=value)
            b.st(b.iadd(offset, out), value)
    b.exit()
    return b.build(scale.n_threads, scale.block_size), MemoryImage(
        track_stores=False
    )


def invert_mapping_like(
    name: str,
    scale: Scale,
    n_features: int = 8,
    table_words: int = 2048,
    suite: str = "synthetic",
) -> KernelAndMemory:
    """The ``kmeans_invert_mapping`` analogue (Sec. VII case study).

    Loads gather from a small, L1-resident table (high hit rate, so the
    MSHR file stays quiet despite 32-way divergence) while the stores
    scatter column-major across a huge array — pure DRAM write bandwidth
    pressure that only the QUEUE model captures.
    """
    layout = Layout()
    indices = layout.array(scale.n_elements * WORD)
    table = layout.array(table_words * WORD)
    output = layout.array(scale.n_elements * n_features * LINE)
    b = KernelBuilder(name, suite)
    with grid_stride(b, scale) as idx:
        word = b.imul(idx, WORD)
        index = b.ld(b.iadd(word, indices))
        col = b.imul(idx, n_features * LINE)
        for feature in range(n_features):
            value = b.ld(
                b.iadd(b.imul(index, WORD), table), offset=feature * WORD
            )
            value = b.ffma(value, 0.5, float(feature))
            b.st(b.iadd(col, output), value, offset=feature * LINE)
    b.exit()
    memory = MemoryImage(track_stores=False)
    memory.add_uniform_int_region(
        indices, scale.n_elements * WORD, 0, table_words - n_features, salt=29
    )
    return b.build(scale.n_threads, scale.block_size), memory


def matmul_smem_tiled(
    name: str,
    scale: Scale,
    k_dim: int = 16,
    conflict_stride_words: int = 1,
    suite: str = "synthetic",
) -> KernelAndMemory:
    """Shared-memory-tiled inner product (extension workload).

    Each iteration stages a tile element through the scratchpad before
    the FMA, the classic smem-tiled GEMM structure.  The scratchpad
    layout stride controls bank behaviour: 1 word is conflict-free,
    32 words puts every lane on the same bank (32-way conflicts) — the
    padding-vs-no-padding optimisation this kernel family is known for.
    """
    layout = Layout()
    a = layout.array(scale.n_threads * k_dim * scale.iters * WORD)
    c = layout.array(scale.n_threads * WORD)
    b = KernelBuilder(name, suite)
    tid = b.tid()
    lane = b.lane()
    slot = b.imul(lane, conflict_stride_words * WORD)
    acc = b.mov(0.0)
    k = b.mov(0)
    row = b.imul(tid, WORD)
    head = b.loop_begin()
    a_val = b.ld(b.iadd(row, b.iadd(b.imul(k, scale.n_threads * WORD), a)))
    b.sts(slot, a_val)  # stage the tile element
    staged = b.lds(slot)
    acc = b.ffma(staged, 1.25, acc, dst=acc)
    k = b.iadd(k, 1, dst=k)
    pred = b.setp_lt(k, k_dim * scale.iters)
    b.loop_end(head, pred)
    b.st(b.iadd(row, c), acc)
    b.exit()
    return b.build(scale.n_threads, scale.block_size), MemoryImage()


def cfd_step_factor_like(
    name: str,
    scale: Scale,
    suite: str = "rodinia",
) -> KernelAndMemory:
    """``cfd_step_factor`` analogue: fully coalesced, DRAM-streaming.

    Three coalesced loads (density, momentum, energy), a reciprocal-
    square-root step computation, one coalesced store — no locality, no
    divergence (Sec. VII: 'a coalesced kernel with no divergent
    accesses').
    """
    layout = Layout()
    density = layout.array(scale.n_elements * WORD)
    momentum = layout.array(scale.n_elements * WORD)
    energy = layout.array(scale.n_elements * WORD)
    step_out = layout.array(scale.n_elements * WORD)
    b = KernelBuilder(name, suite)
    with grid_stride(b, scale) as idx:
        word = b.imul(idx, WORD)
        rho = b.ld(b.iadd(word, density))
        mom = b.ld(b.iadd(word, momentum))
        ene = b.ld(b.iadd(word, energy))
        vel = b.fmul(mom, b.frcp(b.fadd(rho, 0.01)))
        pressure = b.fmul(b.fsub(ene, b.fmul(vel, mom)), 0.4)
        speed = b.fsqrt(b.fabs(b.fmul(pressure, b.frcp(b.fadd(rho, 0.01)))))
        factor = b.fmul(b.frcp(b.fadd(b.fabs(vel), speed)), 0.5)
        b.st(b.iadd(word, step_out), factor)
    b.exit()
    return b.build(scale.n_threads, scale.block_size), MemoryImage()


def cfd_compute_flux_like(
    name: str,
    scale: Scale,
    max_offset: int = 512,
    suite: str = "rodinia",
) -> KernelAndMemory:
    """``cfd_compute_flux`` analogue: medium divergence, L2 locality.

    Four neighbour gathers within a +-``max_offset``-element window (up
    to ~16 distinct lines per warp) feed a flux computation — 'some
    memory instructions have up to 16 diverged requests', working set
    larger than L1 but L2-effective.
    """
    layout = Layout()
    neighbors = layout.array(scale.n_elements * 4 * WORD)
    state = layout.array((scale.n_elements + 2 * max_offset) * WORD)
    flux_out = layout.array(scale.n_elements * WORD)
    b = KernelBuilder(name, suite)
    with grid_stride(b, scale) as idx:
        word = b.imul(idx, WORD)
        acc = b.mov(0.0)
        for n in range(4):
            nb = b.ld(b.iadd(word, neighbors + n * scale.n_elements * WORD))
            pos = b.iadd(idx, nb)
            value = b.ld(
                b.iadd(b.imul(pos, WORD), state + max_offset * WORD)
            )
            diff = b.fsub(value, acc)
            acc = b.ffma(diff, 0.25, acc, dst=acc)
        vel = b.fmul(acc, 1.3)
        flux = b.ffma(vel, vel, acc)
        b.st(b.iadd(word, flux_out), flux)
    b.exit()
    memory = MemoryImage()
    memory.add_uniform_int_region(
        neighbors,
        scale.n_elements * 4 * WORD,
        -max_offset,
        max_offset,
        salt=31,
    )
    return b.build(scale.n_threads, scale.block_size), memory
