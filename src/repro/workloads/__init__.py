"""Synthetic workload suite standing in for Rodinia / Parboil / NVIDIA SDK.

The paper evaluates 40 kernels from Rodinia 2.1, Parboil 2.5 and the
NVIDIA SDK.  We cannot execute CUDA binaries, so this package provides 40
kernels written in the mini ISA that span the same behavioural axes the
paper's models react to — memory-divergence degree, control divergence,
cache locality, write traffic and compute intensity.  Three kernels are
deliberate analogues of the paper's Sec. VII case studies
(``cfd_step_factor``, ``cfd_compute_flux``, ``kmeans_invert_mapping``).
"""

from repro.workloads.generators import Layout, Scale
from repro.workloads.suite import (
    SUITE,
    KernelSpec,
    get_kernel,
    kernel_names,
    kernels_with_tag,
)

__all__ = [
    "KernelSpec",
    "Layout",
    "SUITE",
    "Scale",
    "get_kernel",
    "kernel_names",
    "kernels_with_tag",
]
