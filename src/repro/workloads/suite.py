"""The 40-kernel evaluation suite (paper Sec. VI-A).

Each entry names a kernel after its closest Rodinia / Parboil / NVIDIA-SDK
inspiration and binds a generator with fixed parameters.  Tags classify
kernels along the behavioural axes the experiments select on:

``coalesced``
    Unit-stride traffic, one request per memory instruction.
``compute``
    Arithmetic-dominated; memory is incidental.
``control_divergent``
    Data-dependent branches/loops that split warps (the Fig. 7 subset).
``divergent``
    Memory divergence: > 1 coalesced request per memory instruction.
``write_heavy``
    Store traffic dominates (the DRAM-bandwidth-model subset).
``cache_friendly``
    Significant L1/L2 reuse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.isa.kernel import Kernel
from repro.trace.memory_image import MemoryImage
from repro.workloads import generators as g
from repro.workloads.generators import Scale

GeneratorFn = Callable[[str, Scale], Tuple[Kernel, MemoryImage]]


@dataclass(frozen=True)
class KernelSpec:
    """A named, fully parameterised kernel of the suite."""

    name: str
    suite: str
    tags: FrozenSet[str]
    description: str
    _factory: Callable[[Scale], Tuple[Kernel, MemoryImage]]

    def build(self, scale: Optional[Scale] = None) -> Tuple[Kernel, MemoryImage]:
        """Instantiate the kernel (default scale: :meth:`Scale.small`)."""
        return self._factory(scale if scale is not None else Scale.small())


def _spec(name, suite, tags, description, factory) -> KernelSpec:
    return KernelSpec(
        name=name,
        suite=suite,
        tags=frozenset(tags),
        description=description,
        _factory=factory,
    )


def _build_suite() -> Dict[str, KernelSpec]:
    specs: List[KernelSpec] = [
        # -- Coalesced streaming ------------------------------------------------
        _spec(
            "vectoradd", "sdk", {"coalesced"},
            "two coalesced loads, one add, one store",
            lambda s: g.streaming("vectoradd", s, n_arrays=2, chain=0,
                                  suite="sdk"),
        ),
        _spec(
            "saxpy", "sdk", {"coalesced"},
            "y = a*x + y with a short FP tail",
            lambda s: g.streaming("saxpy", s, n_arrays=2, chain=2, suite="sdk"),
        ),
        _spec(
            "lbm_stream", "parboil", {"coalesced"},
            "lattice-Boltzmann-like 8-array streaming",
            lambda s: g.streaming("lbm_stream", s, n_arrays=8, chain=2,
                                  suite="parboil"),
        ),
        _spec(
            "backprop_adjust", "rodinia", {"coalesced"},
            "weight adjustment: three streams and an FP chain",
            lambda s: g.streaming("backprop_adjust", s, n_arrays=3, chain=4,
                                  suite="rodinia"),
        ),
        _spec(
            "cfd_step_factor", "rodinia", {"coalesced"},
            "Sec. VII case study: coalesced, DRAM-streaming, no locality",
            lambda s: g.cfd_step_factor_like("cfd_step_factor", s),
        ),
        # -- Compute-bound ------------------------------------------------------
        _spec(
            "blackscholes", "sdk", {"compute", "coalesced"},
            "SFU-heavy option pricing on coalesced streams",
            lambda s: g.blackscholes_like("blackscholes", s, suite="sdk"),
        ),
        _spec(
            "binomial_options", "sdk", {"compute"},
            "long FFMA chains with ILP 2",
            lambda s: g.compute_chain("binomial_options", s, chain=48, ilp=2,
                                      suite="sdk"),
        ),
        _spec(
            "quasirandom", "sdk", {"compute"},
            "four independent FFMA streams (issue-bound)",
            lambda s: g.compute_chain("quasirandom", s, chain=32, ilp=4,
                                      suite="sdk"),
        ),
        _spec(
            "leukocyte_find", "rodinia", {"compute"},
            "dependent SFU/FP chain (latency-bound)",
            lambda s: g.compute_chain("leukocyte_find", s, chain=24, ilp=1,
                                      use_sfu=True, suite="rodinia"),
        ),
        _spec(
            "lavamd_force", "rodinia", {"compute", "cache_friendly"},
            "n-body force loop over broadcast-resident particles",
            lambda s: g.nbody_tile("lavamd_force", s, n_bodies=16,
                                   suite="rodinia"),
        ),
        _spec(
            "mri_q", "parboil", {"compute", "cache_friendly"},
            "Q-matrix loop: broadcast loads + FP recurrence",
            lambda s: g.nbody_tile("mri_q", s, n_bodies=24, suite="parboil"),
        ),
        # -- Control-divergent ---------------------------------------------------
        _spec(
            "mandelbrot", "sdk", {"compute", "control_divergent"},
            "escape-time loop with per-lane trip counts",
            lambda s: g.mandelbrot_like("mandelbrot", s, max_iters=24,
                                        suite="sdk"),
        ),
        _spec(
            "bfs_kernel1", "rodinia", {"control_divergent", "divergent"},
            "frontier expansion: half-active warps, random gathers",
            lambda s: g.bfs_like("bfs_kernel1", s, max_degree=6,
                                 suite="rodinia"),
        ),
        _spec(
            "bfs_parboil", "parboil", {"control_divergent", "divergent"},
            "deeper adjacency walk over a larger graph",
            lambda s: g.bfs_like("bfs_parboil", s, max_degree=8,
                                 n_nodes=1 << 20, suite="parboil"),
        ),
        _spec(
            "spmv_jds", "parboil", {"control_divergent", "divergent"},
            "sparse MxV: variable row lengths + column gathers",
            lambda s: g.spmv_like("spmv_jds", s, max_nnz=8, suite="parboil"),
        ),
        _spec(
            "reduction_k1", "sdk", {"control_divergent", "cache_friendly"},
            "tree reduction with halving active masks",
            lambda s: g.reduction_tree("reduction_k1", s, suite="sdk"),
        ),
        _spec(
            "lud_perimeter", "rodinia", {"control_divergent", "cache_friendly"},
            "row-sweep with boundary-lane predicates",
            lambda s: g.pathfinder_like("lud_perimeter", s, n_steps=6,
                                        suite="rodinia"),
        ),
        _spec(
            "pathfinder_dynproc", "rodinia",
            {"control_divergent", "cache_friendly"},
            "dynamic-programming row relaxation",
            lambda s: g.pathfinder_like("pathfinder_dynproc", s, n_steps=4,
                                        suite="rodinia"),
        ),
        # -- Memory-divergent -----------------------------------------------------
        _spec(
            "strided_deg4", "micro", {"divergent"},
            "16-byte stride: 4 requests per load",
            lambda s: g.strided("strided_deg4", s, stride_bytes=16,
                                suite="micro"),
        ),
        _spec(
            "strided_deg8", "micro", {"divergent"},
            "32-byte stride: 8 requests per load",
            lambda s: g.strided("strided_deg8", s, stride_bytes=32,
                                suite="micro"),
        ),
        _spec(
            "strided_deg16", "micro", {"divergent"},
            "64-byte stride: 16 requests per load",
            lambda s: g.strided("strided_deg16", s, stride_bytes=64,
                                suite="micro"),
        ),
        _spec(
            "strided_deg32", "micro", {"divergent"},
            "128-byte stride: fully diverged loads",
            lambda s: g.strided("strided_deg32", s, stride_bytes=128,
                                suite="micro"),
        ),
        _spec(
            "kmeans_point", "rodinia", {"divergent"},
            "random gathers over a DRAM-resident table",
            lambda s: g.gather("kmeans_point", s, table_words=1 << 20,
                               n_gathers=4, suite="rodinia"),
        ),
        _spec(
            "tpacf_gen", "parboil", {"divergent"},
            "six-deep random gathers (angular correlation)",
            lambda s: g.gather("tpacf_gen", s, table_words=1 << 18,
                               n_gathers=6, suite="parboil"),
        ),
        _spec(
            "streamcluster_dist", "rodinia", {"divergent", "cache_friendly"},
            "gathers over an L2-resident working set",
            lambda s: g.gather("streamcluster_dist", s, table_words=1 << 14,
                               n_gathers=4, suite="rodinia"),
        ),
        _spec(
            "mri_gridding", "parboil", {"divergent", "write_heavy"},
            "scatter accumulation onto a large grid",
            lambda s: g.histogram_like("mri_gridding", s, n_bins=1 << 15,
                                       n_samples=4, suite="parboil"),
        ),
        _spec(
            "histo_main", "parboil",
            {"divergent", "write_heavy", "cache_friendly"},
            "histogram over a small contended bin array",
            lambda s: g.histogram_like("histo_main", s, n_bins=4096,
                                       n_samples=6, suite="parboil"),
        ),
        _spec(
            "cfd_compute_flux", "rodinia", {"divergent", "cache_friendly"},
            "Sec. VII case study: medium divergence, L2-effective",
            lambda s: g.cfd_compute_flux_like("cfd_compute_flux", s),
        ),
        # -- Write-heavy -----------------------------------------------------------
        _spec(
            "sad_calc_8", "parboil", {"write_heavy", "divergent"},
            "four divergent stores per thread (SAD write traffic)",
            lambda s: g.scatter_writes("sad_calc_8", s, n_stores=4,
                                       stride_bytes=128, suite="parboil"),
        ),
        _spec(
            "sad_calc_16", "parboil", {"write_heavy", "divergent"},
            "eight divergent stores per thread",
            lambda s: g.scatter_writes("sad_calc_16", s, n_stores=8,
                                       stride_bytes=128, suite="parboil"),
        ),
        _spec(
            "transpose_naive", "sdk", {"write_heavy", "divergent"},
            "coalesced reads, column-major scatter writes",
            lambda s: g.transpose_scatter("transpose_naive", s, suite="sdk"),
        ),
        _spec(
            "kmeans_invert_mapping", "rodinia",
            {"write_heavy", "divergent", "cache_friendly"},
            "Sec. VII case study: L1-hit gathers + divergent store scatter",
            lambda s: g.invert_mapping_like("kmeans_invert_mapping", s),
        ),
        # -- Stencils / cache-friendly ----------------------------------------------
        _spec(
            "convolution_sep", "sdk", {"cache_friendly", "coalesced"},
            "1-D convolution, radius 3 (heavy L1 reuse)",
            lambda s: g.stencil_1d("convolution_sep", s, radius=3,
                                   suite="sdk"),
        ),
        _spec(
            "heartwall_track", "rodinia", {"cache_friendly"},
            "1-D template correlation, radius 5",
            lambda s: g.stencil_1d("heartwall_track", s, radius=5,
                                   suite="rodinia"),
        ),
        _spec(
            "srad_kernel1", "rodinia", {"cache_friendly", "divergent"},
            "SRAD diffusion stencil with a divergent coefficient gather",
            lambda s: g.stencil_2d("srad_kernel1", s, row_words=256, chain=6,
                                   strided_load_words=16, suite="rodinia"),
        ),
        _spec(
            "srad_kernel2", "rodinia", {"cache_friendly"},
            "SRAD update stencil over wider rows",
            lambda s: g.stencil_2d("srad_kernel2", s, row_words=512, chain=2,
                                   suite="rodinia"),
        ),
        _spec(
            "hotspot_calc", "rodinia", {"cache_friendly"},
            "thermal 5-point stencil, narrow rows",
            lambda s: g.stencil_2d("hotspot_calc", s, row_words=128, chain=4,
                                   suite="rodinia"),
        ),
        _spec(
            "stencil_parboil", "parboil", set(),
            "7-point-style stencil over very wide rows (poor locality)",
            lambda s: g.stencil_2d("stencil_parboil", s, row_words=1024,
                                   chain=1, suite="parboil"),
        ),
        _spec(
            "sgemm_tile", "parboil", {"cache_friendly"},
            "inner-product loop, K=32, broadcast B column",
            lambda s: g.matmul_tile("sgemm_tile", s, k_dim=32,
                                    suite="parboil"),
        ),
        _spec(
            "matrixmul_sdk", "sdk", {"cache_friendly"},
            "inner-product loop, K=16",
            lambda s: g.matmul_tile("matrixmul_sdk", s, k_dim=16,
                                    suite="sdk"),
        ),
    ]
    table = {spec.name: spec for spec in specs}
    if len(table) != len(specs):
        raise RuntimeError("duplicate kernel names in suite")
    return table


#: All kernels of the evaluation suite, keyed by name.
SUITE: Dict[str, KernelSpec] = _build_suite()


def kernel_names() -> List[str]:
    """All suite kernel names, sorted."""
    return sorted(SUITE)


def kernels_with_tag(tag: str) -> List[str]:
    """Names of kernels carrying ``tag`` (sorted)."""
    return sorted(name for name, spec in SUITE.items() if tag in spec.tags)


def get_kernel(
    name: str, scale: Optional[Scale] = None
) -> Tuple[Kernel, MemoryImage]:
    """Instantiate a suite kernel by name."""
    try:
        spec = SUITE[name]
    except KeyError:
        raise KeyError(
            "unknown kernel %r; available: %s" % (name, ", ".join(kernel_names()))
        ) from None
    return spec.build(scale)
