"""Static kernel verifier: CFG + dataflow analysis over the mini SIMT ISA.

The package gives the prediction chain a correctness gate: kernels are
checked *before* they reach the emulator, the cache simulator and the
timing oracle, turning silent divergence/synchronization corruption into
pc-level diagnostics.

Layers
------
* :mod:`repro.staticcheck.cfg` — basic-block CFG, dominators and
  post-dominators (the reconvergence ground truth);
* :mod:`repro.staticcheck.dataflow` — generic worklist solver with
  reaching-definitions, liveness and divergence-taint instances;
* :mod:`repro.staticcheck.checks` — the six checks and the
  :func:`lint_kernel` / :func:`lint_program` entry points;
* :mod:`repro.staticcheck.report` — structured
  :class:`Diagnostic`/:class:`LintReport` records with text and JSON
  rendering.
"""

from repro.staticcheck.cfg import (
    BasicBlock,
    ControlFlowGraph,
    reconvergence_errors,
)
from repro.staticcheck.checks import CHECKS, lint_kernel, lint_program
from repro.staticcheck.report import (
    Diagnostic,
    LintReport,
    Severity,
    StaticCheckError,
    render_reports,
    reports_to_json,
)

__all__ = [
    "BasicBlock",
    "CHECKS",
    "ControlFlowGraph",
    "Diagnostic",
    "LintReport",
    "Severity",
    "StaticCheckError",
    "lint_kernel",
    "lint_program",
    "reconvergence_errors",
    "render_reports",
    "reports_to_json",
]
