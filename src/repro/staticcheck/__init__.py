"""Static kernel verifier: CFG + dataflow analysis over the mini SIMT ISA.

The package gives the prediction chain a correctness gate: kernels are
checked *before* they reach the emulator, the cache simulator and the
timing oracle, turning silent divergence/synchronization corruption into
pc-level diagnostics.

Layers
------
* :mod:`repro.staticcheck.cfg` — basic-block CFG, dominators and
  post-dominators (the reconvergence ground truth);
* :mod:`repro.staticcheck.dataflow` — generic worklist solver with
  reaching-definitions, liveness and divergence-taint instances;
* :mod:`repro.staticcheck.checks` — the six checks and the
  :func:`lint_kernel` / :func:`lint_program` entry points;
* :mod:`repro.staticcheck.costmodel` — abstract interpretation on top of
  the same CFG/dataflow layers: induction variables, loop trip counts,
  memory-access coalescing classes, bank conflicts, divergence regions,
  occupancy and CPI bounds (:func:`analyze_kernel`);
* :mod:`repro.staticcheck.xcheck` — the cross-validation sanitizer
  pinning dynamic trace artifacts to the statically-proven facts
  (:func:`crosscheck_kernel`);
* :mod:`repro.staticcheck.report` — structured
  :class:`Diagnostic`/:class:`LintReport` records with text and JSON
  rendering (both directions).
"""

from repro.staticcheck.cfg import (
    BasicBlock,
    ControlFlowGraph,
    reconvergence_errors,
)
from repro.staticcheck.checks import CHECKS, lint_kernel, lint_program
from repro.staticcheck.costmodel import (
    KernelCostModel,
    analyze_kernel,
    analyze_program,
)
from repro.staticcheck.report import (
    Diagnostic,
    LintReport,
    Severity,
    StaticCheckError,
    render_reports,
    reports_from_json,
    reports_to_json,
)
from repro.staticcheck.xcheck import crosscheck_kernel

__all__ = [
    "BasicBlock",
    "CHECKS",
    "ControlFlowGraph",
    "Diagnostic",
    "KernelCostModel",
    "LintReport",
    "Severity",
    "StaticCheckError",
    "analyze_kernel",
    "analyze_program",
    "crosscheck_kernel",
    "lint_kernel",
    "lint_program",
    "reconvergence_errors",
    "render_reports",
    "reports_from_json",
    "reports_to_json",
]
