"""Cross-validation sanitizer: dynamic traces vs static cost-model facts.

The dynamic collectors (functional emulator, SIMT stack, coalescer,
bank-conflict counter) and the static cost model derive the same
quantities by entirely independent routes.  Where the static side is
*proven* — exact trip counts, phase-known transaction counts, CFG
post-dominator reconvergence — any disagreement means a collector has
drifted, so it is reported as an error through the standard
:mod:`repro.staticcheck.report` machinery.  Where the static side only
bounds a quantity, the dynamic measurement must fall inside the bound.

======================== ====================================================
check id                 dynamic fact pinned to static fact
======================== ====================================================
``xcheck-structure``     every traced PC is reachable in the CFG and its
                         recorded op class matches the program
``xcheck-coalescing``    coalescer transactions per access: equal to the
                         phase-known prediction under a full mask, inside
                         ``[1, hi]`` otherwise
``xcheck-trip-count``    latch executions per loop entry (segmented from the
                         per-warp PC stream) inside the inferred trip
                         interval — equality when the trip is exact
``xcheck-divergence``    partial masks only at PCs inside a statically
                         divergent branch region (this pins the SIMT stack's
                         reconvergence behaviour to the CFG post-dominators)
``xcheck-bank-conflict`` recorded shared-memory conflict degree inside the
                         predicted interval
======================== ====================================================

Diagnostics aggregate per ``(pc, check)``: one error with an instance
count, not one per dynamic instruction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config import GPUConfig
from repro.isa.kernel import Kernel
from repro.staticcheck.cfg import ControlFlowGraph
from repro.staticcheck.costmodel import KernelCostModel, analyze_kernel
from repro.staticcheck.report import Diagnostic, LintReport, Severity
from repro.trace.trace_types import KernelTrace, OpCode


class _Mismatches:
    """Aggregates offending instances per (pc, check id)."""

    def __init__(self) -> None:
        self._hits: Dict[Tuple[int, str], List[str]] = {}

    def add(self, pc: int, check_id: str, detail: str) -> None:
        self._hits.setdefault((pc, check_id), []).append(detail)

    def diagnostics(self) -> List[Diagnostic]:
        out = []
        for (pc, check_id), details in sorted(self._hits.items()):
            message = details[0]
            if len(details) > 1:
                message += " (+%d more instance(s))" % (len(details) - 1)
            out.append(Diagnostic(pc, check_id, Severity.ERROR, message))
        return out


def _check_structure(kernel, cfg, trace, mismatches) -> None:
    n = len(kernel.program)
    op_table = np.array(
        [OpCode[inst.opclass.name].value for inst in kernel.program],
        dtype=np.int16,
    )
    reachable = np.zeros(n, dtype=bool)
    reachable[list(cfg.reachable)] = True
    for warp in trace.warps:
        pcs = np.asarray(warp.pcs, dtype=np.int64)
        bad = (pcs < 0) | (pcs >= n)
        if bad.any():
            pc = int(pcs[bad][0])
            mismatches.add(
                max(0, min(pc, n - 1)), "xcheck-structure",
                "trace visits pc %d outside the program" % pc,
            )
            return
        off_cfg = ~reachable[pcs]
        for pc in np.unique(pcs[off_cfg]):
            mismatches.add(
                int(pc), "xcheck-structure",
                "trace visits pc %d, statically unreachable" % int(pc),
            )
        wrong = np.asarray(warp.ops, dtype=np.int16) != op_table[pcs]
        for pc in np.unique(pcs[wrong]):
            mismatches.add(
                int(pc), "xcheck-structure",
                "recorded op class at pc %d disagrees with the program"
                % int(pc),
            )


def _check_coalescing(cost, trace, config, mismatches) -> None:
    accesses = {
        a.pc: a for a in cost.accesses if a.space == "global"
    }
    for warp in trace.warps:
        requests = np.diff(warp.req_offsets)
        for i, pc in enumerate(warp.pcs):
            access = accesses.get(int(pc))
            if access is None:
                continue
            measured = int(requests[i])
            interval = access.transactions
            hi = config.warp_size if interval.hi is None else interval.hi
            full = int(warp.active[i]) == config.warp_size
            if (full and access.phase_known
                    and not access.under_divergent_control):
                if not interval.contains(measured):
                    mismatches.add(int(pc), "xcheck-coalescing", (
                        "coalescer measured %d transaction(s), static "
                        "model predicts %s (%s, phase known, full mask)"
                        % (measured, interval.render(), access.label)
                    ))
            elif not 1 <= measured <= hi:
                mismatches.add(int(pc), "xcheck-coalescing", (
                    "coalescer measured %d transaction(s) outside the "
                    "sound bound [1, %d] (%s)"
                    % (measured, hi, access.label)
                ))


def _check_trip_counts(cost, trace, mismatches) -> None:
    loops = [loop for loop in cost.loops if loop.latches]
    if not loops:
        return
    exit_code = OpCode.EXIT.value
    for warp in trace.warps:
        if len(warp.ops) == 0 or int(warp.ops[-1]) != exit_code:
            continue  # incomplete trace: segmentation would be meaningless
        pcs = warp.pcs
        for loop in loops:
            # Latch executions per loop entry: a head occurrence whose
            # predecessor in the stream is a latch continues the current
            # entry; anything else starts a new one.
            trips: List[int] = []
            positions = np.flatnonzero(pcs == loop.head)
            for idx in positions:
                continuation = idx > 0 and int(pcs[idx - 1]) in loop.latches
                if continuation and trips:
                    trips[-1] += 1
                else:
                    trips.append(1)
            for measured in trips:
                if not loop.trip.contains(measured):
                    mismatches.add(loop.head, "xcheck-trip-count", (
                        "emulator ran the loop at pc %d for %d "
                        "iteration(s); static trip count is %s%s"
                        % (loop.head, measured, loop.trip.render(),
                           " (exact)" if loop.trip.is_exact else "")
                    ))
                    break


def _check_divergence(cost, trace, mismatches) -> None:
    for warp in trace.warps:
        active = np.asarray(warp.active, dtype=np.int64)
        if len(active) == 0:
            continue
        base = int(active[0])
        partial = np.flatnonzero(active < base)
        for i in partial:
            pc = int(warp.pcs[i])
            if pc not in cost.divergent_masked:
                mismatches.add(pc, "xcheck-divergence", (
                    "partial mask (%d of %d lanes) at pc %d, which no "
                    "statically divergent branch region covers — SIMT "
                    "stack reconvergence disagrees with the CFG "
                    "post-dominators" % (int(active[i]), base, pc)
                ))


def _check_bank_conflicts(cost, trace, config, mismatches) -> None:
    shared = {a.pc: a for a in cost.accesses if a.space == "shared"}
    for warp in trace.warps:
        for i, pc in enumerate(warp.pcs):
            access = shared.get(int(pc))
            if access is None:
                continue
            measured = int(warp.conflict[i])
            interval = access.bank_conflict
            hi = config.warp_size if interval.hi is None else interval.hi
            full = int(warp.active[i]) == config.warp_size
            if full and access.phase_known:
                ok = interval.contains(measured)
            else:
                ok = 0 <= measured <= hi
            if not ok:
                mismatches.add(int(pc), "xcheck-bank-conflict", (
                    "measured bank-conflict degree %d, static model "
                    "predicts %s" % (measured, interval.render())
                ))


def crosscheck_kernel(
    kernel: Kernel,
    trace: KernelTrace,
    cost: Optional[KernelCostModel] = None,
    config: Optional[GPUConfig] = None,
) -> LintReport:
    """Cross-validate one kernel's dynamic trace against its cost model.

    Returns a :class:`LintReport` (check ids prefixed ``xcheck-``); any
    error means a dynamic collector and the static analysis disagree on
    a fact the static side proves.
    """
    config = config or GPUConfig()
    if cost is None:
        cost = analyze_kernel(kernel, config)
    cfg = ControlFlowGraph(kernel.program)
    mismatches = _Mismatches()
    _check_structure(kernel, cfg, trace, mismatches)
    _check_coalescing(cost, trace, config, mismatches)
    _check_trip_counts(cost, trace, mismatches)
    _check_divergence(cost, trace, mismatches)
    _check_bank_conflicts(cost, trace, config, mismatches)
    return LintReport(
        kernel=kernel.name, diagnostics=tuple(mismatches.diagnostics())
    )
