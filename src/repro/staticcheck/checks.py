"""The static checks: six verifiers built on the CFG + dataflow layers.

==================== ======== ==============================================
check id             severity what it catches
==================== ======== ==============================================
``uninit-read``      error    register read with no reaching write (warning
                              when only *some* paths miss the write)
``dead-write``       warning  register write whose value is never read
``unreachable-code`` warning  instructions no path from the entry reaches
``bad-reconvergence`` error   conditional branch whose ``reconv`` is not its
                              immediate post-dominator
``barrier-divergence`` error  ``bar`` reachable between a possibly-divergent
                              branch and its reconvergence point (the static
                              form of the emulator's barrier deadlock)
``smem-race``        error    ``lds`` that may observe another warp's ``sts``
                              with no block barrier ordering the pair
==================== ======== ==============================================

Entry points: :func:`lint_kernel` for validated :class:`Kernel` objects
and :func:`lint_program` for raw instruction sequences (used to test
properties — like bad reconvergence — that ``Kernel.__post_init__``
itself rejects).
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set

from repro.isa.instructions import Instruction, OpClass, Reg
from repro.isa.kernel import Kernel
from repro.staticcheck.cfg import ControlFlowGraph, reconvergence_errors
from repro.staticcheck.dataflow import (
    UNINIT,
    DivergenceSources,
    LiveRegisters,
    ReachingDefinitions,
    may_collide_across_warps,
    may_diverge,
    register_tags,
    solve,
)
from repro.staticcheck.report import Diagnostic, LintReport, Severity


class _Context:
    """Shared per-kernel analysis state, computed lazily across checks."""

    def __init__(
        self,
        program: Sequence[Instruction],
        cfg: ControlFlowGraph,
        warps_per_block: int,
    ):
        self.program = tuple(program)
        self.cfg = cfg
        self.warps_per_block = warps_per_block
        self._rdef_in: Optional[Dict[int, FrozenSet]] = None
        self._live_out: Optional[Dict[int, FrozenSet]] = None
        self._div_in: Optional[Dict[int, FrozenSet]] = None

    @property
    def rdef_in(self) -> Dict[int, FrozenSet]:
        """Reaching definitions before each instruction."""
        if self._rdef_in is None:
            self._rdef_in, _ = solve(self.cfg, ReachingDefinitions())
        return self._rdef_in

    @property
    def live_out(self) -> Dict[int, FrozenSet]:
        """Registers live after each instruction."""
        if self._live_out is None:
            _, self._live_out = solve(self.cfg, LiveRegisters())
        return self._live_out

    @property
    def div_in(self) -> Dict[int, FrozenSet]:
        """Thread-identity taints before each instruction."""
        if self._div_in is None:
            self._div_in, _ = solve(self.cfg, DivergenceSources())
        return self._div_in

    def barrier_free_region(self, start_pcs: Sequence[int],
                            stop: Optional[int] = None) -> Set[int]:
        """PCs reachable from ``start_pcs`` without crossing a ``bar``
        (and without entering ``stop``).  Barrier PCs themselves are
        included in the region — they are *reached* barrier-free — but
        never traversed."""
        seen: Set[int] = set()
        stack = [pc for pc in start_pcs if pc != stop]
        while stack:
            pc = stack.pop()
            if pc in seen:
                continue
            seen.add(pc)
            if self.program[pc].opclass is OpClass.BARRIER:
                continue
            for succ in self.cfg.succs[pc]:
                if succ != stop and succ not in seen:
                    stack.append(succ)
        return seen


CheckFn = Callable[[_Context], List[Diagnostic]]

#: Registry of all checks, keyed by check id (insertion order = run order).
CHECKS: Dict[str, CheckFn] = {}


def _check(check_id: str) -> Callable[[CheckFn], CheckFn]:
    def register(fn: CheckFn) -> CheckFn:
        CHECKS[check_id] = fn
        return fn

    return register


@_check("uninit-read")
def check_uninit_read(ctx: _Context) -> List[Diagnostic]:
    """Reads of registers with no (or only conditional) reaching writes."""
    out: List[Diagnostic] = []
    for pc in sorted(ctx.cfg.reachable):
        inst = ctx.program[pc]
        facts = ctx.rdef_in[pc]
        seen: Set[int] = set()
        for reg in inst.source_registers:
            if reg.index in seen:
                continue
            seen.add(reg.index)
            defs = {d for r, d in facts if r == reg.index}
            if defs == {UNINIT}:
                out.append(Diagnostic(
                    pc, "uninit-read", Severity.ERROR,
                    "r%d is read but never written on any path from entry"
                    % reg.index,
                ))
            elif UNINIT in defs:
                out.append(Diagnostic(
                    pc, "uninit-read", Severity.WARNING,
                    "r%d may be read before its first write (written only "
                    "on some paths)" % reg.index,
                ))
    return out


@_check("dead-write")
def check_dead_write(ctx: _Context) -> List[Diagnostic]:
    """Register writes whose value no later instruction can read."""
    out: List[Diagnostic] = []
    for pc in sorted(ctx.cfg.reachable):
        inst = ctx.program[pc]
        if inst.dst is None:
            continue
        if inst.dst.index not in ctx.live_out[pc]:
            out.append(Diagnostic(
                pc, "dead-write", Severity.WARNING,
                "value written to r%d by %r is never read"
                % (inst.dst.index, inst.opcode),
            ))
    return out


@_check("unreachable-code")
def check_unreachable(ctx: _Context) -> List[Diagnostic]:
    """Instruction ranges no path from the entry reaches."""
    out: List[Diagnostic] = []
    for start, end in ctx.cfg.unreachable_ranges():
        span = "pc %d" % start if start == end else "pcs %d-%d" % (start, end)
        out.append(Diagnostic(
            start, "unreachable-code", Severity.WARNING,
            "%s unreachable from the kernel entry" % span,
        ))
    return out


@_check("bad-reconvergence")
def check_reconvergence(ctx: _Context) -> List[Diagnostic]:
    """Conditional branches whose reconv is not the immediate
    post-dominator (delegates to :func:`reconvergence_errors`, the same
    computation ``Kernel.__post_init__`` enforces)."""
    return [
        Diagnostic(pc, "bad-reconvergence", Severity.ERROR, message)
        for pc, message in reconvergence_errors(ctx.program, ctx.cfg)
    ]


@_check("barrier-divergence")
def check_barrier_divergence(ctx: _Context) -> List[Diagnostic]:
    """Barriers reachable while a possibly-divergent branch is unresolved.

    A warp whose lanes split at a divergent branch executes each side
    with a partial mask until the reconvergence point; a block-wide
    ``bar`` inside that region deadlocks (the emulator raises exactly
    this).  The region of a branch at ``b`` with reconvergence ``r`` is
    everything reachable from ``b``'s successors without entering ``r``.
    Branches whose predicate carries no per-thread taint (uniform trip
    counts, block-id predicates) cannot split a warp and are skipped.
    """
    flagged: Dict[int, int] = {}  # bar pc -> first offending branch pc
    ipdom = ctx.cfg.immediate_postdominators()
    for pc in sorted(ctx.cfg.reachable):
        inst = ctx.program[pc]
        if inst.opclass is not OpClass.BRANCH or inst.pred is None:
            continue
        tags = register_tags(ctx.div_in[pc], inst.pred)
        if not may_diverge(tags):
            continue
        join = inst.reconv if inst.reconv is not None else ipdom.get(pc)
        region = ctx.barrier_free_region(list(ctx.cfg.succs[pc]), stop=join)
        for node in sorted(region):
            if ctx.program[node].opclass is OpClass.BARRIER:
                flagged.setdefault(node, pc)
    return [
        Diagnostic(
            bar_pc, "barrier-divergence", Severity.ERROR,
            "bar may execute while the branch at pc %d is diverged "
            "(before its reconvergence point) — block-wide deadlock"
            % branch_pc,
        )
        for bar_pc, branch_pc in sorted(flagged.items())
    ]


@_check("smem-race")
def check_smem_race(ctx: _Context) -> List[Diagnostic]:
    """Shared-memory reads that may observe another warp's write with no
    ordering barrier.

    Applies only when a block holds more than one warp (races are
    inter-warp: lanes of one warp execute in lockstep).  An ``sts``
    whose address is neither ``tid``- nor ``warp``-derived may write
    words that warps other than the writer's read; any ``lds`` with a
    likewise collision-prone address reachable from it on a barrier-free
    path is flagged.
    """
    if ctx.warps_per_block <= 1:
        return []
    flagged: Dict[int, int] = {}  # lds pc -> first racing sts pc
    for pc in sorted(ctx.cfg.reachable):
        inst = ctx.program[pc]
        if inst.opclass is not OpClass.SMEM_STORE:
            continue
        addr = inst.srcs[0]
        if isinstance(addr, Reg) and not may_collide_across_warps(
            register_tags(ctx.div_in[pc], addr)
        ):
            continue
        region = ctx.barrier_free_region(list(ctx.cfg.succs[pc]))
        for node in sorted(region):
            reader = ctx.program[node]
            if reader.opclass is not OpClass.SMEM_LOAD:
                continue
            raddr = reader.srcs[0]
            if isinstance(raddr, Reg) and not may_collide_across_warps(
                register_tags(ctx.div_in[node], raddr)
            ):
                continue
            flagged.setdefault(node, pc)
    return [
        Diagnostic(
            lds_pc, "smem-race", Severity.ERROR,
            "lds may read words the sts at pc %d wrote from another warp "
            "with no bar between them" % sts_pc,
        )
        for lds_pc, sts_pc in sorted(flagged.items())
    ]


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def lint_program(
    program: Sequence[Instruction],
    name: str = "<program>",
    warps_per_block: int = 1,
) -> LintReport:
    """Run every check on a raw instruction sequence.

    Unlike :func:`lint_kernel` this accepts programs that
    :class:`~repro.isa.kernel.Kernel` would reject outright (bad
    reconvergence PCs), which is how those rejections are themselves
    exercised.
    """
    ctx = _Context(program, ControlFlowGraph(program), warps_per_block)
    diagnostics: List[Diagnostic] = []
    for fn in CHECKS.values():
        diagnostics.extend(fn(ctx))
    diagnostics.sort(key=lambda d: (d.pc, d.check_id))
    return LintReport(kernel=name, diagnostics=tuple(diagnostics))


def lint_kernel(kernel: Kernel) -> LintReport:
    """Run every check on a validated kernel (launch geometry included:
    the race check needs warps-per-block)."""
    return lint_program(
        kernel.program, name=kernel.name,
        warps_per_block=kernel.warps_per_block,
    )
