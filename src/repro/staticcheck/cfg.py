"""Control-flow graph construction and (post-)dominator computation.

The graph is built at instruction granularity over a program of the mini
SIMT ISA (``Tuple[Instruction, ...]``); basic blocks are grouped on top
for structural reporting.  Edges follow execution, not reconvergence:

* a conditional ``bra`` has two successors (fall-through, target),
* an unconditional ``bra`` has one (target),
* ``exit`` has none,
* everything else falls through.

Dominators and post-dominators use the Cooper–Harvey–Kennedy iterative
algorithm over a reverse-postorder traversal.  Post-dominators run the
same algorithm on the reversed graph rooted at a *virtual exit node*
(index ``len(program)``) that every ``exit`` instruction feeds, so
programs with several exits are handled uniformly.  An instruction with
no path to any exit (an inescapable loop) has no post-dominator and is
reported as ``None``.

The immediate post-dominator of a conditional branch is exactly the PC
where its diverged lane groups must rejoin — the value the SIMT stack
expects in ``Instruction.reconv`` — which is what makes this module the
single source of truth for reconvergence validation
(:func:`reconvergence_errors`, used by ``Kernel.__post_init__`` and by
the ``bad-reconvergence`` lint check).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.isa.instructions import Instruction, OpClass

#: Virtual exit node used as the root of the post-dominator tree.
#: Its index is ``len(program)`` (one past the last real instruction).


def successors(program: Sequence[Instruction]) -> List[Tuple[int, ...]]:
    """Per-instruction successor PCs (exits have none).

    A non-control instruction in the last slot would fall off the end of
    the program; it gets no successor here (kernel validation separately
    requires a terminating ``exit``).
    """
    n = len(program)
    succs: List[Tuple[int, ...]] = []
    for pc, inst in enumerate(program):
        if inst.opclass is OpClass.EXIT:
            succs.append(())
        elif inst.opclass is OpClass.BRANCH:
            target = inst.target
            assert target is not None  # Instruction validates bra targets
            if inst.pred is None:
                succs.append((target,))
            elif pc + 1 < n:
                # Fall-through first, then target (dedup degenerate bras).
                succs.append(
                    (pc + 1, target) if target != pc + 1 else (pc + 1,)
                )
            else:
                succs.append((target,))
        elif pc + 1 < n:
            succs.append((pc + 1,))
        else:
            succs.append(())
    return succs


@dataclass(frozen=True)
class BasicBlock:
    """A maximal straight-line instruction range ``[start, end)``."""

    index: int
    start: int
    end: int  # exclusive

    @property
    def pcs(self) -> range:
        """The PCs this block covers."""
        return range(self.start, self.end)

    @property
    def terminator(self) -> int:
        """PC of the block's last instruction."""
        return self.end - 1


class ControlFlowGraph:
    """Instruction-level CFG of one program, with basic-block grouping.

    Attributes
    ----------
    program:
        The instruction sequence the graph was built from.
    succs / preds:
        Per-PC successor / predecessor tuples.
    blocks:
        Basic blocks in program order.
    block_of:
        ``block_of[pc]`` is the index of the block containing ``pc``.
    """

    def __init__(self, program: Sequence[Instruction]):
        if not program:
            raise ValueError("cannot build a CFG for an empty program")
        self.program: Tuple[Instruction, ...] = tuple(program)
        self.succs: List[Tuple[int, ...]] = successors(self.program)
        n = len(self.program)
        preds: List[List[int]] = [[] for _ in range(n)]
        for pc, outs in enumerate(self.succs):
            for succ in outs:
                preds[succ].append(pc)
        self.preds: List[Tuple[int, ...]] = [tuple(p) for p in preds]
        self.blocks: List[BasicBlock] = self._build_blocks()
        self.block_of: List[int] = [0] * n
        for block in self.blocks:
            for pc in block.pcs:
                self.block_of[pc] = block.index
        self._reachable: Optional[frozenset] = None
        self._idom: Optional[Dict[int, Optional[int]]] = None
        self._ipdom: Optional[Dict[int, Optional[int]]] = None

    @classmethod
    def from_program(cls, program: Sequence[Instruction]) -> "ControlFlowGraph":
        """Build the CFG of ``program`` (alias of the constructor)."""
        return cls(program)

    # -- structure ----------------------------------------------------------

    def _build_blocks(self) -> List[BasicBlock]:
        n = len(self.program)
        leaders = {0}
        for pc, outs in enumerate(self.succs):
            inst = self.program[pc]
            if inst.opclass in (OpClass.BRANCH, OpClass.EXIT):
                if pc + 1 < n:
                    leaders.add(pc + 1)
                for succ in outs:
                    leaders.add(succ)
        starts = sorted(leaders)
        blocks = []
        for index, start in enumerate(starts):
            end = starts[index + 1] if index + 1 < len(starts) else n
            blocks.append(BasicBlock(index=index, start=start, end=end))
        return blocks

    def block_successors(self, block: BasicBlock) -> Tuple[int, ...]:
        """Indices of the blocks this block's terminator branches to."""
        return tuple(
            self.block_of[succ] for succ in self.succs[block.terminator]
        )

    # -- reachability -------------------------------------------------------

    @property
    def reachable(self) -> frozenset:
        """PCs reachable from the entry (pc 0)."""
        if self._reachable is None:
            seen = {0}
            stack = [0]
            while stack:
                for succ in self.succs[stack.pop()]:
                    if succ not in seen:
                        seen.add(succ)
                        stack.append(succ)
            self._reachable = frozenset(seen)
        return self._reachable

    def unreachable_ranges(self) -> List[Tuple[int, int]]:
        """Maximal ``[start, end]`` PC ranges of unreachable code."""
        ranges: List[Tuple[int, int]] = []
        start: Optional[int] = None
        for pc in range(len(self.program)):
            if pc not in self.reachable:
                if start is None:
                    start = pc
            elif start is not None:
                ranges.append((start, pc - 1))
                start = None
        if start is not None:
            ranges.append((start, len(self.program) - 1))
        return ranges

    # -- dominance ----------------------------------------------------------

    def immediate_dominators(self) -> Dict[int, Optional[int]]:
        """``idom[pc]`` for every entry-reachable PC (entry maps to None).

        PCs unreachable from the entry are absent from the mapping.
        """
        if self._idom is None:
            self._idom = _compute_idom(
                nodes=sorted(self.reachable),
                entry=0,
                succs_of=lambda pc: self.succs[pc],
                preds_of=lambda pc: self.preds[pc],
            )
        return self._idom

    def immediate_postdominators(self) -> Dict[int, Optional[int]]:
        """``ipdom[pc]`` for every PC that can reach an exit.

        Computed on the reversed graph rooted at a virtual exit node
        that all ``exit`` instructions feed; the virtual node never
        appears in the result, so a PC whose only post-dominator is the
        virtual exit (i.e. an ``exit`` instruction itself) maps to
        ``None``.  PCs that cannot reach any exit are absent.
        """
        if self._ipdom is None:
            n = len(self.program)
            virtual = n
            exits = [
                pc for pc, inst in enumerate(self.program)
                if inst.opclass is OpClass.EXIT
            ]

            def rsuccs(pc: int) -> Tuple[int, ...]:
                if pc == virtual:
                    return tuple(exits)
                return self.preds[pc]

            def rpreds(pc: int) -> Tuple[int, ...]:
                if pc == virtual:
                    return ()
                base = self.succs[pc]
                if self.program[pc].opclass is OpClass.EXIT:
                    return base + (virtual,)
                return base

            # Nodes that can reach an exit == reachable from the virtual
            # node in the reversed graph.
            seen = {virtual}
            stack = [virtual]
            while stack:
                for succ in rsuccs(stack.pop()):
                    if succ not in seen:
                        seen.add(succ)
                        stack.append(succ)
            idom = _compute_idom(
                nodes=sorted(seen),
                entry=virtual,
                succs_of=rsuccs,
                preds_of=rpreds,
            )
            self._ipdom = {
                pc: (None if parent == virtual else parent)
                for pc, parent in idom.items()
                if pc != virtual
            }
        return self._ipdom

    def postdominates(self, a: int, pc: int) -> bool:
        """Whether ``a`` post-dominates ``pc`` (strictly or ``a == pc``)."""
        ipdom = self.immediate_postdominators()
        node: Optional[int] = pc
        while node is not None:
            if node == a:
                return True
            node = ipdom.get(node)
        return False


def _compute_idom(
    nodes: Sequence[int],
    entry: int,
    succs_of: Callable[[int], Tuple[int, ...]],
    preds_of: Callable[[int], Tuple[int, ...]],
) -> Dict[int, Optional[int]]:
    """Cooper–Harvey–Kennedy immediate dominators.

    ``nodes`` must contain every node reachable from ``entry``; nodes
    outside that set are ignored (their edges are filtered out).
    """
    node_set = set(nodes)
    # Reverse postorder from entry (iterative DFS).
    visited = {entry}
    postorder: List[int] = []
    dfs: List[Tuple[int, Iterator[int]]] = [(entry, iter(succs_of(entry)))]
    while dfs:
        node, it = dfs[-1]
        advanced = False
        for succ in it:
            if succ in node_set and succ not in visited:
                visited.add(succ)
                dfs.append((succ, iter(succs_of(succ))))
                advanced = True
                break
        if not advanced:
            postorder.append(node)
            dfs.pop()
    order = list(reversed(postorder))
    index = {node: i for i, node in enumerate(order)}

    idom: Dict[int, Optional[int]] = {entry: entry}

    def intersect(a: int, b: int) -> int:
        while a != b:
            while index[a] > index[b]:
                parent = idom[a]
                assert parent is not None
                a = parent
            while index[b] > index[a]:
                parent = idom[b]
                assert parent is not None
                b = parent
        return a

    changed = True
    while changed:
        changed = False
        for node in order:
            if node == entry:
                continue
            new_idom: Optional[int] = None
            for pred in preds_of(node):
                if pred not in index or pred not in idom:
                    continue
                new_idom = (
                    pred if new_idom is None else intersect(pred, new_idom)
                )
            if new_idom is not None and idom.get(node) != new_idom:
                idom[node] = new_idom
                changed = True
    result: Dict[int, Optional[int]] = {
        node: (None if node == entry else idom[node])
        for node in order
        if node in idom
    }
    return result


def reconvergence_errors(
    program: Sequence[Instruction],
    cfg: Optional[ControlFlowGraph] = None,
) -> List[Tuple[int, str]]:
    """``(pc, message)`` for every conditional branch whose declared
    reconvergence PC is not its immediate post-dominator.

    This is the CFG-based replacement for the old positional heuristic:
    the SIMT stack pops a diverged lane group exactly when it reaches
    ``reconv``, so any value other than the immediate post-dominator
    either deadlocks lane groups past their join or reconverges them
    late enough to reach ``exit``/``bar`` still diverged.  Branches that
    are unreachable from the entry, or that cannot reach an exit, are
    skipped (they can never push diverged lane groups).
    """
    cfg = cfg if cfg is not None else ControlFlowGraph(program)
    ipdom = cfg.immediate_postdominators()
    errors: List[Tuple[int, str]] = []
    for pc, inst in enumerate(program):
        if inst.opclass is not OpClass.BRANCH or inst.pred is None:
            continue
        if pc not in cfg.reachable or pc not in ipdom:
            continue
        join = ipdom[pc]
        if join is None:
            # The branch's sides never rejoin before program exit; the
            # emulator requires full reconvergence before `exit`.
            errors.append(
                (
                    pc,
                    "conditional branch has no post-dominating join "
                    "before exit (reconv %s can never reconverge all "
                    "lanes)" % (inst.reconv,),
                )
            )
        elif inst.reconv != join:
            errors.append(
                (
                    pc,
                    "reconvergence pc %s is not the immediate "
                    "post-dominator (expected %d)" % (inst.reconv, join),
                )
            )
    return errors
