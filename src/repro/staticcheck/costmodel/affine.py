"""Affine value-range analysis: the cost model's abstract domain.

The domain tracks, per register, an *affine expression*

    c0 + c1·s1 + c2·s2 + ...

over a small set of symbols: the thread-identity specials (``tid``,
``lane``, ``warp``, ``ctaid``, ``ntid``) and one iteration counter per
natural loop (``iter@H`` where ``H`` is the loop-head PC, counting body
executions from zero).  Anything the domain cannot express — values
loaded from memory, floating-point results, predicates, non-linear
arithmetic — is TOP, represented by *absence* from the environment.

Induction variables are solved by a loop-head widening rule rather than
a plain join (which would immediately lose them): at a loop head ``H``
the entry-edge and back-edge values of a register are joined separately;
if the back value differs from the current head value by a *constant*
step ``d``, the head value is widened to ``entry + iter@H · d``.  The
rule is self-correcting — a wrong guess makes the next recomputed step
non-constant, which forces TOP — and a per-register widening cap bounds
the number of guesses, so the fixpoint always terminates.

On every loop-exit edge, values mentioning the loop's iteration symbol
are dropped: ``iter@H`` is meaningless outside the body of ``H``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.instructions import Imm, Instruction, Reg, Special
from repro.staticcheck.cfg import ControlFlowGraph

#: Symbols contributed by Special operands.
SPECIAL_SYMBOLS = {
    Special.TID: "tid",
    Special.LANE: "lane",
    Special.WARP: "warp",
    Special.CTAID: "ctaid",
    Special.NTID: "ntid",
}

#: Widenings allowed per (loop head, register) before forcing TOP.
WIDEN_CAP = 4

#: Prefix of per-loop iteration symbols ("iter@<head pc>").
ITER_PREFIX = "iter@"


def iter_symbol(head: int) -> str:
    """The iteration-counter symbol of the loop headed at ``head``."""
    return "%s%d" % (ITER_PREFIX, head)


@dataclass(frozen=True)
class Affine:
    """An affine expression ``const + Σ coeff·symbol`` with int coefficients.

    ``coeffs`` is sorted by symbol and never contains zero coefficients,
    so structural equality is semantic equality.
    """

    const: int
    coeffs: Tuple[Tuple[str, int], ...] = ()

    @staticmethod
    def constant(value: int) -> "Affine":
        return Affine(value)

    @staticmethod
    def symbol(name: str, coeff: int = 1) -> "Affine":
        if coeff == 0:
            return Affine(0)
        return Affine(0, ((name, coeff),))

    @staticmethod
    def _normalise(const: int, terms: Dict[str, int]) -> "Affine":
        coeffs = tuple(sorted((s, c) for s, c in terms.items() if c != 0))
        return Affine(const, coeffs)

    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    def coeff(self, symbol: str) -> int:
        for name, value in self.coeffs:
            if name == symbol:
                return value
        return 0

    def mentions(self, symbol: str) -> bool:
        return any(name == symbol for name, _ in self.coeffs)

    def mentions_iter(self) -> bool:
        return any(name.startswith(ITER_PREFIX) for name, _ in self.coeffs)

    @property
    def symbols(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.coeffs)

    def __add__(self, other: "Affine") -> "Affine":
        terms = dict(self.coeffs)
        for name, value in other.coeffs:
            terms[name] = terms.get(name, 0) + value
        return Affine._normalise(self.const + other.const, terms)

    def __sub__(self, other: "Affine") -> "Affine":
        return self + other.scale(-1)

    def __neg__(self) -> "Affine":
        return self.scale(-1)

    def scale(self, factor: int) -> "Affine":
        if factor == 0:
            return Affine(0)
        return Affine(
            self.const * factor,
            tuple((name, value * factor) for name, value in self.coeffs),
        )

    def add_term(self, symbol: str, coeff: int) -> "Affine":
        """``self + coeff·symbol`` (used by the widening rule)."""
        return self + Affine.symbol(symbol, coeff)

    def substitute(self, symbol: str, value: "Affine") -> "Affine":
        """Replace ``symbol`` with an affine ``value``."""
        coeff = self.coeff(symbol)
        if coeff == 0:
            return self
        terms = {name: c for name, c in self.coeffs if name != symbol}
        base = Affine._normalise(self.const, terms)
        return base + value.scale(coeff)

    def render(self) -> str:
        parts: List[str] = []
        if self.const or not self.coeffs:
            parts.append(str(self.const))
        for name, value in self.coeffs:
            if value == 1:
                parts.append(name)
            else:
                parts.append("%d*%s" % (value, name))
        return " + ".join(parts).replace("+ -", "- ")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Affine(%s)" % self.render()


@dataclass(frozen=True)
class Interval:
    """A closed integer interval ``[lo, hi]``; ``hi=None`` is unbounded.

    ``Interval(n, n)`` is an *exact* static prediction; anything wider is
    a sound bound.
    """

    lo: int
    hi: Optional[int] = None

    @staticmethod
    def exact(value: int) -> "Interval":
        return Interval(value, value)

    @property
    def is_exact(self) -> bool:
        return self.hi is not None and self.lo == self.hi

    def contains(self, value: int) -> bool:
        if value < self.lo:
            return False
        return self.hi is None or value <= self.hi

    def __add__(self, other: "Interval") -> "Interval":
        hi = None
        if self.hi is not None and other.hi is not None:
            hi = self.hi + other.hi
        return Interval(self.lo + other.lo, hi)

    def __mul__(self, other: "Interval") -> "Interval":
        """Product of two non-negative intervals (counts, trips)."""
        hi = None
        if self.hi is not None and other.hi is not None:
            hi = self.hi * other.hi
        return Interval(self.lo * other.lo, hi)

    def union(self, other: "Interval") -> "Interval":
        hi = None
        if self.hi is not None and other.hi is not None:
            hi = max(self.hi, other.hi)
        return Interval(min(self.lo, other.lo), hi)

    def render(self) -> str:
        if self.is_exact:
            return str(self.lo)
        return "[%d, %s]" % (self.lo, "inf" if self.hi is None else self.hi)

    def to_dict(self) -> Dict[str, Optional[int]]:
        return {"lo": self.lo, "hi": self.hi}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Interval(%s)" % self.render()


# An abstract environment: register index -> Affine.  Registers absent
# from the mapping are TOP.  ``None`` marks a PC not yet reached.
Environment = Dict[int, Affine]


def _operand_value(operand: object, env: Environment) -> Optional[Affine]:
    if isinstance(operand, Imm):
        value = operand.value
        if isinstance(value, bool) or not isinstance(value, int):
            if isinstance(value, float) and value.is_integer():
                value = int(value)
            else:
                return None
        return Affine.constant(value)
    if isinstance(operand, Special):
        return Affine.symbol(SPECIAL_SYMBOLS[operand])
    if isinstance(operand, Reg):
        return env.get(operand.index)
    return None


def transfer(inst: Instruction, env: Environment) -> Environment:
    """Abstract transfer of one instruction over an environment."""
    if inst.dst is None:
        return env
    values = [_operand_value(src, env) for src in inst.srcs]
    result: Optional[Affine] = None
    opcode = inst.opcode
    if opcode == "mov":
        result = values[0]
    elif opcode == "iadd":
        if values[0] is not None and values[1] is not None:
            result = values[0] + values[1]
    elif opcode == "isub":
        if values[0] is not None and values[1] is not None:
            result = values[0] - values[1]
    elif opcode == "imul":
        a, b = values
        if a is not None and b is not None:
            if a.is_constant:
                result = b.scale(a.const)
            elif b.is_constant:
                result = a.scale(b.const)
    elif opcode == "ishl":
        a, b = values
        if a is not None and b is not None and b.is_constant and b.const >= 0:
            result = a.scale(1 << b.const)
    elif opcode in ("idiv", "imod", "iand", "ior", "ishr", "imin", "imax"):
        # Constant-fold only: these are non-affine on symbolic operands.
        a, b = values
        if a is not None and b is not None and a.is_constant and b.is_constant:
            x, y = a.const, b.const
            if opcode == "idiv" and y != 0:
                result = Affine.constant(int(x / y) if x * y < 0 else x // y)
            elif opcode == "imod" and y != 0:
                result = Affine.constant(x - y * (int(x / y) if x * y < 0 else x // y))
            elif opcode == "iand":
                result = Affine.constant(x & y)
            elif opcode == "ior":
                result = Affine.constant(x | y)
            elif opcode == "ishr" and y >= 0:
                result = Affine.constant(x >> y)
            elif opcode == "imin":
                result = Affine.constant(min(x, y))
            elif opcode == "imax":
                result = Affine.constant(max(x, y))
    # setp, FALU, SFU, ld, lds: destination is TOP.
    new_env = dict(env)
    if result is None:
        new_env.pop(inst.dst.index, None)
    else:
        new_env[inst.dst.index] = result
    return new_env


def _join(envs: Sequence[Environment]) -> Optional[Environment]:
    """Pointwise join: registers agree on all contributing edges or go TOP."""
    if not envs:
        return None
    joined = dict(envs[0])
    for env in envs[1:]:
        for reg in list(joined):
            if env.get(reg) != joined[reg]:
                del joined[reg]
    return joined


def _drop_exited_iters(env: Environment, exited: Sequence[str]) -> Environment:
    """Drop values mentioning iteration symbols of loops just exited."""
    if not exited:
        return env
    return {
        reg: value
        for reg, value in env.items()
        if not any(value.mentions(sym) for sym in exited)
    }


def affine_environments(
    cfg: ControlFlowGraph,
    loops: Sequence,
) -> List[Optional[Environment]]:
    """Solve the affine domain over ``cfg``, returning per-PC entry envs.

    ``loops`` is the natural-loop list from
    :func:`repro.staticcheck.costmodel.loops.find_loops` (duck-typed:
    only ``head``, ``latches`` and ``body`` are used).  The returned list
    maps each PC to the environment *before* the instruction, or ``None``
    for unreachable PCs.
    """
    program = cfg.program
    n = len(program)
    loop_of_head = {loop.head: loop for loop in loops}

    preds: Dict[int, List[int]] = {pc: [] for pc in range(n)}
    for pc in cfg.reachable:
        for succ in cfg.succs[pc]:
            preds[succ].append(pc)

    in_env: List[Optional[Environment]] = [None] * n
    out_env: List[Optional[Environment]] = [None] * n
    widen_counts: Dict[Tuple[int, int], int] = {}

    def edge_env(u: int, v: int) -> Optional[Environment]:
        env = out_env[u]
        if env is None:
            return None
        exited = [
            iter_symbol(loop.head)
            for loop in loops
            if u in loop.body and v not in loop.body
        ]
        return _drop_exited_iters(env, exited)

    def compute_in(pc: int) -> Optional[Environment]:
        loop = loop_of_head.get(pc)
        if loop is None:
            contributions = [] if pc != 0 else [{}]
            contributions += [
                env for env in (edge_env(u, pc) for u in preds[pc])
                if env is not None
            ]
            return _join(contributions)

        entry_envs = [] if pc != 0 else [{}]
        back_envs = []
        for u in preds[pc]:
            env = edge_env(u, pc)
            if env is None:
                continue
            (back_envs if u in loop.latches else entry_envs).append(env)
        entry = _join(entry_envs)
        back = _join(back_envs)
        if entry is None:
            # Head reachable only through back edges: nothing sound to say.
            return {}
        if back is None:
            return dict(entry)

        sym = iter_symbol(pc)
        prev = in_env[pc] or {}
        head: Environment = {}
        for reg, e in entry.items():
            b = back.get(reg)
            if b is None:
                continue
            h = prev.get(reg)
            if h is None:
                if e == b:
                    head[reg] = e
                continue
            step = b - h
            if not step.is_constant:
                continue
            candidate = e.add_term(sym, step.const)
            if candidate == h:
                head[reg] = h
                continue
            key = (pc, reg)
            widen_counts[key] = widen_counts.get(key, 0) + 1
            if widen_counts[key] <= WIDEN_CAP:
                head[reg] = candidate
        return head

    worklist = [0] if n else []
    # Safety valve: the widening cap makes the fixpoint terminate, but a
    # hard bound keeps degenerate CFGs from ever spinning the analysis.
    budget = 64 * (n + 1) * (len(loops) + 1)
    while worklist and budget > 0:
        budget -= 1
        pc = worklist.pop()
        new_in = compute_in(pc)
        if new_in is None:
            continue
        if new_in == in_env[pc] and out_env[pc] is not None:
            continue
        in_env[pc] = new_in
        new_out = transfer(program[pc], new_in)
        if new_out != out_env[pc]:
            out_env[pc] = new_out
            worklist.extend(cfg.succs[pc])
        elif out_env[pc] is None:
            out_env[pc] = new_out
            worklist.extend(cfg.succs[pc])
    return in_env
