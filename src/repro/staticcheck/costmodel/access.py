"""Affine memory-access classifier: coalescing and bank-conflict predictions.

For every reachable memory instruction the classifier derives the
per-lane byte address as an affine expression (address operand's affine
value plus the instruction's byte offset) and splits it into

* a **lane stride** ``s`` — the tid/lane coefficient, the byte distance
  between neighbouring lanes of a warp, and
* a **phase** — everything else: the constant, and warp/block/iteration
  contributions that are uniform across one warp's lanes.

When every uniform contribution is provably ``≡ 0 (mod line_size)`` the
phase is statically known and the transaction count is *exact*: the
model enumerates the warp's lanes the same way the dynamic coalescer
does (distinct ``addr // line_size`` values).  Otherwise it brute-forces
all ``line_size`` phases for a sound ``[lo, hi]`` interval.  Shared-
memory accesses get the analogous bank-conflict degree, mirroring
``repro.trace`` bank arithmetic (distinct words per bank, modulo the
bank count).

The access *class* is the GPUMech-facing summary: ``coalesced`` when the
lanes fit the minimal number of lines a warp can touch (broadcast or
unit word stride), ``strided-k`` when the affine stride spreads the warp
over ``k`` lines, and ``divergent-random`` when the address is not
affine at all (indices loaded from memory, ``imod``-scrambled layouts).

Addresses are assumed non-negative, which the workload layouts guarantee
(array bases are large positive multiples of the line size).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.config import GPUConfig
from repro.staticcheck.cfg import ControlFlowGraph
from repro.staticcheck.costmodel.affine import (
    Affine,
    Environment,
    Interval,
    _operand_value,
)

#: Bytes per data word (all ISA accesses are one word wide).
WORD = 4

#: Per-lane symbols: their coefficients scale with the lane index.
_LANE_SYMBOLS = ("tid", "lane")


class AccessClass(enum.Enum):
    """Static coalescing class of one memory instruction."""

    COALESCED = "coalesced"
    STRIDED = "strided"
    DIVERGENT = "divergent-random"


@dataclass(frozen=True)
class MemoryAccess:
    """Static facts about one memory instruction.

    ``transactions`` predicts the coalescer's distinct-line count for a
    *full* warp (exact when ``phase_known``); ``bank_conflict`` is the
    analogous shared-memory conflict degree, ``None`` for global space.
    """

    pc: int
    opcode: str
    space: str  # "global" | "shared"
    is_store: bool
    affine: Optional[Affine]
    lane_stride: Optional[int]
    access_class: AccessClass
    transactions: Interval
    phase_known: bool
    bank_conflict: Optional[Interval] = None
    under_divergent_control: bool = False

    @property
    def label(self) -> str:
        """Human-facing class label, e.g. ``strided-8``."""
        if self.access_class is AccessClass.STRIDED:
            return "strided-%d" % (self.transactions.hi or 0)
        return self.access_class.value

    def to_dict(self) -> Dict[str, object]:
        return {
            "pc": self.pc,
            "opcode": self.opcode,
            "space": self.space,
            "is_store": self.is_store,
            "address": None if self.affine is None else self.affine.render(),
            "lane_stride": self.lane_stride,
            "class": self.label,
            "transactions": self.transactions.to_dict(),
            "phase_known": self.phase_known,
            "bank_conflict": (
                None if self.bank_conflict is None
                else self.bank_conflict.to_dict()
            ),
            "under_divergent_control": self.under_divergent_control,
        }


def _lane_address_split(affine: Affine):
    """Split an address affine into (lane stride, phase const, uniform
    coeffs).  ``tid`` contributes both a per-lane term (coefficient) and
    a per-warp term (``c_tid · warp_size`` per warp), returned among the
    uniform contributions by the caller's modular check."""
    stride = sum(affine.coeff(sym) for sym in _LANE_SYMBOLS)
    uniform = [
        (name, coeff) for name, coeff in affine.coeffs
        if name not in _LANE_SYMBOLS
    ]
    return stride, affine.const, uniform


def _phase_known(affine: Affine, modulus: int, warp_size: int) -> bool:
    """Whether the warp-uniform part of the address is known mod ``modulus``.

    True when every uniform symbol's coefficient — including ``tid``'s
    per-warp contribution ``c_tid · warp_size`` — is ``≡ 0`` mod the
    modulus, leaving only the statically-known constant.
    """
    stride, _, uniform = _lane_address_split(affine)
    del stride
    if (affine.coeff("tid") * warp_size) % modulus != 0:
        return False
    return all(coeff % modulus == 0 for _, coeff in uniform)


def _lines_for_phase(phase: int, stride: int, warp_size: int,
                     line_size: int) -> int:
    """Distinct lines touched by a full warp: the coalescer's count."""
    return len({(phase + stride * lane) // line_size
                for lane in range(warp_size)})


def _transactions(affine: Optional[Affine], warp_size: int,
                  line_size: int) -> Tuple[Interval, bool]:
    if affine is None:
        return Interval(1, warp_size), False
    stride = sum(affine.coeff(sym) for sym in _LANE_SYMBOLS)
    if _phase_known(affine, line_size, warp_size):
        phase = affine.const % line_size
        return Interval.exact(
            _lines_for_phase(phase, stride, warp_size, line_size)
        ), True
    counts = [
        _lines_for_phase(phase, stride, warp_size, line_size)
        for phase in range(line_size)
    ]
    return Interval(min(counts), max(counts)), False


def _conflict_for_phase(phase: int, stride: int, warp_size: int,
                        n_banks: int) -> int:
    """Static mirror of ``repro.trace`` bank arithmetic: distinct words,
    bucketed by bank; degree is the fullest bucket (a broadcast word
    counts once)."""
    words = {(phase + stride * lane) // WORD for lane in range(warp_size)}
    buckets: Dict[int, int] = {}
    for word in words:
        bank = word % n_banks
        buckets[bank] = buckets.get(bank, 0) + 1
    return max(buckets.values())


def _bank_conflict(affine: Optional[Affine], warp_size: int,
                   n_banks: int) -> Tuple[Interval, bool]:
    if affine is None:
        return Interval(1, warp_size), False
    modulus = WORD * n_banks
    stride = sum(affine.coeff(sym) for sym in _LANE_SYMBOLS)
    if _phase_known(affine, modulus, warp_size):
        phase = affine.const % modulus
        return Interval.exact(
            _conflict_for_phase(phase, stride, warp_size, n_banks)
        ), True
    degrees = [
        _conflict_for_phase(phase, stride, warp_size, n_banks)
        for phase in range(modulus)
    ]
    return Interval(min(degrees), max(degrees)), False


def _classify(affine: Optional[Affine], stride: Optional[int],
              transactions: Interval) -> AccessClass:
    if affine is None:
        return AccessClass.DIVERGENT
    if abs(stride) <= WORD:
        # Broadcast (0) or word-unit stride: the warp touches the
        # minimal line count its footprint allows (1, or 2 straddling).
        return AccessClass.COALESCED
    return AccessClass.STRIDED


def classify_accesses(
    cfg: ControlFlowGraph,
    envs: Sequence[Optional[Environment]],
    config: GPUConfig,
    masked_pcs: FrozenSet[int] = frozenset(),
) -> List[MemoryAccess]:
    """Classify every reachable memory instruction of ``cfg``.

    ``envs`` is the affine solution; ``masked_pcs`` marks PCs under
    divergent control (partial masks possible), which the cross-checker
    uses to decide when the transaction prediction must hold exactly.
    """
    accesses: List[MemoryAccess] = []
    for pc in sorted(cfg.reachable):
        inst = cfg.program[pc]
        opclass = inst.opclass
        if not (opclass.is_memory or opclass.is_shared_memory):
            continue
        env = envs[pc]
        affine: Optional[Affine] = None
        if env is not None:
            value = _operand_value(inst.srcs[0], env)
            if value is not None:
                affine = value + Affine.constant(inst.offset)
        stride = None
        if affine is not None:
            stride = sum(affine.coeff(sym) for sym in _LANE_SYMBOLS)

        if opclass.is_shared_memory:
            conflict, known = _bank_conflict(
                affine, config.warp_size, config.smem_banks
            )
            transactions = Interval.exact(1)  # scratchpad: no line traffic
            space = "shared"
        else:
            transactions, known = _transactions(
                affine, config.warp_size, config.line_size
            )
            conflict = None
            space = "global"

        accesses.append(MemoryAccess(
            pc=pc,
            opcode=inst.opcode,
            space=space,
            is_store=opclass.name in ("STORE", "SMEM_STORE"),
            affine=affine,
            lane_stride=stride,
            access_class=_classify(affine, stride, transactions),
            transactions=transactions,
            phase_known=known,
            bank_conflict=conflict,
            under_divergent_control=pc in masked_pcs,
        ))
    return accesses
