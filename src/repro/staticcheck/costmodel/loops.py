"""Natural-loop detection and trip-count inference.

Loops are found the classical way: a back edge is a CFG edge ``u → h``
where ``h`` dominates ``u`` (dominators come from the CFG layer's
Cooper–Harvey–Kennedy solver); the natural loop of ``h`` is ``h`` plus
every node that reaches a latch backwards without passing through ``h``.

Trip counts are closed forms over the affine domain.  The builder emits
do-while loops — a conditional backward branch at the latch re-enters
the head while its predicate holds — so for a single-latch loop whose
predicate is defined by one ``setp a, b`` the latch decision at body
iteration ``j`` is a comparison of ``d(j) = a − b``, an affine in the
loop's iteration symbol.  When ``d(j) = c0 + c1·j`` with constant
coefficients the first failing ``j`` is exact arithmetic and the trip
count is ``Interval.exact(j_fail + 1)``; anything non-affine (data-
dependent bounds loaded from memory, multi-latch loops, unconditional
latches) degrades soundly to ``[1, ∞)``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, List, Optional, Sequence

from repro.isa.instructions import OpClass
from repro.staticcheck.cfg import ControlFlowGraph
from repro.staticcheck.costmodel.affine import (
    Affine,
    Environment,
    Interval,
    _operand_value,
    iter_symbol,
)
from repro.staticcheck.dataflow import (
    DivergenceSources,
    ReachingDefinitions,
    may_diverge,
    register_tags,
    solve,
)


@dataclass(frozen=True)
class Loop:
    """One natural loop: head, latch set, body, and inferred trip count.

    ``trip`` counts *body executions per loop entry* (equivalently latch
    executions, since these are do-while loops): it is at least 1.
    ``divergent`` marks loops whose latch predicate carries per-thread
    taint — lanes of one warp may run different iteration counts.
    """

    head: int
    latches: FrozenSet[int]
    body: FrozenSet[int]
    trip: Interval = Interval(1, None)
    divergent: bool = False

    @property
    def iter_symbol(self) -> str:
        return iter_symbol(self.head)

    def to_dict(self) -> Dict[str, object]:
        return {
            "head": self.head,
            "latches": sorted(self.latches),
            "body": sorted(self.body),
            "trip": self.trip.to_dict(),
            "exact": self.trip.is_exact,
            "divergent": self.divergent,
        }


def _dominates(idom: Dict[int, Optional[int]], a: int, b: int) -> bool:
    """Whether ``a`` dominates ``b`` (reflexively)."""
    node: Optional[int] = b
    while node is not None:
        if node == a:
            return True
        node = idom.get(node)
    return False


def find_loops(cfg: ControlFlowGraph) -> List[Loop]:
    """All natural loops of ``cfg``, sorted by head PC.

    Back edges targeting the same head are merged into one loop with
    several latches, matching the usual natural-loop definition.
    """
    idom = cfg.immediate_dominators()
    preds: Dict[int, List[int]] = {}
    back_edges: Dict[int, List[int]] = {}  # head -> latches
    for pc in cfg.reachable:
        for succ in cfg.succs[pc]:
            preds.setdefault(succ, []).append(pc)
            if _dominates(idom, succ, pc):
                back_edges.setdefault(succ, []).append(pc)

    loops: List[Loop] = []
    for head in sorted(back_edges):
        latches = back_edges[head]
        body = {head}
        stack = [latch for latch in latches if latch != head]
        while stack:
            node = stack.pop()
            if node in body:
                continue
            body.add(node)
            stack.extend(p for p in preds.get(node, ()) if p not in body)
        loops.append(Loop(
            head=head,
            latches=frozenset(latches),
            body=frozenset(body),
        ))
    return loops


def _ceil_div(a: int, b: int) -> int:
    """Ceiling division for positive ``b``."""
    return -((-a) // b)


def _trip_from_linear(c0: int, c1: int, cmp_name: str) -> Interval:
    """First-failure arithmetic for continue-condition ``cmp(d(j), 0)``
    with ``d(j) = c0 + c1·j``; returns the trip-count interval."""
    unbounded = Interval(1, None)
    if cmp_name == "gt":  # d > 0  <=>  -d < 0
        return _trip_from_linear(-c0, -c1, "lt")
    if cmp_name == "ge":  # d >= 0  <=>  -d <= 0
        return _trip_from_linear(-c0, -c1, "le")
    if cmp_name == "lt":  # continue while d < 0; fails when d >= 0
        if c1 == 0:
            return unbounded if c0 < 0 else Interval.exact(1)
        if c1 < 0:
            return Interval.exact(1) if c0 >= 0 else unbounded
        return Interval.exact(max(0, _ceil_div(-c0, c1)) + 1)
    if cmp_name == "le":  # continue while d <= 0; fails when d >= 1
        if c1 == 0:
            return unbounded if c0 <= 0 else Interval.exact(1)
        if c1 < 0:
            return Interval.exact(1) if c0 >= 1 else unbounded
        return Interval.exact(max(0, _ceil_div(1 - c0, c1)) + 1)
    if cmp_name == "eq":  # continue while d == 0
        if c1 == 0:
            return unbounded if c0 == 0 else Interval.exact(1)
        return Interval.exact(2 if c0 == 0 else 1)
    if cmp_name == "ne":  # continue while d != 0; fails when d == 0
        if c1 == 0:
            return Interval.exact(1) if c0 == 0 else unbounded
        if c0 % c1 == 0 and -c0 // c1 >= 0:
            return Interval.exact(-c0 // c1 + 1)
        return unbounded
    return unbounded


def infer_trip_counts(
    cfg: ControlFlowGraph,
    loops: Sequence[Loop],
    envs: Sequence[Optional[Environment]],
    substitutions: Optional[Dict[str, int]] = None,
) -> List[Loop]:
    """Fill in ``trip`` and ``divergent`` for every loop.

    ``envs`` is the affine solution from :func:`affine_environments`;
    ``substitutions`` maps launch-geometry symbols whose value *is*
    statically known at analysis time (e.g. ``ntid`` → block size) to
    their concrete values, widening the set of loops with exact trips.
    """
    program = cfg.program
    substitutions = substitutions or {}
    rdef_in, _ = solve(cfg, ReachingDefinitions())
    div_in, _ = solve(cfg, DivergenceSources())

    resolved: List[Loop] = []
    for loop in loops:
        resolved.append(_infer_one(
            program, loop, envs, rdef_in, div_in, substitutions
        ))
    return resolved


def _infer_one(program, loop, envs, rdef_in, div_in, substitutions) -> Loop:
    unbounded = Interval(1, None)
    if len(loop.latches) != 1:
        return replace(loop, trip=unbounded)
    latch = next(iter(loop.latches))
    inst = program[latch]
    if (inst.opclass is not OpClass.BRANCH or inst.target != loop.head
            or inst.pred is None):
        return replace(loop, trip=unbounded)

    divergent = may_diverge(
        register_tags(div_in.get(latch, frozenset()), inst.pred)
    )

    # The latch predicate must come from exactly one setp inside the body.
    defs = {d for r, d in rdef_in.get(latch, frozenset())
            if r == inst.pred.index}
    if len(defs) != 1:
        return replace(loop, trip=unbounded, divergent=divergent)
    def_pc = next(iter(defs))
    if def_pc < 0 or program[def_pc].opcode != "setp":
        return replace(loop, trip=unbounded, divergent=divergent)
    setp = program[def_pc]
    env = envs[def_pc] if def_pc < len(envs) else None
    if env is None:
        return replace(loop, trip=unbounded, divergent=divergent)

    a = _operand_value(setp.srcs[0], env)
    b = _operand_value(setp.srcs[1], env)
    if a is None or b is None:
        return replace(loop, trip=unbounded, divergent=divergent)
    d = a - b
    for symbol, value in substitutions.items():
        d = d.substitute(symbol, Affine.constant(value))

    sym = loop.iter_symbol
    c1 = d.coeff(sym)
    rest = d + Affine.symbol(sym, -c1)
    if not rest.is_constant:
        # Trip depends on thread identity or an enclosing loop's counter.
        return replace(loop, trip=unbounded, divergent=divergent)
    trip = _trip_from_linear(rest.const, c1, setp.cmp_op.value)
    return replace(loop, trip=trip, divergent=divergent)
