"""Static cost model: abstract interpretation over kernel CFGs.

Built on the CFG and worklist-dataflow layers of ``repro.staticcheck``,
this package derives — per kernel, in milliseconds, without running the
emulator — the quantities the dynamic pipeline later measures:

* :mod:`~repro.staticcheck.costmodel.affine` — the value-range domain:
  affine expressions over thread-identity symbols (``tid``, ``lane``,
  ``warp``, ``ctaid``, ``ntid``) and per-loop iteration symbols, plus
  the widening abstract interpreter that solves induction variables;
* :mod:`~repro.staticcheck.costmodel.loops` — natural-loop detection
  and trip-count inference (exact closed forms for affine latch
  predicates, bounded intervals otherwise);
* :mod:`~repro.staticcheck.costmodel.access` — the memory-access
  classifier: per-PC coalescing class (fully-coalesced / strided-k /
  divergent-random), predicted transactions-per-access and shared-memory
  bank-conflict degree;
* :mod:`~repro.staticcheck.costmodel.estimator` — branch-divergence
  classification, per-PC execution-count intervals, static occupancy,
  the CPI lower bound and the interval-profile skeleton, all collected
  into one :class:`KernelCostModel` artifact.

The cross-validation sanitizer that pins dynamic traces to these facts
lives one level up, in :mod:`repro.staticcheck.xcheck`.
"""

from repro.staticcheck.costmodel.affine import (
    Affine,
    Interval,
    affine_environments,
)
from repro.staticcheck.costmodel.access import (
    AccessClass,
    MemoryAccess,
    classify_accesses,
)
from repro.staticcheck.costmodel.estimator import (
    BranchSummary,
    KernelCostModel,
    SkeletonEntry,
    analyze_kernel,
    analyze_program,
)
from repro.staticcheck.costmodel.loops import Loop, find_loops, infer_trip_counts

__all__ = [
    "AccessClass",
    "Affine",
    "BranchSummary",
    "Interval",
    "KernelCostModel",
    "Loop",
    "MemoryAccess",
    "SkeletonEntry",
    "affine_environments",
    "analyze_kernel",
    "analyze_program",
    "classify_accesses",
    "find_loops",
    "infer_trip_counts",
]
