"""Static occupancy, execution-count and interval-bound estimation.

This is the top of the cost model: it runs the loop finder, the affine
interpreter and the access classifier, then folds their facts into one
:class:`KernelCostModel` artifact:

* per-branch **divergence classification** (can this branch split a
  warp?) from the existing ``DivergenceSources`` taint analysis;
* per-PC **execution-count intervals** — the product of the enclosing
  loops' trip counts, with a zero lower bound inside forward-conditional
  regions (a do-while body runs at least once; an ``if`` body may not
  run at all);
* the **interval-profile skeleton**: every reachable PC with its stall
  class and count interval — the static shape of the interval profile
  GPUMech builds from dynamic traces;
* **static occupancy** (resident blocks/warps per core against the
  hardware limits) and a **CPI lower bound**: the issue-width floor or
  the DRAM-bandwidth floor (predicted line traffic priced at
  ``dram_service_cycles``), whichever binds.  The CPI convention matches
  the oracle's ``total_cycles · n_cores_used / total_insts``.

Entry points: :func:`analyze_kernel` for validated kernels and
:func:`analyze_program` for raw instruction sequences (degenerate inputs
included — an empty program yields an empty model rather than a crash).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.config import GPUConfig
from repro.isa.instructions import Instruction, OpClass
from repro.isa.kernel import Kernel
from repro.staticcheck.cfg import ControlFlowGraph
from repro.staticcheck.costmodel.access import MemoryAccess, classify_accesses
from repro.staticcheck.costmodel.affine import Interval, affine_environments
from repro.staticcheck.costmodel.loops import (
    Loop,
    find_loops,
    infer_trip_counts,
)
from repro.staticcheck.dataflow import (
    DivergenceSources,
    may_diverge,
    register_tags,
    solve,
)


@dataclass(frozen=True)
class BranchSummary:
    """Static classification of one conditional branch."""

    pc: int
    divergent: bool  # predicate carries per-thread (tid/lane) taint
    backward: bool  # loop latch (target at or before the branch)
    reconv: Optional[int]

    def to_dict(self) -> Dict[str, object]:
        return {
            "pc": self.pc,
            "divergent": self.divergent,
            "backward": self.backward,
            "reconv": self.reconv,
        }


@dataclass(frozen=True)
class SkeletonEntry:
    """One PC of the interval-profile skeleton."""

    pc: int
    opcode: str
    stall_class: str  # ialu | falu | sfu | mem | smem | sync
    count: Interval

    def to_dict(self) -> Dict[str, object]:
        return {
            "pc": self.pc,
            "opcode": self.opcode,
            "stall_class": self.stall_class,
            "count": self.count.to_dict(),
        }


@dataclass(frozen=True)
class KernelCostModel:
    """Everything the cost model statically knows about one kernel."""

    kernel: str
    n_threads: int
    block_size: int
    warp_size: int
    n_static_insts: int
    n_reachable: int
    loops: Tuple[Loop, ...]
    branches: Tuple[BranchSummary, ...]
    accesses: Tuple[MemoryAccess, ...]
    skeleton: Tuple[SkeletonEntry, ...]
    divergent_masked: FrozenSet[int]
    insts_per_warp: Interval
    transactions_per_warp: Interval
    resident_blocks_per_core: int
    resident_warps_per_core: int
    occupancy: float
    cpi_lower_bound: float
    counts: Dict[int, Interval] = field(default_factory=dict, compare=False)

    @property
    def exact_loops(self) -> Tuple[Loop, ...]:
        return tuple(loop for loop in self.loops if loop.trip.is_exact)

    @property
    def divergent_branches(self) -> Tuple[BranchSummary, ...]:
        return tuple(b for b in self.branches if b.divergent)

    def access_at(self, pc: int) -> Optional[MemoryAccess]:
        for access in self.accesses:
            if access.pc == pc:
                return access
        return None

    def to_dict(self) -> Dict[str, object]:
        return {
            "kernel": self.kernel,
            "n_threads": self.n_threads,
            "block_size": self.block_size,
            "warp_size": self.warp_size,
            "n_static_insts": self.n_static_insts,
            "n_reachable": self.n_reachable,
            "loops": [loop.to_dict() for loop in self.loops],
            "branches": [branch.to_dict() for branch in self.branches],
            "accesses": [access.to_dict() for access in self.accesses],
            "skeleton": [entry.to_dict() for entry in self.skeleton],
            "divergent_masked": sorted(self.divergent_masked),
            "insts_per_warp": self.insts_per_warp.to_dict(),
            "transactions_per_warp": self.transactions_per_warp.to_dict(),
            "resident_blocks_per_core": self.resident_blocks_per_core,
            "resident_warps_per_core": self.resident_warps_per_core,
            "occupancy": self.occupancy,
            "cpi_lower_bound": self.cpi_lower_bound,
        }

    def render_text(self) -> str:
        lines = [
            "cost model: %s" % self.kernel,
            "  static insts: %d (%d reachable), warp insts: %s"
            % (self.n_static_insts, self.n_reachable,
               self.insts_per_warp.render()),
            "  occupancy: %.2f (%d blocks, %d warps resident/core), "
            "cpi >= %.3f"
            % (self.occupancy, self.resident_blocks_per_core,
               self.resident_warps_per_core, self.cpi_lower_bound),
        ]
        for loop in self.loops:
            lines.append(
                "  loop @%d: trip %s%s%s"
                % (loop.head, loop.trip.render(),
                   " (exact)" if loop.trip.is_exact else "",
                   " divergent" if loop.divergent else "")
            )
        for branch in self.branches:
            lines.append(
                "  branch @%d: %s%s"
                % (branch.pc,
                   "divergent" if branch.divergent else "uniform",
                   " backward" if branch.backward else "")
            )
        for access in self.accesses:
            if access.space == "shared":
                detail = "bank conflict %s" % access.bank_conflict.render()
            else:
                detail = "%s tx/access" % access.transactions.render()
            lines.append(
                "  %s @%d: %s, %s%s"
                % (access.opcode, access.pc, access.label, detail,
                   "" if access.phase_known else " (phase unknown)")
            )
        return "\n".join(lines)


def _empty_model(name: str, n_threads: int, block_size: int,
                 config: GPUConfig) -> KernelCostModel:
    return KernelCostModel(
        kernel=name,
        n_threads=n_threads,
        block_size=block_size,
        warp_size=config.warp_size,
        n_static_insts=0,
        n_reachable=0,
        loops=(),
        branches=(),
        accesses=(),
        skeleton=(),
        divergent_masked=frozenset(),
        insts_per_warp=Interval.exact(0),
        transactions_per_warp=Interval.exact(0),
        resident_blocks_per_core=0,
        resident_warps_per_core=0,
        occupancy=0.0,
        cpi_lower_bound=1.0 / config.issue_width,
        counts={},
    )


def _branch_region(cfg: ControlFlowGraph, pc: int,
                   stop: Optional[int]) -> FrozenSet[int]:
    """PCs reachable from the branch's successors without entering
    ``stop`` (the reconvergence point) — the branch's masked region."""
    seen: set = set()
    stack = [succ for succ in cfg.succs[pc] if succ != stop]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        stack.extend(
            succ for succ in cfg.succs[node]
            if succ != stop and succ not in seen
        )
    return frozenset(seen)


def _stall_class(inst: Instruction) -> str:
    opclass = inst.opclass
    if opclass.is_memory:
        return "mem"
    if opclass.is_shared_memory:
        return "smem"
    if opclass is OpClass.BARRIER:
        return "sync"
    return opclass.latency_class


def analyze_program(
    program: Sequence[Instruction],
    name: str = "<program>",
    n_threads: int = 32,
    block_size: int = 32,
    config: Optional[GPUConfig] = None,
) -> KernelCostModel:
    """Statically analyze a raw instruction sequence.

    Handles degenerate inputs gracefully: an empty program returns an
    empty model (the CFG layer itself refuses to build one).
    """
    config = config or GPUConfig()
    program = tuple(program)
    if not program:
        return _empty_model(name, n_threads, block_size, config)

    cfg = ControlFlowGraph(program)
    loops = find_loops(cfg)
    envs = affine_environments(cfg, loops)
    loops = infer_trip_counts(
        cfg, loops, envs, substitutions={"ntid": block_size}
    )
    div_in, _ = solve(cfg, DivergenceSources())

    # Branch classification and masked regions.
    branches: List[BranchSummary] = []
    masked: set = set()
    forward_conditional: set = set()
    for pc in sorted(cfg.reachable):
        inst = program[pc]
        if inst.opclass is not OpClass.BRANCH or inst.pred is None:
            continue
        divergent = may_diverge(
            register_tags(div_in.get(pc, frozenset()), inst.pred)
        )
        backward = inst.target is not None and inst.target <= pc
        branches.append(BranchSummary(
            pc=pc, divergent=divergent, backward=backward,
            reconv=inst.reconv,
        ))
        region = _branch_region(cfg, pc, inst.reconv)
        if divergent:
            masked |= region
        if not backward:
            forward_conditional |= region

    # Execution-count intervals: enclosing-loop trip products, with a
    # zero floor inside forward-conditional regions.
    counts: Dict[int, Interval] = {}
    for pc in sorted(cfg.reachable):
        count = Interval.exact(1)
        for loop in loops:
            if pc in loop.body:
                count = count * loop.trip
        if pc in forward_conditional:
            count = Interval(0, count.hi)
        counts[pc] = count

    accesses = classify_accesses(cfg, envs, config, frozenset(masked))

    skeleton = tuple(
        SkeletonEntry(
            pc=pc, opcode=program[pc].opcode,
            stall_class=_stall_class(program[pc]), count=counts[pc],
        )
        for pc in sorted(cfg.reachable)
    )

    insts = Interval.exact(0)
    for count in counts.values():
        insts = insts + count
    transactions = Interval.exact(0)
    for access in accesses:
        if access.space == "global":
            transactions = transactions + counts[access.pc] * access.transactions

    # Static occupancy against the core's residency limits.
    warps_per_block = (block_size + config.warp_size - 1) // config.warp_size
    resident_blocks = max(0, config.max_threads_per_core // block_size)
    resident_warps = min(
        resident_blocks * warps_per_block, config.max_warps_per_core
    )
    occupancy = resident_warps / config.max_warps_per_core

    # CPI lower bound (oracle convention: cycles · n_cores_used / insts).
    # Issue floor always holds; the DRAM floor needs a finite instruction
    # upper bound to be sound.
    cpi_lb = 1.0 / config.issue_width
    n_blocks = max(1, n_threads // max(1, block_size))
    n_cores_used = min(config.n_cores, n_blocks)
    if insts.hi is not None and insts.hi > 0:
        mem_floor = (
            n_cores_used * transactions.lo * config.dram_service_cycles
            / insts.hi
        )
        cpi_lb = max(cpi_lb, mem_floor)

    return KernelCostModel(
        kernel=name,
        n_threads=n_threads,
        block_size=block_size,
        warp_size=config.warp_size,
        n_static_insts=len(program),
        n_reachable=len(cfg.reachable),
        loops=tuple(loops),
        branches=tuple(branches),
        accesses=tuple(accesses),
        skeleton=skeleton,
        divergent_masked=frozenset(masked),
        insts_per_warp=insts,
        transactions_per_warp=transactions,
        resident_blocks_per_core=resident_blocks,
        resident_warps_per_core=resident_warps,
        occupancy=occupancy,
        cpi_lower_bound=cpi_lb,
        counts=counts,
    )


def analyze_kernel(
    kernel: Kernel, config: Optional[GPUConfig] = None
) -> KernelCostModel:
    """Statically analyze a validated kernel (launch geometry included)."""
    return analyze_program(
        kernel.program,
        name=kernel.name,
        n_threads=kernel.n_threads,
        block_size=kernel.block_size,
        config=config,
    )
