"""Generic worklist dataflow solver and the analyses the checks use.

The solver (:func:`solve`) handles *may* analyses over finite set
domains: the meet is set union, transfer functions are monotone
gen/kill-style functions of one instruction, and iteration runs to the
(guaranteed, finite-lattice) fixpoint over the instruction-level CFG.
Three instances ship with it:

:class:`ReachingDefinitions` (forward)
    Facts are ``(register, def_pc)`` pairs; the boundary injects a
    synthetic ``(register, UNINIT)`` fact for every register, so a read
    whose reaching set contains *only* the synthetic fact is definitely
    uninitialized, and one that contains it alongside real definitions
    is uninitialized on some path.

:class:`LiveRegisters` (backward)
    Facts are register indices live *out* of each instruction; a write
    whose destination is not live-out is dead.

:class:`DivergenceSources` (forward)
    Facts are ``(register, source)`` taint pairs tracking which
    thread-identity specials (``tid`` / ``lane`` / ``warp``) a register's
    value may depend on — the classic GPU divergence analysis.  A branch
    predicate with a ``tid`` or ``lane`` taint may split a warp; a
    shared-memory address with no ``tid``/``warp`` taint may collide
    across warps of a block.  Loads propagate the taint of their address
    (distinct addresses hold distinct synthetic-memory values).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.isa.instructions import Instruction, OpClass, Reg, Special
from repro.staticcheck.cfg import ControlFlowGraph

#: Synthetic definition site meaning "value at kernel entry".
UNINIT = -1

Fact = Tuple[int, int]  # the concrete fact tuples all instances use


class Analysis:
    """Base class: a may-analysis over a finite set domain."""

    #: "forward" or "backward".
    direction: str = "forward"

    def boundary(self, program: Sequence[Instruction]) -> FrozenSet:
        """Facts at the entry (forward) or every exit (backward)."""
        return frozenset()

    def transfer(self, pc: int, inst: Instruction, facts: FrozenSet) -> FrozenSet:
        """Facts after (forward) / before (backward) one instruction."""
        raise NotImplementedError


def solve(
    cfg: ControlFlowGraph, analysis: Analysis
) -> Tuple[Dict[int, FrozenSet], Dict[int, FrozenSet]]:
    """Run ``analysis`` to fixpoint; returns ``(in_facts, out_facts)``.

    For a forward analysis ``in_facts[pc]`` holds before the instruction
    executes and ``out_facts[pc]`` after; for a backward analysis the
    roles are mirrored (``in_facts`` is the pre-state in execution
    order, i.e. the transfer output).  Only entry-reachable PCs are
    solved; unreachable code keeps empty fact sets.

    Degenerate CFGs are handled without special casing by construction:

    * *empty programs* yield empty fact maps (building a
      :class:`ControlFlowGraph` for one raises, but a defensive guard
      keeps this function total);
    * *unreachable blocks* are never transferred, and as join inputs
      they contribute the empty set — the identity of the may-analysis
      meet — so their (never-computed) facts cannot leak into reachable
      code;
    * *single-block self-loops* converge by plain monotone iteration:
      the block re-enters the worklist only while its facts still grow;
    * *backward analyses with no reachable exit* have an empty root set
      and simply propagate empty boundary facts (nothing is live after
      an infinite loop).
    """
    program = cfg.program
    n = len(program)
    if n == 0:
        return {}, {}
    forward = analysis.direction == "forward"
    if forward:
        edges_in = [tuple(cfg.preds[pc]) for pc in range(n)]
        roots = frozenset((0,))
    else:
        edges_in = [tuple(cfg.succs[pc]) for pc in range(n)]
        roots = frozenset(
            pc for pc, inst in enumerate(program)
            if inst.opclass is OpClass.EXIT
        )
    boundary = analysis.boundary(program)
    reachable = cfg.reachable
    in_facts: Dict[int, FrozenSet] = {pc: frozenset() for pc in range(n)}
    out_facts: Dict[int, FrozenSet] = {pc: frozenset() for pc in range(n)}

    worklist: List[int] = [pc for pc in range(n) if pc in reachable]
    queued: Set[int] = set(worklist)
    while worklist:
        pc = worklist.pop()
        queued.discard(pc)
        merged: Set = set()
        if pc in roots:
            merged |= boundary
        for upstream in edges_in[pc]:
            merged |= out_facts[upstream]
        new_in = frozenset(merged)
        new_out = analysis.transfer(pc, program[pc], new_in)
        if new_in == in_facts[pc] and new_out == out_facts[pc]:
            continue
        in_facts[pc] = new_in
        out_facts[pc] = new_out
        downstream = cfg.succs[pc] if forward else cfg.preds[pc]
        for succ in downstream:
            if succ in reachable and succ not in queued:
                queued.add(succ)
                worklist.append(succ)
    if forward:
        return in_facts, out_facts
    # Backward: present results in execution order (pre-state = transfer
    # output, post-state = merged facts from successors).
    return out_facts, in_facts


# ---------------------------------------------------------------------------
# Instances
# ---------------------------------------------------------------------------


def _registers_of(program: Sequence[Instruction]) -> Set[int]:
    regs: Set[int] = set()
    for inst in program:
        if inst.dst is not None:
            regs.add(inst.dst.index)
        for reg in inst.source_registers:
            regs.add(reg.index)
    return regs


class ReachingDefinitions(Analysis):
    """Forward may-analysis: which writes may a read observe.

    Facts are ``(register, def_pc)``; ``def_pc == UNINIT`` is the
    synthetic entry definition.
    """

    direction = "forward"

    def boundary(self, program: Sequence[Instruction]) -> FrozenSet:
        return frozenset((reg, UNINIT) for reg in _registers_of(program))

    def transfer(self, pc: int, inst: Instruction, facts: FrozenSet) -> FrozenSet:
        if inst.dst is None:
            return facts
        dst = inst.dst.index
        kept = {fact for fact in facts if fact[0] != dst}
        kept.add((dst, pc))
        return frozenset(kept)


class LiveRegisters(Analysis):
    """Backward may-analysis: registers whose value may still be read.

    Facts are plain register indices (wrapped as ``(reg, 0)`` is not
    needed — the domain is just ``int``).
    """

    direction = "backward"

    def transfer(self, pc: int, inst: Instruction, facts: FrozenSet) -> FrozenSet:
        live = set(facts)
        if inst.dst is not None:
            live.discard(inst.dst.index)
        for reg in inst.source_registers:
            live.add(reg.index)
        return frozenset(live)


#: Taint source tags of :class:`DivergenceSources`.
TID, LANE, WARP = "tid", "lane", "warp"

_SPECIAL_TAINT = {
    Special.TID: TID,
    Special.LANE: LANE,
    Special.WARP: WARP,
    # CTAID and NTID are uniform across every thread of a block.
}


class DivergenceSources(Analysis):
    """Forward taint analysis: which thread-identity values feed a register.

    Facts are ``(register, tag)`` with ``tag`` in ``{tid, lane, warp}``.
    """

    direction = "forward"

    def transfer(self, pc: int, inst: Instruction, facts: FrozenSet) -> FrozenSet:
        if inst.dst is None:
            return facts
        dst = inst.dst.index
        if inst.opclass in (OpClass.LOAD, OpClass.SMEM_LOAD):
            # A load's value varies exactly as much as its address does
            # (the synthetic memory image hashes the address).
            sources: Tuple = (inst.srcs[0],)
        else:
            sources = inst.srcs
        tags: Set[str] = set()
        for operand in sources:
            if isinstance(operand, Reg):
                tags.update(
                    tag for reg, tag in facts if reg == operand.index
                )
            elif isinstance(operand, Special):
                taint = _SPECIAL_TAINT.get(operand)
                if taint is not None:
                    tags.add(taint)
        kept = {fact for fact in facts if fact[0] != dst}
        kept.update((dst, tag) for tag in tags)
        return frozenset(kept)


def register_tags(facts: FrozenSet, reg: Reg) -> FrozenSet:
    """The taint tags of one register in a :class:`DivergenceSources`
    fact set."""
    return frozenset(tag for index, tag in facts if index == reg.index)


def may_diverge(tags: FrozenSet) -> bool:
    """Whether a predicate with these taints may split a warp.

    Divergence is an intra-warp phenomenon: only per-thread (``tid``)
    and per-lane (``lane``) values differ between the lanes of one warp.
    """
    return TID in tags or LANE in tags


def may_collide_across_warps(tags: FrozenSet) -> bool:
    """Whether a shared-memory address with these taints may be produced
    by threads of *different warps* in the same block.

    ``tid``-derived addresses are treated as thread-private and
    ``warp``-derived addresses as warp-private (the standard indexing
    idioms); anything else — uniform or purely ``lane``-derived — maps
    different warps onto the same scratchpad words.  This is a
    best-effort static classification, not an alias proof.
    """
    return TID not in tags and WARP not in tags
