"""Structured diagnostics for the static kernel verifier.

Every check reports :class:`Diagnostic` records — one per offending
program point — rather than raising on first failure, so a single lint
pass over a kernel surfaces *all* problems at once with pc-level
precision.  :class:`LintReport` aggregates the diagnostics of one kernel
and renders them as text (for the CLI) or as JSON-serialisable dicts
(for tooling and CI).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple


class Severity(enum.Enum):
    """How bad a diagnostic is.

    ``ERROR`` means the kernel can mis-execute (wrong reconvergence,
    deadlocking barrier, shared-memory race, read of a never-written
    register); the lint exit code is nonzero iff any error is present.
    ``WARNING`` flags suspicious-but-executable structure (dead writes,
    unreachable code, possibly-uninitialized reads).
    """

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one check, anchored to a static program counter."""

    pc: int
    check_id: str
    severity: Severity
    message: str

    def render(self) -> str:
        """``pc 12: error [bad-reconvergence] ...`` one-liner."""
        return "pc %d: %s [%s] %s" % (
            self.pc, self.severity.value, self.check_id, self.message
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "pc": self.pc,
            "check_id": self.check_id,
            "severity": self.severity.value,
            "message": self.message,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "Diagnostic":
        """Inverse of :meth:`to_dict`."""
        return Diagnostic(
            pc=int(data["pc"]),
            check_id=data["check_id"],
            severity=Severity(data["severity"]),
            message=data["message"],
        )


@dataclass(frozen=True)
class LintReport:
    """All diagnostics of one kernel, in (pc, check) order."""

    kernel: str
    diagnostics: Tuple[Diagnostic, ...]

    @property
    def errors(self) -> Tuple[Diagnostic, ...]:
        """The error-severity subset."""
        return tuple(
            d for d in self.diagnostics if d.severity is Severity.ERROR
        )

    @property
    def warnings(self) -> Tuple[Diagnostic, ...]:
        """The warning-severity subset."""
        return tuple(
            d for d in self.diagnostics if d.severity is Severity.WARNING
        )

    @property
    def has_errors(self) -> bool:
        """Whether any diagnostic is an error."""
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def by_check(self, check_id: str) -> Tuple[Diagnostic, ...]:
        """Diagnostics of one check (used heavily by tests)."""
        return tuple(d for d in self.diagnostics if d.check_id == check_id)

    def render_text(self) -> str:
        """Human-readable per-kernel report."""
        if not self.diagnostics:
            return "%s: clean" % self.kernel
        lines = [
            "%s: %d error(s), %d warning(s)"
            % (self.kernel, len(self.errors), len(self.warnings))
        ]
        lines.extend("  " + d.render() for d in self.diagnostics)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "kernel": self.kernel,
            "n_errors": len(self.errors),
            "n_warnings": len(self.warnings),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "LintReport":
        """Inverse of :meth:`to_dict` (the count fields are derived)."""
        return LintReport(
            kernel=data["kernel"],
            diagnostics=tuple(
                Diagnostic.from_dict(d) for d in data.get("diagnostics", ())
            ),
        )


class StaticCheckError(RuntimeError):
    """Raised when a gated consumer (e.g. the pipeline's trace stage)
    refuses a kernel whose lint report contains errors."""

    def __init__(self, report: LintReport):
        self.report = report
        super().__init__(
            "kernel %s failed static verification:\n%s"
            % (report.kernel, report.render_text())
        )


def render_reports(reports: Sequence[LintReport]) -> str:
    """Text rendering of a multi-kernel (suite) lint run."""
    lines: List[str] = [report.render_text() for report in reports]
    n_errors = sum(len(r.errors) for r in reports)
    n_warnings = sum(len(r.warnings) for r in reports)
    lines.append(
        "%d kernel(s): %d error(s), %d warning(s)"
        % (len(reports), n_errors, n_warnings)
    )
    return "\n".join(lines)


def reports_to_json(reports: Sequence[LintReport]) -> str:
    """JSON rendering of a multi-kernel (suite) lint run."""
    return json.dumps(
        {
            "kernels": [report.to_dict() for report in reports],
            "n_errors": sum(len(r.errors) for r in reports),
            "n_warnings": sum(len(r.warnings) for r in reports),
        },
        indent=2,
    )


def reports_from_json(text: str) -> List[LintReport]:
    """Parse :func:`reports_to_json` output back into reports.

    Round-trip guarantee: ``reports_from_json(reports_to_json(rs))``
    compares equal to ``rs`` (reports are frozen dataclasses), which is
    what lets CI consume and re-emit lint artifacts losslessly.
    """
    data = json.loads(text)
    return [LintReport.from_dict(entry) for entry in data.get("kernels", ())]
