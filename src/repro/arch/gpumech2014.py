"""The paper's machine: one scheduler per core, stack reconvergence.

This backend is the executable definition of "what GPUMech (MICRO 2014)
models": post-dominator stack reconvergence in the emulator, a single
issue slot shared by every resident warp in the oracle, and the Eq. 7-23
multithreading/contention composition in the analytical model.  It is
the default ``GPUConfig.arch`` and delegates verbatim to the existing
``repro.core`` functions, so its predictions are bitwise-identical to
the pre-backend code path (pinned by ``tests/test_arch.py`` the same way
scalar-vs-vectorized equivalence is).
"""

from __future__ import annotations

from repro.arch.base import ArchBackend


class GpuMech2014(ArchBackend):
    """2014-era GPU core (Table I of the paper)."""

    name = "gpumech2014"
    reconvergence = "stack"

    def describe(self) -> str:
        return (
            "gpumech2014: 1 scheduler/core, stack reconvergence "
            "(the paper's Table I machine)"
        )
