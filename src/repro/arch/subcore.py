"""A modern sub-core GPU backend: N schedulers + ITS reconvergence.

Volta-and-later cores are organised as *sub-cores*: each core has
``GPUConfig.n_schedulers`` schedulers, each owning a static partition of
the resident warps and one issue slot per cycle ("Analyzing Modern
NVIDIA GPU cores" documents the structure).  Divergence is handled with
independent-thread-scheduling-style interleaving rather than a strict
reconvergence stack.  This backend models both effects:

* **Trace**: warps execute under
  :class:`~repro.trace.reconvergence.InterleavedStack`, so divergent
  paths interleave (same per-warp instruction multiset as the stack,
  different order → different dependency distances and intervals).
* **Oracle**: the timing core builds ``n_schedulers`` partitions
  (warp → partition by age) and issues up to one instruction per
  partition per cycle; the memory system (L1, MSHRs, scratchpad, SFU)
  stays shared per core, as on real hardware.
* **Analytical model**: the multithreading model runs per scheduler.
  Each scheduler arbitrates only its own ``ceil(n_warps / S)`` warps, so
  the representative warp's stalls are hidden (and its issue slot
  contended) by that many peers, not all ``n_warps`` — while the core
  still retires ``n_warps`` warps' instructions over the same span.
  With ``S`` issue slots the per-core-instruction CPI floor drops to
  ``1 / (S * issue_rate)``.  Contention and the CPI stack compose
  exactly as in the paper: the memory system is per-core, so Eq. 17-23
  already describe it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.arch.base import ArchBackend
from repro.core.multithreading import (
    MultithreadingResult,
    model_multithreading,
)
from repro.trace.reconvergence import InterleavedStack

if TYPE_CHECKING:
    import numpy as np

    from repro.config import GPUConfig
    from repro.core.interval import IntervalProfile


class SubCore(ArchBackend):
    """Modern core: sub-core dispatch + interleaved reconvergence."""

    name = "subcore"
    reconvergence = "interleave"

    def schedulers_per_core(self, config: "GPUConfig") -> int:
        return config.n_schedulers

    def make_reconvergence_stack(self, initial_mask: "np.ndarray"):
        return InterleavedStack(initial_mask)

    def model_multithreading(
        self,
        profile: "IntervalProfile",
        n_warps: int,
        policy: str,
        config: "GPUConfig",
        rr_mode: str = "probabilistic",
        alignment: float = 1.0,
    ) -> MultithreadingResult:
        n_sched = max(1, min(config.n_schedulers, n_warps))
        per_sched = -(-n_warps // n_sched)  # busiest partition (ceil)
        per_sched_result = model_multithreading(
            profile, per_sched, policy, rr_mode=rr_mode, alignment=alignment
        )
        issue_rate = profile.issue_rate
        # The busiest scheduler's span bounds the core's execution time;
        # in that span the whole core retires n_warps × rep_insts
        # instructions (Eq. 7 with per-partition non-overlap counting).
        cycles = (
            per_sched_result.rep_total_cycles
            + per_sched_result.total_nonoverlapped / issue_rate
        )
        total_insts = n_warps * per_sched_result.rep_insts
        cpi = cycles / total_insts if total_insts else 0.0
        cpi = max(cpi, 1.0 / (n_sched * issue_rate))
        return MultithreadingResult(
            policy=policy,
            n_warps=n_warps,
            cpi=cpi,
            ipc_core=1.0 / cpi if cpi else 0.0,
            total_nonoverlapped=per_sched_result.total_nonoverlapped,
            per_interval_nonoverlapped=(
                per_sched_result.per_interval_nonoverlapped
            ),
            rep_total_cycles=per_sched_result.rep_total_cycles,
            rep_insts=per_sched_result.rep_insts,
        )

    def describe(self) -> str:
        return (
            "subcore: N schedulers/core (sub-core dispatch), "
            "independent-thread-scheduling reconvergence"
        )
