"""Pluggable microarchitecture backends (``GPUConfig.arch``).

One :class:`~repro.arch.base.ArchBackend` per machine family:

* ``gpumech2014`` — the paper's core (default; bitwise-identical to the
  pre-backend code path): one scheduler per core, stack reconvergence.
* ``subcore`` — a modern core: ``n_schedulers`` sub-core issue slots
  with static warp partitions, independent-thread-scheduling-style
  reconvergence.

The registry is keyed by name and cross-checked against
``repro.config.KNOWN_ARCHES`` (the config layer validates arch strings
without importing this package).  Architecture selection is orthogonal
to the scalar/vector *compute* backend (``repro.backend``): the compute
backend must never change any result under any architecture —
:func:`assert_backend_independent` is the executable form of that
contract, exercised per-arch by ``tests/test_arch.py``.
"""

from __future__ import annotations

import pickle
from typing import Dict

from repro.arch.base import ArchBackend, schedulers_for
from repro.arch.gpumech2014 import GpuMech2014
from repro.arch.subcore import SubCore
from repro.config import KNOWN_ARCHES

_REGISTRY: Dict[str, ArchBackend] = {
    backend.name: backend for backend in (GpuMech2014(), SubCore())
}

#: Registered backend names, sorted (= ``config.KNOWN_ARCHES`` content).
ARCH_NAMES = tuple(sorted(_REGISTRY))

if set(ARCH_NAMES) != set(KNOWN_ARCHES):  # pragma: no cover - import guard
    raise ImportError(
        "arch registry %r disagrees with config.KNOWN_ARCHES %r"
        % (ARCH_NAMES, KNOWN_ARCHES)
    )


def get_arch(name: str) -> ArchBackend:
    """Look up a backend by its ``GPUConfig.arch`` name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            "unknown arch %r; known architecture backends: %s"
            % (name, ", ".join(ARCH_NAMES))
        ) from None


def assert_backend_independent(
    kernel_name: str,
    config=None,
    scale=None,
):
    """Assert the compute backend cannot change this kernel's prediction.

    Runs the full prediction chain (trace → … → predict) under the
    scalar and the vectorized compute backend for ``config.arch`` and
    raises :class:`AssertionError` unless the two predictions are
    pickle-identical (pickle equality is store-fingerprint equality).
    Returns the prediction on success.  This is the ``repro.arch`` side
    of the ``repro.backend`` contract: ``REPRO_SCALAR`` selects an
    implementation, never an answer — under *either* architecture.
    """
    import os

    from repro.backend import SCALAR_ENV
    from repro.config import GPUConfig
    from repro.pipeline import Pipeline
    from repro.workloads.generators import Scale

    config = config if config is not None else GPUConfig()
    scale = scale if scale is not None else Scale.tiny()
    predictions = {}
    saved = os.environ.get(SCALAR_ENV)
    try:
        for scalar in (True, False):
            os.environ[SCALAR_ENV] = "1" if scalar else "0"
            pipeline = Pipeline(config, scale=scale)
            predictions[scalar] = pipeline.predict(kernel_name)
    finally:
        if saved is None:
            os.environ.pop(SCALAR_ENV, None)
        else:
            os.environ[SCALAR_ENV] = saved
    if pickle.dumps(predictions[True]) != pickle.dumps(predictions[False]):
        raise AssertionError(
            "compute backend changed the %r prediction under arch=%r; "
            "REPRO_SCALAR must be result-invariant"
            % (kernel_name, config.arch)
        )
    return predictions[False]


__all__ = [
    "ArchBackend",
    "ARCH_NAMES",
    "GpuMech2014",
    "SubCore",
    "assert_backend_independent",
    "get_arch",
    "schedulers_for",
]
