"""The microarchitecture-backend interface.

Everything about the modeled machine that is a *design decision* rather
than a parameter lives behind :class:`ArchBackend`: how the functional
emulator serialises divergent control flow, how many issue slots a core
has and how warps share them, how the analytical multithreading /
contention / CPI-stack models compose, and how interval profiles are
constructed.  ``repro.core`` and ``repro.timing`` dispatch through the
backend selected by ``GPUConfig.arch`` instead of hard-coding one
machine; ``repro.arch`` registers the shipped backends.

Contrast with ``repro.backend`` (the scalar/vector *compute* backend):
that switch picks between two implementations of the *same* math and is
bitwise-invisible, so it never keys the artifact store.  An architecture
backend changes the predictions themselves, which is why ``arch`` is a
fingerprinted :class:`~repro.config.GPUConfig` field.

See ``docs/architectures.md`` for the contract and a walkthrough of
adding a third backend.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

# Safe at module level: nothing under repro.core / repro.trace imports
# repro.arch at import time (they defer get_arch into call sites), so
# these cannot cycle — and the hooks are on the per-prediction hot path,
# where per-call imports would be measurable (benchmarks/test_bench_arch).
from repro.core.contention import model_contention as _model_contention
from repro.core.cpi_stack import build_cpi_stack as _build_cpi_stack
from repro.core.interval import (
    build_interval_profiles as _build_interval_profiles,
)
from repro.core.multithreading import (
    model_multithreading as _model_multithreading,
)
from repro.trace.simt_stack import SimtStack

if TYPE_CHECKING:  # imports for annotations only
    import numpy as np

    from repro.config import GPUConfig
    from repro.core.contention import ContentionResult
    from repro.core.cpi_stack import CPIStack
    from repro.core.interval import IntervalProfile
    from repro.core.latency import LatencyTable
    from repro.core.multithreading import MultithreadingResult


class ArchBackend:
    """One machine family: reconvergence + dispatch + analytical model.

    Subclasses override the hooks; the base class documents the contract
    and supplies the single-scheduler defaults.  Backends are stateless
    singletons — every hook receives the :class:`GPUConfig` it needs, so
    one instance serves every configuration and process.
    """

    #: Registry name; the value ``GPUConfig.arch`` takes.
    name: str = "base"
    #: How the functional emulator serialises divergent branches:
    #: ``"stack"`` (post-dominator reconvergence stack, one side at a
    #: time) or ``"interleave"`` (independent-thread-scheduling-style
    #: min-PC interleaving).  ``"stack"`` traces may use the batched
    #: lockstep emulator; any other policy runs the scalar warp loop.
    reconvergence: str = "stack"

    # -- dispatch structure -------------------------------------------------

    def schedulers_per_core(self, config: "GPUConfig") -> int:
        """Issue slots per core; each owns a static warp partition.

        The timing oracle creates this many scheduler partitions per
        core (warp → partition by ``age % n``), each issuing at most one
        warp-instruction per cycle.
        """
        return 1

    # -- trace semantics ----------------------------------------------------

    def make_reconvergence_stack(self, initial_mask: "np.ndarray"):
        """Divergence structure for one warp of the scalar emulator.

        Must implement the :class:`~repro.trace.simt_stack.SimtStack`
        interface (``pop_reconverged``/``top``/``branch``/``jump``/
        ``advance``/``depth``).
        """
        return SimtStack(initial_mask)

    # -- analytical model ---------------------------------------------------

    def build_interval_profiles(
        self,
        warps,
        latency_table: "LatencyTable",
        config: "GPUConfig",
    ) -> List["IntervalProfile"]:
        """Per-warp Eq. 4 interval profiles under this architecture."""
        return _build_interval_profiles(warps, latency_table,
                                        config.issue_rate)

    def model_multithreading(
        self,
        profile: "IntervalProfile",
        n_warps: int,
        policy: str,
        config: "GPUConfig",
        rr_mode: str = "probabilistic",
        alignment: float = 1.0,
    ) -> "MultithreadingResult":
        """Multi-warp CPI without contention (Sec. IV-A sharing rules)."""
        return _model_multithreading(
            profile, n_warps, policy, rr_mode=rr_mode, alignment=alignment
        )

    def model_contention(
        self,
        profile: "IntervalProfile",
        n_warps: int,
        config: "GPUConfig",
        avg_miss_latency: float,
    ) -> "ContentionResult":
        """MSHR/DRAM/SFU/scratchpad contention (Eq. 17-23)."""
        return _model_contention(profile, n_warps, config, avg_miss_latency)

    def build_cpi_stack(
        self,
        profile: "IntervalProfile",
        latency_table: "LatencyTable",
        multithreading: "MultithreadingResult",
        contention: "ContentionResult",
        config: "GPUConfig",
    ) -> "CPIStack":
        """Compose the Table III CPI stack for this architecture."""
        return _build_cpi_stack(
            profile, latency_table, multithreading, contention, config
        )

    # -- description --------------------------------------------------------

    def describe(self) -> str:
        """One-line human description for reports and ``--compare-arch``."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<ArchBackend %s>" % self.name


def schedulers_for(
    backend: "ArchBackend", config: "GPUConfig", n_warps: Optional[int] = None
) -> int:
    """Effective scheduler count: never more than the warps to schedule."""
    n = backend.schedulers_per_core(config)
    if n_warps is not None:
        n = min(n, max(n_warps, 1))
    return max(n, 1)
