"""Naive_Interval baseline (Eq. 1, Sec. II-B).

The naive extension of CPU interval analysis to a multithreaded core:
assume every instruction of every remaining warp hides inside the
representative warp's stall cycles, so

    IPC_core = IPC_single_warp * n_warps.

It ignores non-overlapped instructions and all resource contention, so it
is systematically optimistic — the paper's motivating strawman.
"""

from __future__ import annotations

from repro.core.interval import IntervalProfile


def naive_interval_cpi(
    profile: IntervalProfile,
    n_warps: int,
    cap_at_issue_rate: bool = True,
) -> float:
    """Eq. 1, returned as CPI per core-instruction.

    ``cap_at_issue_rate`` bounds the predicted IPC at the core's issue
    bandwidth (a core cannot retire more than ``issue_rate``
    instructions/cycle); disable it for the literal uncapped Eq. 1.
    """
    if n_warps < 1:
        raise ValueError("n_warps must be >= 1")
    if not profile.n_insts:
        return 0.0
    cpi = profile.total_cycles / (n_warps * profile.n_insts)
    if cap_at_issue_rate:
        cpi = max(cpi, 1.0 / profile.issue_rate)
    return cpi
