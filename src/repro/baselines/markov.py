"""Markov_Chain baseline: Chen & Aamodt's first-order throughput model.

Sec. VIII-A of the paper summarises the model [Chen & Aamodt, HPCA'09]:
each warp is a two-state Markov process — *activated* (can issue) or
*suspended* (stalled).  An activated warp suspends with probability ``p``
after issuing; a suspended warp stays suspended for ``M`` cycles on
average.  In steady state a warp is activated with probability

    a = 1 / (1 + p * M)

(one issue cycle buys ``p * M`` expected stall cycles), and the core
issues whenever at least one of the ``n`` independent warps is activated:

    IPC_core = 1 - (1 - a) ** n.

We derive ``p`` and ``M`` from the representative warp's interval
profile: an instruction ends an interval (triggers a stall) with
probability ``n_intervals / n_insts``, and the mean stall length is
``total_stall / n_intervals``.

The paper's two criticisms are inherent to the formulation and reproduce
here: the model assumes random interleaving (no scheduling policy) and at
most one outstanding memory request per warp (no queuing/contention), so
it is optimistic for memory-divergent kernels.
"""

from __future__ import annotations

from repro.core.interval import IntervalProfile


def markov_warp_activation(p: float, m: float) -> float:
    """Steady-state probability that a single warp can issue."""
    return 1.0 / (1.0 + p * m)


def markov_chain_cpi(profile: IntervalProfile, n_warps: int) -> float:
    """Predicted CPI per core-instruction for ``n_warps`` resident warps."""
    if n_warps < 1:
        raise ValueError("n_warps must be >= 1")
    n_insts = profile.n_insts
    if not n_insts:
        return 0.0
    n_intervals = profile.n_intervals
    stall = profile.total_stall_cycles
    # A trailing interval without a stall should not count as a stall
    # trigger.
    stalling_intervals = sum(
        1 for i in profile.intervals if i.stall_cycles > 0.0
    )
    if not stalling_intervals or stall <= 0.0:
        return 1.0 / profile.issue_rate  # never stalls: issue-bound
    p = stalling_intervals / n_insts
    m = stall / stalling_intervals
    activation = markov_warp_activation(p, m)
    ipc = (1.0 - (1.0 - activation) ** n_warps) * profile.issue_rate
    return 1.0 / ipc
