"""Baseline models evaluated against GPUMech (Table II of the paper)."""

from repro.baselines.naive import naive_interval_cpi
from repro.baselines.markov import markov_chain_cpi

__all__ = ["markov_chain_cpi", "naive_interval_cpi"]
