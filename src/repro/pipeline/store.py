"""Content-addressed artifact stores backing the staged pipeline.

Keys are ``"<stage>:<hash>"`` strings produced by the pipeline's key
derivation (stage name + fingerprint of exactly the inputs the stage
reads); values are arbitrary picklable stage artifacts (traces, cache
results, interval profiles, oracle stats, predictions).

Three implementations:

``MemoryStore``
    Plain in-process dict — the default.  Hits return the *same object*,
    so e.g. repeated ``Runner.trace()`` calls are identity-cached.
``DiskStore``
    One pickle file per artifact under ``<root>/<stage>/<hash>.pkl``,
    written atomically — safe for concurrent writers (parallel sweep
    workers racing on the same key write identical bytes; the ``os.replace``
    is atomic either way) and reusable across processes and sessions.
``TieredStore``
    A read-through/write-through chain (memory in front of disk): gets
    backfill earlier layers, puts propagate to all layers.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from typing import Any, Dict, Optional, Sequence


class ArtifactStore:
    """Interface: ``get`` returns the artifact or ``None`` on a miss."""

    def get(self, key: str) -> Optional[Any]:
        raise NotImplementedError

    def put(self, key: str, value: Any) -> None:
        raise NotImplementedError

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None


def _split_key(key: str) -> tuple:
    stage, _, digest = key.partition(":")
    if not digest:
        raise ValueError("artifact key must look like '<stage>:<hash>': %r" % key)
    return stage, digest


class MemoryStore(ArtifactStore):
    """In-process artifact store (identity-preserving on hits)."""

    def __init__(self) -> None:
        self._data: Dict[str, Any] = {}

    def get(self, key: str) -> Optional[Any]:
        return self._data.get(key)

    def put(self, key: str, value: Any) -> None:
        self._data[key] = value

    def __len__(self) -> int:
        return len(self._data)

    def keys(self):
        return self._data.keys()


class DiskStore(ArtifactStore):
    """On-disk pickle-per-artifact store rooted at a directory."""

    def __init__(self, root: str) -> None:
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)

    def _path(self, key: str) -> str:
        stage, digest = _split_key(key)
        return os.path.join(self.root, stage, digest + ".pkl")

    def get(self, key: str) -> Optional[Any]:
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except Exception:
            # Unpickling corrupt bytes can raise almost anything
            # (UnpicklingError, EOFError, ValueError, ...); any failure
            # to load is a cache miss, never an error.
            return None

    def put(self, key: str, value: Any) -> None:
        path = self._path(key)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_path, path)  # atomic on POSIX
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        count = 0
        for _, _, files in os.walk(self.root):
            count += sum(1 for f in files if f.endswith(".pkl"))
        return count


class TieredStore(ArtifactStore):
    """Read-through chain of stores (first layer is the fastest)."""

    def __init__(self, layers: Sequence[ArtifactStore]) -> None:
        if not layers:
            raise ValueError("TieredStore needs at least one layer")
        self.layers = list(layers)

    def get(self, key: str) -> Optional[Any]:
        for i, layer in enumerate(self.layers):
            value = layer.get(key)
            if value is not None:
                for earlier in self.layers[:i]:  # backfill hot layers
                    earlier.put(key, value)
                return value
        return None

    def put(self, key: str, value: Any) -> None:
        for layer in self.layers:
            layer.put(key, value)


def open_store(cache_dir: Optional[str] = None) -> ArtifactStore:
    """The standard store: memory-only, or memory-fronted disk."""
    if cache_dir is None:
        return MemoryStore()
    return TieredStore([MemoryStore(), DiskStore(cache_dir)])
