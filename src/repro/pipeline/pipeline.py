"""The staged artifact pipeline: cached stage execution + parallel sweeps.

:class:`Pipeline` reifies the Fig. 5 dataflow declared in
``repro.pipeline.stages``.  Every stage execution is

1. *keyed* — a content-addressed key from the kernel identity, the
   workload scale, the fingerprint of exactly the config fields the
   stage reads, and the keys of its upstream artifacts;
2. *memoised* — looked up in an :class:`~repro.pipeline.store.ArtifactStore`
   (in-memory by default; memory-fronted disk with ``cache_dir``), so a
   hardware sweep automatically re-runs only the cache-sim-and-later
   stages and a repeated sweep re-runs nothing at all;
3. *counted and timed* — every execution lands in the pipeline's
   :class:`~repro.obs.metrics.MetricsRegistry` (stage execution/hit
   counters, wall-clock totals and latency histograms, cache-sim and
   oracle statistics); ``pipeline.counters[stage]`` /
   ``pipeline.timings[stage]`` / ``pipeline.hits[stage]`` are live views
   over that registry, which is what the speedup harness and the
   invalidation tests read;
4. *traced* — when the pipeline's :class:`~repro.obs.tracer.Tracer` is
   enabled, each real execution is a span in the exported timeline
   (disabled tracing allocates nothing).

Independent (kernel × sweep-point) evaluations fan out over a
``ProcessPoolExecutor`` via :meth:`Pipeline.evaluate_many`; the per-warp
interval-profile loop of a single evaluation fans out the same way when
``jobs > 1``.  Parallel execution is bitwise-deterministic: workers run
the identical pure stage functions and results are collected in request
order.  Each worker ships its metric deltas and spans back with every
result, so after a parallel sweep the parent's stage counters equal a
serial run's (exact whenever requests do not share intermediate
artifacts; shared artifacts may be computed once per worker).
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import time
from collections import Counter, defaultdict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.backend import BACKEND_STAGES, current_backend
from repro.config import GPUConfig
from repro.depcheck.runtime import (
    depcheck_enabled,
    record_stage,
    recording_config,
)
from repro.obs.metrics import MetricsRegistry, diff_snapshots
from repro.obs.tracer import Tracer, get_tracer
from repro.pipeline.stages import (
    compute_cache_sim,
    compute_clustering,
    compute_costmodel,
    compute_latency_table,
    compute_lint,
    compute_oracle,
    compute_profiles,
    compute_trace,
    compute_xcheck,
    stage_key,
    trace_digest,
)
from repro.pipeline.store import ArtifactStore, open_store
from repro.staticcheck.report import StaticCheckError
from repro.workloads.generators import Scale

#: Minimum warps before the per-warp profile loop is worth forking for.
_PARALLEL_WARP_THRESHOLD = 8

_LOG = logging.getLogger(__name__)


@dataclass(frozen=True)
class EvalRequest:
    """One (kernel × configuration) point of a sweep."""

    kernel: str
    config: Optional[GPUConfig] = None
    policy: Optional[str] = None
    warps_per_core: Optional[int] = None
    selection_strategy: str = "clustering"


def _mp_context():
    """Prefer fork (workers inherit the warm in-memory store for free).

    ``REPRO_START_METHOD`` overrides the choice (the CI smoke job runs
    the same sweep under both ``fork`` and ``spawn``).
    """
    method = os.environ.get("REPRO_START_METHOD")
    if method:
        return multiprocessing.get_context(method)
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


# Worker-process globals (set once per worker by the pool initializer).
_WORKER_PIPELINE: Optional["Pipeline"] = None
#: Metrics snapshot at the last worker→parent hand-off; deltas against
#: it are what each result ships home.
_WORKER_BASELINE: Optional[Dict[str, Any]] = None


def _init_worker(pipeline: "Pipeline") -> None:
    global _WORKER_PIPELINE, _WORKER_BASELINE
    _WORKER_PIPELINE = pipeline
    _WORKER_PIPELINE.jobs = 1  # no nested pools inside workers
    # Fork copies the parent's already-recorded history; it must not be
    # reported twice, so baseline the metrics and discard the spans.
    _WORKER_BASELINE = pipeline.metrics.snapshot()
    pipeline.tracer.drain()


def _evaluate_in_worker(request: EvalRequest):
    """Run one sweep point; returns (result, metric delta, spans)."""
    global _WORKER_BASELINE
    pipeline = _WORKER_PIPELINE
    result = pipeline.evaluate(
        request.kernel,
        config=request.config,
        policy=request.policy,
        warps_per_core=request.warps_per_core,
        selection_strategy=request.selection_strategy,
    )
    snapshot = pipeline.metrics.snapshot()
    delta = diff_snapshots(snapshot, _WORKER_BASELINE)
    _WORKER_BASELINE = snapshot
    spans = pipeline.tracer.drain() if pipeline.tracer.enabled else []
    return result, delta, spans


def _profile_chunk(args):
    warps, latency_table, config = args
    return compute_profiles(warps, latency_table, config)


class Pipeline:
    """Cached, parallel execution of the GPUMech stage DAG."""

    def __init__(
        self,
        config: GPUConfig,
        scale: Optional[Scale] = None,
        store: Optional[ArtifactStore] = None,
        cache_dir: Optional[str] = None,
        jobs: int = 1,
        rr_mode: str = "probabilistic",
        lint: bool = False,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        timeline_interval: Optional[float] = None,
        ledger=None,
    ):
        if store is not None and cache_dir is not None:
            raise ValueError("pass either store or cache_dir, not both")
        self.config = config
        self.scale = scale if scale is not None else Scale.small()
        self.store = store if store is not None else open_store(cache_dir)
        self.jobs = max(1, int(jobs))
        self.rr_mode = rr_mode
        #: Opt-in static verification gating the trace stage: when set,
        #: every kernel is linted (cached + counted like any stage)
        #: before its first emulation, and lint errors abort the run
        #: before any artifact is built from the invalid kernel.
        self.lint = lint
        #: Span tracer; defaults to the process-wide one (disabled
        #: unless something installed an enabled tracer).
        self.tracer = tracer if tracer is not None else get_tracer()
        #: Home of every counter/timing this pipeline produces; pool
        #: workers ship deltas of it back with each result.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Oracle sampling period in cycles (None: no timeline).
        self.timeline_interval = timeline_interval
        #: Optional :class:`~repro.obs.ledger.PredictionLedger`: every
        #: evaluation appends one provenance + accuracy record.  The
        #: ledger holds only a path and run id, so it travels into pool
        #: workers, which append to the same file (one O_APPEND line
        #: per record — no coordination needed).
        self.ledger = ledger

    # -- plumbing -----------------------------------------------------------

    # ``counters``/``hits``/``timings`` are read-only *snapshots*: each
    # access builds a fresh Counter from the metrics registry (the item
    # list is copied under the registry lock, counter values are single
    # atomic attribute reads).  Mutating the returned object affects
    # nothing, and concurrent scrapes/increments can never tear it —
    # see docs/concurrency.md.

    @property
    def counters(self) -> Counter:
        """Real stage executions (store misses), keyed by stage name.

        A point-in-time snapshot; safe to read while workers run.
        """
        return self.metrics.labeled_values("pipeline.stage_executions",
                                           "stage")

    @property
    def hits(self) -> Counter:
        """Store hits, keyed by stage name (point-in-time snapshot)."""
        return self.metrics.labeled_values("pipeline.stage_hits", "stage")

    @property
    def timings(self) -> Dict[str, float]:
        """Cumulative compute seconds per stage, misses only
        (point-in-time snapshot)."""
        return defaultdict(
            float,
            self.metrics.labeled_values("pipeline.stage_seconds", "stage"),
        )

    def _scale_part(self) -> tuple:
        return (self.scale.n_blocks, self.scale.block_size, self.scale.iters)

    def _execute(self, stage: str, key: str, compute: Callable,
                 arch: Optional[str] = None):
        """Store lookup, else compute + record + put.

        ``arch`` labels the execution with the architecture backend
        (``GPUConfig.arch``) in both the span args and the per-arch
        shadow counters — the observability face of the multi-backend
        refactor (cross-arch sweeps show up separated per backend).
        """
        artifact = self.store.get(key)
        if artifact is not None:
            self.metrics.counter("pipeline.stage_hits", stage=stage).inc()
            return artifact
        span_args = {"key": key}
        if arch is not None:
            span_args["arch"] = arch
        backend = None
        if stage in BACKEND_STAGES:
            backend = current_backend()
            span_args["trace.backend"] = backend
        with self.tracer.span(stage, category="stage", args=span_args):
            start = time.perf_counter()
            if depcheck_enabled():
                # Sanitizer window: attribute config-proxy reads to this
                # stage (keys/fingerprints were computed before this
                # point, so only genuine compute reads land here).
                with record_stage(stage) as reads:
                    artifact = compute()
                for field_name in sorted(reads):
                    self.metrics.counter(
                        "depcheck.field_reads", stage=stage, field=field_name
                    ).inc()
            else:
                artifact = compute()
            elapsed = time.perf_counter() - start
        metrics = self.metrics
        metrics.counter("pipeline.stage_executions", stage=stage).inc()
        metrics.counter("pipeline.stage_seconds", stage=stage).inc(elapsed)
        metrics.histogram("pipeline.stage_ms", stage=stage).observe(
            elapsed * 1e3
        )
        if backend is not None:
            # Per-backend shadow counters (separate names so the exact-
            # label stage views above stay backend-agnostic).
            metrics.counter(
                "pipeline.backend_executions", stage=stage, backend=backend
            ).inc()
            metrics.counter(
                "pipeline.backend_seconds", stage=stage, backend=backend
            ).inc(elapsed)
        if arch is not None:
            # Per-architecture shadow counters, same pattern as above.
            metrics.counter(
                "pipeline.arch_executions", stage=stage, arch=arch
            ).inc()
        _LOG.debug("stage %s executed in %.1f ms (%s)",
                   stage, elapsed * 1e3, key)
        self.store.put(key, artifact)
        return artifact

    def _effective_config(
        self, config: Optional[GPUConfig], policy: Optional[str] = None
    ) -> GPUConfig:
        config = config if config is not None else self.config
        if policy is not None and policy != config.scheduler:
            config = config.with_(scheduler=policy)
        if depcheck_enabled():
            config = recording_config(config)
        return config

    # -- stage accessors ----------------------------------------------------

    def trace_key(self, kernel_name: str, config: Optional[GPUConfig] = None):
        config = self._effective_config(config)
        return stage_key("trace", config, kernel_name, self._scale_part())

    def verify(self, kernel_name: str):
        """Statically verify a suite kernel (cached, counted, timed like
        any other stage); raises :class:`StaticCheckError` on errors."""
        key = stage_key("lint", self.config, kernel_name, self._scale_part())
        report = self._execute(
            "lint", key, lambda: compute_lint(kernel_name, self.scale)
        )
        if report.has_errors:
            raise StaticCheckError(report)
        return report

    def analyze(self, kernel_name: str, config: Optional[GPUConfig] = None):
        """The (cached) static cost model of a suite kernel.

        Pure static analysis — no emulation: abstract interpretation
        over the kernel's CFG yields loop trip counts, memory-access
        coalescing classes, divergence regions, occupancy and CPI
        bounds (:class:`~repro.staticcheck.costmodel.KernelCostModel`).
        """
        config = self._effective_config(config)
        key = stage_key(
            "costmodel", config, kernel_name, self._scale_part()
        )
        return self._execute(
            "costmodel",
            key,
            lambda: compute_costmodel(kernel_name, self.scale, config),
            arch=config.arch,
        )

    def crosscheck(
        self, kernel_name: str, config: Optional[GPUConfig] = None
    ):
        """Cross-validate a suite kernel's dynamic trace against its
        static cost model (the xcheck sanitizer stage).

        Returns the resulting :class:`~repro.staticcheck.LintReport`;
        every error counts into the ``xcheck.mismatches`` metric so
        sweeps surface collector drift without parsing reports.
        """
        config = self._effective_config(config)
        cost = self.analyze(kernel_name, config)
        trace = self.trace(kernel_name, config)
        cost_key = stage_key(
            "costmodel", config, kernel_name, self._scale_part()
        )
        key = stage_key(
            "xcheck", config, self.trace_key(kernel_name, config), cost_key
        )

        def compute():
            report = compute_xcheck(
                kernel_name, self.scale, trace, cost, config
            )
            self.metrics.counter("xcheck.runs").inc()
            if report.errors:
                self.metrics.counter("xcheck.mismatches").inc(
                    len(report.errors)
                )
            return report

        return self._execute("xcheck", key, compute, arch=config.arch)

    def trace(self, kernel_name: str, config: Optional[GPUConfig] = None):
        """The (cached) functional trace of a suite kernel.

        With ``lint=True`` the kernel is statically verified first, so
        no trace artifact is ever built — or cached — from a kernel
        that fails verification.
        """
        if self.lint:
            self.verify(kernel_name)
        config = self._effective_config(config)
        key = self.trace_key(kernel_name, config)
        return self._execute(
            "trace", key,
            lambda: compute_trace(kernel_name, self.scale, config),
            arch=config.arch,
        )

    def _cache_sim(self, trace, trace_key_, config, warps_per_core):
        key = stage_key("cache_sim", config, trace_key_, warps_per_core)

        def compute():
            result = compute_cache_sim(trace, config, warps_per_core)
            self._record_cache_metrics(result)
            return result

        return self._execute(
            "cache_sim", key, compute, arch=config.arch
        ), key

    def _record_cache_metrics(self, result) -> None:
        """Absorb one cache simulation's hit/miss statistics (miss only:
        cached replays contribute nothing new)."""
        from repro.obs.metrics import RATIO_BUCKETS

        metrics = self.metrics
        metrics.counter("cache_sim.runs").inc()
        metrics.histogram(
            "cache_sim.l1_miss_rate", buckets=RATIO_BUCKETS
        ).observe(result.l1_miss_rate)
        metrics.histogram(
            "cache_sim.l2_miss_rate", buckets=RATIO_BUCKETS
        ).observe(result.l2_miss_rate)

    def _latency_table(self, trace, cache_result, cache_key, config):
        key = stage_key("latency_table", config, cache_key)
        return (
            self._execute(
                "latency_table",
                key,
                lambda: compute_latency_table(trace, cache_result, config),
                arch=config.arch,
            ),
            key,
        )

    def _profiles(self, trace, latency_table, latency_key, config):
        key = stage_key("interval_profiles", config, latency_key)
        return (
            self._execute(
                "interval_profiles",
                key,
                lambda: self._compute_profiles(trace, latency_table, config),
                arch=config.arch,
            ),
            key,
        )

    def _compute_profiles(self, trace, latency_table, config):
        warps = trace.warps
        if self.jobs <= 1 or len(warps) < _PARALLEL_WARP_THRESHOLD:
            return compute_profiles(warps, latency_table, config)
        # Fan the per-warp Eq. 4 scans out across processes in order-
        # preserving chunks (one of the two dominant per-configuration
        # costs, Sec. VI-D).
        n_chunks = min(self.jobs * 2, len(warps))
        bounds = [
            (len(warps) * i) // n_chunks for i in range(n_chunks + 1)
        ]
        chunks = [
            (warps[bounds[i]:bounds[i + 1]], latency_table, config)
            for i in range(n_chunks)
            if bounds[i] < bounds[i + 1]
        ]
        with ProcessPoolExecutor(
            max_workers=self.jobs, mp_context=_mp_context()
        ) as pool:
            parts = list(pool.map(_profile_chunk, chunks))
        return [profile for part in parts for profile in part]

    def _clustering(self, profiles, profiles_key, config, strategy):
        key = stage_key("clustering", config, profiles_key, strategy)
        return (
            self._execute(
                "clustering", key,
                lambda: compute_clustering(profiles, strategy),
                arch=config.arch,
            ),
            key,
        )

    # -- public products ----------------------------------------------------

    def model_inputs(
        self,
        kernel_name: str,
        config: Optional[GPUConfig] = None,
        selection_strategy: str = "clustering",
        warps_per_core: Optional[int] = None,
    ):
        """Fig. 5 left side for a suite kernel: trace → ... → clustering."""
        config = self._effective_config(config)
        trace = self.trace(kernel_name, config)
        return self.model_inputs_from_trace(
            trace,
            config=config,
            selection_strategy=selection_strategy,
            warps_per_core=warps_per_core,
            trace_key_=self.trace_key(kernel_name, config),
        )

    def model_inputs_from_trace(
        self,
        trace,
        config: Optional[GPUConfig] = None,
        selection_strategy: str = "clustering",
        warps_per_core: Optional[int] = None,
        trace_key_: Optional[str] = None,
    ):
        """Fig. 5 left side for an externally supplied trace."""
        from repro.core.model import ModelInputs  # circular at import time

        config = self._effective_config(config)
        if trace_key_ is None:
            trace_key_ = "trace:" + trace_digest(trace)
        cache_result, cache_key = self._cache_sim(
            trace, trace_key_, config, warps_per_core
        )
        latency_table, latency_key = self._latency_table(
            trace, cache_result, cache_key, config
        )
        profiles, profiles_key = self._profiles(
            trace, latency_table, latency_key, config
        )
        selection, _ = self._clustering(
            profiles, profiles_key, config, selection_strategy
        )
        return ModelInputs(
            trace=trace,
            cache_result=cache_result,
            latency_table=latency_table,
            profiles=profiles,
            selection=selection,
            avg_miss_latency=cache_result.avg_miss_latency(config),
        )

    def simulate(
        self,
        kernel_name: str,
        config: Optional[GPUConfig] = None,
        warps_per_core: Optional[int] = None,
    ):
        """Run the cycle-level timing oracle (cached on the full config)."""
        config = self._effective_config(config)
        trace = self.trace(kernel_name, config)
        interval = self.timeline_interval
        parts: tuple = (self.trace_key(kernel_name, config), warps_per_core)
        if interval is not None:
            # Timeline-bearing artifacts are keyed apart so a cached
            # no-timeline run never satisfies a sampling request (and
            # existing caches stay valid).
            parts += (("timeline", interval),)
        key = stage_key("oracle", config, *parts)

        def compute():
            stats = compute_oracle(
                trace, config, warps_per_core, timeline_interval=interval
            )
            self._record_oracle_metrics(stats)
            return stats

        return self._execute("oracle", key, compute, arch=config.arch)

    def _record_oracle_metrics(self, stats) -> None:
        """Absorb one oracle run's counters (miss only, like any stage)."""
        metrics = self.metrics
        metrics.counter("oracle.runs").inc()
        metrics.counter("oracle.insts_issued").inc(stats.total_insts)
        metrics.counter("oracle.cycles").inc(stats.total_cycles)
        metrics.counter("oracle.dram_requests").inc(stats.dram_requests)
        metrics.counter("oracle.mshr_merges").inc(stats.mshr_merges)
        metrics.counter("oracle.mshr_allocations").inc(stats.mshr_allocations)
        for core in stats.cores:
            label = str(core.core_id)
            metrics.counter("oracle.core_insts", core=label).inc(
                core.insts_issued
            )
            metrics.counter("oracle.core_issue_cycles", core=label).inc(
                core.issue_cycles
            )
            metrics.counter("oracle.core_active_cycles", core=label).inc(
                core.active_cycles
            )
            metrics.counter("oracle.core_mshr_stall_cycles", core=label).inc(
                core.mshr_stall_cycles
            )
            metrics.counter("oracle.core_sfu_stall_cycles", core=label).inc(
                core.sfu_stall_cycles
            )
            metrics.counter(
                "oracle.core_barrier_stall_cycles", core=label
            ).inc(core.barrier_stall_cycles)
            metrics.counter("oracle.core_dep_stall_cycles", core=label).inc(
                core.dep_stall_cycles
            )

    def predict(
        self,
        kernel_name: str,
        config: Optional[GPUConfig] = None,
        policy: Optional[str] = None,
        warps_per_core: Optional[int] = None,
        n_warps: Optional[int] = None,
        selection_strategy: str = "clustering",
    ):
        """GPUMech prediction through the cached stage chain."""
        from repro.core.model import GPUMech, resident_warps_per_core

        config = self._effective_config(config, policy)
        inputs = self.model_inputs(
            kernel_name,
            config,
            selection_strategy=selection_strategy,
            warps_per_core=warps_per_core,
        )
        if n_warps is None:
            n_warps = resident_warps_per_core(inputs.trace, config, warps_per_core)
        key = stage_key(
            "predict",
            config,
            self.trace_key(kernel_name, config),
            warps_per_core,
            n_warps,
            selection_strategy,
            self.rr_mode,
        )
        model = GPUMech(
            config,
            selection_strategy=selection_strategy,
            rr_mode=self.rr_mode,
            pipeline=self,
        )
        return self._execute(
            "predict", key,
            lambda: model.predict(inputs, n_warps=n_warps),
            arch=config.arch,
        )

    def evaluate(
        self,
        kernel_name: str,
        config: Optional[GPUConfig] = None,
        policy: Optional[str] = None,
        warps_per_core: Optional[int] = None,
        selection_strategy: str = "clustering",
    ):
        """Oracle + all Table II models on one kernel (one sweep point)."""
        config = self._effective_config(config, policy)
        with self.tracer.span(
            "evaluate",
            category="pipeline",
            args={"kernel": kernel_name, "policy": config.scheduler},
        ):
            return self._evaluate_traced(
                kernel_name, config, warps_per_core, selection_strategy
            )

    def _evaluate_traced(
        self, kernel_name, config, warps_per_core, selection_strategy
    ):
        from repro.baselines.markov import markov_chain_cpi
        from repro.baselines.naive import naive_interval_cpi
        from repro.core.model import resident_warps_per_core
        from repro.harness.runner import KernelResult  # circular at import

        started = time.perf_counter()
        timings_before = dict(self.timings) if self.ledger else {}
        oracle = self.simulate(kernel_name, config, warps_per_core)
        inputs = self.model_inputs(
            kernel_name,
            config,
            selection_strategy=selection_strategy,
            warps_per_core=warps_per_core,
        )
        n_warps = resident_warps_per_core(inputs.trace, config, warps_per_core)
        prediction = self.predict(
            kernel_name,
            config,
            warps_per_core=warps_per_core,
            n_warps=n_warps,
            selection_strategy=selection_strategy,
        )
        representative = inputs.representative
        mt_cpi = prediction.cpi_multithreading
        model_cpis = {
            "naive": naive_interval_cpi(representative, n_warps),
            "markov": markov_chain_cpi(representative, n_warps),
            "mt": mt_cpi,
            "mt_mshr": mt_cpi + prediction.cpi_mshr,
            "mt_mshr_band": prediction.cpi,
        }
        result = KernelResult(
            kernel=kernel_name,
            policy=config.scheduler,
            n_warps=n_warps,
            oracle_cpi=oracle.cpi,
            model_cpis=model_cpis,
            oracle=oracle,
            prediction=prediction,
        )
        if self.ledger is not None:
            self._ledger_append(result, config, inputs, timings_before,
                                started)
        return result

    def _ledger_append(self, result, config, inputs, timings_before,
                       started) -> None:
        """Append one provenance + accuracy record for an evaluation.

        Stage seconds are the *delta* this evaluation added to the
        registry (cache hits contribute zero, exactly like the stage
        counters), so the record carries where this prediction's time
        actually went.
        """
        from repro.obs.ledger import build_record

        timings_after = self.timings
        stage_seconds = {
            stage: timings_after[stage] - timings_before.get(stage, 0.0)
            for stage in timings_after
        }
        record = build_record(
            result,
            config,
            self.scale,
            backend=current_backend(),
            cache_result=inputs.cache_result,
            stage_seconds=stage_seconds,
            duration_s=time.perf_counter() - started,
        )
        self.ledger.append(record)
        self.metrics.counter("ledger.records").inc()

    # -- parallel sweep execution -------------------------------------------

    def evaluate_many(
        self,
        requests: Sequence[Union[EvalRequest, dict]],
        jobs: Optional[int] = None,
    ) -> List:
        """Evaluate many (kernel × configuration) points, possibly in
        parallel.

        Results come back in request order and are bitwise-identical to
        serial execution.  With ``jobs > 1`` the shared traces are warmed
        in the parent first (they are sweep-invariant), then points fan
        out over a process pool; artifacts computed inside workers reach
        the parent only through a shared on-disk store, so pass
        ``cache_dir`` when cross-run reuse matters.

        Workers return their metric deltas and spans alongside each
        result; both are merged here, so the parent's stage counters,
        timings and trace reflect the whole sweep — identical to a
        serial run whenever requests do not share intermediate
        artifacts (shared ones may execute once per worker, never
        fewer times than serially).
        """
        requests = [
            r if isinstance(r, EvalRequest) else EvalRequest(**r)
            for r in requests
        ]
        jobs = self.jobs if jobs is None else max(1, int(jobs))
        if jobs <= 1 or len(requests) <= 1:
            return [_evaluate_with(self, r) for r in requests]
        with self.tracer.span(
            "evaluate_many",
            category="pipeline",
            args={"points": len(requests), "jobs": jobs},
        ):
            for request in requests:  # warm shared traces (store-deduped)
                self.trace(
                    request.kernel,
                    self._effective_config(request.config, request.policy),
                )
            context = _mp_context()
            _LOG.info(
                "fanning %d sweep points out over %d workers (%s)",
                len(requests), jobs, context.get_start_method(),
            )
            with ProcessPoolExecutor(
                max_workers=jobs,
                mp_context=context,
                initializer=_init_worker,
                initargs=(self,),
            ) as pool:
                outcomes = list(pool.map(_evaluate_in_worker, requests))
        results = []
        for result, delta, spans in outcomes:
            self.metrics.merge(delta)
            if spans:
                self.tracer.merge(spans)
            results.append(result)
        return results


def _evaluate_with(pipeline: Pipeline, request: EvalRequest):
    return pipeline.evaluate(
        request.kernel,
        config=request.config,
        policy=request.policy,
        warps_per_core=request.warps_per_core,
        selection_strategy=request.selection_strategy,
    )
