"""Staged artifact pipeline (Fig. 5 as a cached, parallel DAG).

``stages`` declares the typed stage DAG and which ``GPUConfig`` fields
each stage reads; ``store`` provides content-addressed artifact stores
(memory, disk, tiered); ``pipeline`` executes the DAG with memoisation,
execution counters/timings and ``ProcessPoolExecutor`` sweep fan-out.
"""

from repro.pipeline.pipeline import EvalRequest, Pipeline
from repro.pipeline.stages import STAGES, StageSpec, stage_key, trace_digest
from repro.pipeline.store import (
    ArtifactStore,
    DiskStore,
    MemoryStore,
    TieredStore,
    open_store,
)

__all__ = [
    "ArtifactStore",
    "DiskStore",
    "EvalRequest",
    "MemoryStore",
    "Pipeline",
    "STAGES",
    "StageSpec",
    "TieredStore",
    "open_store",
    "stage_key",
    "trace_digest",
]
