"""Typed stage definitions: the Fig. 5 dataflow as a declarative DAG.

Each :class:`StageSpec` names its upstream stages and — crucially — the
exact :class:`~repro.config.GPUConfig` fields it reads.  Cache keys are
derived from those field subsets, so the pipeline knows *structurally*
which artifacts a configuration override invalidates:

====================  =====================================================
``lint``              static kernel verification (no config dependence)
``trace``             functional emulation (config: trace fields only)
``costmodel``         static cost model (warp/line geometry + cost params)
``xcheck``            dynamic-vs-static cross-validation (trace fields)
``cache_sim``         functional cache replay (cache geometry + residency)
``latency_table``     per-PC AMAT (latency parameters)
``interval_profiles`` per-warp Eq. 4 scan (issue bandwidth)
``clustering``        representative-warp selection (strategy parameter)
``predict``           multi-warp analytical model (full config)
``oracle``            cycle-level timing simulation (full config)
====================  =====================================================

The compute functions are pure: everything they need arrives as an
argument, nothing is read from ambient state — which is what makes them
safe to fan out across processes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from repro.config import ALL_FIELDS, TRACE_FIELDS, GPUConfig
from repro.core.latency import build_latency_table
from repro.core.representative import select_representative
from repro.memory.cache_simulator import simulate_caches
from repro.timing.simulator import TimingSimulator
from repro.trace.emulator import emulate
from repro.trace.trace_types import KernelTrace

#: Cache-simulation config dependencies: cache geometry plus the
#: residency-wave computation (blocks per core, warps per block).
CACHE_SIM_FIELDS: FrozenSet[str] = frozenset(
    {
        "line_size",
        "l1_size",
        "l1_assoc",
        "l2_size",
        "l2_assoc",
        "n_cores",
        "max_threads_per_core",
        "warp_size",
    }
)

#: Latency-table config dependencies (AMAT weights + compute latencies).
LATENCY_FIELDS: FrozenSet[str] = frozenset(
    {
        "l1_latency",
        "l2_latency",
        "dram_latency",
        "smem_latency",
        "op_latencies",
    }
)

#: Interval-profile config dependencies: issue bandwidth plus the
#: architecture backend (interval construction is an arch hook, so two
#: archs must never share a profile artifact even while both shipped
#: backends happen to build profiles identically).
PROFILE_FIELDS: FrozenSet[str] = frozenset({"issue_width", "arch"})

#: Static cost-model config dependencies: warp/line geometry for the
#: access classifier, residency limits for occupancy, issue width and
#: DRAM service rate for the CPI lower bound.
COSTMODEL_FIELDS: FrozenSet[str] = frozenset(
    {
        "warp_size",
        "line_size",
        "smem_banks",
        "issue_width",
        "n_cores",
        "max_threads_per_core",
        "dram_bandwidth_gbps",
        "core_clock_ghz",
    }
)

#: Cross-check config dependencies beyond what the trace and costmodel
#: keys (both folded into the xcheck key) already cover: the collector
#: comparisons themselves read only the warp width.
XCHECK_FIELDS: FrozenSet[str] = frozenset({"warp_size"})

#: Analytical-model config dependencies.  ``predict``'s key folds in
#: only the *trace* key, while its other inputs (cache result, latency
#: table, profiles, clustering) arrive as unkeyed objects — so their
#: field coverage must be declared here directly, alongside the reads
#: of the multi-warp model itself (scheduler policy, arch dispatch,
#: residency, and the Sec. IV-B contention parameters).  Everything in
#: ``ALL_FIELDS`` except ``simt_width`` (pinned to ``warp_size`` by
#: validation) and the scratchpad geometry (``smem_size`` /
#: ``smem_banks``, baked into the trace's conflict degrees).
PREDICT_FIELDS: FrozenSet[str] = (
    CACHE_SIM_FIELDS
    | LATENCY_FIELDS
    | PROFILE_FIELDS
    | frozenset(
        {
            "scheduler",
            "arch",
            "n_schedulers",
            "n_sfu_units",
            "n_mshrs",
            "n_dram_channels",
            "core_clock_ghz",
            "dram_bandwidth_gbps",
        }
    )
)

#: Timing-oracle config dependencies: the cycle-level simulator reads
#: the whole machine description except ``simt_width`` (pinned to
#: ``warp_size``), ``issue_width`` (pinned to 1 — single-issue cores),
#: and the scratchpad geometry already serialized into the trace.
ORACLE_FIELDS: FrozenSet[str] = ALL_FIELDS - frozenset(
    {"simt_width", "issue_width", "smem_size", "smem_banks"}
)


@dataclass(frozen=True)
class StageSpec:
    """One node of the pipeline DAG."""

    name: str
    #: Upstream stage names this stage consumes artifacts from.
    inputs: Tuple[str, ...]
    #: GPUConfig fields this stage reads *beyond* what its keyed inputs
    #: already cover; the key includes only their fingerprint, so
    #: overrides of other fields leave artifacts valid.
    config_fields: FrozenSet[str]
    description: str = ""
    #: Upstream stages whose artifact *keys* are folded into this
    #: stage's key (``None``: all of ``inputs``).  A stage is
    #: automatically invalidated by any config field covered by these
    #: keys, transitively — the coverage ``repro.depcheck`` verifies.
    #: ``predict`` narrows this to ``("trace",)``: its key carries only
    #: the trace key, so everything its unkeyed inputs (cache result,
    #: latency table, profiles, clustering) read must be declared in
    #: ``config_fields`` directly.
    key_inputs: Optional[Tuple[str, ...]] = None

    @property
    def effective_key_inputs(self) -> Tuple[str, ...]:
        """The upstream keys actually folded into this stage's key."""
        return self.inputs if self.key_inputs is None else self.key_inputs


#: The pipeline DAG in topological order.
STAGES = {
    spec.name: spec
    for spec in (
        StageSpec(
            "lint",
            inputs=(),
            config_fields=frozenset(),
            description="static kernel verification (CFG + dataflow checks)",
        ),
        StageSpec(
            "trace",
            inputs=(),
            config_fields=TRACE_FIELDS,
            description="functional SIMT emulation (machine-independent)",
        ),
        StageSpec(
            "costmodel",
            inputs=(),
            config_fields=COSTMODEL_FIELDS,
            description="static cost model (abstract interpretation)",
        ),
        StageSpec(
            "xcheck",
            inputs=("trace", "costmodel"),
            config_fields=XCHECK_FIELDS,
            description="cross-validation of dynamic trace vs static facts",
        ),
        StageSpec(
            "cache_sim",
            inputs=("trace",),
            config_fields=CACHE_SIM_FIELDS,
            description="functional cache replay, per-PC miss distributions",
        ),
        StageSpec(
            "latency_table",
            inputs=("cache_sim",),
            config_fields=LATENCY_FIELDS,
            description="per-PC average memory access times",
        ),
        StageSpec(
            "interval_profiles",
            inputs=("latency_table",),
            config_fields=PROFILE_FIELDS,
            description="per-warp interval profiles (Eq. 4)",
        ),
        StageSpec(
            "clustering",
            inputs=("interval_profiles",),
            config_fields=frozenset(),
            description="representative-warp selection (k-means, Eq. 5/6)",
        ),
        StageSpec(
            "predict",
            inputs=("clustering",),
            config_fields=PREDICT_FIELDS,
            description="multi-warp analytical model (Eq. 3/17)",
            key_inputs=("trace",),
        ),
        StageSpec(
            "oracle",
            inputs=("trace",),
            config_fields=ORACLE_FIELDS,
            description="cycle-level timing simulation",
        ),
    )
}


def stage_key(stage: str, config: GPUConfig, *parts: object) -> str:
    """Content-addressed key for one stage artifact.

    ``parts`` are the non-config inputs (kernel identity, upstream
    artifact keys, call parameters); the config contributes only the
    fingerprint of the fields the stage declares.
    """
    spec = STAGES[stage]
    fingerprint = config.fingerprint(spec.config_fields)
    payload = repr((fingerprint,) + parts).encode("utf-8")
    return "%s:%s" % (stage, hashlib.sha256(payload).hexdigest()[:24])


def trace_digest(trace: KernelTrace) -> str:
    """Content hash of an externally supplied trace.

    Lets ``GPUMech.prepare(trace=...)`` participate in content-addressed
    caching without knowing which kernel/scale produced the trace.
    """
    digest = hashlib.sha256()
    digest.update(
        repr(
            (trace.kernel_name, trace.warp_size, trace.line_size, trace.n_warps)
        ).encode("utf-8")
    )
    for warp in trace.warps:
        digest.update(warp.pcs.tobytes())
        digest.update(warp.ops.tobytes())
        digest.update(warp.active.tobytes())
        digest.update(warp.req_lines.tobytes())
        digest.update(warp.conflict.tobytes())
    return digest.hexdigest()[:24]


# ---------------------------------------------------------------------------
# Stage compute functions (pure, picklable-argument)
# ---------------------------------------------------------------------------


def compute_trace(kernel_name: str, scale, config: GPUConfig) -> KernelTrace:
    """Build a suite kernel at ``scale`` and emulate it."""
    from repro.workloads.suite import SUITE  # deferred: suite is heavy

    kernel, memory = SUITE[kernel_name].build(scale)
    return emulate(kernel, config, memory=memory)


def compute_lint(kernel_name: str, scale):
    """Build a suite kernel at ``scale`` and statically verify it."""
    from repro.staticcheck import lint_kernel
    from repro.workloads.suite import SUITE  # deferred: suite is heavy

    kernel, _ = SUITE[kernel_name].build(scale)
    return lint_kernel(kernel)


def compute_costmodel(kernel_name: str, scale, config: GPUConfig):
    """Build a suite kernel at ``scale`` and statically cost it."""
    from repro.staticcheck import analyze_kernel
    from repro.workloads.suite import SUITE  # deferred: suite is heavy

    kernel, _ = SUITE[kernel_name].build(scale)
    return analyze_kernel(kernel, config)


def compute_xcheck(kernel_name: str, scale, trace, cost, config: GPUConfig):
    """Cross-validate a suite kernel's trace against its cost model."""
    from repro.staticcheck import crosscheck_kernel
    from repro.workloads.suite import SUITE  # deferred: suite is heavy

    kernel, _ = SUITE[kernel_name].build(scale)
    return crosscheck_kernel(kernel, trace, cost=cost, config=config)


def compute_cache_sim(trace, config, warps_per_core: Optional[int]):
    return simulate_caches(trace, config, warps_per_core=warps_per_core)


def compute_latency_table(trace, cache_result, config):
    return build_latency_table(trace, cache_result, config)


def compute_profiles(warps, latency_table, config: GPUConfig):
    """Interval profiles for an ordered slice of warp traces.

    Interval-construction semantics are an architecture-backend hook
    (``config.arch``); both shipped backends use the Eq. 4 scan.
    Batched across warps by default (``repro.core.interval_vec``);
    ``REPRO_SCALAR=1`` selects the per-warp reference scan.
    """
    from repro.arch import get_arch  # deferred: circular import

    return get_arch(config.arch).build_interval_profiles(
        warps, latency_table, config
    )


def compute_clustering(profiles, strategy: str):
    return select_representative(profiles, strategy)


def compute_oracle(
    trace,
    config,
    warps_per_core: Optional[int],
    timeline_interval: Optional[float] = None,
):
    simulator = TimingSimulator(
        config,
        warps_per_core=warps_per_core,
        timeline_interval=timeline_interval,
    )
    return simulator.run(trace)
