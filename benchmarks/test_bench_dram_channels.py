"""Ablation bench: DRAM channel count (extension beyond the paper).

Splitting the same aggregate bandwidth over more channels makes each
request's bus service slower while enabling burst parallelism.  For a
latency-sensitive streaming kernel the single fat channel wins; the
model's channel-aware M/D/1 must track the oracle's direction.
"""

from benchmarks.conftest import run_once
from repro.config import GPUConfig
from repro.harness.reporting import render_table
from repro.harness.runner import Runner
from repro.workloads import Scale

CHANNELS = (1, 2, 4)
KERNELS = ("sad_calc_8", "cfd_step_factor")


def sweep():
    rows = []
    data = {}
    for name in KERNELS:
        for channels in CHANNELS:
            config = GPUConfig(n_cores=2).with_(n_dram_channels=channels)
            runner = Runner(config, Scale.tiny())
            result = runner.evaluate(name)
            rows.append(
                (
                    name,
                    channels,
                    "%.3f" % result.oracle_cpi,
                    "%.3f" % result.model_cpis["mt_mshr_band"],
                    "%.1f%%" % (100 * result.error("mt_mshr_band")),
                )
            )
            data[(name, channels)] = {
                "oracle": result.oracle_cpi,
                "model": result.model_cpis["mt_mshr_band"],
            }
    text = render_table(
        ("kernel", "channels", "oracle CPI", "model CPI", "error"),
        rows,
        title="Ablation: DRAM channel count (fixed aggregate bandwidth)",
    )
    return text, data


def test_bench_dram_channels(benchmark):
    text, data = run_once(benchmark, sweep)
    print("\n" + text)
    for name in KERNELS:
        # Same aggregate bandwidth: more channels never *helps* these
        # latency-bound kernels in the oracle, and the model agrees.
        assert data[(name, 4)]["oracle"] >= data[(name, 1)]["oracle"] - 0.05
        assert data[(name, 4)]["model"] >= data[(name, 1)]["model"] - 1e-9
