"""Bench: Figure 11 — all-model comparison, round-robin policy, full suite."""

from benchmarks.conftest import run_once
from repro.harness.experiments import run_figure11


def test_bench_figure11(benchmark, bench_runner):
    result = run_once(benchmark, run_figure11, bench_runner)
    print("\n" + result.text)
    means = result.data["means"]
    benchmark.extra_info["mean_errors"] = {
        k: round(v, 4) for k, v in means.items()
    }
    benchmark.extra_info["gpumech_under_20"] = result.data["gpumech_under_20"]
    # The paper's headline ordering: GPUMech beats both baselines.
    assert means["mt_mshr_band"] < means["naive"]
    assert means["mt_mshr_band"] < means["markov"]
