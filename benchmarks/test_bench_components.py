"""Micro-benchmarks of the pipeline components (Sec. VI-D breakdown).

These time the individual stages — functional emulation, cache
simulation, the interval algorithm, k-means clustering and the
analytical multi-warp model — the way the paper decomposes GPUMech's
overhead (clustering is a one-time per-input cost; cache simulation and
one interval profile recur per hardware configuration).
"""

import pytest

from repro.config import GPUConfig
from repro.core.interval import build_interval_profile
from repro.core.latency import build_latency_table
from repro.core.model import GPUMech
from repro.core.representative import select_representative
from repro.memory import simulate_caches
from repro.trace import emulate
from repro.workloads import Scale, get_kernel

CONFIG = GPUConfig.small(n_cores=2, warps_per_core=16)
KERNEL_NAME = "cfd_compute_flux"


@pytest.fixture(scope="module")
def kernel_and_memory():
    return get_kernel(KERNEL_NAME, Scale.tiny())


@pytest.fixture(scope="module")
def trace(kernel_and_memory):
    kernel, memory = kernel_and_memory
    return emulate(kernel, CONFIG, memory=memory)


@pytest.fixture(scope="module")
def latency_table(trace):
    return build_latency_table(trace, simulate_caches(trace, CONFIG), CONFIG)


def test_bench_emulator(benchmark, kernel_and_memory):
    kernel, memory = kernel_and_memory
    result = benchmark(emulate, kernel, CONFIG, memory=memory)
    benchmark.extra_info["dynamic_insts"] = result.total_insts


def test_bench_cache_simulator(benchmark, trace):
    result = benchmark(simulate_caches, trace, CONFIG)
    benchmark.extra_info["pcs"] = len(result.per_pc)


def test_bench_interval_algorithm(benchmark, trace, latency_table):
    warp = trace.warps[0]

    def profile_all():
        return build_interval_profile(warp, latency_table)

    profile = benchmark(profile_all)
    benchmark.extra_info["intervals"] = profile.n_intervals


def test_bench_clustering(benchmark, trace, latency_table):
    profiles = [
        build_interval_profile(w, latency_table) for w in trace.warps
    ]
    selection = benchmark(select_representative, profiles)
    benchmark.extra_info["warps"] = len(profiles)
    benchmark.extra_info["representative"] = selection.warp_id


def test_bench_multiwarp_prediction(benchmark, trace):
    model = GPUMech(CONFIG)
    inputs = model.prepare(trace=trace)
    prediction = benchmark(model.predict, inputs)
    benchmark.extra_info["cpi"] = round(prediction.cpi, 3)
