"""Bench: concheck costs — fast static passes, bounded lock sanitizer.

Two contracts (enforced in the ``concheck`` CI job):

* the four static passes (thread-escape, lock discipline, fork/pickle
  safety, global census) analyze the whole codebase in under two
  seconds — cheap enough to gate every CI push on;
* the opt-in ``REPRO_CONCHECK=1`` lock sanitizer keeps a traced sweep
  within a bounded multiple of its unsanitized wall-clock.  The
  sanitizer is a debugging tool, not an always-on proxy, so the
  allowance is a multiplier rather than depcheck's 5% — but it must
  stay cheap enough to run over the full suite in CI.

When the sanitizer is *off*, ``make_lock`` returns plain stdlib locks
and ``site_access`` is one global load + None check, so the disabled
path needs no budget of its own (the obs-overhead bench already guards
the surrounding machinery).

Each timing is a min-of-N; results land in ``BENCH_concheck.json`` at
the repo root.
"""

import json
import os
import time

from benchmarks.conftest import run_once
from repro.concheck import analyze_concurrency
from repro.concheck import runtime as crt
from repro.config import GPUConfig
from repro.obs import MetricsRegistry, Tracer
from repro.pipeline import Pipeline
from repro.workloads import Scale

ROUNDS = 3
STATIC_BUDGET_S = 2.0
#: Sanitized sweep may cost at most this multiple of the baseline.
MAX_SANITIZED_RATIO = 2.0
ABS_GRACE_S = 0.05

#: Lock-heavy slice: tracing and metrics on, so every span open/close
#: and histogram observe goes through an instrumented lock.
SWEEP_KERNELS = ("vectoradd", "blackscholes", "bfs_kernel1")

RESULTS_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_concheck.json"
)


def _static_pass_time():
    best = float("inf")
    report = None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        report = analyze_concurrency()
        best = min(best, time.perf_counter() - start)
    return best, report


def _sweep_time(sanitized):
    saved = os.environ.get(crt.CONCHECK_ENV)
    if sanitized:
        os.environ[crt.CONCHECK_ENV] = "1"
        crt.install(fresh=True)
    else:
        os.environ.pop(crt.CONCHECK_ENV, None)
        crt.uninstall()
    try:
        best = float("inf")
        for _ in range(ROUNDS):
            tracer = Tracer(enabled=True)
            pipeline = Pipeline(
                GPUConfig.small(n_cores=2, warps_per_core=16),
                scale=Scale.tiny(),
                tracer=tracer,
                metrics=MetricsRegistry(),
            )
            start = time.perf_counter()
            for kernel in SWEEP_KERNELS:
                pipeline.evaluate(kernel)
            best = min(best, time.perf_counter() - start)
        findings = crt.runtime_findings() if sanitized else []
        return best, findings
    finally:
        crt.uninstall()
        if saved is None:
            os.environ.pop(crt.CONCHECK_ENV, None)
        else:
            os.environ[crt.CONCHECK_ENV] = saved


def test_bench_concheck(benchmark):
    static_s, report = _static_pass_time()
    baseline_s, _ = _sweep_time(sanitized=False)
    sanitized_s, findings = _sweep_time(sanitized=True)
    ratio = sanitized_s / baseline_s if baseline_s else float("inf")

    results = {
        "static_pass_s": static_s,
        "static_budget_s": STATIC_BUDGET_S,
        "n_diagnostics": len(report.diagnostics),
        "n_thread_roots": len(report.thread_roots),
        "n_locks": len(report.locks),
        "n_globals": len(report.census),
        "sweep_kernels": len(SWEEP_KERNELS),
        "scale": "tiny",
        "rounds": ROUNDS,
        "baseline_sweep_s": baseline_s,
        "sanitized_sweep_s": sanitized_s,
        "sanitized_ratio": ratio,
        "max_sanitized_ratio_guard": MAX_SANITIZED_RATIO,
        "abs_grace_s": ABS_GRACE_S,
    }
    with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
    benchmark.extra_info.update(results)

    run_once(benchmark, analyze_concurrency)

    assert not findings, (
        "lock sanitizer reported findings during the bench sweep: %r"
        % (findings,)
    )
    assert static_s <= STATIC_BUDGET_S, (
        "static concheck passes took %.3fs, over the %.1fs budget"
        % (static_s, STATIC_BUDGET_S)
    )
    assert sanitized_s <= baseline_s * MAX_SANITIZED_RATIO + ABS_GRACE_S, (
        "sanitized sweep %.2fx the baseline, over the %.1fx allowance "
        "(baseline %.3fs, sanitized %.3fs)"
        % (ratio, MAX_SANITIZED_RATIO, baseline_s, sanitized_s)
    )
