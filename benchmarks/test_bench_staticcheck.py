"""Bench: static cost analysis must stay interactive-fast.

The cost model runs inside the pipeline ahead of every cross-check and
inside ``repro lint --cost`` / ``repro analyze``, so it has to be cheap
enough to run eagerly over the whole suite.  This bench analyzes the
*largest* suite kernel (by static program length at the large scale)
end to end — CFG, loop finding, affine fixpoint, trip counts, access
classification, occupancy — and asserts the min-of-N time stays under
50 ms.  Results land in ``BENCH_staticcheck.json`` at the repo root.
"""

import json
import os
import time

from benchmarks.conftest import run_once
from repro.config import GPUConfig
from repro.staticcheck import analyze_kernel, crosscheck_kernel
from repro.trace.emulator import emulate
from repro.workloads import Scale
from repro.workloads.suite import SUITE, kernel_names

ROUNDS = 5
BUDGET_S = 0.050

RESULTS_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..",
    "BENCH_staticcheck.json"
)


def _largest_kernel():
    scale = Scale.large()
    name = max(
        kernel_names(),
        key=lambda n: len(SUITE[n].build(scale)[0].program),
    )
    kernel, memory = SUITE[name].build(scale)
    return name, kernel, memory


def _min_time(fn, rounds=ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_static_analysis(benchmark):
    config = GPUConfig()
    name, kernel, memory = _largest_kernel()

    analyze_s = _min_time(lambda: analyze_kernel(kernel, config))

    # Cross-check cost for context (tiny trace: the static side is what
    # this bench pins; the dynamic side scales with the trace).
    tiny_kernel, tiny_memory = SUITE[name].build(Scale.tiny())
    tiny_trace = emulate(tiny_kernel, config, memory=tiny_memory)
    tiny_cost = analyze_kernel(tiny_kernel, config)
    xcheck_s = _min_time(
        lambda: crosscheck_kernel(
            tiny_kernel, tiny_trace, cost=tiny_cost, config=config
        )
    )

    results = {
        "kernel": name,
        "static_insts": len(kernel.program),
        "rounds": ROUNDS,
        "analyze_s": analyze_s,
        "xcheck_tiny_s": xcheck_s,
        "budget_s": BUDGET_S,
    }
    with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
    benchmark.extra_info.update(results)

    run_once(benchmark, analyze_kernel, kernel, config)

    # The satellite contract: full static analysis of the largest suite
    # kernel stays under 50 ms.
    assert analyze_s < BUDGET_S, (
        "static analysis of %s (%d insts) took %.4fs, budget %.3fs"
        % (name, len(kernel.program), analyze_s, BUDGET_S)
    )
