"""Bench: Figure 4 — per-component error reduction on the SRAD kernel."""

from benchmarks.conftest import run_once
from repro.harness.experiments import run_figure4


def test_bench_figure4(benchmark, bench_runner):
    result = run_once(benchmark, run_figure4, bench_runner, "srad_kernel1")
    print("\n" + result.text)
    errors = result.data["errors"]
    benchmark.extra_info["errors"] = {k: round(v, 4) for k, v in errors.items()}
    # The paper's ladder: each added component reduces (or preserves) error.
    assert errors["mt_mshr"] <= errors["mt"] + 1e-9
    assert errors["mt_mshr_band"] <= errors["mt_mshr"] + 1e-9
