"""Bench: Figure 16 — CPI stacks of the case-study kernels vs. warps."""

from benchmarks.conftest import run_once
from repro.harness.experiments import run_figure16


def test_bench_figure16(benchmark, bench_runner):
    result = run_once(
        benchmark, run_figure16, bench_runner, warp_counts=(2, 4, 8, 16)
    )
    print("\n" + result.text)
    data = result.data
    benchmark.extra_info["kernels"] = sorted(data)
    # Stacks are additive decompositions of the model CPI.
    for kernel, per_warp in data.items():
        for warps, entry in per_warp.items():
            total = sum(entry["stack"].values())
            assert abs(total - entry["model_cpi"]) < 1e-6
    # The paper's Sec. VII reading: invert_mapping is DRAM-queue-bound.
    inv = data["kmeans_invert_mapping"]
    top_warps = max(inv)
    assert inv[top_warps]["stack"]["QUEUE"] > inv[top_warps]["stack"]["MSHR"]
