"""Bench: Figure 14 — mean error vs. number of MSHR entries."""

from benchmarks.conftest import BENCH_KERNELS, run_once
from repro.harness.experiments import run_figure14


def test_bench_figure14(benchmark, bench_runner):
    result = run_once(
        benchmark, run_figure14, bench_runner,
        kernels=BENCH_KERNELS, mshr_counts=(32, 64, 128, 256),
    )
    print("\n" + result.text)
    series = result.data["series"]
    benchmark.extra_info["series"] = {
        k: [round(v, 4) for v in vs] for k, vs in series.items()
    }
    # With plentiful MSHRs the MSHR model converges to MT (Fig. 14).
    assert abs(series["MT"][-1] - series["MT_MSHR"][-1]) <= 0.05
    # GPUMech stays at least as good as the naive baseline everywhere.
    for band, naive in zip(series["MT_MSHR_BAND"], series["Naive_Interval"]):
        assert band <= naive + 0.05
