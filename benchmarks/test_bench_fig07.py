"""Bench: Figure 7 — representative-warp selection strategies."""

from benchmarks.conftest import run_once
from repro.harness.experiments import run_figure7


def test_bench_figure7(benchmark, bench_runner):
    result = run_once(benchmark, run_figure7, bench_runner)
    print("\n" + result.text)
    means = result.data["means"]
    benchmark.extra_info["mean_errors"] = {
        k: round(v, 4) for k, v in means.items()
    }
    # Clustering must not be meaningfully worse than the better extreme.
    assert means["clustering"] <= max(means["max"], means["min"]) * 1.05 + 0.01
