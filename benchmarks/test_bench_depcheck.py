"""Bench: depcheck costs — fast static pass, near-free runtime proxy.

Two contracts (enforced in the ``depcheck`` CI job):

* the static field-dependency inference covers every pipeline stage in
  under a second — cheap enough to run on each CI push and inside test
  suites without a second thought;
* the access-recording config proxy adds at most 5% to a sanitized
  suite sweep, so ``REPRO_DEPCHECK=1`` is viable on real workloads
  (the per-cycle config reads of the timing core are hoisted into
  ``CoreModel.__init__`` precisely to keep this budget).

Each timing is a min-of-N; the overhead assertion allows 5% relative
plus a small absolute grace for sub-ms jitter (same shape as the
observability-overhead bench).  Results land in ``BENCH_depcheck.json``
at the repo root.
"""

import json
import os
import time

from benchmarks.conftest import run_once
from repro.config import GPUConfig
from repro.depcheck import analyze_stage_deps
from repro.depcheck.runtime import DEPCHECK_ENV
from repro.pipeline import Pipeline
from repro.pipeline.stages import STAGES
from repro.workloads import Scale
from repro.workloads.suite import SUITE

ROUNDS = 3
STATIC_BUDGET_S = 1.0
MAX_OVERHEAD = 0.05
ABS_GRACE_S = 0.02

#: A representative slice of the suite for the overhead sweep (the
#: full 40-kernel sweep runs in the depcheck CI job itself).
SWEEP_KERNELS = sorted(SUITE)[:10]

RESULTS_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_depcheck.json"
)


def _static_pass_time():
    best = float("inf")
    n_stages = 0
    for _ in range(ROUNDS):
        start = time.perf_counter()
        report = analyze_stage_deps()
        best = min(best, time.perf_counter() - start)
        n_stages = len(report.stages)
        assert not report.has_errors
    return best, n_stages


def _sweep_time(sanitized):
    saved = os.environ.get(DEPCHECK_ENV)
    os.environ[DEPCHECK_ENV] = "1" if sanitized else "0"
    try:
        best = float("inf")
        for _ in range(ROUNDS):
            pipeline = Pipeline(
                GPUConfig.small(n_cores=2, warps_per_core=16),
                scale=Scale.tiny(),
                lint=True,
            )
            start = time.perf_counter()
            for kernel in SWEEP_KERNELS:
                pipeline.evaluate(kernel)
            best = min(best, time.perf_counter() - start)
        return best
    finally:
        if saved is None:
            os.environ.pop(DEPCHECK_ENV, None)
        else:
            os.environ[DEPCHECK_ENV] = saved


def test_bench_depcheck(benchmark):
    static_s, n_stages = _static_pass_time()
    baseline_s = _sweep_time(sanitized=False)
    sanitized_s = _sweep_time(sanitized=True)
    overhead = sanitized_s / baseline_s - 1.0

    results = {
        "static_pass_s": static_s,
        "static_budget_s": STATIC_BUDGET_S,
        "n_stages": n_stages,
        "sweep_kernels": len(SWEEP_KERNELS),
        "scale": "tiny",
        "rounds": ROUNDS,
        "baseline_sweep_s": baseline_s,
        "sanitized_sweep_s": sanitized_s,
        "proxy_overhead": overhead,
        "max_overhead_guard": MAX_OVERHEAD,
        "abs_grace_s": ABS_GRACE_S,
    }
    with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
    benchmark.extra_info.update(results)

    run_once(benchmark, analyze_stage_deps)

    assert n_stages == len(STAGES)
    assert static_s <= STATIC_BUDGET_S, (
        "static depcheck pass took %.3fs, over its %.1fs budget"
        % (static_s, STATIC_BUDGET_S)
    )
    assert sanitized_s <= baseline_s * (1 + MAX_OVERHEAD) + ABS_GRACE_S, (
        "sanitizer proxy overhead %.1f%% over the %.0f%% guard "
        "(baseline %.3fs, sanitized %.3fs)"
        % (overhead * 100, MAX_OVERHEAD * 100, baseline_s, sanitized_s)
    )
