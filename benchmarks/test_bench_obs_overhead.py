"""Bench: observability overhead — disabled tracing must stay free.

The pipeline keeps a tracer and metrics registry unconditionally; the
contract (repro.obs.tracer, design constraint 1) is that the *disabled*
path costs nothing measurable.  This bench times the same
trace-plus-oracle computation three ways:

``baseline``
    The raw stage computes (suite build → emulate → oracle), no
    pipeline, no obs — the untraced floor.
``disabled``
    Through ``Pipeline.simulate`` with the default disabled tracer —
    adds content-addressed keys, the in-memory store, metric counters
    and no-op span calls.
``enabled``
    Same, with a recording tracer and timeline sampling — the full
    observability cost, recorded for context (not asserted).

Each timing is a min-of-N (coldest-cache noise suppressed); the
assertion allows 5% relative plus a small absolute grace for sub-ms
jitter.  Results land in ``BENCH_obs.json`` at the repo root.
"""

import json
import os
import time

from benchmarks.conftest import run_once
from repro.config import GPUConfig
from repro.obs import Tracer
from repro.pipeline import Pipeline
from repro.timing.simulator import simulate_kernel
from repro.trace.emulator import emulate
from repro.workloads import Scale
from repro.workloads.suite import SUITE

KERNEL = "cfd_step_factor"
WARPS = 8
ROUNDS = 5

RESULTS_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_obs.json"
)


def _config():
    return GPUConfig.small(n_cores=2, warps_per_core=16)


def _baseline():
    """The untraced floor: exactly the work the pipeline stages do."""
    config = _config()
    scale = Scale.tiny()
    kernel, memory = SUITE[KERNEL].build(scale)
    trace = emulate(kernel, config, memory=memory)
    return simulate_kernel(trace, config, warps_per_core=WARPS)


def _pipeline_run(tracer=None, timeline_interval=None):
    pipeline = Pipeline(
        _config(), scale=Scale.tiny(), tracer=tracer,
        timeline_interval=timeline_interval,
    )
    return pipeline.simulate(KERNEL, warps_per_core=WARPS)


def _min_time(fn, rounds=ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_obs_overhead(benchmark):
    baseline = _min_time(_baseline)
    disabled = _min_time(_pipeline_run)
    enabled = _min_time(
        lambda: _pipeline_run(tracer=Tracer(), timeline_interval=256.0)
    )

    results = {
        "kernel": KERNEL,
        "warps_per_core": WARPS,
        "rounds": ROUNDS,
        "baseline_s": baseline,
        "disabled_s": disabled,
        "enabled_s": enabled,
        "disabled_overhead_ratio": disabled / baseline,
        "enabled_overhead_ratio": enabled / baseline,
    }
    with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
    benchmark.extra_info.update(results)

    run_once(benchmark, _pipeline_run)

    # The satellite contract: the disabled-tracer pipeline path stays
    # within 5% of the untraced baseline (plus 50ms absolute grace so
    # sub-ms runs don't fail on scheduler jitter).
    assert disabled <= baseline * 1.05 + 0.05, (
        "disabled-tracer pipeline run %.4fs exceeds untraced baseline "
        "%.4fs by more than 5%%" % (disabled, baseline)
    )
