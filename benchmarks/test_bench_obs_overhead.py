"""Bench: observability overhead — disabled tracing must stay free.

The pipeline keeps a tracer and metrics registry unconditionally; the
contract (repro.obs.tracer, design constraint 1) is that the *disabled*
path costs nothing measurable.  This bench times the same
trace-plus-oracle computation three ways:

``baseline``
    The raw stage computes (suite build → emulate → oracle), no
    pipeline, no obs — the untraced floor.
``disabled``
    Through ``Pipeline.simulate`` with the default disabled tracer —
    adds content-addressed keys, the in-memory store, metric counters
    and no-op span calls.
``enabled``
    Same, with a recording tracer and timeline sampling — the full
    observability cost, recorded for context (not asserted).

Two more pairs cover the telemetry layer:

``evaluate`` vs ``evaluate_ledger``
    ``Pipeline.evaluate`` without and with a prediction ledger — the
    per-evaluation JSONL append must stay within the same 5% budget.
``disabled`` vs ``exporter_idle``
    The same pipeline run with an un-scraped OpenMetrics exporter
    serving in the background — an idle exporter thread (asleep in
    ``select``) must cost nothing measurable.

Each timing is a min-of-N (coldest-cache noise suppressed); the
assertion allows 5% relative plus a small absolute grace for sub-ms
jitter.  Results land in ``BENCH_obs.json`` at the repo root.
"""

import json
import os
import tempfile
import time

from benchmarks.conftest import run_once
from repro.config import GPUConfig
from repro.obs import MetricsExporter, MetricsRegistry, PredictionLedger, Tracer
from repro.pipeline import Pipeline
from repro.timing.simulator import simulate_kernel
from repro.trace.emulator import emulate
from repro.workloads import Scale
from repro.workloads.suite import SUITE

KERNEL = "cfd_step_factor"
WARPS = 8
ROUNDS = 5

RESULTS_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_obs.json"
)


def _config():
    return GPUConfig.small(n_cores=2, warps_per_core=16)


def _baseline():
    """The untraced floor: exactly the work the pipeline stages do."""
    config = _config()
    scale = Scale.tiny()
    kernel, memory = SUITE[KERNEL].build(scale)
    trace = emulate(kernel, config, memory=memory)
    return simulate_kernel(trace, config, warps_per_core=WARPS)


def _pipeline_run(tracer=None, timeline_interval=None):
    pipeline = Pipeline(
        _config(), scale=Scale.tiny(), tracer=tracer,
        timeline_interval=timeline_interval,
    )
    return pipeline.simulate(KERNEL, warps_per_core=WARPS)


def _evaluate_run(ledger=None):
    pipeline = Pipeline(_config(), scale=Scale.tiny(), ledger=ledger)
    return pipeline.evaluate(KERNEL, warps_per_core=WARPS)


def _min_time(fn, rounds=ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_obs_overhead(benchmark):
    baseline = _min_time(_baseline)
    disabled = _min_time(_pipeline_run)
    enabled = _min_time(
        lambda: _pipeline_run(tracer=Tracer(), timeline_interval=256.0)
    )
    evaluate = _min_time(_evaluate_run)
    with tempfile.TemporaryDirectory() as tmp:
        ledger_path = os.path.join(tmp, "bench-ledger.jsonl")
        evaluate_ledger = _min_time(
            lambda: _evaluate_run(ledger=PredictionLedger(ledger_path))
        )
    with MetricsExporter(MetricsRegistry()):
        exporter_idle = _min_time(_pipeline_run)

    results = {
        "kernel": KERNEL,
        "warps_per_core": WARPS,
        "rounds": ROUNDS,
        "baseline_s": baseline,
        "disabled_s": disabled,
        "enabled_s": enabled,
        "evaluate_s": evaluate,
        "evaluate_ledger_s": evaluate_ledger,
        "exporter_idle_s": exporter_idle,
        "disabled_overhead_ratio": disabled / baseline,
        "enabled_overhead_ratio": enabled / baseline,
        "ledger_overhead_ratio": evaluate_ledger / evaluate,
        "exporter_idle_overhead_ratio": exporter_idle / disabled,
    }
    with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
    benchmark.extra_info.update(results)

    run_once(benchmark, _pipeline_run)

    # The satellite contract: the disabled-tracer pipeline path stays
    # within 5% of the untraced baseline (plus 50ms absolute grace so
    # sub-ms runs don't fail on scheduler jitter).
    assert disabled <= baseline * 1.05 + 0.05, (
        "disabled-tracer pipeline run %.4fs exceeds untraced baseline "
        "%.4fs by more than 5%%" % (disabled, baseline)
    )
    # Ledger appends are one JSON line per *evaluation* — bounded by
    # serialization of a small dict, not by sweep size.
    assert evaluate_ledger <= evaluate * 1.05 + 0.05, (
        "ledger-enabled evaluate %.4fs exceeds plain evaluate %.4fs "
        "by more than 5%%" % (evaluate_ledger, evaluate)
    )
    # An idle exporter sleeps in select(); nobody scraping means no work.
    assert exporter_idle <= disabled * 1.05 + 0.05, (
        "pipeline run with idle exporter %.4fs exceeds plain run %.4fs "
        "by more than 5%%" % (exporter_idle, disabled)
    )
