"""Bench: Sec. VI-D — GPUMech wall-clock speedup over detailed simulation.

The paper reports ~97x end-to-end; our oracle is a Python simulator (not
a C++ one) and the kernels are scaled down, so absolute speedups differ,
but the model must be substantially faster than the oracle, and
re-modeling a new hardware configuration must be cheaper still.

Unlike the figure benches, this one runs at ``Scale.small``: speedup is
a throughput property and only shows on kernels long enough that the
model's fixed per-kernel cost amortises (the paper's kernels run for
millions of cycles).
"""

import pytest

from benchmarks.conftest import run_once
from repro.config import GPUConfig
from repro.harness.runner import Runner
from repro.harness.speedup import run_speedup
from repro.workloads import Scale

#: Long-running, memory-contended kernels where detailed simulation hurts.
SPEEDUP_KERNELS = (
    "cfd_compute_flux",
    "kmeans_invert_mapping",
    "sad_calc_8",
    "srad_kernel1",
)


@pytest.fixture(scope="module")
def speedup_runner():
    return Runner(GPUConfig(n_cores=2), Scale.small())


def test_bench_speedup(benchmark, speedup_runner):
    result = run_once(benchmark, run_speedup, speedup_runner,
                      kernels=SPEEDUP_KERNELS)
    print("\n" + result.text)
    overall = result.data["overall_speedup"]
    benchmark.extra_info["overall_speedup"] = round(overall, 2)
    assert overall > 2.0  # the model must clearly beat the oracle
    for per_kernel in result.data["results"]:
        assert per_kernel.reconfigure_seconds <= per_kernel.model_seconds


def test_bench_speedup_vs_cycle_loop(benchmark, speedup_runner):
    """Against the cycle-by-cycle loop (the paper's Macsim analogue).

    The paper's 97x is measured against a simulator that steps every
    cycle; our default oracle is event-driven (cycle skipping) and
    therefore much faster than that baseline.  This bench compares the
    model against our own naive per-cycle loop — the apples-to-apples
    counterpart — on stall-heavy kernels where the cycle count dwarfs
    the instruction count.
    """
    result = run_once(
        benchmark, run_speedup, speedup_runner,
        kernels=("srad_kernel1", "strided_deg8"),
        include_naive=True,
    )
    print("\n" + result.text)
    vs_naive = result.data["overall_speedup_vs_cycle_loop"]
    benchmark.extra_info["speedup_vs_cycle_loop"] = round(vs_naive, 1)
    assert vs_naive > 5.0
