"""Shared fixtures for the per-figure benchmark harness.

Every evaluation figure of the paper has a bench target here that
regenerates its rows/series (at reduced scale: 2 cores, 16 warps/core,
tiny workloads — the shape, not the absolute wall-clock of the paper's
16-core runs).  Run them with:

    pytest benchmarks/ --benchmark-only -s

The ``-s`` flag shows the regenerated tables.  Structured data is also
attached to each benchmark's ``extra_info``.
"""

import pytest

from repro.config import GPUConfig
from repro.harness.runner import Runner
from repro.workloads import Scale

#: Kernel subset used by the sweep benchmarks: one per behaviour class.
BENCH_KERNELS = (
    "cfd_step_factor",
    "cfd_compute_flux",
    "kmeans_invert_mapping",
    "strided_deg32",
    "sad_calc_8",
    "mandelbrot",
)


@pytest.fixture(scope="session")
def bench_runner():
    """One shared runner so traces are emulated once per session."""
    config = GPUConfig.small(n_cores=2, warps_per_core=16)
    return Runner(config, Scale.tiny())


def run_once(benchmark, fn, *args, **kwargs):
    """Execute an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
