"""Bench: staged pipeline — serial vs parallel Fig. 13-style warp sweep.

Records the wall-time of the same (kernel × warps/core) sweep grid
executed serially and with ``jobs=N`` worker processes, so future PRs
track the parallel path.  Each measurement uses a cold artifact store
(fresh ``Runner``) — we are benchmarking compute fan-out, not caching.
"""

import os

from benchmarks.conftest import BENCH_KERNELS, run_once
from repro.config import GPUConfig
from repro.harness.experiments import run_figure13
from repro.harness.runner import Runner
from repro.workloads import Scale

#: Worker count for the parallel measurement (bounded: CI boxes are small).
JOBS = min(4, os.cpu_count() or 1)

WARP_COUNTS = (2, 4, 8, 16)


def _sweep(jobs):
    runner = Runner(
        GPUConfig.small(n_cores=2, warps_per_core=16),
        Scale.tiny(),
        jobs=jobs,
    )
    return run_figure13(runner, kernels=BENCH_KERNELS, warp_counts=WARP_COUNTS)


def test_bench_pipeline_sweep_serial(benchmark):
    result = run_once(benchmark, _sweep, 1)
    benchmark.extra_info["jobs"] = 1
    benchmark.extra_info["grid_points"] = len(BENCH_KERNELS) * len(WARP_COUNTS)
    assert set(result.data["results"]) == set(WARP_COUNTS)


def test_bench_pipeline_sweep_parallel(benchmark):
    result = run_once(benchmark, _sweep, JOBS)
    benchmark.extra_info["jobs"] = JOBS
    benchmark.extra_info["grid_points"] = len(BENCH_KERNELS) * len(WARP_COUNTS)
    # Parallel execution must be a pure speedup: identical tables.
    assert result.text == _sweep(1).text


def test_bench_pipeline_warm_rerun(benchmark):
    """The Sec. VI-D story end-to-end: a repeated sweep is (nearly) free."""
    runner = Runner(
        GPUConfig.small(n_cores=2, warps_per_core=16), Scale.tiny()
    )
    run_figure13(runner, kernels=BENCH_KERNELS, warp_counts=WARP_COUNTS)
    executions = dict(runner.pipeline.counters)

    result = run_once(
        benchmark, run_figure13, runner,
        kernels=BENCH_KERNELS, warp_counts=WARP_COUNTS,
    )
    assert result.data["series"]
    # Zero stage executions on the warm rerun — everything content-addressed.
    assert dict(runner.pipeline.counters) == executions
    benchmark.extra_info["stage_executions_first_run"] = executions
