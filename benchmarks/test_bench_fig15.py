"""Bench: Figure 15 — mean error vs. DRAM bandwidth."""

from benchmarks.conftest import BENCH_KERNELS, run_once
from repro.harness.experiments import run_figure15


def test_bench_figure15(benchmark, bench_runner):
    result = run_once(
        benchmark, run_figure15, bench_runner,
        kernels=BENCH_KERNELS, bandwidths=(64.0, 128.0, 192.0, 256.0),
    )
    print("\n" + result.text)
    series = result.data["series"]
    benchmark.extra_info["series"] = {
        k: [round(v, 4) for v in vs] for k, vs in series.items()
    }
    # Bandwidth modeling matters most at low bandwidth (Fig. 15): the gap
    # between MT_MSHR and the full model shrinks as bandwidth grows.
    gap_low = series["MT_MSHR"][0] - series["MT_MSHR_BAND"][0]
    gap_high = series["MT_MSHR"][-1] - series["MT_MSHR_BAND"][-1]
    assert gap_low >= gap_high - 0.05
