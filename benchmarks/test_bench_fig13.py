"""Bench: Figure 13 — mean error vs. warps per core."""

from benchmarks.conftest import BENCH_KERNELS, run_once
from repro.harness.experiments import run_figure13


def test_bench_figure13(benchmark, bench_runner):
    result = run_once(
        benchmark, run_figure13, bench_runner,
        kernels=BENCH_KERNELS, warp_counts=(2, 4, 8, 16),
    )
    print("\n" + result.text)
    series = result.data["series"]
    benchmark.extra_info["series"] = {
        k: [round(v, 4) for v in vs] for k, vs in series.items()
    }
    # Fig. 13's story: contention-free models degrade with warp count;
    # full GPUMech stays ahead of both baselines at the top end.
    assert series["MT_MSHR_BAND"][-1] < series["Naive_Interval"][-1]
    assert series["MT_MSHR_BAND"][-1] < series["Markov_Chain"][-1]
