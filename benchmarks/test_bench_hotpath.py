"""Bench: hot-path vectorization — scalar reference vs batched numpy.

Times the three backend-switched stages (functional emulation, cache
replay, Eq. 4 interval construction) under both backends on the largest
suite kernel, per stage and combined.  Each timing is a min-of-N so the
coldest-cache/busiest-core rounds don't pollute the ratio.

Guards (the PR contract, enforced in the ``bench-hotpath`` CI job):

* combined trace+cache-sim+interval speedup ≥ 10×;
* an absolute per-stage budget on the vectorized path, so a vectorized
  stage regressing into Python loops fails even if the scalar reference
  got slower too.

Results land in ``BENCH_hotpath.json`` at the repo root.
"""

import json
import os
import time

from benchmarks.conftest import run_once
from repro.backend import SCALAR_ENV
from repro.config import GPUConfig
from repro.core.interval import build_interval_profiles
from repro.core.latency import build_latency_table
from repro.memory.cache_simulator import simulate_caches
from repro.trace.emulator import emulate
from repro.workloads import Scale
from repro.workloads.suite import SUITE

KERNEL = "sgemm_tile"
ROUNDS = 3
MIN_SPEEDUP = 10.0

#: Absolute wall-clock budget per vectorized stage (seconds) — generous
#: multiples of the measured times (0.4 / 0.05 / 0.25 on a single
#: shared core), tight enough to catch a stage falling back to loops.
VEC_BUDGET_S = {"trace": 3.0, "cache_sim": 1.0, "interval_profiles": 2.0}

RESULTS_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_hotpath.json"
)


def _config():
    return GPUConfig.small(n_cores=2, warps_per_core=16)


def _stage_times(scalar):
    """Min-of-N wall-clock per hot-path stage under one backend."""
    saved = os.environ.get(SCALAR_ENV)
    os.environ[SCALAR_ENV] = "1" if scalar else "0"
    try:
        config = _config()
        kernel, memory = SUITE[KERNEL].build(Scale.small())
        best = {name: float("inf") for name in VEC_BUDGET_S}
        for _ in range(ROUNDS):
            start = time.perf_counter()
            trace = emulate(kernel, config, memory=memory)
            best["trace"] = min(
                best["trace"], time.perf_counter() - start
            )
            start = time.perf_counter()
            cache = simulate_caches(trace, config)
            best["cache_sim"] = min(
                best["cache_sim"], time.perf_counter() - start
            )
            table = build_latency_table(trace, cache, config)
            start = time.perf_counter()
            build_interval_profiles(trace.warps, table, config.issue_rate)
            best["interval_profiles"] = min(
                best["interval_profiles"], time.perf_counter() - start
            )
        return best
    finally:
        if saved is None:
            os.environ.pop(SCALAR_ENV, None)
        else:
            os.environ[SCALAR_ENV] = saved


def test_bench_hotpath(benchmark):
    scalar = _stage_times(scalar=True)
    vec = _stage_times(scalar=False)
    scalar_combined = sum(scalar.values())
    vec_combined = sum(vec.values())
    speedup = scalar_combined / vec_combined

    results = {
        "kernel": KERNEL,
        "scale": "small",
        "rounds": ROUNDS,
        "scalar_s": scalar,
        "vectorized_s": vec,
        "scalar_combined_s": scalar_combined,
        "vectorized_combined_s": vec_combined,
        "stage_speedup": {
            name: scalar[name] / vec[name] for name in scalar
        },
        "combined_speedup": speedup,
        "min_speedup_guard": MIN_SPEEDUP,
        "vectorized_budget_s": VEC_BUDGET_S,
    }
    with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
    benchmark.extra_info.update(results)

    run_once(benchmark, lambda: _stage_times(scalar=False))

    assert speedup >= MIN_SPEEDUP, (
        "combined hot-path speedup %.1fx below the %.0fx guard "
        "(scalar %.3fs, vectorized %.3fs)"
        % (speedup, MIN_SPEEDUP, scalar_combined, vec_combined)
    )
    for name, budget in VEC_BUDGET_S.items():
        assert vec[name] <= budget, (
            "vectorized %s stage took %.3fs, over its %.1fs budget"
            % (name, vec[name], budget)
        )
