"""Ablation bench: shared-memory bank conflicts (extension).

Compares the smem-tiled GEMM with a conflict-free scratchpad layout
against the same kernel with a 32-way-conflicted layout (the classic
unpadded-tile pathology): the oracle slows down and the model's
bank-serialisation floor must track it.
"""

from benchmarks.conftest import run_once
from repro.config import GPUConfig
from repro.harness.reporting import render_table
from repro.timing import TimingSimulator
from repro.trace import emulate
from repro.core.model import GPUMech
from repro.workloads import Scale
from repro.workloads.generators import matmul_smem_tiled

STRIDES = (1, 2, 32)  # conflict degrees 1, 2, 32


def sweep():
    config = GPUConfig.small(n_cores=2, warps_per_core=16)
    scale = Scale.tiny()
    rows = []
    data = {}
    for stride in STRIDES:
        kernel, memory = matmul_smem_tiled(
            "gemm_smem_s%d" % stride, scale, conflict_stride_words=stride
        )
        trace = emulate(kernel, config, memory=memory)
        oracle = TimingSimulator(config).run(trace)
        model = GPUMech(config)
        prediction = model.predict(model.prepare(trace=trace))
        error = abs(prediction.cpi - oracle.cpi) / oracle.cpi
        rows.append(
            (stride, "%.3f" % oracle.cpi, "%.3f" % prediction.cpi,
             "%.3f" % prediction.cpi_smem, "%.1f%%" % (100 * error))
        )
        data[stride] = {
            "oracle": oracle.cpi,
            "model": prediction.cpi,
            "smem_cpi": prediction.cpi_smem,
        }
    text = render_table(
        ("tile stride (words)", "oracle CPI", "model CPI", "SMEM CPI",
         "error"),
        rows,
        title="Ablation: shared-memory bank conflicts (smem-tiled GEMM)",
    )
    return text, data


def test_bench_smem_ablation(benchmark):
    text, data = run_once(benchmark, sweep)
    print("\n" + text)
    # Conflicts slow the oracle monotonically...
    assert data[32]["oracle"] > data[2]["oracle"] >= data[1]["oracle"] * 0.95
    # ...and the model follows (through the conflict-inflated scratchpad
    # latency; the bank-serialisation floor additionally binds on
    # scratchpad-bound kernels).
    assert data[32]["model"] > data[1]["model"]
    # Tracking the heavily conflicted point within a generous bound.
    error32 = abs(data[32]["model"] - data[32]["oracle"]) / data[32]["oracle"]
    assert error32 < 0.5
