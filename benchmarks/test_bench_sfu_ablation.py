"""Ablation bench: the SFU-contention extension (beyond the paper).

Sec. IV-B1 of the paper suggests generalising the queuing-delay approach
to other contended resources "such as the special functional unit (SFU)"
and leaves it as future work.  This bench sweeps the number of SFU lanes
on SFU-heavy kernels and shows that (a) the oracle slows down as lanes
shrink, and (b) the extension model tracks it while the unextended model
(the paper's balanced-design assumption) cannot.
"""

from benchmarks.conftest import run_once
from repro.config import GPUConfig
from repro.harness.reporting import render_table
from repro.harness.runner import Runner
from repro.workloads import Scale

SFU_KERNELS = ("leukocyte_find", "blackscholes")
SFU_LANES = (32, 8, 4)


def sweep():
    rows = []
    data = {}
    for name in SFU_KERNELS:
        for lanes in SFU_LANES:
            # Full occupancy (32 resident warps): SFU contention only
            # exists when enough warps keep the narrow pipe saturated.
            config = GPUConfig(n_cores=2).with_(n_sfu_units=lanes)
            runner = Runner(config, Scale.small())
            result = runner.evaluate(name)
            prediction = result.prediction
            without_sfu = prediction.cpi - prediction.cpi_sfu
            rows.append(
                (
                    name,
                    lanes,
                    "%.3f" % result.oracle_cpi,
                    "%.3f" % prediction.cpi,
                    "%.3f" % without_sfu,
                    "%.1f%%" % (100 * result.error("mt_mshr_band")),
                )
            )
            data[(name, lanes)] = {
                "oracle": result.oracle_cpi,
                "with_sfu_model": prediction.cpi,
                "without_sfu_model": without_sfu,
            }
    text = render_table(
        ("kernel", "SFU lanes", "oracle CPI", "model CPI",
         "model w/o SFU term", "error"),
        rows,
        title="Ablation: SFU-contention extension",
    )
    return text, data


def test_bench_sfu_ablation(benchmark):
    text, data = run_once(benchmark, sweep)
    print("\n" + text)
    for name in SFU_KERNELS:
        wide = data[(name, 32)]
        narrow = data[(name, 4)]
        # The oracle slows down when SFU lanes shrink...
        assert narrow["oracle"] > wide["oracle"]
        # ...the extension model follows...
        assert narrow["with_sfu_model"] > wide["with_sfu_model"]
        # ...and tracks the narrow-SFU oracle better than the model
        # without the SFU term.
        with_err = abs(narrow["with_sfu_model"] - narrow["oracle"])
        without_err = abs(narrow["without_sfu_model"] - narrow["oracle"])
        assert with_err <= without_err + 1e-9
