"""Bench: Figure 12 — all-model comparison, greedy-then-oldest policy."""

from benchmarks.conftest import run_once
from repro.harness.experiments import run_figure12


def test_bench_figure12(benchmark, bench_runner):
    result = run_once(benchmark, run_figure12, bench_runner)
    print("\n" + result.text)
    means = result.data["means"]
    benchmark.extra_info["mean_errors"] = {
        k: round(v, 4) for k, v in means.items()
    }
    assert means["mt_mshr_band"] < means["naive"]
    assert means["mt_mshr_band"] < means["markov"]
