"""Bench: architecture-backend dispatch must stay free on the paper path.

The refactor routes every prediction through ``repro.arch`` hooks
(``get_arch`` lookup + method dispatch) where the code used to call the
``repro.core`` functions directly.  This bench times the multi-warp
model (the dispatched hot path) two ways on identical ``ModelInputs``:

``direct``
    The pre-backend ``predict`` body verbatim: ``model_multithreading``
    → ``model_contention`` → ``build_cpi_stack`` →
    ``effective_components`` → ``Prediction(...)`` with the core
    functions called directly — the floor the dispatch is measured
    against.
``dispatched``
    The same composition through ``GPUMech.predict`` under
    ``arch="gpumech2014"`` (registry lookup + backend delegation).

Both loops repeat the prediction ``REPEATS`` times per round so the
sub-millisecond model maths dominates fixed costs; timings are
min-of-N.  The ``subcore`` backend's prediction time is recorded for
context (not asserted — it does strictly more work).  Results land in
``BENCH_arch.json`` at the repo root.
"""

import json
import os
import time

from benchmarks.conftest import run_once
from repro.config import GPUConfig
from repro.core.contention import model_contention
from repro.core.cpi_stack import build_cpi_stack
from repro.core.model import GPUMech, Prediction, resident_warps_per_core
from repro.core.multithreading import model_multithreading
from repro.pipeline import Pipeline
from repro.workloads import Scale

KERNEL = "cfd_step_factor"
ROUNDS = 5
REPEATS = 200

RESULTS_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_arch.json"
)


def _config(**overrides):
    return GPUConfig.small(n_cores=2, warps_per_core=16).with_(**overrides)


def _min_time(fn, rounds=ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_arch_dispatch(benchmark):
    config = _config()
    pipeline = Pipeline(config, scale=Scale.tiny())
    inputs = pipeline.model_inputs(KERNEL)
    n_warps = resident_warps_per_core(inputs.trace, config)
    profile = inputs.representative
    model = GPUMech(config, pipeline=pipeline)

    def direct():
        for _ in range(REPEATS):
            multithreading = model_multithreading(
                profile, n_warps, config.scheduler
            )
            contention = model_contention(
                profile, n_warps, config, inputs.avg_miss_latency
            )
            stack = build_cpi_stack(
                profile, inputs.latency_table, multithreading, contention,
                config,
            )
            cpi_mshr, cpi_sfu, cpi_smem, cpi_queue = (
                contention.effective_components(multithreading.cpi)
            )
            Prediction(
                kernel_name=inputs.trace.kernel_name,
                policy=config.scheduler,
                n_warps=n_warps,
                cpi=(multithreading.cpi + cpi_mshr + cpi_sfu + cpi_smem
                     + cpi_queue),
                cpi_multithreading=multithreading.cpi,
                cpi_mshr=cpi_mshr,
                cpi_queue=cpi_queue,
                cpi_sfu=cpi_sfu,
                cpi_smem=cpi_smem,
                single_warp_cpi=profile.single_warp_cpi,
                rep_warp_id=profile.warp_id,
                selection_strategy=inputs.selection.strategy,
                cpi_stack=stack,
                multithreading=multithreading,
                contention=contention,
            )

    def dispatched():
        for _ in range(REPEATS):
            model.predict(inputs, n_warps=n_warps)

    sub_config = _config(arch="subcore", n_schedulers=4)
    sub_pipeline = Pipeline(sub_config, scale=Scale.tiny())
    sub_inputs = sub_pipeline.model_inputs(KERNEL)
    sub_model = GPUMech(sub_config, pipeline=sub_pipeline)

    def subcore():
        for _ in range(REPEATS):
            sub_model.predict(sub_inputs, n_warps=n_warps)

    direct_s = _min_time(direct)
    dispatched_s = _min_time(dispatched)
    subcore_s = _min_time(subcore)

    results = {
        "kernel": KERNEL,
        "n_warps": n_warps,
        "rounds": ROUNDS,
        "repeats_per_round": REPEATS,
        "direct_s": direct_s,
        "dispatched_s": dispatched_s,
        "subcore_s": subcore_s,
        "dispatch_overhead_ratio": dispatched_s / direct_s,
    }
    with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
    benchmark.extra_info.update(results)

    run_once(benchmark, dispatched)

    # The satellite contract: arch dispatch keeps the gpumech2014
    # prediction path within 5% of the direct-call floor (plus 50ms
    # absolute grace so sub-ms runs don't fail on scheduler jitter).
    assert dispatched_s <= direct_s * 1.05 + 0.05, (
        "arch-dispatched predict %.4fs exceeds direct composition "
        "%.4fs by more than 5%%" % (dispatched_s, direct_s)
    )
