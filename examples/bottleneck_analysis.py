#!/usr/bin/env python
"""Bottleneck analysis with CPI stacks — the paper's Sec. VII application.

Reproduces the scaling study of Fig. 16 interactively: for each of the
three case-study kernels, print the CPI stack at 8/16/32/48 warps per
core, identify the dominant bottleneck at each point, and report the
predicted performance-saturation point.

Usage:
    python examples/bottleneck_analysis.py
"""

from repro import GPUConfig, GPUMech, StallType
from repro.core.cpi_stack import render_stacks
from repro.harness.reporting import render_table
from repro.trace import emulate
from repro.workloads import Scale, get_kernel

KERNELS = ("cfd_step_factor", "cfd_compute_flux", "kmeans_invert_mapping")
WARP_COUNTS = (8, 16, 32, 48)


def analyse(name: str, config: GPUConfig) -> None:
    kernel, memory = get_kernel(name, Scale.small())
    trace = emulate(kernel, config, memory=memory)
    model = GPUMech(config)
    inputs = model.prepare(trace=trace)

    rows = []
    throughputs = {}
    stacks = {}
    for warps in WARP_COUNTS:
        prediction = model.predict(inputs, n_warps=warps)
        stack = prediction.cpi_stack
        stacks["%d warps" % warps] = stack
        dominant = max(
            (t for t in StallType), key=lambda t: stack[t]
        )
        throughputs[warps] = prediction.ipc  # core IPC = 1 / CPI
        rows.append(
            (warps,)
            + tuple("%.3f" % stack[t] for t in StallType)
            + ("%.3f" % prediction.cpi, dominant.value)
        )
    print(render_table(
        ("warps",) + tuple(t.value for t in StallType) + ("CPI", "dominant"),
        rows,
        title="%s: CPI stack vs. warps/core" % name,
    ))
    print(render_stacks(stacks))
    best = max(throughputs, key=throughputs.get)
    print(
        "-> core throughput saturates at %d warps/core "
        "(IPC relative to 8 warps: %s)\n"
        % (
            best,
            ", ".join(
                "%d:%.2f" % (w, throughputs[w] / throughputs[WARP_COUNTS[0]])
                for w in WARP_COUNTS
            ),
        )
    )


def main() -> None:
    config = GPUConfig(n_cores=2)
    for name in KERNELS:
        analyse(name, config)
    print(
        "Reading the stacks: DEP-dominated kernels scale with more warps;\n"
        "MSHR/QUEUE-dominated kernels have hit a memory-system wall that\n"
        "more multithreading cannot climb (Sec. VII of the paper)."
    )


if __name__ == "__main__":
    main()
