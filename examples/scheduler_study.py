#!/usr/bin/env python
"""Scheduler study: round-robin vs. greedy-then-oldest across kernels.

Compares modeled and simulated CPI under both warp-scheduling policies
(Sec. IV-A) for a cross-section of the suite, reporting per-policy model
error — the per-kernel view behind the paper's Fig. 11/12 headline
numbers (13.2% RR, 14.0% GTO average error).

Usage:
    python examples/scheduler_study.py [kernel ...]
"""

import statistics
import sys

from repro import GPUConfig
from repro.harness.reporting import render_table
from repro.harness.runner import Runner
from repro.workloads import Scale

DEFAULT_KERNELS = (
    "vectoradd",
    "blackscholes",
    "cfd_step_factor",
    "cfd_compute_flux",
    "srad_kernel1",
    "strided_deg8",
    "kmeans_invert_mapping",
    "sad_calc_8",
    "mandelbrot",
)


def main() -> None:
    kernels = sys.argv[1:] or list(DEFAULT_KERNELS)
    runner = Runner(GPUConfig(n_cores=2), Scale.small())

    rows = []
    errors = {"rr": [], "gto": []}
    for name in kernels:
        cells = [name]
        for policy in ("rr", "gto"):
            result = runner.evaluate(name, policy=policy)
            error = result.error("mt_mshr_band")
            errors[policy].append(error)
            cells.extend(
                [
                    "%.2f" % result.oracle_cpi,
                    "%.2f" % result.model_cpis["mt_mshr_band"],
                    "%.1f%%" % (100 * error),
                ]
            )
        rows.append(tuple(cells))
    rows.append(
        (
            "MEAN", "", "",
            "%.1f%%" % (100 * statistics.fmean(errors["rr"])),
            "", "",
            "%.1f%%" % (100 * statistics.fmean(errors["gto"])),
        )
    )
    print(render_table(
        ("kernel", "RR oracle", "RR model", "RR err",
         "GTO oracle", "GTO model", "GTO err"),
        rows,
        title="GPUMech accuracy under both scheduling policies",
    ))


if __name__ == "__main__":
    main()
