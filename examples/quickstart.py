#!/usr/bin/env python
"""Quickstart: model one kernel with GPUMech and read its CPI stack.

Runs the full pipeline on the paper's ``cfd_compute_flux`` case-study
analogue: functional emulation -> cache simulation -> interval profiles
-> representative-warp clustering -> multithreading + contention models,
then validates the prediction against the cycle-level oracle.

Usage:
    python examples/quickstart.py [kernel_name]
"""

import sys

from repro import GPUConfig, GPUMech
from repro.timing import simulate_kernel
from repro.trace import emulate
from repro.workloads import Scale, get_kernel, kernel_names


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "cfd_compute_flux"
    if name not in kernel_names():
        raise SystemExit(
            "unknown kernel %r; try one of: %s" % (name, ", ".join(kernel_names()))
        )

    # A small machine keeps the oracle fast; GPUConfig.paper_baseline()
    # is the literal Table I machine.
    config = GPUConfig(n_cores=2)
    kernel, memory = get_kernel(name, Scale.small())
    print(kernel.describe())

    # --- GPUMech ---------------------------------------------------------
    model = GPUMech(config)
    trace = emulate(kernel, config, memory=memory)
    print(trace.summary())
    inputs = model.prepare(trace=trace)
    prediction = model.predict(inputs)
    print()
    print("GPUMech prediction:")
    print("  " + prediction.summary())
    print()
    print(prediction.cpi_stack.render())

    # --- Validation against the cycle-level oracle -------------------------
    oracle = simulate_kernel(trace, config)
    error = abs(prediction.cpi - oracle.cpi) / oracle.cpi
    print()
    print("oracle (detailed timing simulation):")
    print("  " + oracle.summary())
    print()
    print(
        "predicted CPI %.3f vs oracle CPI %.3f -> %.1f%% relative error"
        % (prediction.cpi, oracle.cpi, 100 * error)
    )


if __name__ == "__main__":
    main()
