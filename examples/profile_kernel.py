#!/usr/bin/env python
"""Profile one kernel end to end and write a Perfetto-compatible trace.

Runs the staged pipeline (emulation -> cache sim -> profiles ->
clustering -> prediction -> oracle) with the observability layer on:
every stage becomes a span, stage counters/latencies land in a metrics
registry, and the timing oracle samples a per-core activity timeline.
The result is one Chrome-trace file — open it at https://ui.perfetto.dev
or in chrome://tracing — plus a JSON metrics dump.

Usage:
    python examples/profile_kernel.py [kernel_name] [trace_out.json]
"""

import sys

from repro.config import GPUConfig
from repro.harness.reporting import render_stage_table
from repro.harness.runner import Runner
from repro.obs import Tracer, set_tracer
from repro.workloads import Scale, kernel_names


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "cfd_compute_flux"
    trace_out = sys.argv[2] if len(sys.argv) > 2 else "repro-trace.json"
    if name not in kernel_names():
        raise SystemExit(
            "unknown kernel %r; try one of: %s"
            % (name, ", ".join(kernel_names()))
        )

    # One tracer per run; installing it process-wide lets library code
    # outside the Runner record into it too.
    tracer = Tracer()
    set_tracer(tracer)
    try:
        runner = Runner(
            GPUConfig(n_cores=2),
            Scale.tiny(),
            tracer=tracer,
            timeline_interval=500.0,  # oracle sampling period (cycles)
        )
        result = runner.evaluate(name, warps_per_core=8)
    finally:
        set_tracer(None)

    print("%s: oracle CPI %.3f, GPUMech CPI %.3f (error %.1f%%)" % (
        result.kernel,
        result.oracle_cpi,
        result.model_cpis["mt_mshr_band"],
        100 * result.error("mt_mshr_band"),
    ))
    print()
    print(render_stage_table(runner.metrics))

    # The oracle timeline becomes per-core counter tracks next to the
    # pipeline-stage spans.
    timeline = result.oracle.timeline
    extra = timeline.counter_events() if timeline is not None else []
    tracer.export_chrome(trace_out, extra_events=extra,
                         metadata={"kernel": name})
    runner.metrics.export("repro-metrics.json")
    print()
    print("wrote %d spans to %s (open in https://ui.perfetto.dev)"
          % (tracer.n_spans, trace_out))
    print("wrote metrics to repro-metrics.json")


if __name__ == "__main__":
    main()
