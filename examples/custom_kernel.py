#!/usr/bin/env python
"""Tutorial: write your own kernel and model it with GPUMech.

Walks through the full user workflow on a kernel that is *not* in the
suite — a molecular-dynamics-style neighbour-list force loop:

1. build the program with the :class:`KernelBuilder` DSL (loops,
   divergent control flow, gathers),
2. describe its synthetic input data with a :class:`MemoryImage`,
3. characterize the trace, persist it, and
4. predict performance, inspect the CPI stack, and validate against the
   cycle-level oracle.

Usage:
    python examples/custom_kernel.py
"""

import os
import tempfile

from repro import GPUConfig, GPUMech
from repro.analysis import characterize, render_characterization
from repro.isa import KernelBuilder
from repro.timing import simulate_kernel
from repro.trace import MemoryImage, emulate, load_trace, save_trace

WORD = 4
N_THREADS = 2048
BLOCK = 128
MAX_NEIGHBORS = 12
#: Total particles in the system; threads each handle one of the first
#: N_THREADS, but neighbour ids range over the whole set (DRAM-resident).
N_PARTICLES = 1 << 18

# Array layout (disjoint base addresses).
POSITIONS = 1 << 24
NEIGHBOR_COUNT = 2 << 24
NEIGHBOR_LIST = 3 << 24
FORCES_OUT = 4 << 24


def build_kernel():
    """A per-particle force loop over a variable-length neighbour list."""
    b = KernelBuilder("md_force", suite="custom")
    tid = b.tid()
    word = b.imul(tid, WORD)

    my_pos = b.ld(b.iadd(word, POSITIONS))
    n_neighbors = b.ld(b.iadd(word, NEIGHBOR_COUNT))
    base = b.imul(tid, MAX_NEIGHBORS * WORD)

    force = b.mov(0.0)
    k = b.mov(0)
    head = b.loop_begin()
    # Gather the neighbour id, then its position (random access).
    neighbor = b.ld(b.iadd(b.iadd(base, b.imul(k, WORD)), NEIGHBOR_LIST))
    other_pos = b.ld(b.iadd(b.imul(neighbor, WORD), POSITIONS))
    # Lennard-Jones-ish kernel: a few FP ops and an SFU rsqrt.
    delta = b.fsub(other_pos, my_pos)
    dist2 = b.ffma(delta, delta, 0.01)
    inv = b.frsqrt(dist2)
    inv3 = b.fmul(b.fmul(inv, inv), inv)
    force = b.ffma(delta, inv3, force, dst=force)
    k = b.iadd(k, 1, dst=k)
    pred = b.setp_lt(k, n_neighbors)
    b.loop_end(head, pred)

    b.st(b.iadd(word, FORCES_OUT), force)
    b.exit()
    return b.build(n_threads=N_THREADS, block_size=BLOCK)


def build_memory() -> MemoryImage:
    memory = MemoryImage(track_stores=False)
    # Particle positions along a line.
    memory.add_linear_region(POSITIONS, N_PARTICLES * WORD, scale=0.1)
    # Spatially clustered neighbour counts: dense and sparse regions, so
    # warps are heterogeneous and representative-warp selection matters.
    memory.add_gradient_int_region(
        NEIGHBOR_COUNT, N_THREADS * WORD, 1, MAX_NEIGHBORS + 1,
        waves=2.0, jitter=0.3, salt=41,
    )
    # Neighbour ids scattered over the particle array.
    memory.add_uniform_int_region(
        NEIGHBOR_LIST, N_THREADS * MAX_NEIGHBORS * WORD, 0, N_PARTICLES,
        salt=43,
    )
    return memory


def main() -> None:
    config = GPUConfig(n_cores=2)
    kernel = build_kernel()
    print(kernel.describe(), "\n")

    # 1. Trace once; the trace is hardware-independent and reusable.
    trace = emulate(kernel, config, memory=build_memory())

    # 2. What does this kernel actually exercise?
    print(render_characterization(characterize(trace)), "\n")

    # 3. Persist + reload (what a sweep across machines would do).
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "md_force.npz")
        save_trace(trace, path)
        trace = load_trace(path)
        print("trace archived to %s (%d bytes) and reloaded\n"
              % (path, os.path.getsize(path)))

    # 4. Model and validate.
    model = GPUMech(config)
    inputs = model.prepare(trace=trace)
    prediction = model.predict(inputs)
    print(prediction.summary())
    print(prediction.cpi_stack.render(), "\n")

    oracle = simulate_kernel(trace, config)
    error = abs(prediction.cpi - oracle.cpi) / oracle.cpi
    print(oracle.summary())
    print("relative error: %.1f%%" % (100 * error))


if __name__ == "__main__":
    main()
