#!/usr/bin/env python
"""Design-space exploration: sweep hardware parameters with GPUMech.

This is the use case the paper argues interval analysis enables: the
expensive per-kernel work (trace + per-warp profiling + clustering) runs
once, then each hardware point costs only a cache simulation and the
analytical model — orders of magnitude cheaper than re-running a
cycle-level simulator per point.

Sweeps warps/core, MSHR entries and DRAM bandwidth for one kernel and
prints predicted CPI per point, flagging the best configuration.

Everything runs through the staged artifact pipeline
(``repro.pipeline``): stage artifacts are content-addressed by the
configuration fields they actually depend on, so across the three
sweeps below the kernel is emulated exactly once and each hardware
point re-runs only the cache-sim-and-later stages.  Pass ``--jobs N``
to fan the per-warp profiling out over processes, ``--cache-dir DIR``
to persist artifacts so a rerun of this script recomputes nothing.

Usage:
    python examples/design_space_sweep.py [kernel_name] [--jobs N]
                                          [--cache-dir DIR]
"""

import argparse

from repro import GPUConfig, GPUMech, Pipeline
from repro.harness.reporting import render_table
from repro.workloads import Scale, get_kernel


def sweep_warps(config, inputs, model):
    rows = []
    for warps in (4, 8, 16, 24, 32, 48):
        prediction = model.predict(inputs, n_warps=warps)
        rows.append(
            (warps, prediction.cpi,
             prediction.cpi_multithreading, prediction.cpi_mshr,
             prediction.cpi_queue,
             "%.3f" % prediction.ipc)
        )
    print(render_table(
        ("warps/core", "CPI", "MT", "MSHR", "QUEUE", "core IPC"),
        rows, title="Sweep: resident warps per core"))
    best = min(rows, key=lambda r: r[1])
    print("-> core throughput saturates at %d warps/core "
          "(CPI stops improving)\n" % best[0])


def sweep_mshrs(pipeline, name, config):
    rows = []
    for mshrs in (8, 16, 32, 64, 128):
        prediction = pipeline.predict(name, config.with_(n_mshrs=mshrs))
        rows.append((mshrs, prediction.cpi, prediction.cpi_mshr))
    print(render_table(("MSHRs", "CPI", "MSHR CPI"), rows,
                       title="Sweep: MSHR entries"))
    print()


def sweep_bandwidth(pipeline, name, config):
    rows = []
    for gbps in (48.0, 96.0, 192.0, 384.0, 768.0):
        prediction = pipeline.predict(
            name, config.with_(dram_bandwidth_gbps=gbps)
        )
        rows.append((gbps, prediction.cpi, prediction.cpi_queue))
    print(render_table(("GB/s", "CPI", "QUEUE CPI"), rows,
                       title="Sweep: DRAM bandwidth"))
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("kernel", nargs="?", default="kmeans_invert_mapping")
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--cache-dir", default=None)
    args = parser.parse_args()

    config = GPUConfig(n_cores=2)
    scale = Scale.small()
    kernel, _ = get_kernel(args.kernel, scale)
    print(kernel.describe(), "\n")

    # One pipeline serves all three sweeps: the trace stage runs once
    # (it is hardware-independent), every hardware point below reuses it.
    pipeline = Pipeline(
        config, scale=scale, jobs=args.jobs, cache_dir=args.cache_dir
    )
    model = GPUMech(config, pipeline=pipeline)
    inputs = pipeline.model_inputs(args.kernel)

    sweep_warps(config, inputs, model)
    sweep_mshrs(pipeline, args.kernel, config)
    sweep_bandwidth(pipeline, args.kernel, config)

    executions = dict(pipeline.counters)
    print("pipeline stage executions:", executions)
    print("(one emulation, one clustering — every other hardware point "
          "re-ran only cheap stages)")


if __name__ == "__main__":
    main()
