#!/usr/bin/env python
"""Design-space exploration: sweep hardware parameters with GPUMech.

This is the use case the paper argues interval analysis enables: the
expensive per-kernel work (trace + per-warp profiling + clustering) runs
once, then each hardware point costs only a cache simulation and the
analytical model — orders of magnitude cheaper than re-running a
cycle-level simulator per point.

Sweeps warps/core, MSHR entries and DRAM bandwidth for one kernel and
prints predicted CPI per point, flagging the best configuration.

Usage:
    python examples/design_space_sweep.py [kernel_name]
"""

import sys

from repro import GPUConfig, GPUMech
from repro.harness.reporting import render_table
from repro.trace import emulate
from repro.workloads import Scale, get_kernel


def sweep_warps(config, inputs, model):
    rows = []
    for warps in (4, 8, 16, 24, 32, 48):
        prediction = model.predict(inputs, n_warps=warps)
        rows.append(
            (warps, prediction.cpi,
             prediction.cpi_multithreading, prediction.cpi_mshr,
             prediction.cpi_queue,
             "%.3f" % prediction.ipc)
        )
    print(render_table(
        ("warps/core", "CPI", "MT", "MSHR", "QUEUE", "core IPC"),
        rows, title="Sweep: resident warps per core"))
    best = min(rows, key=lambda r: r[1])
    print("-> core throughput saturates at %d warps/core "
          "(CPI stops improving)\n" % best[0])


def sweep_mshrs(config, trace, model_cls):
    rows = []
    for mshrs in (8, 16, 32, 64, 128):
        cfg = config.with_(n_mshrs=mshrs)
        model = model_cls(cfg)
        inputs = model.prepare(trace=trace)
        prediction = model.predict(inputs)
        rows.append((mshrs, prediction.cpi, prediction.cpi_mshr))
    print(render_table(("MSHRs", "CPI", "MSHR CPI"), rows,
                       title="Sweep: MSHR entries"))
    print()


def sweep_bandwidth(config, trace, model_cls):
    rows = []
    for gbps in (48.0, 96.0, 192.0, 384.0, 768.0):
        cfg = config.with_(dram_bandwidth_gbps=gbps)
        model = model_cls(cfg)
        inputs = model.prepare(trace=trace)
        prediction = model.predict(inputs)
        rows.append((gbps, prediction.cpi, prediction.cpi_queue))
    print(render_table(("GB/s", "CPI", "QUEUE CPI"), rows,
                       title="Sweep: DRAM bandwidth"))
    print()


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "kmeans_invert_mapping"
    config = GPUConfig(n_cores=2)
    kernel, memory = get_kernel(name, Scale.small())
    print(kernel.describe(), "\n")

    # The trace is hardware-independent: emulate once, reuse everywhere.
    trace = emulate(kernel, config, memory=memory)
    model = GPUMech(config)
    inputs = model.prepare(trace=trace)

    sweep_warps(config, inputs, model)
    sweep_mshrs(config, trace, GPUMech)
    sweep_bandwidth(config, trace, GPUMech)


if __name__ == "__main__":
    main()
