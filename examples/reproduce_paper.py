#!/usr/bin/env python
"""Full paper reproduction: regenerate every evaluation figure.

Runs the drivers for Fig. 4, 7, 11, 12, 13, 14, 15, 16 and the Sec. VI-D
speedup measurement at experiment scale and writes each rendered table to
``results/<figure>.txt`` (plus everything to stdout).

This is the long-running entry point (tens of minutes at full scale);
``pytest benchmarks/ --benchmark-only`` runs reduced versions of the same
drivers in a few minutes.

Usage:
    python examples/reproduce_paper.py [--quick] [--out DIR] [--jobs N]
                                       [--cache-dir DIR]

``--jobs N`` fans independent (kernel × sweep-point) evaluations out
over N worker processes; ``--cache-dir DIR`` persists the staged
pipeline's artifact store on disk, so an interrupted or repeated run
skips every stage it has already computed.
"""

import argparse
import os
import time

from repro.config import GPUConfig
from repro.harness import experiments as ex
from repro.harness.runner import Runner
from repro.harness.speedup import run_speedup
from repro.workloads import Scale


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="tiny workloads and the sweep-kernel subset (minutes, not tens)",
    )
    parser.add_argument("--out", default="results", help="output directory")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for sweep evaluation")
    parser.add_argument("--cache-dir", default=None,
                        help="persistent artifact store (reruns are free)")
    args = parser.parse_args()

    scale = Scale.tiny() if args.quick else Scale.small()
    config = GPUConfig(n_cores=2)
    runner = Runner(config, scale, jobs=args.jobs, cache_dir=args.cache_dir)
    os.makedirs(args.out, exist_ok=True)

    comparison_kernels = (
        list(ex.SWEEP_KERNELS) if args.quick else None  # None = full suite
    )
    sweep_warps = (4, 8, 16) if args.quick else ex.WARP_SWEEP

    jobs = [
        ("figure04", lambda: ex.run_figure4(runner)),
        ("figure07", lambda: ex.run_figure7(runner)),
        ("figure11", lambda: ex.run_figure11(runner, comparison_kernels)),
        ("figure12", lambda: ex.run_figure12(runner, comparison_kernels)),
        ("figure13", lambda: ex.run_figure13(runner, warp_counts=sweep_warps)),
        ("figure14", lambda: ex.run_figure14(runner)),
        ("figure15", lambda: ex.run_figure15(runner)),
        ("figure16", lambda: ex.run_figure16(runner, warp_counts=sweep_warps)),
        ("speedup", lambda: run_speedup(
            runner, kernels=list(ex.SWEEP_KERNELS))),
    ]
    from repro.harness.export import save_comparison_csv, save_series_csv

    for name, job in jobs:
        start = time.time()
        result = job()
        elapsed = time.time() - start
        path = os.path.join(args.out, "%s.txt" % name)
        with open(path, "w") as handle:
            handle.write(result.text + "\n")
        per_kernel = result.data.get("results")
        if (
            isinstance(per_kernel, list)
            and per_kernel
            and hasattr(per_kernel[0], "model_cpis")
        ):
            save_comparison_csv(
                result, os.path.join(args.out, "%s.csv" % name)
            )
        elif "series" in result.data:
            save_series_csv(result, os.path.join(args.out, "%s.csv" % name))
        print(result.text)
        print("[%s done in %.1fs -> %s]\n" % (name, elapsed, path))

    print("pipeline stage executions:", dict(runner.pipeline.counters))
    print("pipeline stage cache hits:", dict(runner.pipeline.hits))


if __name__ == "__main__":
    main()
