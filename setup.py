"""Setup shim: enables legacy editable installs in offline environments
where the `wheel` package is unavailable (PEP 517 editable builds require
bdist_wheel).  Configuration lives in pyproject.toml."""

from setuptools import setup

setup()
