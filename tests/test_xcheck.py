"""Tests for the dynamic-vs-static cross-validation sanitizer.

The clean half pins the whole workload suite: every dynamic collector
must agree with every statically proven fact.  The fault-injection half
is the real point — each check must *detect* a deliberately corrupted
collector, so a future regression in the coalescer, the SIMT stack or
the emulator trips the sanitizer instead of silently skewing results.
"""

import copy

import numpy as np
import pytest

from repro.config import GPUConfig
from repro.pipeline import Pipeline
from repro.staticcheck import analyze_kernel, crosscheck_kernel
from repro.trace.emulator import emulate
from repro.trace.trace_types import OpCode
from repro.workloads.generators import Scale, matmul_smem_tiled
from repro.workloads.suite import SUITE, kernel_names


def _build_and_trace(name, scale=None, config=None):
    scale = scale or Scale.tiny()
    config = config or GPUConfig()
    kernel, memory = SUITE[name].build(scale)
    trace = emulate(kernel, config, memory=memory)
    return kernel, trace


def _checks(report):
    return {d.check_id for d in report.errors}


class TestCleanSuite:
    @pytest.mark.parametrize("name", kernel_names())
    def test_no_mismatch_on_suite(self, name):
        kernel, trace = _build_and_trace(name)
        report = crosscheck_kernel(kernel, trace)
        assert not report.errors, "\n".join(
            str(d) for d in report.errors
        )

    @pytest.mark.parametrize("stride_words", [1, 2, 32])
    def test_no_mismatch_on_shared_memory(self, stride_words):
        config = GPUConfig()
        kernel, memory = matmul_smem_tiled(
            "smem_cs%d" % stride_words, Scale.tiny(),
            conflict_stride_words=stride_words,
        )
        trace = emulate(kernel, config, memory=memory)
        report = crosscheck_kernel(kernel, trace)
        assert not report.errors

    def test_clean_report_shape(self):
        kernel, trace = _build_and_trace("vectoradd")
        report = crosscheck_kernel(kernel, trace)
        assert report.kernel == "vectoradd"
        assert not report.has_errors


class TestFaultInjection:
    """Each dynamic collector is corrupted in isolation; the matching
    check must fire (and name the corrupted pc)."""

    def test_coalescer_fault_detected(self):
        # Regression guard for the acceptance criterion: split one
        # coalesced request in two, as a buggy coalescer would.
        config = GPUConfig()
        kernel, trace = _build_and_trace("vectoradd", config=config)
        cost = analyze_kernel(kernel, config)
        exact_pcs = {
            a.pc for a in cost.accesses
            if a.space == "global" and a.phase_known
            and not a.under_divergent_control
        }
        warp = trace.warps[0]
        target = next(
            i for i, pc in enumerate(warp.pcs)
            if int(pc) in exact_pcs
            and int(warp.active[i]) == config.warp_size
        )
        start = int(warp.req_offsets[target])
        warp.req_lines = np.insert(
            warp.req_lines, start, warp.req_lines[start] + 1
        )
        warp.req_offsets = warp.req_offsets.copy()
        warp.req_offsets[target + 1:] += 1

        report = crosscheck_kernel(kernel, trace, cost=cost, config=config)
        assert "xcheck-coalescing" in _checks(report)
        assert any(
            d.pc == int(warp.pcs[target]) for d in report.errors
        )

    def test_trip_count_fault_detected(self):
        # Cost model from an iters=3 build, trace from an iters=2 run:
        # same program shape, different loop bound — the exact trip
        # count must catch the divergence.
        config = GPUConfig()
        kernel3, _ = SUITE["vectoradd"].build(
            Scale(n_blocks=4, block_size=64, iters=3)
        )
        _, trace2 = _build_and_trace("vectoradd", config=config)
        cost3 = analyze_kernel(kernel3, config)
        report = crosscheck_kernel(kernel3, trace2, cost=cost3, config=config)
        assert "xcheck-trip-count" in _checks(report)

    def test_divergence_fault_detected(self):
        # Drop one lane at a pc no divergent branch region covers, the
        # signature of a SIMT-stack reconvergence bug.
        kernel, trace = _build_and_trace("vectoradd")
        cost = analyze_kernel(kernel)
        warp = trace.warps[0]
        target = next(
            i for i in range(1, len(warp.pcs))
            if int(warp.pcs[i]) not in cost.divergent_masked
        )
        warp.active = warp.active.copy()
        warp.active[target] -= 1
        report = crosscheck_kernel(kernel, trace, cost=cost)
        assert "xcheck-divergence" in _checks(report)

    def test_bank_conflict_fault_detected(self):
        config = GPUConfig()
        kernel, memory = matmul_smem_tiled(
            "smem_fault", Scale.tiny(), conflict_stride_words=1
        )
        trace = emulate(kernel, config, memory=memory)
        cost = analyze_kernel(kernel, config)
        shared_pcs = {a.pc for a in cost.accesses if a.space == "shared"}
        warp = trace.warps[0]
        target = next(
            i for i, pc in enumerate(warp.pcs) if int(pc) in shared_pcs
        )
        warp.conflict = warp.conflict.copy()
        warp.conflict[target] = 5  # conflict-free layout, degree must be 1
        report = crosscheck_kernel(kernel, trace, cost=cost, config=config)
        assert "xcheck-bank-conflict" in _checks(report)

    def test_structure_fault_wrong_opclass_detected(self):
        kernel, trace = _build_and_trace("vectoradd")
        warp = trace.warps[0]
        warp.ops = warp.ops.copy()
        # Claim the first instruction was an SFU op; the program says not.
        warp.ops[0] = OpCode.SFU.value
        report = crosscheck_kernel(kernel, trace)
        assert "xcheck-structure" in _checks(report)

    def test_structure_fault_out_of_range_pc_detected(self):
        kernel, trace = _build_and_trace("vectoradd")
        warp = trace.warps[0]
        warp.pcs = warp.pcs.copy()
        warp.pcs[0] = len(kernel.program) + 7
        report = crosscheck_kernel(kernel, trace)
        assert "xcheck-structure" in _checks(report)

    def test_mismatches_aggregate_per_pc(self):
        # Corrupting every occurrence of one pc yields one diagnostic
        # with an instance count, not one diagnostic per instruction.
        kernel, trace = _build_and_trace("vectoradd")
        cost = analyze_kernel(kernel)
        warp = trace.warps[0]
        uniform = [
            i for i in range(1, len(warp.pcs))
            if int(warp.pcs[i]) not in cost.divergent_masked
            and int(warp.pcs[i]) == int(warp.pcs[1])
        ]
        warp.active = warp.active.copy()
        for i in uniform:
            warp.active[i] -= 1
        report = crosscheck_kernel(kernel, trace, cost=cost)
        div = [d for d in report.errors if d.check_id == "xcheck-divergence"]
        assert len(div) == 1
        if len(uniform) > 1:
            assert "more instance(s)" in div[0].message

    def test_fault_does_not_leak_between_traces(self):
        # Sanity: a deep-copied trace can be corrupted without
        # invalidating the pristine one.
        kernel, trace = _build_and_trace("vectoradd")
        corrupted = copy.deepcopy(trace)
        corrupted.warps[0].active[1] -= 1
        assert not crosscheck_kernel(kernel, trace).has_errors
        assert crosscheck_kernel(kernel, corrupted).has_errors


class TestPipelineIntegration:
    def test_crosscheck_stage_caches_and_counts(self):
        pipeline = Pipeline(GPUConfig(), scale=Scale.tiny())
        report = pipeline.crosscheck("vectoradd")
        assert not report.has_errors
        assert pipeline.metrics.counter("xcheck.runs").value == 1

        again = pipeline.crosscheck("vectoradd")
        assert not again.has_errors
        # Cached: the compute (and its counter) must not run twice.
        assert pipeline.metrics.counter("xcheck.runs").value == 1
        hits = pipeline.metrics.labeled_values(
            "pipeline.stage_hits", "stage"
        )
        assert hits.get("xcheck", 0) >= 1

    def test_analyze_stage_caches(self):
        pipeline = Pipeline(GPUConfig(), scale=Scale.tiny())
        first = pipeline.analyze("strided_deg8")
        second = pipeline.analyze("strided_deg8")
        assert first is second or first.to_dict() == second.to_dict()
        hits = pipeline.metrics.labeled_values(
            "pipeline.stage_hits", "stage"
        )
        assert hits.get("costmodel", 0) >= 1

    def test_costmodel_key_tracks_its_config_fields(self):
        pipeline = Pipeline(GPUConfig(), scale=Scale.tiny())
        base = pipeline.analyze("vectoradd")
        # line_size is a costmodel field: overriding it must recompute.
        other = pipeline.analyze(
            "vectoradd", config=GPUConfig().with_(line_size=32)
        )
        assert base.accesses[0].transactions != other.accesses[0].transactions
