"""Tests for the results export module."""

import csv
import json
import os

import numpy as np
import pytest

from repro.config import GPUConfig
from repro.harness.experiments import run_figure13, run_model_comparison
from repro.harness.export import (
    experiment_to_dict,
    save_comparison_csv,
    save_experiment_json,
    save_series_csv,
    to_jsonable,
)
from repro.harness.runner import Runner
from repro.workloads import Scale


@pytest.fixture(scope="module")
def runner():
    return Runner(GPUConfig.small(n_cores=2, warps_per_core=8), Scale.tiny())


class TestToJsonable:
    def test_primitives(self):
        assert to_jsonable(1) == 1
        assert to_jsonable("x") == "x"
        assert to_jsonable(None) is None

    def test_numpy_types(self):
        assert to_jsonable(np.int64(3)) == 3
        assert to_jsonable(np.float64(0.5)) == 0.5
        assert to_jsonable(np.array([1, 2])) == [1, 2]

    def test_enum_and_dataclass(self):
        from repro.core.cpi_stack import CPIStack, StallType

        assert to_jsonable(StallType.DRAM) == "DRAM"
        stack = CPIStack()
        stack.components[StallType.BASE] = 1.0
        payload = to_jsonable(stack)
        assert payload["components"]["BASE"] == 1.0

    def test_nested_and_roundtrippable(self):
        payload = to_jsonable({"a": [np.float32(1.5), {"b": (1, 2)}]})
        assert json.loads(json.dumps(payload)) == payload


class TestExperimentExport:
    def test_json_export(self, runner, tmp_path):
        result = run_model_comparison(runner, "rr", ["vectoradd"])
        path = os.path.join(tmp_path, "fig11.json")
        save_experiment_json(result, path)
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["experiment"] == "figure11"
        assert "means" in payload["data"]

    def test_comparison_csv(self, runner, tmp_path):
        result = run_model_comparison(
            runner, "rr", ["vectoradd", "strided_deg8"]
        )
        path = os.path.join(tmp_path, "fig11.csv")
        save_comparison_csv(result, path)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert rows[0]["kernel"] == "vectoradd"
        assert float(rows[0]["oracle_cpi"]) > 0
        assert "mt_mshr_band_error" in rows[0]

    def test_series_csv(self, runner, tmp_path):
        result = run_figure13(
            runner, kernels=["strided_deg8"], warp_counts=(2, 4)
        )
        path = os.path.join(tmp_path, "fig13.csv")
        save_series_csv(result, path)
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0][0] == "x"
        assert len(rows) == 3  # header + 2 sweep points

    def test_csv_requires_right_shape(self, runner, tmp_path):
        from repro.harness.experiments import ExperimentResult

        empty = ExperimentResult("x", "text", data={})
        with pytest.raises(ValueError):
            save_comparison_csv(empty, os.path.join(tmp_path, "a.csv"))
        with pytest.raises(ValueError):
            save_series_csv(empty, os.path.join(tmp_path, "b.csv"))

    def test_experiment_to_dict_includes_text(self, runner):
        result = run_model_comparison(runner, "rr", ["vectoradd"])
        payload = experiment_to_dict(result)
        assert "Naive_Interval" in payload["text"]
