"""Observability through the pipeline: stage spans, merged worker
metrics (serial == parallel), and oracle timeline sampling."""

import os

import pytest

from repro.config import GPUConfig
from repro.harness.reporting import render_stage_table
from repro.harness.runner import Runner
from repro.obs import MetricsRegistry, Tracer
from repro.pipeline import EvalRequest, Pipeline
from repro.workloads import Scale

#: Disjoint-kernel sweep: no two points share an intermediate artifact,
#: so parallel execution computes exactly what serial does (shared
#: artifacts may legitimately execute once per worker).
SWEEP = ("vectoradd", "strided_deg8", "transpose_naive")


@pytest.fixture
def config():
    return GPUConfig.small(n_cores=2, warps_per_core=8)


def _requests():
    return [EvalRequest(kernel=k, warps_per_core=4) for k in SWEEP]


def _stage_runs(metrics):
    """Stage execution counts — the schedule-independent invariant.

    Hit counts are *not* comparable across schedules: the parallel path
    warms shared traces in the parent, so a worker's first trace lookup
    is a store hit where the serial run's was the execution itself.
    """
    return dict(metrics.labeled_values("pipeline.stage_executions", "stage"))


class TestStageMetrics:
    def test_counters_hits_timings_are_registry_views(self, config):
        pipeline = Pipeline(config, scale=Scale.tiny())
        pipeline.evaluate("vectoradd", warps_per_core=4)
        assert pipeline.counters == dict(
            pipeline.metrics.labeled_values(
                "pipeline.stage_executions", "stage"
            )
        )
        assert pipeline.counters["trace"] == 1
        assert pipeline.timings["oracle"] > 0.0
        # Second evaluation is served from the store.
        pipeline.evaluate("vectoradd", warps_per_core=4)
        assert pipeline.hits["trace"] >= 1
        assert pipeline.counters["trace"] == 1

    def test_cache_and_oracle_metrics_recorded(self, config):
        pipeline = Pipeline(config, scale=Scale.tiny())
        pipeline.evaluate("vectoradd", warps_per_core=4)
        metrics = pipeline.metrics
        assert metrics.counter_value("cache_sim.runs") == 1
        assert metrics.counter_value("oracle.runs") == 1
        assert metrics.counter_value("oracle.insts_issued") > 0
        per_core = metrics.labeled_values("oracle.core_insts", "core")
        assert sum(per_core.values()) == (
            metrics.counter_value("oracle.insts_issued")
        )
        histogram = metrics.histogram("cache_sim.l1_miss_rate")
        assert histogram.count == 1

    def test_stage_table_renders(self, config):
        pipeline = Pipeline(config, scale=Scale.tiny())
        assert render_stage_table(pipeline.metrics) is None  # nothing ran
        pipeline.evaluate("vectoradd", warps_per_core=4)
        table = render_stage_table(pipeline.metrics)
        assert "trace" in table and "oracle" in table
        assert "p95 ms" in table

    def test_backend_recorded_on_hot_path_stages(self, config, monkeypatch):
        from repro.backend import BACKEND_STAGES

        pipeline = Pipeline(config, scale=Scale.tiny())
        pipeline.evaluate("vectoradd", warps_per_core=4)
        metrics = pipeline.metrics
        for stage in BACKEND_STAGES:
            assert metrics.counter_value(
                "pipeline.backend_executions",
                stage=stage, backend="vectorized",
            ) == 1
            assert metrics.counter_value(
                "pipeline.backend_seconds",
                stage=stage, backend="vectorized",
            ) > 0.0
        # Non-switched stages carry no backend counter.
        assert metrics.counter_value(
            "pipeline.backend_executions",
            stage="oracle", backend="vectorized",
        ) == 0
        assert "vectorized" in render_stage_table(metrics)
        # A scalar re-run of the same stages renders as mixed.
        monkeypatch.setenv("REPRO_SCALAR", "1")
        pipeline.evaluate("strided_deg8", warps_per_core=4)
        assert "mixed" in render_stage_table(pipeline.metrics)

    def test_backend_span_arg(self, config, monkeypatch):
        monkeypatch.setenv("REPRO_SCALAR", "1")
        tracer = Tracer()
        pipeline = Pipeline(config, scale=Scale.tiny(), tracer=tracer)
        pipeline.evaluate("vectoradd", warps_per_core=4)
        by_name = {
            s["name"]: s for s in tracer.spans() if s["cat"] == "stage"
        }
        assert by_name["trace"]["args"]["trace.backend"] == "scalar"
        assert by_name["cache_sim"]["args"]["trace.backend"] == "scalar"
        assert "trace.backend" not in by_name["oracle"]["args"]


class TestStageSpans:
    def test_stage_spans_recorded_when_enabled(self, config):
        tracer = Tracer()
        pipeline = Pipeline(config, scale=Scale.tiny(), tracer=tracer)
        pipeline.evaluate("vectoradd", warps_per_core=4)
        spans = tracer.spans()
        names = {s["name"] for s in spans if s["cat"] == "stage"}
        assert {"trace", "cache_sim", "oracle", "predict"} <= names
        evaluate = [s for s in spans if s["name"] == "evaluate"]
        assert evaluate and evaluate[0]["args"]["kernel"] == "vectoradd"
        # Stage spans nest under the evaluate span.
        stage = next(s for s in spans if s["name"] == "oracle")
        assert stage["parent"] == evaluate[0]["id"]

    def test_disabled_tracer_records_nothing(self, config):
        tracer = Tracer(enabled=False)
        pipeline = Pipeline(config, scale=Scale.tiny(), tracer=tracer)
        pipeline.evaluate("vectoradd", warps_per_core=4)
        assert tracer.n_spans == 0

    def test_cache_hits_do_not_emit_stage_spans(self, config):
        tracer = Tracer()
        pipeline = Pipeline(config, scale=Scale.tiny(), tracer=tracer)
        pipeline.evaluate("vectoradd", warps_per_core=4)
        before = sum(1 for s in tracer.spans() if s["cat"] == "stage")
        pipeline.evaluate("vectoradd", warps_per_core=4)
        after = sum(1 for s in tracer.spans() if s["cat"] == "stage")
        assert after == before


class TestParallelMerge:
    def _run(self, config, jobs):
        runner = Runner(config, Scale.tiny(), jobs=jobs,
                        metrics=MetricsRegistry())
        results = runner.evaluate_many(_requests())
        return results, runner.metrics

    def test_parallel_counters_match_serial(self, config):
        serial_results, serial_metrics = self._run(config, jobs=1)
        parallel_results, parallel_metrics = self._run(config, jobs=2)
        assert [r.oracle_cpi for r in parallel_results] == [
            r.oracle_cpi for r in serial_results
        ]
        assert _stage_runs(parallel_metrics) == _stage_runs(serial_metrics)
        # The satellite regression: stage activity that happened inside
        # pool workers must not be lost.
        runs = _stage_runs(parallel_metrics)
        assert runs["oracle"] == len(SWEEP)
        assert runs["trace"] == len(SWEEP)
        # Worker wall-clock reaches the parent's timing view too.
        timings = dict(
            parallel_metrics.labeled_values("pipeline.stage_seconds", "stage")
        )
        assert timings["oracle"] > 0.0

    def test_parallel_counters_match_serial_under_spawn(
        self, config, monkeypatch
    ):
        monkeypatch.setenv("REPRO_START_METHOD", "spawn")
        _, parallel_metrics = self._run(config, jobs=2)
        monkeypatch.delenv("REPRO_START_METHOD")
        _, serial_metrics = self._run(config, jobs=1)
        assert _stage_runs(parallel_metrics) == _stage_runs(serial_metrics)

    def test_worker_spans_merged_with_child_pids(self, config):
        tracer = Tracer()
        runner = Runner(config, Scale.tiny(), jobs=2, tracer=tracer)
        runner.evaluate_many(_requests())
        spans = tracer.spans()
        worker_pids = {s["pid"] for s in spans} - {os.getpid()}
        assert worker_pids  # spans shipped home from pool workers
        worker_stages = {s["name"] for s in spans
                         if s["pid"] != os.getpid() and s["cat"] == "stage"}
        assert "oracle" in worker_stages

    def test_parallel_histograms_merge(self, config):
        _, serial_metrics = self._run(config, jobs=1)
        _, parallel_metrics = self._run(config, jobs=2)
        name = "pipeline.stage_ms"
        serial = serial_metrics.histogram(name, stage="oracle")
        parallel = parallel_metrics.histogram(name, stage="oracle")
        assert parallel.count == serial.count == len(SWEEP)


class TestTimelineThroughPipeline:
    def test_oracle_timeline_populated(self, config):
        pipeline = Pipeline(config, scale=Scale.tiny(),
                            timeline_interval=32.0)
        stats = pipeline.simulate("vectoradd", warps_per_core=4)
        assert stats.timeline is not None
        assert stats.timeline.n_samples > 0

    def test_timeline_key_does_not_collide_with_plain_oracle(self, config):
        plain = Pipeline(config, scale=Scale.tiny())
        plain_stats = plain.simulate("vectoradd", warps_per_core=4)
        assert plain_stats.timeline is None
        sampled = Pipeline(config, scale=Scale.tiny(), store=plain.store,
                           timeline_interval=32.0)
        stats = sampled.simulate("vectoradd", warps_per_core=4)
        # The cached plain-oracle artifact must not satisfy the sampled
        # request (its key differs), so the timeline is present.
        assert stats.timeline is not None
        assert stats.total_cycles == plain_stats.total_cycles

    def test_timeline_survives_parallel_workers(self, config):
        runner = Runner(config, Scale.tiny(), jobs=2, timeline_interval=32.0)
        results = runner.evaluate_many(_requests())
        for result in results:
            assert result.oracle.timeline is not None
            assert result.oracle.timeline.n_samples > 0
