"""Behavioural tests of the RR and GTO warp schedulers in the oracle."""


from repro.config import GPUConfig
from repro.isa import KernelBuilder
from repro.timing import TimingSimulator
from repro.trace import emulate


def run_with_issue_log(kernel, config):
    """Run the oracle while recording (cycle, warp_id) issue order."""
    from collections import defaultdict

    from repro.memory.cache import Cache
    from repro.memory.dram import DRAMSystem
    from repro.timing.core_model import CoreModel

    trace = emulate(kernel, config)
    blocks = defaultdict(list)
    for warp in trace.warps:
        blocks[warp.block_id].append(warp)
    per_core = [[] for _ in range(config.n_cores)]
    for block_id in sorted(blocks):
        per_core[block_id % config.n_cores].append(blocks[block_id])
    l2 = Cache(config.l2_size, config.l2_assoc, config.line_size)
    dram = DRAMSystem(config.dram_service_cycles, 1, config.line_size)
    core = CoreModel(0, config, l2, dram, per_core[0])

    issue_log = []
    original_issue = core._issue

    def logging_issue(run, now):
        issue_log.append((now, run.trace.warp_id))
        original_issue(run, now)

    core._issue = logging_issue
    now = 0.0
    import math

    while not core.finished:
        if not core.step(now):
            wake = core.next_event_after(now)
            now = max(now + 1.0, math.ceil(wake))
        else:
            now += 1.0
    return issue_log


def independent_work_kernel(n_insts=6, n_threads=128, block_size=128):
    b = KernelBuilder("indep")
    for i in range(n_insts):
        b.iadd(i, 1)
    b.exit()
    return b.build(n_threads=n_threads, block_size=block_size)


class TestRoundRobin:
    def test_rr_rotates_across_warps(self):
        config = GPUConfig.small(n_cores=1, warps_per_core=4)
        log = run_with_issue_log(independent_work_kernel(), config)
        first_four = [warp for _, warp in log[:4]]
        assert sorted(first_four) == [0, 1, 2, 3]  # each warp issues once

    def test_rr_no_starvation(self):
        config = GPUConfig.small(n_cores=1, warps_per_core=4)
        log = run_with_issue_log(independent_work_kernel(), config)
        issues_per_warp = {w: 0 for w in range(4)}
        for _, warp in log:
            issues_per_warp[warp] += 1
        counts = set(issues_per_warp.values())
        assert len(counts) == 1  # perfectly fair on independent work


class TestGreedyThenOldest:
    def test_gto_drains_one_warp_first(self):
        config = GPUConfig.small(n_cores=1, warps_per_core=4).with_(
            scheduler="gto"
        )
        log = run_with_issue_log(independent_work_kernel(), config)
        # The first 7 issues (6 iadds + exit) all come from the same warp.
        first_warp = log[0][1]
        assert all(warp == first_warp for _, warp in log[:7])

    def test_gto_switches_to_oldest_on_stall(self):
        config = GPUConfig.small(n_cores=1, warps_per_core=4).with_(
            scheduler="gto"
        )
        b = KernelBuilder("chain")
        acc = b.mov(1.0)
        b.fmul(acc, 2.0)  # stalls 4 cycles behind the mov
        b.exit()
        kernel = b.build(n_threads=128, block_size=128)
        log = run_with_issue_log(kernel, config)
        # Warp 0 issues its mov, stalls; the scheduler moves to warp 1
        # (the oldest ready), and so on.
        first_four = [warp for _, warp in log[:4]]
        assert first_four == [0, 1, 2, 3]


class TestResidencyEdges:
    """Issue-order goldens at the residency extremes, both schedulers."""

    def test_rr_single_warp(self):
        config = GPUConfig.small(n_cores=1, warps_per_core=4)
        log = run_with_issue_log(
            independent_work_kernel(n_threads=32, block_size=32), config
        )
        # 6 iadds + exit from the only warp, one per cycle.
        assert log == [(float(c), 0) for c in range(7)]

    def test_gto_single_warp(self):
        config = GPUConfig.small(n_cores=1, warps_per_core=4).with_(
            scheduler="gto"
        )
        log = run_with_issue_log(
            independent_work_kernel(n_threads=32, block_size=32), config
        )
        assert log == [(float(c), 0) for c in range(7)]

    def test_rr_exactly_full_residency(self):
        config = GPUConfig.small(n_cores=1, warps_per_core=4)
        log = run_with_issue_log(independent_work_kernel(), config)
        # One issue slot: warps rotate 0,1,2,3 every four cycles.
        golden = [(float(c), c % 4) for c in range(16)]
        assert log[:16] == golden


class TestSubcoreDispatch:
    """Sub-core partitions: one issue slot per scheduler per cycle."""

    def test_two_partitions_dual_issue(self):
        config = GPUConfig.small(n_cores=1, warps_per_core=4).with_(
            arch="subcore", n_schedulers=2
        )
        log = run_with_issue_log(independent_work_kernel(), config)
        # Warp -> partition by age % 2: {0,2} and {1,3}.  Both
        # partitions issue every cycle, RR rotating within each.
        assert log[:8] == [
            (0.0, 0), (0.0, 1),
            (1.0, 2), (1.0, 3),
            (2.0, 0), (2.0, 1),
            (3.0, 2), (3.0, 3),
        ]

    def test_gto_greedy_per_partition(self):
        config = GPUConfig.small(n_cores=1, warps_per_core=4).with_(
            arch="subcore", n_schedulers=2, scheduler="gto"
        )
        log = run_with_issue_log(independent_work_kernel(), config)
        # Each partition drains its own greedy warp first: 0 and 1
        # issue together for all 7 instructions, then 2 and 3.
        assert log[:14] == [
            (float(c), w) for c in range(7) for w in (0, 1)
        ]
        assert log[14:] == [
            (float(c), w) for c in range(7, 14) for w in (2, 3)
        ]

    def test_one_warp_fills_one_partition(self):
        config = GPUConfig.small(n_cores=1, warps_per_core=4).with_(
            arch="subcore", n_schedulers=4
        )
        log = run_with_issue_log(
            independent_work_kernel(n_threads=32, block_size=32), config
        )
        # Three partitions are empty; throughput equals a single slot.
        assert log == [(float(c), 0) for c in range(7)]

    def test_full_residency_one_warp_per_partition(self):
        config = GPUConfig.small(n_cores=1, warps_per_core=4).with_(
            arch="subcore", n_schedulers=4
        )
        log = run_with_issue_log(independent_work_kernel(), config)
        # Four partitions, one warp each: all four issue every cycle.
        assert log[:8] == [
            (0.0, 0), (0.0, 1), (0.0, 2), (0.0, 3),
            (1.0, 0), (1.0, 1), (1.0, 2), (1.0, 3),
        ]

    def test_uneven_partition_sizes(self):
        config = GPUConfig.small(n_cores=1, warps_per_core=8).with_(
            arch="subcore", n_schedulers=2
        )
        # Six single-warp blocks over two partitions: {0,2,4} and
        # {1,3,5} — both slots busy, rotation independent per side.
        log = run_with_issue_log(
            independent_work_kernel(n_threads=192, block_size=32), config
        )
        assert log[:6] == [
            (0.0, 0), (0.0, 1),
            (1.0, 2), (1.0, 3),
            (2.0, 4), (2.0, 5),
        ]

    def test_subcore_and_paper_issue_same_instructions(self):
        base = GPUConfig.small(n_cores=1, warps_per_core=4)
        sub = base.with_(arch="subcore", n_schedulers=2)
        kernel = independent_work_kernel()
        log_a = run_with_issue_log(kernel, base)
        log_b = run_with_issue_log(kernel, sub)
        assert len(log_a) == len(log_b)
        # Dual issue strictly shortens the schedule on issue-bound work.
        assert log_b[-1][0] < log_a[-1][0]


class TestPolicyDivergence:
    def test_policies_differ_on_stall_heavy_kernels(self):
        """RR and GTO produce different cycle counts under latency stalls
        (the premise of modeling them separately, Sec. IV-A)."""
        b = KernelBuilder("latency")
        tid = b.tid()
        acc = b.ld(b.iadd(b.imul(tid, 4), 0x100000))
        for _ in range(4):
            acc = b.ffma(acc, 1.1, 0.1, dst=acc)
        b.st(b.iadd(b.imul(tid, 4), 0x900000), acc)
        b.exit()
        kernel = b.build(n_threads=512, block_size=64)
        config = GPUConfig.small(n_cores=1, warps_per_core=8)
        trace = emulate(kernel, config)
        rr = TimingSimulator(config).run(trace)
        gto = TimingSimulator(config.with_(scheduler="gto")).run(trace)
        assert rr.total_insts == gto.total_insts
        assert rr.total_cycles != gto.total_cycles
