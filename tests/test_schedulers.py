"""Behavioural tests of the RR and GTO warp schedulers in the oracle."""


from repro.config import GPUConfig
from repro.isa import KernelBuilder
from repro.timing import TimingSimulator
from repro.trace import emulate


def run_with_issue_log(kernel, config):
    """Run the oracle while recording (cycle, warp_id) issue order."""
    from collections import defaultdict

    from repro.memory.cache import Cache
    from repro.memory.dram import DRAMSystem
    from repro.timing.core_model import CoreModel

    trace = emulate(kernel, config)
    blocks = defaultdict(list)
    for warp in trace.warps:
        blocks[warp.block_id].append(warp)
    per_core = [[] for _ in range(config.n_cores)]
    for block_id in sorted(blocks):
        per_core[block_id % config.n_cores].append(blocks[block_id])
    l2 = Cache(config.l2_size, config.l2_assoc, config.line_size)
    dram = DRAMSystem(config.dram_service_cycles, 1, config.line_size)
    core = CoreModel(0, config, l2, dram, per_core[0])

    issue_log = []
    original_issue = core._issue

    def logging_issue(run, now):
        issue_log.append((now, run.trace.warp_id))
        original_issue(run, now)

    core._issue = logging_issue
    now = 0.0
    import math

    while not core.finished:
        if not core.step(now):
            wake = core.next_event_after(now)
            now = max(now + 1.0, math.ceil(wake))
        else:
            now += 1.0
    return issue_log


def independent_work_kernel(n_insts=6, n_threads=128, block_size=128):
    b = KernelBuilder("indep")
    for i in range(n_insts):
        b.iadd(i, 1)
    b.exit()
    return b.build(n_threads=n_threads, block_size=block_size)


class TestRoundRobin:
    def test_rr_rotates_across_warps(self):
        config = GPUConfig.small(n_cores=1, warps_per_core=4)
        log = run_with_issue_log(independent_work_kernel(), config)
        first_four = [warp for _, warp in log[:4]]
        assert sorted(first_four) == [0, 1, 2, 3]  # each warp issues once

    def test_rr_no_starvation(self):
        config = GPUConfig.small(n_cores=1, warps_per_core=4)
        log = run_with_issue_log(independent_work_kernel(), config)
        issues_per_warp = {w: 0 for w in range(4)}
        for _, warp in log:
            issues_per_warp[warp] += 1
        counts = set(issues_per_warp.values())
        assert len(counts) == 1  # perfectly fair on independent work


class TestGreedyThenOldest:
    def test_gto_drains_one_warp_first(self):
        config = GPUConfig.small(n_cores=1, warps_per_core=4).with_(
            scheduler="gto"
        )
        log = run_with_issue_log(independent_work_kernel(), config)
        # The first 7 issues (6 iadds + exit) all come from the same warp.
        first_warp = log[0][1]
        assert all(warp == first_warp for _, warp in log[:7])

    def test_gto_switches_to_oldest_on_stall(self):
        config = GPUConfig.small(n_cores=1, warps_per_core=4).with_(
            scheduler="gto"
        )
        b = KernelBuilder("chain")
        acc = b.mov(1.0)
        b.fmul(acc, 2.0)  # stalls 4 cycles behind the mov
        b.exit()
        kernel = b.build(n_threads=128, block_size=128)
        log = run_with_issue_log(kernel, config)
        # Warp 0 issues its mov, stalls; the scheduler moves to warp 1
        # (the oldest ready), and so on.
        first_four = [warp for _, warp in log[:4]]
        assert first_four == [0, 1, 2, 3]


class TestPolicyDivergence:
    def test_policies_differ_on_stall_heavy_kernels(self):
        """RR and GTO produce different cycle counts under latency stalls
        (the premise of modeling them separately, Sec. IV-A)."""
        b = KernelBuilder("latency")
        tid = b.tid()
        acc = b.ld(b.iadd(b.imul(tid, 4), 0x100000))
        for _ in range(4):
            acc = b.ffma(acc, 1.1, 0.1, dst=acc)
        b.st(b.iadd(b.imul(tid, 4), 0x900000), acc)
        b.exit()
        kernel = b.build(n_threads=512, block_size=64)
        config = GPUConfig.small(n_cores=1, warps_per_core=8)
        trace = emulate(kernel, config)
        rr = TimingSimulator(config).run(trace)
        gto = TimingSimulator(config.with_(scheduler="gto")).run(trace)
        assert rr.total_insts == gto.total_insts
        assert rr.total_cycles != gto.total_cycles
