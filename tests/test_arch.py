"""Architecture-backend contract tests (``repro.arch``).

Pins the three load-bearing properties of the backend refactor:

* **Registry coherence** — the ``repro.arch`` registry and
  ``config.KNOWN_ARCHES`` describe the same backends, and lookups fail
  loudly for unknown names.
* **Cache-key discipline** — ``GPUConfig.fingerprint`` changes with
  ``arch`` and the sub-core parameters but never with the scalar/vector
  *compute* backend; two architectures never collide in the artifact
  store.
* **Bitwise identity of the default backend** — ``arch="gpumech2014"``
  predictions are pickle-identical to composing the ``repro.core``
  functions directly (the pre-backend code path), across the whole
  workload suite.
"""

import pickle

import numpy as np
import pytest

from repro.arch import (
    ARCH_NAMES,
    ArchBackend,
    GpuMech2014,
    SubCore,
    assert_backend_independent,
    get_arch,
    schedulers_for,
)
from repro.config import (
    ALL_FIELDS,
    KNOWN_ARCHES,
    TRACE_FIELDS,
    ConfigError,
    GPUConfig,
)
from repro.pipeline import Pipeline
from repro.workloads.generators import Scale
from repro.workloads.suite import SUITE, kernel_names

CONFIG = GPUConfig.small(n_cores=2, warps_per_core=8)
SUBCORE = CONFIG.with_(arch="subcore", n_schedulers=2)


class TestRegistry:
    def test_registry_matches_config(self):
        assert set(ARCH_NAMES) == set(KNOWN_ARCHES)

    def test_get_arch_returns_singletons(self):
        for name in ARCH_NAMES:
            backend = get_arch(name)
            assert isinstance(backend, ArchBackend)
            assert backend.name == name
            assert get_arch(name) is backend

    def test_default_is_the_paper_backend(self):
        assert isinstance(get_arch(GPUConfig().arch), GpuMech2014)

    def test_unknown_arch_raises_with_known_names(self):
        with pytest.raises(ValueError, match="gpumech2014"):
            get_arch("volta")

    def test_describe_is_informative(self):
        for name in ARCH_NAMES:
            text = get_arch(name).describe()
            assert name in text

    def test_schedulers_per_core(self):
        assert get_arch("gpumech2014").schedulers_per_core(SUBCORE) == 1
        assert get_arch("subcore").schedulers_per_core(SUBCORE) == 2
        assert schedulers_for(SubCore(), SUBCORE, n_warps=1) == 1


class TestConfigValidation:
    def test_unknown_arch_rejected(self):
        with pytest.raises(ConfigError, match="unknown arch"):
            GPUConfig(arch="volta")

    def test_n_schedulers_must_be_positive(self):
        with pytest.raises(ConfigError, match="n_schedulers"):
            GPUConfig(n_schedulers=0)

    def test_subcore_partition_must_divide_residency(self):
        # 8 warps/core cannot be split over 3 schedulers.
        with pytest.raises(ConfigError, match="must divide"):
            GPUConfig.small(warps_per_core=8).with_(
                arch="subcore", n_schedulers=3
            )

    def test_gpumech2014_ignores_partitioning(self):
        # The divisibility rule binds only under sub-core dispatch.
        GPUConfig.small(warps_per_core=8).with_(n_schedulers=3)


class TestCacheKeys:
    def test_fingerprint_changes_with_arch(self):
        assert CONFIG.fingerprint(ALL_FIELDS) != SUBCORE.fingerprint(
            ALL_FIELDS
        )
        # The trace stage re-runs too: reconvergence is an arch hook.
        assert CONFIG.trace_fingerprint() != SUBCORE.trace_fingerprint()

    def test_fingerprint_changes_with_n_schedulers(self):
        assert SUBCORE.fingerprint(ALL_FIELDS) != SUBCORE.with_(
            n_schedulers=4
        ).fingerprint(ALL_FIELDS)
        # ...but the trace does not depend on the partition count (nor
        # on simt_width, which validation pins to warp_size).
        assert TRACE_FIELDS == frozenset(
            {"warp_size", "line_size", "smem_banks", "arch"}
        )

    def test_fingerprint_ignores_compute_backend(self, monkeypatch):
        base = CONFIG.fingerprint(ALL_FIELDS)
        monkeypatch.setenv("REPRO_SCALAR", "1")
        assert CONFIG.fingerprint(ALL_FIELDS) == base

    def test_archs_never_collide_on_disk(self, tmp_path):
        """Predictions cached by one arch are invisible to the other."""
        kernel = "vectoradd"
        first = Pipeline(
            CONFIG, scale=Scale.tiny(), cache_dir=str(tmp_path)
        ).predict(kernel)
        second = Pipeline(
            SUBCORE, scale=Scale.tiny(), cache_dir=str(tmp_path)
        ).predict(kernel)
        assert first.arch == "gpumech2014"
        assert second.arch == "subcore"
        # Round-trip through the same store: each arch hits its own
        # artifact, bitwise.
        again = Pipeline(
            CONFIG, scale=Scale.tiny(), cache_dir=str(tmp_path)
        ).predict(kernel)
        assert pickle.dumps(again) == pickle.dumps(first)
        again_sub = Pipeline(
            SUBCORE, scale=Scale.tiny(), cache_dir=str(tmp_path)
        ).predict(kernel)
        assert pickle.dumps(again_sub) == pickle.dumps(second)


class TestComputeBackendIndependence:
    @pytest.mark.parametrize("config", [CONFIG, SUBCORE],
                             ids=["gpumech2014", "subcore"])
    def test_scalar_and_vectorized_agree(self, config):
        prediction = assert_backend_independent(
            "bfs_kernel1", config=config, scale=Scale.tiny()
        )
        assert prediction.arch == config.arch
        assert prediction.cpi > 0


class TestDefaultArchBitwiseIdentity:
    def test_dispatch_equals_direct_composition(self):
        """gpumech2014 == the pre-backend code path, whole suite."""
        from repro.core.contention import model_contention
        from repro.core.cpi_stack import build_cpi_stack
        from repro.core.model import resident_warps_per_core
        from repro.core.multithreading import model_multithreading

        pipeline = Pipeline(CONFIG, scale=Scale.tiny())
        for name in kernel_names():
            prediction = pipeline.predict(name)
            inputs = pipeline.model_inputs(name)
            profile = inputs.representative
            n_warps = resident_warps_per_core(inputs.trace, CONFIG)
            multithreading = model_multithreading(
                profile, n_warps, CONFIG.scheduler
            )
            contention = model_contention(
                profile, n_warps, CONFIG, inputs.avg_miss_latency
            )
            stack = build_cpi_stack(
                profile, inputs.latency_table, multithreading, contention,
                CONFIG,
            )
            assert pickle.dumps(prediction.multithreading) == pickle.dumps(
                multithreading
            ), name
            assert pickle.dumps(prediction.contention) == pickle.dumps(
                contention
            ), name
            assert pickle.dumps(prediction.cpi_stack) == pickle.dumps(
                stack
            ), name
            assert prediction.arch == "gpumech2014"


class TestInterleavedTraces:
    def _traces(self, name, config):
        from repro.trace.emulator import emulate

        kernel, memory = SUITE[name].build(Scale.tiny())
        return emulate(kernel, config, memory=memory)

    def test_nondivergent_traces_identical_across_archs(self):
        """Without divergence the two reconvergence policies coincide."""
        base = self._traces("vectoradd", CONFIG)
        its = self._traces("vectoradd", SUBCORE)
        for a, b in zip(base.warps, its.warps):
            assert np.array_equal(a.pcs, b.pcs)
            assert np.array_equal(a.ops, b.ops)
            assert np.array_equal(a.active, b.active)

    def test_divergent_traces_same_work(self):
        """ITS executes the same per-warp work as the stack.

        On *structured* control flow (every then-block laid out before
        its else-target, reconvergence at the immediate post-dominator —
        all suite kernels) min-PC scheduling provably coincides with
        stack order, so the traces match exactly; the policies only
        reorder when branch targets overlap (see
        ``TestInterleavedStackUnit.test_min_pc_interleaves_overlap``).
        """
        base = self._traces("mandelbrot", CONFIG)
        its = self._traces("mandelbrot", SUBCORE)
        assert its.total_insts > 0
        for a, b in zip(base.warps, its.warps):
            assert sorted(a.pcs.tolist()) == sorted(b.pcs.tolist())

    def test_interleaved_policy_reaches_whole_suite(self):
        """Every suite kernel emulates cleanly under ITS reconvergence."""
        for name in kernel_names():
            trace = self._traces(name, SUBCORE)
            assert trace.total_insts > 0, name


class TestInterleavedStackUnit:
    def _drive(self, stack, stop_pc):
        """Step the stack to quiescence, recording the executed PCs."""
        order = []
        while True:
            if stack.pop_reconverged():
                continue
            group = stack.top
            if group.pc >= stop_pc and stack.depth == 1:
                return order
            order.append(group.pc)
            stack.advance()

    def test_min_pc_interleaves_overlapping_sides(self):
        """Where the two sides' PC ranges overlap, ITS alternates.

        Branch at pc 0: taken side starts at 10, fallthrough at 1, both
        reconverging at 20.  The post-dominator stack runs the whole
        fallthrough side (1..19) before the taken side (10..19); min-PC
        scheduling runs fallthrough alone only while it is strictly
        below the taken side's PC, then alternates the two sides in
        lockstep — the producer→consumer spacing the subcore backend
        models.
        """
        from repro.trace.reconvergence import InterleavedStack

        stack = InterleavedStack(np.ones(4, dtype=bool))
        assert not stack.pop_reconverged()
        taken = np.array([True, True, False, False])
        stack.branch(taken, target=10, reconv=20)
        order = self._drive(stack, stop_pc=20)
        expected = list(range(1, 10))
        for pc in range(10, 20):
            expected += [pc, pc]
        assert order == expected
        # After the merge the warp is whole again.
        assert stack.depth == 1
        assert stack.top.pc == 20
        assert stack.top.n_active == 4

    def test_structured_if_else_matches_stack_order(self):
        """Non-overlapping sides (then at 1..4 ending in a jump to the
        reconvergence point, else at 5..8) do not interleave: the min-PC
        rule degenerates to stack order."""
        from repro.trace.reconvergence import InterleavedStack

        stack = InterleavedStack(np.ones(2, dtype=bool))
        assert not stack.pop_reconverged()
        stack.branch(np.array([False, True]), target=5, reconv=9)
        order = []
        while True:
            if stack.pop_reconverged():
                continue
            group = stack.top
            if group.pc >= 9 and stack.depth == 1:
                break
            order.append(group.pc)
            if group.pc == 4:  # then-block tail: bra -> reconv
                stack.jump(9)
            else:
                stack.advance()
        assert order == [1, 2, 3, 4, 5, 6, 7, 8]

    def test_uniform_branches_never_split(self):
        from repro.trace.reconvergence import InterleavedStack

        stack = InterleavedStack(np.ones(2, dtype=bool))
        stack.branch(np.zeros(2, dtype=bool), target=7, reconv=None)
        assert stack.depth == 1 and stack.top.pc == 1
        stack.branch(np.ones(2, dtype=bool), target=7, reconv=None)
        assert stack.depth == 1 and stack.top.pc == 7

    def test_divergent_branch_requires_reconv(self):
        from repro.trace.reconvergence import InterleavedStack
        from repro.trace.simt_stack import SimtStackError

        stack = InterleavedStack(np.ones(2, dtype=bool))
        with pytest.raises(SimtStackError):
            stack.branch(np.array([True, False]), target=5, reconv=None)

    def test_empty_mask_rejected(self):
        from repro.trace.reconvergence import InterleavedStack
        from repro.trace.simt_stack import SimtStackError

        with pytest.raises(SimtStackError):
            InterleavedStack(np.zeros(4, dtype=bool))


class TestSubcoreEndToEnd:
    def test_full_pipeline_runs(self):
        pipeline = Pipeline(SUBCORE, scale=Scale.tiny())
        prediction = pipeline.predict("bfs_kernel1")
        stats = pipeline.simulate("bfs_kernel1")
        assert prediction.arch == "subcore"
        assert stats.arch == "subcore"
        assert prediction.cpi > 0 and stats.cpi > 0

    def test_subcore_multithreading_floor(self):
        """Two issue slots halve the CPI floor on issue-bound kernels."""
        from repro.core.interval import build_interval_profiles
        from repro.core.latency import build_latency_table
        from repro.memory.cache_simulator import simulate_caches
        from repro.trace.emulator import emulate

        kernel, memory = SUITE["vectoradd"].build(Scale.tiny())
        trace = emulate(kernel, SUBCORE, memory=memory)
        cache = simulate_caches(trace, SUBCORE)
        table = build_latency_table(trace, cache, SUBCORE)
        profile = build_interval_profiles(
            trace.warps, table, SUBCORE.issue_rate
        )[0]
        sub = get_arch("subcore").model_multithreading(
            profile, 8, "rr", SUBCORE
        )
        assert sub.n_warps == 8
        assert sub.cpi >= 1.0 / (2 * SUBCORE.issue_rate)

    def test_arch_comparison_report(self):
        from repro.analysis import (
            compare_architectures,
            render_arch_comparison,
        )

        results = compare_architectures(
            scale=Scale.tiny(), kernels=["vectoradd"], config=CONFIG
        )
        assert set(results) == {"vectoradd"}
        assert set(results["vectoradd"]) == set(ARCH_NAMES)
        report = render_arch_comparison(results)
        assert "vectoradd" in report
        assert "gpumech2014" in report and "subcore" in report
